#!/usr/bin/env python
"""Quickstart: schedule a random coflow workload on a fat-tree.

Builds a 16-server fat-tree, draws a random Poisson coflow instance (the
Section-4.1 workload), runs the paper's LP-Based algorithm and the three
competing heuristics through the flow-level simulator, and prints the
weighted coflow completion time of each scheme together with the LP lower
bound.

Run with:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.baselines import (
    BaselineScheme,
    LPBasedScheme,
    RouteOnlyScheme,
    ScheduleOnlyScheme,
    SEBFScheme,
)
from repro.core import topologies
from repro.sim import FlowLevelSimulator, SchemeComparison
from repro.workloads import CoflowGenerator, WorkloadConfig


def main() -> None:
    # 1. The topology: a k=4 fat-tree (16 servers, 1 Gb/s links).
    network = topologies.fat_tree(k=4)
    print(f"topology: fat-tree k=4 with {network.num_nodes} nodes, "
          f"{network.num_edges} directed links")

    # 2. The workload: 8 coflows of width 8, Poisson sizes/releases/weights.
    config = WorkloadConfig(
        num_coflows=8, coflow_width=8, mean_flow_size=8.0, release_rate=4.0, seed=1
    )
    instance = CoflowGenerator(network, config).instance()
    print(f"workload: {instance.num_coflows} coflows, {instance.num_flows} flows, "
          f"total volume {instance.total_volume:.0f}")

    # 3. Run every scheme through the flow-level simulator.
    simulator = FlowLevelSimulator(network)
    comparison = SchemeComparison()
    lp_scheme = LPBasedScheme(seed=1)
    schemes = [
        lp_scheme,
        RouteOnlyScheme(),
        ScheduleOnlyScheme(seed=1),
        BaselineScheme(seed=1),
        SEBFScheme(),
    ]
    for scheme in schemes:
        plan = scheme.plan(instance, network)
        result = simulator.run(instance, plan)
        comparison.add(result)
        print(f"  {scheme.name:<22s} weighted CCT = {result.weighted_completion_time:10.1f}"
              f"   makespan = {result.makespan:8.1f}")

    # 4. The LP lower bound certifies how far from optimal any scheme can be.
    print(f"\nLP lower bound (Lemma 5): {lp_scheme.last_plan.lower_bound:.1f}")
    print("ratios w.r.t. Baseline:")
    for name, ratio in sorted(comparison.ratios_to("Baseline").items()):
        print(f"  {name:<22s} {ratio:.3f}")
    print(f"\nLP-Based improvement over Route-only: "
          f"{comparison.improvement_over('LP-Based', 'Route-only'):.1f}%")


if __name__ == "__main__":
    main()
