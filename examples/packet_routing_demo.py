#!/usr/bin/env python
"""Packet-based coflows (Section 3): routing and scheduling unit packets.

Builds a small ring network, creates packet coflows (every flow is a single
packet), and runs both packet algorithms:

* paths given      — the job-shop style LP + list scheduling of Section 3.1;
* paths not given  — the time-expanded-graph LP, half-interval assignment and
  per-interval routing/scheduling of Section 3.2.

For each, it prints the schedule objective, the LP lower bound and the
measured approximation ratio (the quantity Table 1 bounds by O(1)).

Run with:  python examples/packet_routing_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import topologies
from repro.packet import schedule_packet_coflows
from repro.workloads import CoflowGenerator, WorkloadConfig


def main() -> None:
    network = topologies.ring(6)
    config = WorkloadConfig(
        num_coflows=4, coflow_width=3, unit_sizes=True, release_rate=None, seed=5
    )
    instance = CoflowGenerator(network, config).instance()
    print(f"network: 6-node ring; workload: {instance.num_coflows} coflows, "
          f"{instance.num_flows} packets\n")

    # Variant 1: joint routing + scheduling (Section 3.2).
    outcome = schedule_packet_coflows(instance, network, seed=0)
    print("paths NOT given (Section 3.2: time-expanded LP + per-interval scheduling)")
    print(f"  weighted completion time : {outcome.objective:.0f}")
    print(f"  LP lower bound           : {outcome.lower_bound:.1f}")
    print(f"  measured ratio           : {outcome.approximation_ratio:.2f}  (paper: O(1))")
    print(f"  makespan                 : {outcome.schedule.makespan()} steps")

    # Variant 2: fix shortest paths first, then only schedule (Section 3.1).
    routed = instance.with_paths(
        {
            fid: network.shortest_path(
                instance.flow(fid).source, instance.flow(fid).destination
            )
            for fid in instance.flow_ids()
        }
    )
    outcome_given = schedule_packet_coflows(routed, network)
    print("\npaths given (Section 3.1: job-shop LP + list scheduling)")
    print(f"  weighted completion time : {outcome_given.objective:.0f}")
    print(f"  LP lower bound           : {outcome_given.lower_bound:.1f}")
    print(f"  measured ratio           : {outcome_given.approximation_ratio:.2f}  (paper: O(1))")

    # Peek at one packet's realised route and timing.
    fid = instance.flow_ids()[0]
    moves = outcome.schedule.moves(fid)
    hops = " -> ".join(str(m.edge[0]) for m in moves) + f" -> {moves[-1].edge[1]}"
    times = [m.time for m in moves]
    print(f"\nexample packet {fid}: route {hops}")
    print(f"  departs its hops at steps {times}, arrives at step "
          f"{outcome.schedule.packet_completion_time(fid)}")


if __name__ == "__main__":
    main()
