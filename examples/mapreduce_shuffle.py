#!/usr/bin/env python
"""MapReduce shuffle scheduling: the paper's motivating application.

Generates two all-to-all shuffle coflows (every mapper sends to every reducer;
the reduce phase starts only when the whole shuffle — the coflow — finishes),
schedules them with the LP-Based algorithm and with the heuristics, and prints
per-job shuffle completion times.  This is the scenario where coflow-aware
scheduling matters: finishing individual flows early is useless if a sibling
flow straggles.

Run with:  python examples/mapreduce_shuffle.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.baselines import BaselineScheme, LPBasedScheme, SEBFScheme
from repro.core import topologies
from repro.sim import FlowLevelSimulator
from repro.workloads import mapreduce_shuffle


def main() -> None:
    network = topologies.fat_tree(k=4)
    instance = mapreduce_shuffle(
        network,
        num_jobs=3,
        mappers_per_job=4,
        reducers_per_job=4,
        bytes_per_pair=4.0,
        release_gap=2.0,
        seed=7,
    )
    print(f"workload: {instance.num_coflows} shuffle jobs, "
          f"{instance.num_flows} flows ({instance.total_volume:.0f} units of data)\n")

    simulator = FlowLevelSimulator(network)
    for scheme in [LPBasedScheme(seed=0), SEBFScheme(), BaselineScheme(seed=0)]:
        plan = scheme.plan(instance, network)
        result = simulator.run(instance, plan)
        per_job = ", ".join(
            f"job{i}={result.breakdown.per_coflow[i]:.1f}"
            for i in sorted(result.breakdown.per_coflow)
        )
        print(f"{scheme.name:<12s} total shuffle completion = "
              f"{result.total_completion_time:8.1f}   ({per_job})")

    lp = LPBasedScheme(seed=0)
    lp.plan(instance, network)
    print(f"\nLP lower bound on the optimum: {lp.last_plan.lower_bound:.1f}")


if __name__ == "__main__":
    main()
