#!/usr/bin/env python
"""The Figure-1 example: three coflows on a unit-capacity triangle.

Reproduces the three schedules discussed in the paper's introduction — fair
sharing (total completion time 10), strict coflow priority (8) and the optimum
(7) — and shows that the LP relaxation plus the LP-ordered work-conserving
simulation recovers the optimal value.

Run with:  python examples/fig1_triangle.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.baselines import LPGivenPathsScheme
from repro.circuit import GivenPathsScheduler
from repro.core import CircuitSchedule, Coflow, CoflowInstance, Flow, topologies
from repro.sim import FlowLevelSimulator


def build_instance() -> CoflowInstance:
    """Coflow A = {A1 (size 2), A2 (size 1)}, B (size 1), C (size 2).

    A1 and C share one edge of the triangle, A2 and B share another.
    """
    return CoflowInstance(
        coflows=[
            Coflow(
                flows=(
                    Flow("x", "y", size=2.0, path=["x", "y"]),
                    Flow("y", "z", size=1.0, path=["y", "z"]),
                ),
                weight=1.0,
                name="A",
            ),
            Coflow(flows=(Flow("y", "z", size=1.0, path=["y", "z"]),), weight=1.0, name="B"),
            Coflow(flows=(Flow("x", "y", size=2.0, path=["x", "y"]),), weight=1.0, name="C"),
        ]
    )


def manual_schedule(instance, segments) -> float:
    schedule = CircuitSchedule()
    for fid, (start, end, rate) in segments.items():
        schedule.set_path(fid, instance.flow(fid).path)
        schedule.add_segment(fid, start, end, rate)
    schedule.validate(instance, topologies.triangle())
    return sum(schedule.coflow_completion_times(instance).values())


def main() -> None:
    network = topologies.triangle()
    instance = build_instance()

    fair = manual_schedule(
        instance,
        {(0, 0): (0, 4, 0.5), (0, 1): (0, 2, 0.5), (1, 0): (0, 2, 0.5), (2, 0): (0, 4, 0.5)},
    )
    priority = manual_schedule(
        instance,
        {(0, 0): (0, 2, 1.0), (0, 1): (0, 1, 1.0), (1, 0): (1, 2, 1.0), (2, 0): (2, 4, 1.0)},
    )
    optimal = manual_schedule(
        instance,
        {(0, 0): (0, 2, 1.0), (0, 1): (1, 2, 1.0), (1, 0): (0, 1, 1.0), (2, 0): (2, 4, 1.0)},
    )
    print("Figure 1 schedules (total coflow completion time):")
    print(f"  (s1) fair sharing       : {fair:.0f}   (paper: 10)")
    print(f"  (s2) coflow priority    : {priority:.0f}   (paper: 8)")
    print(f"  (s3) optimal            : {optimal:.0f}   (paper: 7)")

    # The Section-2.1 pipeline.
    scheduler = GivenPathsScheduler(instance, network)
    relaxation = scheduler.relax()
    print(f"\nLP lower bound (Lemma 4): {relaxation.lower_bound:.2f}")
    print(f"LP flow order           : {relaxation.flow_order()}")

    scheme = LPGivenPathsScheme()
    plan = scheme.plan(instance, network)
    simulated = FlowLevelSimulator(network).run(instance, plan)
    print(f"LP-ordered simulation   : {simulated.total_completion_time:.0f}   (optimal is 7)")

    rounded = scheduler.schedule()
    print(f"interval-rounded schedule objective: {rounded.objective:.1f} "
          f"(provable factor {scheduler.parameters.blowup_factor:.1f}x of the LP bound)")


if __name__ == "__main__":
    main()
