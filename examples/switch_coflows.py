#!/usr/bin/env python
"""Coflow scheduling on a non-blocking switch (the Varys setting).

The switch is the unique-path special case called out in Section 2: every
host pair is connected through one crossbar hop, so only the Section-2.1
machinery (LP + rounding / LP ordering) is needed.  This example compares the
LP-based schedule against the SEBF heuristic and against the per-coflow
isolation lower bound on a heavy-tailed workload.

Run with:  python examples/switch_coflows.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.baselines import SEBFScheme
from repro.core import topologies
from repro.sim import FlowLevelSimulator
from repro.switch import SwitchScheduler, attach_switch_paths, switch_lower_bound
from repro.workloads import heavy_tailed_instance


def main() -> None:
    network = topologies.nonblocking_switch(16)
    instance = heavy_tailed_instance(
        network, num_coflows=8, max_width=12, max_size=24.0, seed=3
    )
    widths = [c.width for c in instance]
    print(f"workload: {instance.num_coflows} coflows on a 16-port switch, "
          f"widths {widths}, total volume {instance.total_volume:.0f}\n")

    outcome = SwitchScheduler(instance, network).schedule()
    print("LP-Based (Section 2.1 on the switch)")
    print(f"  simulated weighted CCT      : {outcome.simulated.weighted_completion_time:.1f}")
    print(f"  interval-rounded objective  : {outcome.rounded.objective:.1f}")
    print(f"  LP lower bound (Lemma 4)    : {outcome.lp_lower_bound:.1f}")
    print(f"  isolation lower bound       : {outcome.combinatorial_lower_bound:.1f}")

    routed = attach_switch_paths(instance, network)
    sebf_plan = SEBFScheme().plan(routed, network)
    sebf = FlowLevelSimulator(network).run(routed, sebf_plan)
    print("\nSEBF (Varys-style heuristic)")
    print(f"  simulated weighted CCT      : {sebf.weighted_completion_time:.1f}")

    gap = sebf.weighted_completion_time / outcome.simulated.weighted_completion_time
    print(f"\nSEBF / LP-Based ratio: {gap:.3f}  "
          f"(>1 means the LP ordering wins on this instance)")
    print(f"every schedule is at least {switch_lower_bound(instance, network):.1f} "
          "by the isolation bound")


if __name__ == "__main__":
    main()
