#!/usr/bin/env python
"""Experiment engine tour: parallel sweeps, scenario families, resume.

Runs a small coflow-width sweep three ways to show the engine's moving
parts:

1. serial, cold — the classic single-process loop;
2. parallel (2 workers), cold — same seeds, bit-identical results;
3. serial, warm — resumed from the run store written by step 2, so nothing
   is simulated at all.

Then sweeps a *scenario* axis (Pareto tail index on an oversubscribed
fat-tree) to show that any :class:`WorkloadConfig` field is sweepable and
that topologies can be declared as spec strings.

Run with:  python examples/scenario_engine.py
"""

import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import ExperimentEngine, sweep_table
from repro.baselines import BaselineScheme, RouteOnlyScheme, ScheduleOnlyScheme
from repro.core import topologies
from repro.workloads import WorkloadConfig


def main() -> None:
    network = topologies.fat_tree(k=4)
    schemes = [RouteOnlyScheme(), ScheduleOnlyScheme(seed=0), BaselineScheme(seed=0)]
    config = WorkloadConfig(
        num_coflows=4, coflow_width=4, mean_flow_size=6.0, release_rate=4.0, seed=11
    )

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "runs.jsonl"

        # 1. Serial, cold.
        serial = ExperimentEngine(network, schemes, tries=3)
        serial_result = serial.run(config, "coflow_width", [2, 4, 8])
        print(f"serial cold:   {serial.last_run_stats}")

        # 2. Parallel, cold, persisted to a run store.
        parallel = ExperimentEngine(
            network, schemes, tries=3, workers=2, store=str(store_path)
        )
        parallel_result = parallel.run(config, "coflow_width", [2, 4, 8])
        print(f"parallel cold: {parallel.last_run_stats}")
        identical = all(
            a.values == b.values
            for a, b in zip(serial_result.points, parallel_result.points)
        )
        print(f"serial == parallel: {identical}")

        # 3. Serial, warm: resumed from the store, zero simulations.
        warm = ExperimentEngine(network, schemes, tries=3, store=str(store_path))
        warm.run(config, "coflow_width", [2, 4, 8])
        print(f"warm resume:   {warm.last_run_stats} "
              f"(all cached: {warm.last_run_stats.all_cached})")

    # 4. A scenario sweep: heavier and heavier Pareto tails through a 4:1
    #    oversubscribed fat-tree, declared entirely by the workload config.
    scenario = WorkloadConfig(
        num_coflows=4,
        coflow_width=4,
        mean_flow_size=6.0,
        release_rate=4.0,
        seed=23,
        flow_size_distribution="pareto",
        topology="fat_tree(k=4, oversubscription=4.0)",
    )
    engine = ExperimentEngine.for_config(scenario, schemes, tries=3)
    result = engine.run(
        scenario, "pareto_shape", [1.2, 1.6, 2.4], label_format="alpha={value}"
    )
    print()
    print(sweep_table(result, "Pareto tail sweep on oversubscribed fat-tree (4:1)"))


if __name__ == "__main__":
    main()
