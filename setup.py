"""Setup shim so editable installs work without network access.

All project metadata lives in pyproject.toml; this file exists because the
environment has no `wheel` package and no network, so pip falls back to the
legacy setuptools editable-install path, which needs a setup.py.
"""
from setuptools import setup

setup()
