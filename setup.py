"""Packaging for the coflow-scheduling reproduction.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) because the offline
development environment has no ``wheel`` package and no network, so pip
falls back to the legacy setuptools editable-install path, which needs a
``setup.py``.  Installing registers the ``repro`` console script; without
installing, the same CLI is reachable as ``PYTHONPATH=src python -m repro``.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

# Single source of truth for the version is repro/__init__.py.
_INIT = (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text()
VERSION = re.search(r'^__version__ = "([^"]+)"$', _INIT, re.MULTILINE).group(1)

setup(
    name="repro-coflow-scheduling",
    version=VERSION,
    description=(
        "Reproduction of Jahanjou, Kantor & Rajaraman, 'Asymptotically "
        "Optimal Approximation Algorithms for Coflow Scheduling' (SPAA 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
    extras_require={
        "yaml": ["pyyaml"],
        "tests": ["pytest", "pytest-benchmark", "pyyaml"],
    },
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
