"""Headline claim of Sections 1.2 / 4.3: >= 22% average improvement.

The paper's summary statistic is the average improvement of the LP-Based
scheme over the best competing heuristic (Route-only): at least 22% across
the experiments.  This benchmark is a thin wrapper over the CLI suite
(``repro bench headline``): the two pooled regimes are declared by
:func:`repro.cli.bench.headline_specs` and share one run store
(``results/runstore/headline.jsonl``), so instances appearing in both pools
are solved once.
"""

import pytest

from repro.analysis import RunStore, format_table, run_spec
from repro.cli.bench import headline_improvements, headline_specs

from common import (
    engine_summary,
    num_tries,
    num_workers,
    paper_scale,
    record,
    run_store,
)


def run_pool():
    width_spec, count_spec = headline_specs(
        paper_scale=paper_scale(), tries=num_tries()
    )
    store = run_store("headline") or RunStore()
    width_run = run_spec(width_spec, store, workers=num_workers())
    count_run = run_spec(count_spec, store, workers=num_workers())
    return width_run, count_run


@pytest.mark.benchmark(group="headline")
def test_headline_improvement(benchmark):
    width_run, count_run = benchmark.pedantic(run_pool, rounds=1, iterations=1)

    improvements = headline_improvements(width_run, count_run)
    table = format_table(
        ["reference scheme", "avg improvement of LP-Based (%)"],
        [[name, gain] for name, gain in improvements.items()],
        title="Headline: average improvement of LP-Based (paper: 110-126% vs Baseline, "
        "72-96% vs Schedule-only, 22-26% vs Route-only)",
    )
    record(
        "headline_improvement",
        table
        + "\n\n"
        + engine_summary(width_run.stats)
        + "  [width pool]\n"
        + engine_summary(count_run.stats)
        + "  [count pool]",
    )

    assert improvements["Baseline"] > 10.0
    assert improvements["Schedule-only"] > 5.0
    # Route-only is the strongest heuristic; LP-Based should not lose to it.
    assert improvements["Route-only"] > -5.0
