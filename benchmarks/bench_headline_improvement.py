"""Headline claim of Sections 1.2 / 4.3: >= 22% average improvement.

The paper's summary statistic is the average improvement of the LP-Based
scheme over the best competing heuristic (Route-only): at least 22% across the
experiments.  This benchmark aggregates the Figure-3 and Figure-4 regimes into
one pool of random instances on the experiment engine and reports the average
improvement of LP-Based over each heuristic, timing the whole evaluation.
Both sweeps share one run store (``results/runstore/headline.jsonl``), so
instances appearing in both pools are solved once.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.workloads import WorkloadConfig

from common import (
    engine_summary,
    evaluation_network,
    figure3_num_coflows,
    figure4_width,
    make_engine,
    paper_schemes,
    record,
)


def run_pool():
    network = evaluation_network()
    engine = make_engine(network, paper_schemes(), "headline")
    # A pool mixing the two figures' regimes: width sweep at fixed coflow
    # count plus a coflow-count point at the Figure-4 width.
    width_result = engine.run(
        WorkloadConfig(num_coflows=figure3_num_coflows(), mean_flow_size=8.0, release_rate=4.0, seed=5000),
        "coflow_width",
        [4, figure4_width()],
        label_format="width {value}",
    )
    count_result = engine.run(
        WorkloadConfig(coflow_width=figure4_width(), mean_flow_size=8.0, release_rate=4.0, seed=6000),
        "num_coflows",
        [figure3_num_coflows()],
        label_format="{value} coflows",
    )
    return engine, width_result, count_result


@pytest.mark.benchmark(group="headline")
def test_headline_improvement(benchmark):
    engine, width_result, count_result = benchmark.pedantic(
        run_pool, rounds=1, iterations=1
    )

    references = ["Baseline", "Schedule-only", "Route-only"]
    rows = []
    for reference in references:
        gains = [
            width_result.average_improvement("LP-Based", reference),
            count_result.average_improvement("LP-Based", reference),
        ]
        rows.append([reference, float(np.mean(gains))])
    table = format_table(
        ["reference scheme", "avg improvement of LP-Based (%)"],
        rows,
        title="Headline: average improvement of LP-Based (paper: 110-126% vs Baseline, "
        "72-96% vs Schedule-only, 22-26% vs Route-only)",
    )
    record("headline_improvement", table + "\n\n" + engine_summary(engine))

    improvements = {row[0]: row[1] for row in rows}
    assert improvements["Baseline"] > 10.0
    assert improvements["Schedule-only"] > 5.0
    # Route-only is the strongest heuristic; LP-Based should not lose to it.
    assert improvements["Route-only"] > -5.0
