"""Figure 1: the introductory triangle example.

Regenerates the three schedules discussed in the paper's introduction (fair
sharing, strict coflow priority, optimal) and shows that the LP-based pipeline
recovers the optimal total completion time of 7.  The benchmark times the full
LP + ordering + simulation pipeline on the example.
"""

import pytest

from repro.analysis import format_table
from repro.baselines import LPGivenPathsScheme
from repro.core import CircuitSchedule, Coflow, CoflowInstance, Flow, topologies
from repro.sim import FlowLevelSimulator

from common import record


def figure1_instance() -> CoflowInstance:
    return CoflowInstance(
        coflows=[
            Coflow(
                flows=(
                    Flow("x", "y", size=2.0, path=["x", "y"]),
                    Flow("y", "z", size=1.0, path=["y", "z"]),
                ),
                weight=1.0,
                name="A",
            ),
            Coflow(flows=(Flow("y", "z", size=1.0, path=["y", "z"]),), weight=1.0, name="B"),
            Coflow(flows=(Flow("x", "y", size=2.0, path=["x", "y"]),), weight=1.0, name="C"),
        ]
    )


def hand_schedules(instance, network):
    """The (s1), (s2), (s3) schedules of Figure 1, as total completion times."""
    results = {}
    # (s1) fair sharing at rate 1/2
    s1 = CircuitSchedule()
    for (fid, horizon) in [((0, 0), 4.0), ((0, 1), 2.0), ((1, 0), 2.0), ((2, 0), 4.0)]:
        flow = instance.flow(fid)
        s1.set_path(fid, flow.path)
        s1.add_segment(fid, 0.0, horizon, 0.5)
    s1.validate(instance, network)
    results["(s1) fair sharing"] = sum(s1.coflow_completion_times(instance).values())
    # (s2) strict priority A > B > C
    s2 = CircuitSchedule()
    for fid, (start, end) in [
        ((0, 0), (0.0, 2.0)),
        ((0, 1), (0.0, 1.0)),
        ((1, 0), (1.0, 2.0)),
        ((2, 0), (2.0, 4.0)),
    ]:
        s2.set_path(fid, instance.flow(fid).path)
        s2.add_segment(fid, start, end, 1.0)
    s2.validate(instance, network)
    results["(s2) coflow priority"] = sum(s2.coflow_completion_times(instance).values())
    # (s3) optimal
    s3 = CircuitSchedule()
    for fid, (start, end) in [
        ((0, 0), (0.0, 2.0)),
        ((0, 1), (1.0, 2.0)),
        ((1, 0), (0.0, 1.0)),
        ((2, 0), (2.0, 4.0)),
    ]:
        s3.set_path(fid, instance.flow(fid).path)
        s3.add_segment(fid, start, end, 1.0)
    s3.validate(instance, network)
    results["(s3) optimal"] = sum(s3.coflow_completion_times(instance).values())
    return results


def lp_pipeline(instance, network) -> float:
    scheme = LPGivenPathsScheme()
    plan = scheme.plan(instance, network)
    result = FlowLevelSimulator(network).run(instance, plan)
    return result.total_completion_time


@pytest.mark.benchmark(group="fig1")
def test_fig1_intro_example(benchmark):
    network = topologies.triangle()
    instance = figure1_instance()

    value = benchmark.pedantic(
        lp_pipeline, args=(instance, network), rounds=3, iterations=1
    )

    rows = [[name, total] for name, total in hand_schedules(instance, network).items()]
    rows.append(["LP-Based (this work)", value])
    table = format_table(
        ["schedule", "total completion time"],
        rows,
        title="Figure 1 — triangle example (paper: 10 / 8 / 7)",
    )
    record("fig1_intro_example", table)

    assert value == pytest.approx(7.0, abs=1e-6)
