"""Figure 3: varying the coflow width.

The paper fixes the number of coflows to 10 and sweeps the coflow width over
{4, 8, 16, 32} on a 128-server fat-tree, reporting (upper panel) the average
completion time of LP-Based, Route-only, Schedule-only and Baseline and
(lower panel) the same values normalised by Baseline.  The reported averages
are over 10 random tries; LP-Based improves on Baseline / Schedule-only /
Route-only by 126% / 96% / 22% on average.

This benchmark regenerates both panels (scaled down by default; set
``REPRO_PAPER_SCALE=1`` and ``REPRO_TRIES=10`` for the full configuration)
and times one full sweep.
"""

import pytest

from repro.analysis import ExperimentSweep, improvement_summary, ratio_table, sweep_table
from repro.baselines import (
    BaselineScheme,
    LPBasedScheme,
    RouteOnlyScheme,
    ScheduleOnlyScheme,
)
from repro.workloads import WorkloadConfig

from common import (
    evaluation_network,
    figure3_num_coflows,
    figure3_widths,
    num_tries,
    record,
)


def run_sweep():
    network = evaluation_network()
    schemes = [
        LPBasedScheme(seed=0),
        RouteOnlyScheme(),
        ScheduleOnlyScheme(seed=0),
        BaselineScheme(seed=0),
    ]
    sweep = ExperimentSweep(network, schemes, tries=num_tries())
    config = WorkloadConfig(
        num_coflows=figure3_num_coflows(), mean_flow_size=8.0, release_rate=4.0, seed=3000
    )
    return sweep.run(
        config, "coflow_width", figure3_widths(), label_format="{value} flows"
    )


@pytest.mark.benchmark(group="fig3")
def test_fig3_coflow_width(benchmark):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    title = (
        f"Figure 3 — coflow width sweep "
        f"({figure3_num_coflows()} coflows, {num_tries()} tries per point)"
    )
    blocks = [
        sweep_table(result, title, value_label="avg weighted completion time"),
        ratio_table(result, "Baseline", title),
        improvement_summary(
            result, "LP-Based", ["Baseline", "Schedule-only", "Route-only"]
        ),
    ]
    record("fig3_coflow_width", "\n\n".join(blocks))

    # Shape checks mirroring the paper's conclusions.
    assert result.average_improvement("LP-Based", "Baseline") > 10.0
    assert result.average_improvement("LP-Based", "Schedule-only") > 5.0
    for point in result.points:
        assert point.mean("LP-Based") <= point.mean("Baseline") * 1.05
