"""Figure 3: varying the coflow width.

The paper fixes the number of coflows to 10 and sweeps the coflow width over
{4, 8, 16, 32} on a 128-server fat-tree, reporting (upper panel) the average
completion time of LP-Based, Route-only, Schedule-only and Baseline and
(lower panel) the same values normalised by Baseline.  The reported averages
are over 10 random tries; LP-Based improves on Baseline / Schedule-only /
Route-only by 126% / 96% / 22% on average.

This benchmark regenerates both panels on the experiment engine (scaled down
by default; set ``REPRO_PAPER_SCALE=1`` and ``REPRO_TRIES=10`` for the full
configuration, ``REPRO_WORKERS=<n>`` for a parallel sweep) and times one full
sweep.  Results persist in ``results/runstore/fig3.jsonl``: a warm re-run
skips every LP solve and simulation, which the benchmark asserts by replaying
the sweep against the store.
"""

import pytest

from repro.analysis import ExperimentEngine, improvement_summary, ratio_table, sweep_table
from repro.workloads import WorkloadConfig

from common import (
    engine_summary,
    evaluation_network,
    figure3_num_coflows,
    figure3_widths,
    make_engine,
    num_tries,
    paper_schemes,
    record,
)


def sweep_config():
    return WorkloadConfig(
        num_coflows=figure3_num_coflows(), mean_flow_size=8.0, release_rate=4.0, seed=3000
    )


def run_sweep(engine=None):
    engine = engine or make_engine(evaluation_network(), paper_schemes(), "fig3")
    result = engine.run(
        sweep_config(), "coflow_width", figure3_widths(), label_format="{value} flows"
    )
    return engine, result


@pytest.mark.benchmark(group="fig3")
def test_fig3_coflow_width(benchmark):
    engine, result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    title = (
        f"Figure 3 — coflow width sweep "
        f"({figure3_num_coflows()} coflows, {num_tries()} tries per point)"
    )
    blocks = [
        sweep_table(result, title, value_label="avg weighted completion time"),
        ratio_table(result, "Baseline", title),
        improvement_summary(
            result, "LP-Based", ["Baseline", "Schedule-only", "Route-only"]
        ),
        engine_summary(engine),
    ]
    record("fig3_coflow_width", "\n\n".join(blocks))

    # Shape checks mirroring the paper's conclusions.
    assert result.average_improvement("LP-Based", "Baseline") > 10.0
    assert result.average_improvement("LP-Based", "Schedule-only") > 5.0
    for point in result.points:
        assert point.mean("LP-Based") <= point.mean("Baseline") * 1.05

    # Resumability: replaying the sweep against the warm store must not
    # simulate anything and must reproduce the exact numbers.
    warm = ExperimentEngine(
        engine.network, engine.schemes, tries=engine.tries, store=engine.store
    )
    _, warm_result = run_sweep(warm)
    assert warm.last_run_stats.all_cached, "warm run store re-simulated tasks"
    for a, b in zip(result.points, warm_result.points):
        assert a.values == b.values
