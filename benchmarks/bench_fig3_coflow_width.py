"""Figure 3: varying the coflow width.

The paper fixes the number of coflows to 10 and sweeps the coflow width over
{4, 8, 16, 32} on a 128-server fat-tree, reporting (upper panel) the average
completion time of LP-Based, Route-only, Schedule-only and Baseline and
(lower panel) the same values normalised by Baseline.  The reported averages
are over 10 random tries; LP-Based improves on Baseline / Schedule-only /
Route-only by 126% / 96% / 22% on average.

This benchmark is a thin wrapper over the CLI suite (``repro bench fig3``):
the sweep is declared by :func:`repro.cli.bench.fig3_spec` and executed by
:func:`repro.analysis.artifacts.run_spec` (scaled down by default; set
``REPRO_PAPER_SCALE=1`` and ``REPRO_TRIES=10`` for the full configuration,
``REPRO_WORKERS=<n>`` for a parallel sweep).  Results persist in
``results/runstore/fig3.jsonl``: a warm re-run skips every LP solve and
simulation, which the benchmark asserts by replaying the sweep against the
store.
"""

import pytest

from repro.analysis import RunStore, improvement_summary, render_report, run_spec
from repro.cli.bench import fig3_spec

from common import (
    engine_summary,
    num_tries,
    num_workers,
    paper_scale,
    record,
    run_store,
)


def run_sweep(store=None):
    spec = fig3_spec(paper_scale=paper_scale(), tries=num_tries())
    if store is None:
        store = run_store("fig3") or RunStore()
    return spec, store, run_spec(spec, store, workers=num_workers())


@pytest.mark.benchmark(group="fig3")
def test_fig3_coflow_width(benchmark):
    spec, store, run = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    result = run.result

    title = f"{spec.display_title()} ({num_tries()} tries per point)"
    blocks = [
        render_report(result, title, reference=spec.reference, fmt="text"),
        improvement_summary(
            result, "LP-Based", ["Baseline", "Schedule-only", "Route-only"]
        ),
        engine_summary(run.stats),
    ]
    record("fig3_coflow_width", "\n\n".join(blocks))

    # Shape checks mirroring the paper's conclusions.
    assert result.average_improvement("LP-Based", "Baseline") > 10.0
    assert result.average_improvement("LP-Based", "Schedule-only") > 5.0
    for point in result.points:
        assert point.mean("LP-Based") <= point.mean("Baseline") * 1.05

    # Resumability: replaying the sweep against the warm store must not
    # simulate anything and must reproduce the exact numbers.
    _, _, warm = run_sweep(store=store)
    assert warm.stats.executed == 0, "warm run store re-simulated tasks"
    for a, b in zip(result.points, warm.result.points):
        assert a.values == b.values
