"""Ablation: the (alpha, D, epsilon) rounding constants of Section 2.1.

The paper numerically optimises expression (14) subject to (12)-(13) and
reports alpha = 0.5, D = 3, epsilon ~ 0.5436 (factor 17.53).  This ablation
sweeps several parameter triples that satisfy the self-consistent feasibility
condition used by our rounding (DESIGN.md Section 3) and reports, on a fixed
fat-tree instance, the provable blow-up bound, the measured objective of the
rounded schedule and its ratio to the LP lower bound — showing how the choice
trades provable factor against realised schedule quality.
"""

import pytest

from repro.analysis import format_table
from repro.circuit import GivenPathsScheduler
from repro.core import RoundingParameters, topologies
from repro.workloads import CoflowGenerator, WorkloadConfig

from common import record

#: Parameter triples satisfying alpha * eps * (1+eps)^(D-1) >= 1.
CANDIDATES = [
    RoundingParameters(alpha=0.49, displacement=4, epsilon=0.55),
    RoundingParameters(alpha=0.60, displacement=3, epsilon=0.75),
    RoundingParameters(alpha=0.40, displacement=5, epsilon=0.55),
    RoundingParameters(alpha=0.70, displacement=3, epsilon=0.65),
    RoundingParameters(alpha=0.50, displacement=4, epsilon=0.75),
]


def build_instance():
    network = topologies.fat_tree(4)
    instance = CoflowGenerator(
        network, WorkloadConfig(num_coflows=4, coflow_width=4, seed=77)
    ).instance()
    routed = instance.with_paths(
        {
            fid: network.shortest_path(
                instance.flow(fid).source, instance.flow(fid).destination
            )
            for fid in instance.flow_ids()
        }
    )
    return network, routed


def run_ablation():
    network, instance = build_instance()
    rows = []
    for params in CANDIDATES:
        result = GivenPathsScheduler(instance, network, parameters=params).schedule()
        rows.append(
            [
                f"alpha={params.alpha:.2f} D={params.displacement} eps={params.epsilon:.2f}",
                params.blowup_factor,
                result.objective,
                result.approximation_ratio,
            ]
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_rounding_params(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = format_table(
        ["parameters", "provable blow-up", "rounded objective", "measured ratio"],
        rows,
        title="Ablation — Section 2.1 rounding constants",
    )
    record("ablation_rounding_params", table)

    # Every candidate produces a feasible schedule within its provable factor.
    for row in rows:
        assert row[3] <= row[1] + 1e-6
