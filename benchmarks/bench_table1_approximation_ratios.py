"""Table 1: measured approximation ratios for the four model variants.

Table 1 of the paper summarises the *proved* approximation guarantees:

* packet-based, paths given          — O(1)
* packet-based, paths not given      — O(1)
* circuit-based, paths given         — O(1)   (17.6 after optimisation)
* circuit-based, paths not given     — O(log |E| / log log |E|)

This benchmark is a thin wrapper over the CLI suite (``repro bench
table1``): :func:`repro.cli.bench.table1_ratios` measures, for each
variant, the ratio between the objective of the schedule our implementation
produces and the corresponding LP lower bound on small random instances,
and prints it next to the theoretical guarantee — confirming the measured
ratios are small constants far below the worst case (for the routing
variant it also prints the Chernoff congestion bound the analysis
tolerates).
"""

import pytest

from repro.analysis import format_table
from repro.cli.bench import table1_ratios

from common import record


@pytest.mark.benchmark(group="table1")
def test_table1_approximation_ratios(benchmark):
    ratios = benchmark.pedantic(table1_ratios, rounds=1, iterations=1)

    rows = [
        [model, measured, bound] for model, (measured, bound) in ratios.items()
    ]
    table = format_table(
        ["model / paths", "measured ratio vs LP bound", "paper guarantee"],
        rows,
        title="Table 1 — approximation ratios (measured against the LP lower bound)",
    )
    record("table1_approximation_ratios", table)

    # Measured ratios are modest constants, far below the worst-case analysis.
    for model, (measured, _bound) in ratios.items():
        assert measured < 30.0, model
