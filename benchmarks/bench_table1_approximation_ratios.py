"""Table 1: measured approximation ratios for the four model variants.

Table 1 of the paper summarises the *proved* approximation guarantees:

* packet-based, paths given          — O(1)
* packet-based, paths not given      — O(1)
* circuit-based, paths given         — O(1)   (17.6 after optimisation)
* circuit-based, paths not given     — O(log |E| / log log |E|)

This benchmark measures, for each variant, the ratio between the objective of
the schedule our implementation produces and the corresponding LP lower bound
on small random instances, and prints it next to the theoretical guarantee —
confirming the measured ratios are small constants far below the worst case
(for the routing variant it also prints the Chernoff congestion bound the
analysis tolerates).
"""

import pytest

from repro.analysis import format_table
from repro.circuit import (
    GivenPathsScheduler,
    PathsNotGivenScheduler,
    chernoff_congestion_bound,
)
from repro.core import topologies
from repro.packet import PacketGivenPathsScheduler, PacketRoutingScheduler
from repro.workloads import CoflowGenerator, WorkloadConfig

from common import record


def circuit_given_paths_ratio():
    network = topologies.fat_tree(4)
    instance = CoflowGenerator(
        network, WorkloadConfig(num_coflows=4, coflow_width=4, seed=41)
    ).instance()
    routed = instance.with_paths(
        {
            fid: network.shortest_path(
                instance.flow(fid).source, instance.flow(fid).destination
            )
            for fid in instance.flow_ids()
        }
    )
    result = GivenPathsScheduler(routed, network).schedule()
    return result.approximation_ratio, result.parameters.blowup_factor


def circuit_routing_ratio():
    network = topologies.fat_tree(4)
    instance = CoflowGenerator(
        network, WorkloadConfig(num_coflows=4, coflow_width=4, seed=42)
    ).instance()
    scheduler = PathsNotGivenScheduler(instance, network, seed=0)
    plan, result = scheduler.schedule()
    ratio = result.objective / plan.lower_bound if plan.lower_bound > 0 else 1.0
    return ratio, chernoff_congestion_bound(network.num_edges)


def packet_given_paths_ratio():
    network = topologies.fat_tree(4)
    instance = CoflowGenerator(
        network,
        WorkloadConfig(num_coflows=4, coflow_width=3, unit_sizes=True, release_rate=None, seed=43),
    ).instance()
    routed = instance.with_paths(
        {
            fid: network.shortest_path(
                instance.flow(fid).source, instance.flow(fid).destination
            )
            for fid in instance.flow_ids()
        }
    )
    result = PacketGivenPathsScheduler(routed, network).schedule()
    return result.approximation_ratio


def packet_routing_ratio():
    network = topologies.ring(6)
    instance = CoflowGenerator(
        network,
        WorkloadConfig(num_coflows=3, coflow_width=3, unit_sizes=True, release_rate=None, seed=44),
    ).instance()
    result = PacketRoutingScheduler(instance, network, seed=0).schedule()
    return result.approximation_ratio


def run_all():
    circuit_given, circuit_given_bound = circuit_given_paths_ratio()
    circuit_routed, congestion_bound = circuit_routing_ratio()
    return {
        "circuit / given": (circuit_given, f"O(1): {circuit_given_bound:.1f}"),
        "circuit / not given": (
            circuit_routed,
            f"O(log E / log log E): 1+delta = {congestion_bound:.1f}",
        ),
        "packet / given": (packet_given_paths_ratio(), "O(1)"),
        "packet / not given": (packet_routing_ratio(), "O(1)"),
    }


@pytest.mark.benchmark(group="table1")
def test_table1_approximation_ratios(benchmark):
    ratios = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [model, measured, bound] for model, (measured, bound) in ratios.items()
    ]
    table = format_table(
        ["model / paths", "measured ratio vs LP bound", "paper guarantee"],
        rows,
        title="Table 1 — approximation ratios (measured against the LP lower bound)",
    )
    record("table1_approximation_ratios", table)

    # Measured ratios are modest constants, far below the worst-case analysis.
    for model, (measured, _bound) in ratios.items():
        assert measured < 30.0, model
