"""Ablation: edge-flow LP vs candidate-path LP (Section 2.2 formulations).

DESIGN.md documents the substitution that makes paper-scale routing LPs
tractable with an open-source solver: a column formulation over the fat-tree's
equal-cost shortest paths instead of the paper's full edge-flow formulation.
This ablation solves the same instances with both formulations and reports LP
size, solve time, LP optimum and the simulated objective of the resulting
plan, confirming the two formulations lead to equivalent schedules on the
fat-tree (where shortest-path routing is optimal) while the path formulation
is an order of magnitude smaller.
"""

import time

import pytest

from repro.analysis import format_table
from repro.baselines import LPBasedScheme
from repro.circuit import RoutingLP
from repro.core import topologies
from repro.sim import FlowLevelSimulator
from repro.workloads import CoflowGenerator, WorkloadConfig

from common import record


def run_comparison():
    network = topologies.fat_tree(4)
    instance = CoflowGenerator(
        network, WorkloadConfig(num_coflows=3, coflow_width=3, seed=88)
    ).instance()
    simulator = FlowLevelSimulator(network)

    rows = []
    objectives = {}
    for formulation in ("path", "edge"):
        start = time.perf_counter()
        lp = RoutingLP(instance, network, formulation=formulation)
        built = lp.build()
        relaxation = lp.relax()
        solve_seconds = time.perf_counter() - start

        scheme = LPBasedScheme(formulation=formulation, seed=0)
        plan = scheme.plan(instance, network)
        simulated = simulator.run(instance, plan).weighted_completion_time
        objectives[formulation] = simulated
        rows.append(
            [
                formulation,
                built.num_variables,
                built.num_constraints,
                solve_seconds,
                relaxation.objective,
                simulated,
            ]
        )
    return rows, objectives


@pytest.mark.benchmark(group="ablation")
def test_ablation_lp_formulation(benchmark):
    rows, objectives = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table = format_table(
        [
            "formulation",
            "LP variables",
            "LP constraints",
            "build+solve (s)",
            "LP optimum",
            "simulated objective",
        ],
        rows,
        title="Ablation — Section 2.2 LP formulation (path columns vs edge flows)",
        float_format="{:.3f}",
    )
    record("ablation_lp_formulation", table)

    path_row = next(r for r in rows if r[0] == "path")
    edge_row = next(r for r in rows if r[0] == "edge")
    # The path formulation is far smaller...
    assert path_row[1] < edge_row[1] / 2
    # ...and the resulting schedules are of comparable quality on the fat-tree.
    assert objectives["path"] <= objectives["edge"] * 1.25
