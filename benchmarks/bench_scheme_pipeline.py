"""Scheme-pipeline stage benchmark: route vs order vs LP-solve plan time.

Every scheme is now a Router x Orderer x Allocator composition
(:mod:`repro.baselines.pipeline`), so plan time decomposes per stage.  This
benchmark is a thin wrapper over the CLI suite (``repro bench pipeline``):
on a pinned instance — 6 coflows x 8 flows each on a 24-host leaf-spine
fabric — it times each stage of four representative compositions:

* ``pipeline(router=random, order=mct)``   — pure heuristics, no LP;
* ``pipeline(router=balanced, order=sebf)`` — the Varys-style composition;
* ``pipeline(router=balanced, order=lp)``   — the ordering LP solved in the
  order stage (a composition the legacy class hierarchy could not express);
* ``pipeline(router=lp, order=lp)``         — the paper's LP-Based scheme,
  where one solve serves both stages (the order stage consumes the
  router's completion-time hint; asserted on every run).

``--smoke`` shrinks the instance for CI.  Artifacts land under
``benchmarks/results/pipeline[-smoke]/`` (report.txt/md/csv plus run.json
with the raw stage timings).
"""

import argparse
import sys

from repro.cli.bench import run_pipeline_bench

from common import RESULTS_DIR


def main(argv=None):
    """Run the stage benchmark and print its report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized instance"
    )
    args = parser.parse_args(argv)
    run_pipeline_bench(RESULTS_DIR, smoke=args.smoke)
    name = "pipeline-smoke" if args.smoke else "pipeline"
    print((RESULTS_DIR / name / "report.txt").read_text())
    return 0


try:
    import pytest
except ImportError:  # pragma: no cover - standalone mode
    pytest = None


if pytest is not None:

    @pytest.mark.benchmark(group="pipeline")
    def test_pipeline_stage_breakdown(benchmark):
        """Stage timings exist for every composition; lp+lp hints its order."""
        timings = benchmark.pedantic(
            lambda: run_pipeline_bench(RESULTS_DIR, smoke=False),
            rounds=1,
            iterations=1,
        )
        assert set(timings) == {
            "pipeline(router=random, order=mct)",
            "pipeline(router=balanced, order=sebf)",
            "pipeline(router=balanced, order=lp)",
            "pipeline(router=lp, order=lp)",
        }
        for breakdown in timings.values():
            assert breakdown["plan_ms"] > 0.0


if __name__ == "__main__":
    sys.exit(main())
