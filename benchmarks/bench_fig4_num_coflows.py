"""Figure 4: varying the number of coflows.

The paper fixes the coflow width to 16 and sweeps the number of coflows over
{10, 15, 20, 25, 30}, again reporting per-scheme averages and ratios to
Baseline over 10 random tries; LP-Based improves on Baseline / Schedule-only /
Route-only by 110% / 72% / 26% on average.

This benchmark is a thin wrapper over the CLI suite (``repro bench fig4``):
the sweep is declared by :func:`repro.cli.bench.fig4_spec` and executed by
:func:`repro.analysis.artifacts.run_spec` (scaled down by default; set
``REPRO_PAPER_SCALE=1`` for the paper's parameters, ``REPRO_WORKERS=<n>``
for a parallel sweep).  Results persist in ``results/runstore/fig4.jsonl``;
the warm-store replay at the end asserts that a re-run skips all simulation
work.
"""

import pytest

from repro.analysis import RunStore, improvement_summary, render_report, run_spec
from repro.cli.bench import fig4_spec

from common import (
    engine_summary,
    num_tries,
    num_workers,
    paper_scale,
    record,
    run_store,
)


def run_sweep(store=None):
    spec = fig4_spec(paper_scale=paper_scale(), tries=num_tries())
    if store is None:
        store = run_store("fig4") or RunStore()
    return spec, store, run_spec(spec, store, workers=num_workers())


@pytest.mark.benchmark(group="fig4")
def test_fig4_num_coflows(benchmark):
    spec, store, run = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    result = run.result

    title = f"{spec.display_title()} ({num_tries()} tries per point)"
    blocks = [
        render_report(result, title, reference=spec.reference, fmt="text"),
        improvement_summary(
            result, "LP-Based", ["Baseline", "Schedule-only", "Route-only"]
        ),
        engine_summary(run.stats),
    ]
    record("fig4_num_coflows", "\n\n".join(blocks))

    assert result.average_improvement("LP-Based", "Baseline") > 10.0
    assert result.average_improvement("LP-Based", "Schedule-only") > 5.0
    for point in result.points:
        assert point.mean("LP-Based") <= point.mean("Baseline") * 1.05

    # Resumability: the warm store must satisfy a full replay.
    _, _, warm = run_sweep(store=store)
    assert warm.stats.executed == 0, "warm run store re-simulated tasks"
    for a, b in zip(result.points, warm.result.points):
        assert a.values == b.values
