"""Figure 4: varying the number of coflows.

The paper fixes the coflow width to 16 and sweeps the number of coflows over
{10, 15, 20, 25, 30}, again reporting per-scheme averages and ratios to
Baseline over 10 random tries; LP-Based improves on Baseline / Schedule-only /
Route-only by 110% / 72% / 26% on average.

The benchmark regenerates both panels on the experiment engine (scaled down
by default; set ``REPRO_PAPER_SCALE=1`` for the paper's parameters,
``REPRO_WORKERS=<n>`` for a parallel sweep) and times one full sweep.
Results persist in ``results/runstore/fig4.jsonl``; the warm-store replay at
the end asserts that a re-run skips all simulation work.
"""

import pytest

from repro.analysis import ExperimentEngine, improvement_summary, ratio_table, sweep_table
from repro.workloads import WorkloadConfig

from common import (
    engine_summary,
    evaluation_network,
    figure4_coflow_counts,
    figure4_width,
    make_engine,
    num_tries,
    paper_schemes,
    record,
)


def sweep_config():
    return WorkloadConfig(
        coflow_width=figure4_width(), mean_flow_size=8.0, release_rate=4.0, seed=4000
    )


def run_sweep(engine=None):
    engine = engine or make_engine(evaluation_network(), paper_schemes(), "fig4")
    result = engine.run(
        sweep_config(),
        "num_coflows",
        figure4_coflow_counts(),
        label_format="{value} coflows",
    )
    return engine, result


@pytest.mark.benchmark(group="fig4")
def test_fig4_num_coflows(benchmark):
    engine, result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    title = (
        f"Figure 4 — number-of-coflows sweep "
        f"(width {figure4_width()}, {num_tries()} tries per point)"
    )
    blocks = [
        sweep_table(result, title, value_label="avg weighted completion time"),
        ratio_table(result, "Baseline", title),
        improvement_summary(
            result, "LP-Based", ["Baseline", "Schedule-only", "Route-only"]
        ),
        engine_summary(engine),
    ]
    record("fig4_num_coflows", "\n\n".join(blocks))

    assert result.average_improvement("LP-Based", "Baseline") > 10.0
    assert result.average_improvement("LP-Based", "Schedule-only") > 5.0
    for point in result.points:
        assert point.mean("LP-Based") <= point.mean("Baseline") * 1.05

    # Resumability: the warm store must satisfy a full replay.
    warm = ExperimentEngine(
        engine.network, engine.schemes, tries=engine.tries, store=engine.store
    )
    _, warm_result = run_sweep(warm)
    assert warm.last_run_stats.all_cached, "warm run store re-simulated tasks"
    for a, b in zip(result.points, warm_result.points):
        assert a.values == b.values
