"""Figure 4: varying the number of coflows.

The paper fixes the coflow width to 16 and sweeps the number of coflows over
{10, 15, 20, 25, 30}, again reporting per-scheme averages and ratios to
Baseline over 10 random tries; LP-Based improves on Baseline / Schedule-only /
Route-only by 110% / 72% / 26% on average.

The benchmark regenerates both panels (scaled down by default; set
``REPRO_PAPER_SCALE=1`` for the paper's parameters) and times one full sweep.
"""

import pytest

from repro.analysis import ExperimentSweep, improvement_summary, ratio_table, sweep_table
from repro.baselines import (
    BaselineScheme,
    LPBasedScheme,
    RouteOnlyScheme,
    ScheduleOnlyScheme,
)
from repro.workloads import WorkloadConfig

from common import (
    evaluation_network,
    figure4_coflow_counts,
    figure4_width,
    num_tries,
    record,
)


def run_sweep():
    network = evaluation_network()
    schemes = [
        LPBasedScheme(seed=0),
        RouteOnlyScheme(),
        ScheduleOnlyScheme(seed=0),
        BaselineScheme(seed=0),
    ]
    sweep = ExperimentSweep(network, schemes, tries=num_tries())
    config = WorkloadConfig(
        coflow_width=figure4_width(), mean_flow_size=8.0, release_rate=4.0, seed=4000
    )
    return sweep.run(
        config, "num_coflows", figure4_coflow_counts(), label_format="{value} coflows"
    )


@pytest.mark.benchmark(group="fig4")
def test_fig4_num_coflows(benchmark):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    title = (
        f"Figure 4 — number-of-coflows sweep "
        f"(width {figure4_width()}, {num_tries()} tries per point)"
    )
    blocks = [
        sweep_table(result, title, value_label="avg weighted completion time"),
        ratio_table(result, "Baseline", title),
        improvement_summary(
            result, "LP-Based", ["Baseline", "Schedule-only", "Route-only"]
        ),
    ]
    record("fig4_num_coflows", "\n\n".join(blocks))

    assert result.average_improvement("LP-Based", "Baseline") > 10.0
    assert result.average_improvement("LP-Based", "Schedule-only") > 5.0
    for point in result.points:
        assert point.mean("LP-Based") <= point.mean("Baseline") * 1.05
