"""Simulator event-loop benchmark: kernel tiers vs the reference loop.

The flow-level simulator is the inner loop of every sweep, so its
throughput bounds how large a scenario matrix can get.  This benchmark is a
thin wrapper over the CLI suite (``repro bench simulator``): on a pinned
instance — 8 coflows x 48 flows each on a 32-host leaf-spine fabric — it
measures events/sec of

* the **reference** event loop (``FlowLevelSimulator.run_reference``, the
  original dict-based implementation, kept as the executable spec),
* the **array kernel** (``FlowLevelSimulator.run``),
* the **jit kernel** (the compiled tier, when a C toolchain is available),
  and
* the **online** re-planning engine (kernel epochs spliced at every coflow
  arrival),

in two regimes: every flow backlogged from time zero, and coflows arriving
over time (``coflow_arrival_rate``) — plus the **100k-flow gate instance**
(``specs/simulator-100k.yaml``), where the jit kernel must beat the array
kernel >= 3x and the calibrated reference >= 20x.  Every kernel must
produce *identical* completion times to the reference (asserted on every
run) and the array kernel must beat the reference by at least **5x** on
both classic regimes.  ``--smoke`` shrinks the instances for CI and only
requires the kernels to win (shared runners are too noisy for hard
wall-clock factors).

Artifacts land under ``benchmarks/results/simulator/`` (report.txt/md/csv
plus run.json with the measured speedups); every run also appends its
per-backend events/sec to ``BENCH_simulator.json`` at the repo root so the
perf trajectory accumulates across commits.
"""

import argparse
import sys

from repro.cli.bench import run_simulator

from common import RESULTS_DIR


def main(argv=None):
    """Run the benchmark; exits non-zero when the speedup gate fails."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized instance; only asserts the kernel beats the reference",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="override the required kernel speedup (default: 5.0, smoke: 1.0)",
    )
    args = parser.parse_args(argv)
    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = 1.0 if args.smoke else 5.0
    speedups = run_simulator(RESULTS_DIR, smoke=args.smoke, min_speedup=min_speedup)
    name = "simulator-smoke" if args.smoke else "simulator"
    print((RESULTS_DIR / name / "report.txt").read_text())
    print(
        f"array kernel speedup: {speedups['backlogged']:.2f}x backlogged, "
        f"{speedups['arrivals']:.2f}x with arrivals "
        f"(required: >= {min_speedup:.2f}x)"
    )
    if "100k_jit_vs_array" in speedups:
        print(
            f"jit kernel, 100k-flow gate: "
            f"{speedups['100k_jit_vs_array']:.2f}x over array, "
            f"{speedups['100k_jit_vs_reference']:.2f}x over the calibrated "
            "reference"
        )
    return 0


try:
    import pytest
except ImportError:  # pragma: no cover - standalone mode
    pytest = None


if pytest is not None:

    @pytest.mark.benchmark(group="simulator")
    def test_simulator_kernel_speedup(benchmark):
        """The kernel matches the reference exactly and beats it >= 5x."""
        speedups = benchmark.pedantic(
            lambda: run_simulator(RESULTS_DIR, smoke=False, min_speedup=5.0),
            rounds=1,
            iterations=1,
        )
        assert speedups["backlogged"] >= 5.0
        assert speedups["arrivals"] >= 5.0


if __name__ == "__main__":
    sys.exit(main())
