"""Scenario matrix: every scheme crossed with the new workload families.

The paper evaluates one scenario — Poisson flow sizes, uniform endpoints, a
full-bisection fat-tree.  The ROADMAP's north star ("as many scenarios as you
can imagine") asks for more; this benchmark crosses the schemes of Section
4.3 with four qualitatively different scenario families, each declared purely
through :class:`~repro.workloads.generator.WorkloadConfig` (topology spec
included):

* ``poisson/fat-tree`` — the paper's baseline regime;
* ``pareto/oversub-fat-tree`` — heavy-tailed elephants through a 4:1
  oversubscribed core, the classic "a few flows dominate" datacenter story;
* ``incast/leaf-spine`` — partition-aggregate fan-in on a leaf-spine fabric;
* ``facebook-skew/jellyfish`` — trace-style mice/elephants mixture with
  Zipf-popular hosts on a random regular (jellyfish) fabric.

One engine per scenario (the run stores are keyed by topology), so re-runs
are warm everywhere.  ``--smoke`` runs the tiny CI configuration end-to-end
— build (topology from spec) -> solve (LP-Based) -> simulate -> store ->
resume — with a 2-worker pool, asserting the resumed run re-simulates
nothing.  ``--compare-workers N`` additionally times the cold sweep serially
and with N workers (informational: on a single hardware core a process pool
cannot beat serial execution).
"""

import argparse
import sys
import time

import numpy as np

from repro.analysis import ExperimentEngine, RunStore, format_table
from repro.workloads import WorkloadConfig

from common import (
    engine_summary,
    make_engine,
    num_tries,
    num_workers,
    paper_schemes,
    record,
)

#: label -> workload config (topology spec included).  Seeds are disjoint so
#: scenarios never share instances.
def scenario_configs(num_coflows=4, coflow_width=4):
    shape = dict(num_coflows=num_coflows, coflow_width=coflow_width)
    return {
        "poisson/fat-tree": WorkloadConfig(
            mean_flow_size=6.0,
            release_rate=4.0,
            seed=7000,
            topology="fat_tree(k=4)",
            **shape,
        ),
        "pareto/oversub-fat-tree": WorkloadConfig(
            mean_flow_size=6.0,
            release_rate=4.0,
            seed=7100,
            flow_size_distribution="pareto",
            pareto_shape=1.3,
            topology="fat_tree(k=4, oversubscription=4.0)",
            **shape,
        ),
        "incast/leaf-spine": WorkloadConfig(
            mean_flow_size=6.0,
            release_rate=4.0,
            seed=7200,
            endpoint_distribution="incast",
            topology="leaf_spine(num_leaves=4, num_spines=2, hosts_per_leaf=4)",
            **shape,
        ),
        "facebook-skew/jellyfish": WorkloadConfig(
            mean_flow_size=6.0,
            release_rate=4.0,
            seed=7300,
            flow_size_distribution="facebook",
            endpoint_distribution="skewed",
            zipf_exponent=1.5,
            topology="random_regular(num_switches=8, degree=3, hosts_per_switch=2, seed=1)",
            **shape,
        ),
    }


def run_matrix(scenarios=None, tries=None, store_prefix="scenario", workers=None,
               persistent=True):
    """Run every scheme on every scenario; returns {label: (engine, point)}.

    ``persistent=False`` gives every engine a fresh in-memory store, forcing
    a genuinely cold run (used by the worker-count comparison).
    """
    scenarios = scenarios or scenario_configs()
    results = {}
    for label, config in scenarios.items():
        if persistent:
            slug = label.replace("/", "_").replace(" ", "_")
            engine = make_engine(
                config.build_network(),
                paper_schemes(),
                f"{store_prefix}_{slug}",
                tries=tries,
            )
        else:
            engine = ExperimentEngine(
                config.build_network(),
                paper_schemes(),
                tries=num_tries() if tries is None else tries,
            )
        if workers is not None:
            engine.workers = workers
        tries_n = engine.tries
        configs = [config.with_seed(config.seed + k) for k in range(tries_n)]
        sweep = engine.run_points([(label, configs)])
        results[label] = (engine, sweep.points[0])
    return results


def report(results, name="scenario_matrix"):
    schemes = ["LP-Based", "Route-only", "Schedule-only", "Baseline"]
    value_rows = []
    ratio_rows = []
    for label, (_, point) in results.items():
        value_rows.append([label] + [point.mean(s) for s in schemes])
        ratio_rows.append([label] + [point.ratio_to(s, "Baseline") for s in schemes])
    blocks = [
        format_table(
            ["scenario"] + schemes,
            value_rows,
            title="Scenario matrix — avg weighted completion time "
            f"({num_tries()} tries per scenario)",
        ),
        format_table(
            ["scenario"] + schemes,
            ratio_rows,
            title="Scenario matrix — ratio w.r.t. Baseline",
            float_format="{:.3f}",
        ),
        "\n".join(
            engine_summary(engine) + f"  [{label}]"
            for label, (engine, _) in results.items()
        ),
    ]
    record(name, "\n\n".join(blocks))
    return value_rows


try:
    import pytest
except ImportError:  # pragma: no cover - standalone mode
    pytest = None


if pytest is not None:

    @pytest.mark.benchmark(group="scenario-matrix")
    def test_scenario_matrix(benchmark):
        results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
        report(results)
        for label, (_, point) in results.items():
            # The LP-Based scheme should never badly lose to random
            # routing+ordering in any scenario family.
            assert point.mean("LP-Based") <= point.mean("Baseline") * 1.10, label


def run_smoke(workers=2):
    """Tiny end-to-end pass: build -> solve -> simulate -> store -> resume."""
    import tempfile
    from pathlib import Path

    scenarios = scenario_configs(num_coflows=2, coflow_width=2)
    with tempfile.TemporaryDirectory() as tmp:
        stores = {
            label: RunStore(Path(tmp) / f"{i}.jsonl")
            for i, label in enumerate(scenarios)
        }

        def pass_over(tag):
            results = {}
            for label, config in scenarios.items():
                engine = ExperimentEngine(
                    config.build_network(),
                    paper_schemes(),
                    tries=1,
                    workers=workers,
                    store=stores[label],
                )
                configs = [config.with_seed(config.seed)]
                sweep = engine.run_points([(label, configs)])
                results[label] = (engine, sweep.points[0])
                print(f"  [{tag}] {label}: {engine_summary(engine)}")
            return results

        print(f"scenario smoke: cold pass ({workers} workers)")
        cold = pass_over("cold")
        print("scenario smoke: warm pass (resume from store)")
        warm = pass_over("warm")

        for label in scenarios:
            cold_engine, cold_point = cold[label]
            warm_engine, warm_point = warm[label]
            assert cold_engine.last_run_stats.executed > 0, label
            assert warm_engine.last_run_stats.all_cached, (
                f"{label}: warm run re-simulated tasks"
            )
            assert cold_point.values == warm_point.values, label
    print("scenario smoke: OK (parallel sweep + resume verified)")


def run_worker_comparison(workers):
    """Time the cold matrix serially vs with a worker pool (informational).

    Both passes use fresh in-memory stores so neither can hit a warm cache.
    """
    start = time.perf_counter()
    run_matrix(workers=0, persistent=False)
    serial = time.perf_counter() - start
    start = time.perf_counter()
    run_matrix(workers=workers, persistent=False)
    parallel = time.perf_counter() - start
    print(
        f"cold matrix: serial {serial:.2f}s, {workers} workers {parallel:.2f}s "
        f"(speedup {serial / parallel:.2f}x; expect < 1x on a single core, "
        f">= 2x with 4 workers on >= 4 free cores)"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny 2-worker end-to-end pass incl. resume (CI)",
    )
    parser.add_argument(
        "--compare-workers",
        type=int,
        metavar="N",
        help="time the cold matrix serially and with N workers",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        run_smoke()
        return 0
    if args.compare_workers:
        run_worker_comparison(args.compare_workers)
        return 0
    report(run_matrix())
    return 0


if __name__ == "__main__":
    sys.exit(main())
