"""Scenario matrix: every scheme crossed with the new workload families.

The paper evaluates one scenario — Poisson flow sizes, uniform endpoints, a
full-bisection fat-tree.  The ROADMAP's north star ("as many scenarios as
you can imagine") asks for more; this benchmark is a thin wrapper over the
CLI suite (``repro bench scenario-matrix``): the matrix is declared by
:func:`repro.cli.bench.scenario_matrix_spec` (and, identically, by the
checked-in ``specs/scenario-matrix.yaml``) — four qualitatively different
scenario families, each a pure :class:`~repro.workloads.generator.
WorkloadConfig` with a declarative topology spec:

* ``poisson/fat-tree`` — the paper's baseline regime;
* ``pareto/oversub-fat-tree`` — heavy-tailed elephants through a 4:1
  oversubscribed core, the classic "a few flows dominate" datacenter story;
* ``incast/leaf-spine`` — partition-aggregate fan-in on a leaf-spine fabric;
* ``facebook-skew/jellyfish`` — trace-style mice/elephants mixture with
  Zipf-popular hosts on a random regular (jellyfish) fabric.

All scenarios share one run store (keys embed the topology fingerprint), so
re-runs are warm everywhere.  ``--smoke`` runs the tiny CI configuration
end-to-end — build (topology from spec) -> solve (LP-Based) -> simulate ->
store -> resume — with a 2-worker pool, asserting the resumed run
re-simulates nothing.  ``--compare-workers N`` additionally times the cold
matrix serially and with N workers (informational: on a single hardware
core a process pool cannot beat serial execution).
"""

import argparse
import sys
import time

from repro.analysis import RunStore, render_report, run_spec
from repro.cli.bench import scenario_matrix_spec, smoke_scenario_matrix

from common import engine_summary, num_tries, num_workers, record, run_store


def run_matrix(tries=None, store=None, workers=None):
    """Run the matrix; returns ``(spec, store, SpecRunResult)``."""
    spec = scenario_matrix_spec(tries=num_tries() if tries is None else tries)
    if store is None:
        store = run_store("scenario_matrix") or RunStore()
    workers = num_workers() if workers is None else workers
    return spec, store, run_spec(spec, store, workers=workers)


def report(spec, run, name="scenario_matrix"):
    """Record the two scenario panels plus the engine summary."""
    title = f"{spec.display_title()} ({spec.tries} tries per scenario)"
    blocks = [
        render_report(run.result, title, reference=spec.reference, fmt="text"),
        engine_summary(run.stats),
    ]
    record(name, "\n\n".join(blocks))


try:
    import pytest
except ImportError:  # pragma: no cover - standalone mode
    pytest = None


if pytest is not None:

    @pytest.mark.benchmark(group="scenario-matrix")
    def test_scenario_matrix(benchmark):
        spec, _, run = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
        report(spec, run)
        for point in run.result.points:
            # The LP-Based scheme should never badly lose to random
            # routing+ordering in any scenario family.
            assert point.mean("LP-Based") <= point.mean("Baseline") * 1.10, point.label


def run_worker_comparison(workers):
    """Time the cold matrix serially vs with a worker pool (informational).

    Both passes use fresh in-memory stores so neither can hit a warm cache.
    """
    start = time.perf_counter()
    run_matrix(store=RunStore(), workers=0)
    serial = time.perf_counter() - start
    start = time.perf_counter()
    run_matrix(store=RunStore(), workers=workers)
    parallel = time.perf_counter() - start
    print(
        f"cold matrix: serial {serial:.2f}s, {workers} workers {parallel:.2f}s "
        f"(speedup {serial / parallel:.2f}x; expect < 1x on a single core, "
        f">= 2x with 4 workers on >= 4 free cores)"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny 2-worker end-to-end pass incl. resume (CI)",
    )
    parser.add_argument(
        "--compare-workers",
        type=int,
        metavar="N",
        help="time the cold matrix serially and with N workers",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        smoke_scenario_matrix()
        return 0
    if args.compare_workers:
        run_worker_comparison(args.compare_workers)
        return 0
    spec, _, run = run_matrix()
    report(spec, run)
    return 0


if __name__ == "__main__":
    sys.exit(main())
