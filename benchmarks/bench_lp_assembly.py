"""LP assembly micro-benchmark: bulk pipeline vs legacy scalar emission.

Section 4.1 of the paper notes that simulating large instances was
"prohibitively slow even with CPLEX"; with the open-source HiGHS solver the
Python-side *model assembly* becomes a comparable cost to the solve itself.
This benchmark isolates the three phases for the Section-2.2 routing LP:

* **build (scalar)** — the legacy one-variable/one-constraint-at-a-time
  emission (``build_scalar()``), including ``matrices()`` assembly;
* **build (bulk)** — the vectorized block emission (``build()``), including
  the cached single-pass ``matrices()``;
* **solve** — the HiGHS call on the assembled model.

The headline number is the build speedup column; the equivalence test suite
(``tests/lp/test_equivalence.py``) proves both builds produce numerically
identical matrices, so the speedup is free.

Run standalone (``PYTHONPATH=src python benchmarks/bench_lp_assembly.py``,
optionally with ``--smoke`` for the tiny CI configuration) or through pytest.
"""

import argparse
import sys
import time

from repro.analysis import format_table
from repro.circuit import RoutingLP
from repro.core import topologies
from repro.lp import solve
from repro.workloads import CoflowGenerator, WorkloadConfig

from common import paper_scale, record

#: (num_coflows, coflow_width) — mirrors bench_lp_scaling so the assembly
#: speedup is visible on the same workloads as the build+solve trajectory.
SIZES = [(2, 4), (4, 4), (4, 8), (6, 8)] + ([(10, 16)] if paper_scale() else [])
SMOKE_SIZES = [(2, 4)]

#: The acceptance workload: the largest default bench_lp_scaling point.
HEADLINE_SIZE = (6, 8)


def measure(num_coflows, width, formulation="path", repeats=3):
    """Best-of-``repeats`` timings for one workload size."""
    network = topologies.fat_tree(4)
    instance = CoflowGenerator(
        network,
        WorkloadConfig(num_coflows=num_coflows, coflow_width=width, seed=99),
    ).instance()
    builder = RoutingLP(instance, network, formulation=formulation)
    builder.candidate_paths()  # warm the path cache outside the timings

    scalar_time = bulk_time = float("inf")
    lp = None
    for _ in range(repeats):
        start = time.perf_counter()
        lp_scalar = builder.build_scalar()
        lp_scalar.matrices()
        scalar_time = min(scalar_time, time.perf_counter() - start)

        start = time.perf_counter()
        lp = builder.build()
        lp.matrices()
        bulk_time = min(bulk_time, time.perf_counter() - start)

    start = time.perf_counter()
    solve(lp)
    solve_time = time.perf_counter() - start
    return {
        "workload": f"{num_coflows} coflows x {width} flows",
        "variables": lp.num_variables,
        "constraints": lp.num_constraints,
        "scalar": scalar_time,
        "bulk": bulk_time,
        "speedup": scalar_time / bulk_time,
        "solve": solve_time,
    }


def run_assembly(sizes=None):
    rows = []
    for num_coflows, width in sizes or SIZES:
        m = measure(num_coflows, width)
        rows.append(
            [
                m["workload"],
                m["variables"],
                m["constraints"],
                m["scalar"],
                m["bulk"],
                m["speedup"],
                m["solve"],
            ]
        )
    return rows


def report(rows, name="lp_assembly"):
    table = format_table(
        [
            "workload",
            "LP variables",
            "LP constraints",
            "build scalar (s)",
            "build bulk (s)",
            "speedup",
            "solve (s)",
        ],
        rows,
        title=(
            "LP assembly — Section 2.2 routing LP (path formulation, k=4 "
            "fat-tree): bulk COO pipeline vs legacy scalar API"
        ),
        float_format="{:.4f}",
    )
    record(name, table)


try:
    import pytest
except ImportError:  # pragma: no cover - standalone mode
    pytest = None


if pytest is not None:

    @pytest.mark.benchmark(group="assembly")
    def test_lp_assembly(benchmark):
        rows = benchmark.pedantic(run_assembly, rounds=1, iterations=1)
        report(rows)
        # Acceptance: >= 3x faster assembly on the (6, 8) scaling workload.
        headline = next(r for r in rows if r[0].startswith(str(HEADLINE_SIZE[0])))
        assert headline[5] >= 3.0, (
            f"bulk assembly speedup regressed to {headline[5]:.2f}x on "
            f"{headline[0]} (expected >= 3x)"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny single-size run for CI (checks the pipeline, not the 3x)",
    )
    args = parser.parse_args(argv)
    rows = run_assembly(SMOKE_SIZES if args.smoke else None)
    report(rows, name="lp_assembly_smoke" if args.smoke else "lp_assembly")
    if not args.smoke:
        headline = next(r for r in rows if r[0].startswith(str(HEADLINE_SIZE[0])))
        if headline[5] < 3.0:
            print(f"WARNING: headline speedup {headline[5]:.2f}x < 3x", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
