"""LP scaling: why the paper notes large instances were "prohibitively slow".

Section 4.1 remarks that, due to the complexity of the linear program,
simulating large instances was prohibitively slow even with CPLEX.  This
benchmark quantifies the effect for the open-source solver used here: it
builds and solves the Section-2.2 routing LP (path formulation) for growing
workload sizes and reports variable counts and timings, which is the data
one needs to pick a scale for the Figure-3/4 sweeps.

Build (model assembly + matrix export through the bulk COO pipeline) and
solve (the HiGHS call, plus solution extraction) are reported as separate
columns so assembly-side regressions are visible independently of solver
behaviour; ``bench_lp_assembly.py`` drills further into the assembly side.
"""

import time

import pytest

from repro.analysis import format_table
from repro.circuit import RoutingLP
from repro.core import topologies
from repro.lp import solve
from repro.workloads import CoflowGenerator, WorkloadConfig

from common import paper_scale, record

SIZES = [(2, 4), (4, 4), (4, 8), (6, 8)] + ([(10, 16)] if paper_scale() else [])


def run_scaling():
    network = topologies.fat_tree(4)
    rows = []
    for num_coflows, width in SIZES:
        instance = CoflowGenerator(
            network,
            WorkloadConfig(num_coflows=num_coflows, coflow_width=width, seed=99),
        ).instance()
        lp = RoutingLP(instance, network, formulation="path")
        start = time.perf_counter()
        built = lp.build()
        built.matrices()
        build_time = time.perf_counter() - start
        start = time.perf_counter()
        solve(built)
        solve_time = time.perf_counter() - start
        rows.append(
            [
                f"{num_coflows} coflows x {width} flows",
                instance.num_flows,
                built.num_variables,
                built.num_constraints,
                build_time,
                solve_time,
            ]
        )
    return rows


@pytest.mark.benchmark(group="scaling")
def test_lp_scaling(benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    table = format_table(
        [
            "workload",
            "flows",
            "LP variables",
            "LP constraints",
            "build (s)",
            "solve (s)",
        ],
        rows,
        title="LP scaling — Section 2.2 routing LP (path formulation, k=4 fat-tree)",
        float_format="{:.3f}",
    )
    record("lp_scaling", table)

    # Build + solve time grows with instance size but stays tractable at
    # bench scale.
    assert rows[-1][4] + rows[-1][5] < 300.0
