"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Because the
paper's full scale (128-server fat-tree, widths up to 32, 10 random tries per
point) takes hours with an open-source LP solver, the benchmarks default to a
scaled-down configuration that preserves the comparison's shape and can be
re-run quickly.  Two environment variables control the scale:

* ``REPRO_PAPER_SCALE=1`` — use the paper's parameters (k=8 fat-tree,
  widths {4, 8, 16, 32}, coflow counts {10, ..., 30}, width 16 for Figure 4);
* ``REPRO_TRIES=<n>`` — number of random instances averaged per sweep point
  (the paper uses 10; the default here is 2).

Each benchmark prints the paper-style tables (the two panels of the figure it
reproduces) and also appends them to ``benchmarks/results/*.txt`` so the
output survives pytest's capture.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List

from repro.core import topologies
from repro.core.network import Network

RESULTS_DIR = Path(__file__).parent / "results"


def paper_scale() -> bool:
    """Whether to run at the paper's full scale (slow)."""
    return os.environ.get("REPRO_PAPER_SCALE", "0") not in ("", "0", "false", "False")


def num_tries(default: int = 2) -> int:
    """Random tries per sweep point (the paper averages 10)."""
    return int(os.environ.get("REPRO_TRIES", default))


def evaluation_network() -> Network:
    """The evaluation topology: k=8 (128 servers) at paper scale, k=4 otherwise."""
    return topologies.fat_tree(8 if paper_scale() else 4)


def figure3_widths() -> List[int]:
    """Coflow widths swept by Figure 3."""
    return [4, 8, 16, 32] if paper_scale() else [4, 8, 16]


def figure4_coflow_counts() -> List[int]:
    """Coflow counts swept by Figure 4."""
    return [10, 15, 20, 25, 30] if paper_scale() else [4, 6, 8, 10]


def figure4_width() -> int:
    """Coflow width used by Figure 4 (16 in the paper)."""
    return 16 if paper_scale() else 6


def figure3_num_coflows() -> int:
    """Number of coflows used by Figure 3 (10 in the paper)."""
    return 10 if paper_scale() else 6


def record(name: str, text: str) -> None:
    """Print a report block and persist it under ``benchmarks/results/``."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
