"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Because the
paper's full scale (128-server fat-tree, widths up to 32, 10 random tries per
point) takes hours with an open-source LP solver, the benchmarks default to a
scaled-down configuration that preserves the comparison's shape and can be
re-run quickly.  Two environment variables control the scale:

* ``REPRO_PAPER_SCALE=1`` — use the paper's parameters (k=8 fat-tree,
  widths {4, 8, 16, 32}, coflow counts {10, ..., 30}, width 16 for Figure 4);
* ``REPRO_TRIES=<n>`` — number of random instances averaged per sweep point
  (the paper uses 10; the default here is 2).

Each benchmark prints the paper-style tables (the two panels of the figure it
reproduces) and also appends them to ``benchmarks/results/*.txt`` so the
output survives pytest's capture.

The figure benchmarks run on the parallel, resumable experiment engine.  Two
more environment variables control it:

* ``REPRO_WORKERS=<n>`` — worker processes for the engine (default 0 =
  serial in-process; ``>= 2`` fans (point x try x scheme) tasks out over a
  process pool);
* ``REPRO_RUNSTORE=0`` — disable the on-disk run store (default: each
  figure benchmark persists to ``benchmarks/results/runstore/<name>.jsonl``,
  so a re-run skips all LP solves and simulations and only re-aggregates —
  delete the file to force a cold run).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional

from repro.analysis import ExperimentEngine, RunStore
from repro.baselines import (
    BaselineScheme,
    LPBasedScheme,
    RouteOnlyScheme,
    ScheduleOnlyScheme,
)
from repro.core import topologies
from repro.core.network import Network

RESULTS_DIR = Path(__file__).parent / "results"
RUNSTORE_DIR = RESULTS_DIR / "runstore"


def paper_scale() -> bool:
    """Whether to run at the paper's full scale (slow)."""
    return os.environ.get("REPRO_PAPER_SCALE", "0") not in ("", "0", "false", "False")


def num_tries(default: int = 2) -> int:
    """Random tries per sweep point (the paper averages 10)."""
    return int(os.environ.get("REPRO_TRIES", default))


def num_workers(default: int = 0) -> int:
    """Engine worker processes (0 = serial)."""
    return int(os.environ.get("REPRO_WORKERS", default))


def paper_schemes() -> List:
    """The four schemes of Section 4.3, as evaluated by every figure."""
    return [
        LPBasedScheme(seed=0),
        RouteOnlyScheme(),
        ScheduleOnlyScheme(seed=0),
        BaselineScheme(seed=0),
    ]


def run_store(name: str) -> Optional[RunStore]:
    """The persistent run store for one benchmark (or ``None`` if disabled)."""
    if os.environ.get("REPRO_RUNSTORE", "1") in ("", "0", "false", "False"):
        return None
    RUNSTORE_DIR.mkdir(parents=True, exist_ok=True)
    return RunStore(RUNSTORE_DIR / f"{name}.jsonl")


def make_engine(network: Network, schemes, name: str, tries: Optional[int] = None) -> ExperimentEngine:
    """An experiment engine wired to the benchmark environment knobs."""
    return ExperimentEngine(
        network,
        schemes,
        tries=num_tries() if tries is None else tries,
        workers=num_workers(),
        store=run_store(name),
    )


def engine_summary(engine: ExperimentEngine) -> str:
    """One-line cache/parallelism report for a finished engine run."""
    stats = engine.last_run_stats
    return (
        f"engine: {stats.total_tasks} tasks, {stats.cached} cached, "
        f"{stats.executed} executed, {stats.workers} worker(s), "
        f"{stats.seconds:.2f}s"
    )


def evaluation_network() -> Network:
    """The evaluation topology: k=8 (128 servers) at paper scale, k=4 otherwise."""
    return topologies.fat_tree(8 if paper_scale() else 4)


def figure3_widths() -> List[int]:
    """Coflow widths swept by Figure 3."""
    return [4, 8, 16, 32] if paper_scale() else [4, 8, 16]


def figure4_coflow_counts() -> List[int]:
    """Coflow counts swept by Figure 4."""
    return [10, 15, 20, 25, 30] if paper_scale() else [4, 6, 8, 10]


def figure4_width() -> int:
    """Coflow width used by Figure 4 (16 in the paper)."""
    return 16 if paper_scale() else 6


def figure3_num_coflows() -> int:
    """Number of coflows used by Figure 3 (10 in the paper)."""
    return 10 if paper_scale() else 6


def record(name: str, text: str) -> None:
    """Print a report block and persist it under ``benchmarks/results/``."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
