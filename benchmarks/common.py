"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The heavy
lifting — sweep specs, scheme registry, engine runs, artifact export —
lives in :mod:`repro.analysis.artifacts` and :mod:`repro.cli.bench`; this
module only maps the benchmark environment knobs onto that layer and pins
the on-disk locations under ``benchmarks/results/``.

Because the paper's full scale (128-server fat-tree, widths up to 32, 10
random tries per point) takes hours with an open-source LP solver, the
benchmarks default to a scaled-down configuration that preserves the
comparison's shape and can be re-run quickly.  Environment variables:

* ``REPRO_PAPER_SCALE=1`` — use the paper's parameters (k=8 fat-tree,
  widths {4, 8, 16, 32}, coflow counts {10, ..., 30}, width 16 for Fig. 4);
* ``REPRO_TRIES=<n>`` — random instances averaged per sweep point
  (the paper uses 10; the default here is 2);
* ``REPRO_WORKERS=<n>`` — worker processes for the experiment engine
  (default 0 = serial; ``>= 2`` fans (point x try x scheme) tasks out over
  a process pool);
* ``REPRO_RUNSTORE=0`` — disable the on-disk run store (default: each
  figure benchmark persists to ``benchmarks/results/runstore/<name>.jsonl``,
  so a re-run skips all LP solves and simulations and only re-aggregates —
  delete the file to force a cold run).

Everything here is equally reachable through the ``repro`` CLI
(``repro bench fig3 --paper-scale --tries 10 --workers 4``), which writes
its artifacts under ``--out`` instead of ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from repro.analysis import RunStore, stats_summary
from repro.analysis.engine import EngineRunStats

RESULTS_DIR = Path(__file__).parent / "results"
RUNSTORE_DIR = RESULTS_DIR / "runstore"


def _env_int(name: str, default: int) -> int:
    """Integer environment knob; unset *and* empty both mean ``default``.

    ``REPRO_TRIES=""`` (a cleared-but-exported variable, e.g. from a CI
    matrix) used to raise ``ValueError: invalid literal for int()`` while
    the boolean knobs tolerated it; every knob now treats empty/unset
    uniformly.  A non-empty, non-integer value still raises — but naming
    the variable instead of just the bad literal.
    """
    raw = os.environ.get(name, "")
    if not raw.strip():
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"environment variable {name}={raw!r} is not an integer"
        ) from None


def paper_scale() -> bool:
    """Whether to run at the paper's full scale (slow)."""
    return os.environ.get("REPRO_PAPER_SCALE", "0") not in ("", "0", "false", "False")


def num_tries(default: int = 2) -> int:
    """Random tries per sweep point (the paper averages 10)."""
    return _env_int("REPRO_TRIES", default)


def num_workers(default: int = 0) -> int:
    """Engine worker processes (0 = serial)."""
    return _env_int("REPRO_WORKERS", default)


def run_store(name: str) -> Optional[RunStore]:
    """The persistent run store for one benchmark (or ``None`` if disabled)."""
    if os.environ.get("REPRO_RUNSTORE", "1") in ("", "0", "false", "False"):
        return None
    RUNSTORE_DIR.mkdir(parents=True, exist_ok=True)
    return RunStore(RUNSTORE_DIR / f"{name}.jsonl")


def engine_summary(stats: EngineRunStats) -> str:
    """One-line cache/parallelism report for a finished engine run."""
    return stats_summary(stats)


def record(name: str, text: str) -> None:
    """Print a report block and persist it under ``benchmarks/results/``."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
