"""The benchmark harness's environment knobs parse defensively.

``benchmarks/common.py`` maps ``REPRO_*`` environment variables onto the
analysis layer.  A cleared-but-exported integer knob (``REPRO_TRIES=""`` —
a common CI-matrix artefact) used to crash with ``ValueError: invalid
literal for int()`` while the boolean knobs tolerated it; ``_env_int``
treats empty and unset uniformly, and names the variable when a value is
genuinely malformed.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_COMMON = Path(__file__).resolve().parents[2] / "benchmarks" / "common.py"


@pytest.fixture(scope="module")
def common():
    """The benchmarks/common.py module (not a package; loaded by path)."""
    spec = importlib.util.spec_from_file_location("bench_common", _COMMON)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_common", module)
    spec.loader.exec_module(module)
    return module


class TestEnvInt:
    def test_unset_returns_the_default(self, common, monkeypatch):
        monkeypatch.delenv("REPRO_TRIES", raising=False)
        assert common._env_int("REPRO_TRIES", 2) == 2

    @pytest.mark.parametrize("raw", ["", "  ", "\t"])
    def test_empty_and_whitespace_mean_unset(self, common, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TRIES", raw)
        assert common._env_int("REPRO_TRIES", 2) == 2

    def test_integer_values_parse(self, common, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert common._env_int("REPRO_WORKERS", 0) == 8

    def test_malformed_values_name_the_variable(self, common, monkeypatch):
        monkeypatch.setenv("REPRO_TRIES", "many")
        with pytest.raises(ValueError, match="REPRO_TRIES='many' is not an integer"):
            common._env_int("REPRO_TRIES", 2)


class TestKnobs:
    def test_num_tries_and_workers_tolerate_cleared_variables(self, common, monkeypatch):
        """The original failure mode: an exported-but-empty CI variable."""
        monkeypatch.setenv("REPRO_TRIES", "")
        monkeypatch.setenv("REPRO_WORKERS", "")
        assert common.num_tries() == 2
        assert common.num_workers() == 0

    def test_num_tries_and_workers_read_their_variables(self, common, monkeypatch):
        monkeypatch.setenv("REPRO_TRIES", "7")
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert common.num_tries() == 7
        assert common.num_workers() == 3
