"""Unit tests for the LP solve driver (HiGHS via scipy)."""

import numpy as np
import pytest

from repro.lp import LinearProgram, LPInfeasibleError, solve


def test_simple_minimization():
    # min x + 2y  s.t.  x + y >= 4, x <= 3, y <= 5, x,y >= 0  ->  x=3, y=1.
    lp = LinearProgram("simple")
    lp.add_variable("x", upper=3.0, objective=1.0)
    lp.add_variable("y", upper=5.0, objective=2.0)
    lp.add_constraint({"x": 1.0, "y": 1.0}, ">=", 4.0)
    sol = solve(lp)
    assert sol.objective == pytest.approx(5.0)
    assert sol.value("x") == pytest.approx(3.0)
    assert sol.value("y") == pytest.approx(1.0)


def test_equality_constraints():
    # min x + y  s.t.  x + y == 2, x - y == 0  ->  x = y = 1.
    lp = LinearProgram()
    lp.add_variable("x", objective=1.0)
    lp.add_variable("y", objective=1.0)
    lp.add_constraint({"x": 1.0, "y": 1.0}, "==", 2.0)
    lp.add_constraint({"x": 1.0, "y": -1.0}, "==", 0.0)
    sol = solve(lp)
    assert sol.value("x") == pytest.approx(1.0)
    assert sol.value("y") == pytest.approx(1.0)


def test_transportation_lp():
    """Min-cost flow stated as an LP: classic 2x2 transportation problem."""
    supply = {"s1": 3.0, "s2": 2.0}
    demand = {"d1": 4.0, "d2": 1.0}
    cost = {("s1", "d1"): 1.0, ("s1", "d2"): 3.0, ("s2", "d1"): 2.0, ("s2", "d2"): 1.0}
    lp = LinearProgram("transport")
    for key, c in cost.items():
        lp.add_variable(key, objective=c)
    for s, cap in supply.items():
        lp.add_constraint({(s, d): 1.0 for d in demand}, "<=", cap)
    for d, need in demand.items():
        lp.add_constraint({(s, d): 1.0 for s in supply}, ">=", need)
    sol = solve(lp)
    # Optimal: s1->d1: 3, s2->d1: 1, s2->d2: 1, cost 3 + 2 + 1 = 6.
    assert sol.objective == pytest.approx(6.0)


def test_infeasible_raises():
    lp = LinearProgram("infeasible")
    lp.add_variable("x", upper=1.0, objective=1.0)
    lp.add_constraint({"x": 1.0}, ">=", 2.0)
    with pytest.raises(LPInfeasibleError):
        solve(lp)


def test_unbounded_raises():
    lp = LinearProgram("unbounded")
    lp.add_variable("x", objective=-1.0)  # minimize -x with x unbounded above
    with pytest.raises(LPInfeasibleError):
        solve(lp)


def test_empty_lp():
    sol = solve(LinearProgram("empty"))
    assert sol.objective == 0.0
    assert sol.values == {}


def test_negative_clipping():
    lp = LinearProgram()
    lp.add_variable("x", objective=1.0)
    lp.add_constraint({"x": 1.0}, ">=", 0.0)
    sol = solve(lp)
    assert sol.value("x") >= 0.0


def test_solution_helpers():
    lp = LinearProgram()
    lp.add_variable(("x", 0), objective=1.0)
    lp.add_variable(("x", 1), objective=1.0)
    lp.add_variable(("y", 0), objective=1.0)
    lp.add_constraint({("x", 0): 1.0}, ">=", 1.0)
    lp.add_constraint({("x", 1): 1.0}, ">=", 0.0)
    lp.add_constraint({("y", 0): 1.0}, ">=", 2.0)
    sol = solve(lp)
    assert sol.value(("x", 0)) == pytest.approx(1.0)
    assert sol.value("ghost", default=7.0) == 7.0
    with pytest.raises(KeyError):
        sol.value("ghost")
    nonzero = sol.nonzero()
    assert ("y", 0) in nonzero and ("x", 1) not in nonzero
    group = sol.group("x")
    assert set(group) == {("x", 0), ("x", 1)}


def test_bulk_getters_take_and_as_array():
    lp = LinearProgram()
    rng = lp.add_variables([("x", k) for k in range(4)], objective=1.0)
    lp.add_constraint({("x", 0): 1.0}, ">=", 1.0)
    lp.add_constraint({("x", 3): 1.0}, ">=", 2.0)
    sol = solve(lp)
    assert np.allclose(sol.take(rng), [1.0, 0.0, 0.0, 2.0])
    assert np.allclose(sol.take([3, 0]), [2.0, 1.0])
    assert np.allclose(sol.as_array([("x", 3), ("x", 0)]), [2.0, 1.0])
    with pytest.raises(KeyError):
        sol.as_array([("x", 0), "ghost"])
    assert np.allclose(sol.as_array([("x", 0), "ghost"], default=7.0), [1.0, 7.0])


def test_nonzero_reports_negative_values():
    # min x subject to x >= -5 with x in [-10, 10]: optimum x = -5.
    lp = LinearProgram()
    lp.add_variable("x", lower=-10.0, upper=10.0, objective=1.0)
    lp.add_variable("y", lower=0.0, objective=1.0)
    lp.add_constraint({"x": 1.0}, ">=", -5.0)
    sol = solve(lp, clip_negative=False)
    assert sol.value("x") == pytest.approx(-5.0)
    # abs() semantics: the negative optimum must not be silently dropped.
    assert "x" in sol.nonzero()
    assert "y" not in sol.nonzero()


def test_group_prefix_index():
    lp = LinearProgram()
    lp.add_variables([("x", 0), ("x", 1), ("y", 0), "scalar-key"], objective=1.0)
    lp.add_constraint({("x", 0): 1.0}, ">=", 1.0)
    sol = solve(lp)
    assert set(sol.group("x")) == {("x", 0), ("x", 1)}
    assert set(sol.group("y")) == {("y", 0)}
    assert sol.group("ghost") == {}
    # position > 0 groups by the second tuple component
    assert set(sol.group(0, position=1)) == {("x", 0), ("y", 0)}


def test_values_dict_matches_raw_vector():
    lp = LinearProgram()
    lp.add_variables(["a", "b"], objective=1.0)
    lp.add_constraint({"a": 1.0, "b": 1.0}, ">=", 3.0)
    sol = solve(lp)
    assert sol.values == {k: sol.value(k) for k in ("a", "b")}
    assert np.allclose(sol.x, [sol.values["a"], sol.values["b"]])


def test_solution_snapshots_variable_set():
    """Variables added to the model after solve() are unknown to the
    solution (the old snapshot-dict semantics), not index errors."""
    lp = LinearProgram()
    lp.add_variable("a", objective=1.0)
    lp.add_constraint({"a": 1.0}, ">=", 1.0)
    sol = solve(lp)
    lp.add_variable("late")
    assert sol.value("late", default=0.5) == 0.5
    with pytest.raises(KeyError):
        sol.value("late")
    with pytest.raises(KeyError):
        sol.as_array(["a", "late"])
    assert np.allclose(sol.as_array(["a", "late"], default=9.0), [1.0, 9.0])
    assert "late" not in sol.values
    assert set(sol.group("a", position=0)) == set()  # scalar key, no tuples


def test_take_descending_range():
    lp = LinearProgram()
    lp.add_variables(["a", "b", "c"], objective=1.0)
    lp.add_constraint({"a": 1.0}, ">=", 1.0)
    lp.add_constraint({"b": 1.0}, ">=", 2.0)
    lp.add_constraint({"c": 1.0}, ">=", 3.0)
    sol = solve(lp)
    assert np.allclose(sol.take(range(2, -1, -1)), [3.0, 2.0, 1.0])
    assert np.allclose(sol.take(range(0, 3)), [1.0, 2.0, 3.0])


def test_infeasible_error_carries_solver_diagnosis():
    lp = LinearProgram("diagnosable")
    lp.add_variable("x", upper=1.0, objective=1.0)
    lp.add_variable("y", upper=1.0, objective=1.0)
    lp.add_constraint({"x": 1.0, "y": 1.0}, ">=", 5.0)
    with pytest.raises(LPInfeasibleError) as excinfo:
        solve(lp)
    error = excinfo.value
    # The message alone is diagnosable: status, solver words, LP shape.
    assert "status=" in str(error)
    assert "shape=1x2" in str(error)
    assert "nnz=2" in str(error)
    # And the fields are structured for failure records.
    assert error.status is not None
    assert error.solver_message
    assert (error.rows, error.cols, error.nnz) == (1, 2, 2)
    assert error.detail() == {
        "status": error.status,
        "solver_message": error.solver_message,
        "rows": 1,
        "cols": 2,
        "nnz": 2,
    }


def test_infeasible_error_fields_default_to_none():
    error = LPInfeasibleError("plain")
    assert error.status is None
    assert error.detail() == {}


def test_time_limit_accepted_and_solves():
    lp = LinearProgram("timed")
    lp.add_variable("x", upper=3.0, objective=1.0)
    lp.add_constraint({"x": 1.0}, ">=", 1.0)
    sol = solve(lp, time_limit=30.0)
    assert sol.objective == pytest.approx(1.0)


def test_default_time_limit_is_used(monkeypatch):
    from repro.lp import solver as solver_module

    seen = {}
    real_linprog = solver_module.linprog

    def spy(*args, **kwargs):
        seen.update(kwargs.get("options", {}))
        return real_linprog(*args, **kwargs)

    monkeypatch.setattr(solver_module, "linprog", spy)
    monkeypatch.setattr(solver_module, "DEFAULT_TIME_LIMIT", 12.5)
    lp = LinearProgram("defaulted")
    lp.add_variable("x", upper=1.0, objective=1.0)
    lp.add_constraint({"x": 1.0}, ">=", 0.5)
    solve(lp)
    assert seen["time_limit"] == 12.5
    # An explicit limit wins over the process default.
    seen.clear()
    solve(lp, time_limit=3.0)
    assert seen["time_limit"] == 3.0
