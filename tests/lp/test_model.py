"""Unit tests for the sparse LP modelling layer."""

import numpy as np
import pytest

from repro.lp import LinearProgram, LPError


class TestVariables:
    def test_add_and_index(self):
        lp = LinearProgram()
        idx = lp.add_variable("x")
        assert idx == 0
        assert lp.variable_index("x") == 0
        assert lp.has_variable("x")
        assert not lp.has_variable("y")
        assert lp.num_variables == 1

    def test_duplicate_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError, match="already"):
            lp.add_variable("x")

    def test_unknown_variable(self):
        with pytest.raises(LPError, match="unknown"):
            LinearProgram().variable_index("ghost")

    def test_bad_bounds(self):
        lp = LinearProgram()
        with pytest.raises(LPError):
            lp.add_variable("x", lower=2.0, upper=1.0)

    def test_tuple_keys(self):
        lp = LinearProgram()
        lp.add_variable(("x", 1, 2, 3))
        assert lp.has_variable(("x", 1, 2, 3))

    def test_objective_vector_and_override(self):
        lp = LinearProgram()
        lp.add_variable("x", objective=2.0)
        lp.add_variable("y")
        assert list(lp.objective_vector()) == [2.0, 0.0]
        lp.set_objective_coefficient("y", 5.0)
        assert list(lp.objective_vector()) == [2.0, 5.0]

    def test_bounds_export(self):
        lp = LinearProgram()
        lp.add_variable("x", lower=1.0, upper=2.0)
        assert lp.bounds() == [(1.0, 2.0)]


class TestConstraints:
    def test_senses_and_matrix_shapes(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_variable("y")
        lp.add_constraint({"x": 1.0, "y": 1.0}, "<=", 5.0)
        lp.add_constraint({"x": 1.0}, ">=", 1.0)
        lp.add_constraint({"y": 2.0}, "==", 4.0)
        a_ub, b_ub, a_eq, b_eq = lp.matrices()
        assert a_ub.shape == (2, 2)
        assert a_eq.shape == (1, 2)
        assert list(b_eq) == [4.0]
        # >= is negated into <=
        assert b_ub[1] == -1.0
        assert a_ub.toarray()[1, 0] == -1.0

    def test_zero_coefficients_dropped_and_duplicates_summed(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_constraint([("x", 1.0), ("x", 2.0), ("x", 0.0)], "<=", 3.0)
        a_ub, b_ub, _, _ = lp.matrices()
        assert a_ub.toarray()[0, 0] == 3.0

    def test_unknown_sense(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError):
            lp.add_constraint({"x": 1.0}, "<", 1.0)

    def test_unknown_variable_in_constraint(self):
        lp = LinearProgram()
        with pytest.raises(LPError):
            lp.add_constraint({"ghost": 1.0}, "<=", 1.0)

    def test_empty_constraint_groups_are_none(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_constraint({"x": 1.0}, "<=", 1.0)
        a_ub, b_ub, a_eq, b_eq = lp.matrices()
        assert a_eq is None and b_eq is None
        assert a_ub is not None

    def test_num_constraints(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_constraint({"x": 1.0}, "<=", 1.0)
        lp.add_constraint({"x": 1.0}, ">=", 0.0)
        assert lp.num_constraints == 2

    def test_mapping_and_iterable_terms_equivalent(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_variable("y")
        lp.add_constraint({"x": 1.0, "y": 2.0}, "<=", 3.0)
        lp.add_constraint([("x", 1.0), ("y", 2.0)], "<=", 3.0)
        a_ub, _, _, _ = lp.matrices()
        assert np.allclose(a_ub.toarray()[0], a_ub.toarray()[1])


class TestBulkAPI:
    def test_add_variables_returns_contiguous_range(self):
        lp = LinearProgram()
        lp.add_variable("first")
        rng = lp.add_variables(["a", "b", "c"], lower=1.0, upper=5.0, objective=2.0)
        assert rng == range(1, 4)
        assert lp.variable_index("b") == 2
        assert lp.bounds()[1:] == [(1.0, 5.0)] * 3
        assert list(lp.objective_vector()) == [0.0, 2.0, 2.0, 2.0]

    def test_add_variables_array_bounds(self):
        lp = LinearProgram()
        lp.add_variables(
            ["x", "y"],
            lower=np.array([0.0, 1.0]),
            upper=np.array([2.0, 3.0]),
            objective=np.array([5.0, 6.0]),
        )
        assert lp.bounds() == [(0.0, 2.0), (1.0, 3.0)]
        assert list(lp.objective_vector()) == [5.0, 6.0]

    def test_add_variables_duplicate_rolls_back(self):
        lp = LinearProgram()
        lp.add_variable("dup")
        with pytest.raises(LPError, match="already"):
            lp.add_variables(["fresh", "dup"])
        # The partial block must not leak into the index.
        assert not lp.has_variable("fresh")
        assert lp.num_variables == 1

    def test_add_variables_bad_bounds(self):
        lp = LinearProgram()
        with pytest.raises(LPError, match="upper bound"):
            lp.add_variables(["x", "y"], lower=[0.0, 2.0], upper=[1.0, 1.0])

    def test_add_constraints_coo_matches_scalar(self):
        bulk, scalar = LinearProgram(), LinearProgram()
        for lp in (bulk, scalar):
            lp.add_variables(["x", "y", "z"])
        bulk.add_constraints_coo(
            rows=[0, 0, 1, 2],
            cols=[0, 1, 1, 2],
            vals=[1.0, 2.0, 3.0, -1.0],
            senses=["<=", ">=", "=="],
            rhs=[5.0, 1.0, -2.0],
        )
        scalar.add_constraint({"x": 1.0, "y": 2.0}, "<=", 5.0)
        scalar.add_constraint({"y": 3.0}, ">=", 1.0)
        scalar.add_constraint({"z": -1.0}, "==", -2.0)
        for m_bulk, m_scalar in zip(bulk.matrices(), scalar.matrices()):
            if m_bulk is None:
                assert m_scalar is None
                continue
            if hasattr(m_bulk, "toarray"):
                m_bulk, m_scalar = m_bulk.toarray(), m_scalar.toarray()
            assert np.array_equal(m_bulk, m_scalar)

    def test_add_constraints_coo_single_sense_broadcast(self):
        lp = LinearProgram()
        lp.add_variables(["x", "y"])
        rng = lp.add_constraints_coo(
            rows=[0, 1], cols=[0, 1], vals=[1.0, 1.0], senses="<=", rhs=[1.0, 2.0]
        )
        assert rng == range(0, 2)
        a_ub, b_ub, _, _ = lp.matrices()
        assert a_ub.shape == (2, 2)
        assert list(b_ub) == [1.0, 2.0]

    def test_add_constraints_coo_validates(self):
        lp = LinearProgram()
        lp.add_variables(["x"])
        with pytest.raises(LPError, match="sense"):
            lp.add_constraints_coo([0], [0], [1.0], "<<", [1.0])
        with pytest.raises(LPError, match="row ids"):
            lp.add_constraints_coo([5], [0], [1.0], "<=", [1.0])
        with pytest.raises(LPError, match="column ids"):
            lp.add_constraints_coo([0], [9], [1.0], "<=", [1.0])

    def test_duplicate_coo_entries_are_summed(self):
        lp = LinearProgram()
        lp.add_variables(["x"])
        lp.add_constraints_coo([0, 0], [0, 0], [1.0, 2.0], "<=", [3.0])
        a_ub, _, _, _ = lp.matrices()
        assert a_ub.toarray()[0, 0] == 3.0

    def test_matrices_cache_invalidation(self):
        lp = LinearProgram()
        lp.add_variables(["x", "y"])
        lp.add_constraint({"x": 1.0}, "<=", 1.0)
        first = lp.matrices()
        assert lp.matrices() is first  # cached
        lp.add_constraint({"y": 1.0}, "<=", 2.0)
        second = lp.matrices()
        assert second is not first
        assert second[0].shape == (2, 2)
        lp.add_variable("z")
        assert lp.matrices()[0].shape == (2, 3)  # column count grew

    def test_constraint_block_flush(self):
        from repro.lp import ConstraintBlock

        lp = LinearProgram()
        lp.add_variables(["x", "y"])
        block = ConstraintBlock(lp)
        block.add_row([0], 1.0, "<=", 4.0)
        block.add_row([0, 1], [1.0, -1.0], "==", 0.0)
        rng = block.flush()
        assert rng == range(0, 2)
        assert block.num_rows == 0  # reset after flush
        a_ub, b_ub, a_eq, b_eq = lp.matrices()
        assert a_ub.toarray().tolist() == [[1.0, 0.0]]
        assert a_eq.toarray().tolist() == [[1.0, -1.0]]

    def test_iter_constraints_roundtrip(self):
        lp = LinearProgram()
        lp.add_variables(["x", "y"])
        lp.add_constraints_coo(
            rows=[0, 0, 1],
            cols=[0, 1, 1],
            vals=[1.0, 2.0, 3.0],
            senses=["<=", ">="],
            rhs=[5.0, 1.0],
            names=["row0", "row1"],
        )
        cons = list(lp.iter_constraints())
        assert len(cons) == 2
        assert cons[0].indices == [0, 1] and cons[0].coefficients == [1.0, 2.0]
        assert cons[0].sense == "<=" and cons[0].name == "row0"
        assert cons[1].sense == ">=" and cons[1].rhs == 1.0

    def test_stacked_aranges(self):
        from repro.lp import stacked_aranges

        assert stacked_aranges([2, 0, 3]).tolist() == [0, 1, 0, 1, 2]
        assert stacked_aranges([]).tolist() == []
