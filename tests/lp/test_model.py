"""Unit tests for the sparse LP modelling layer."""

import numpy as np
import pytest

from repro.lp import LinearProgram, LPError


class TestVariables:
    def test_add_and_index(self):
        lp = LinearProgram()
        idx = lp.add_variable("x")
        assert idx == 0
        assert lp.variable_index("x") == 0
        assert lp.has_variable("x")
        assert not lp.has_variable("y")
        assert lp.num_variables == 1

    def test_duplicate_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError, match="already"):
            lp.add_variable("x")

    def test_unknown_variable(self):
        with pytest.raises(LPError, match="unknown"):
            LinearProgram().variable_index("ghost")

    def test_bad_bounds(self):
        lp = LinearProgram()
        with pytest.raises(LPError):
            lp.add_variable("x", lower=2.0, upper=1.0)

    def test_tuple_keys(self):
        lp = LinearProgram()
        lp.add_variable(("x", 1, 2, 3))
        assert lp.has_variable(("x", 1, 2, 3))

    def test_objective_vector_and_override(self):
        lp = LinearProgram()
        lp.add_variable("x", objective=2.0)
        lp.add_variable("y")
        assert list(lp.objective_vector()) == [2.0, 0.0]
        lp.set_objective_coefficient("y", 5.0)
        assert list(lp.objective_vector()) == [2.0, 5.0]

    def test_bounds_export(self):
        lp = LinearProgram()
        lp.add_variable("x", lower=1.0, upper=2.0)
        assert lp.bounds() == [(1.0, 2.0)]


class TestConstraints:
    def test_senses_and_matrix_shapes(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_variable("y")
        lp.add_constraint({"x": 1.0, "y": 1.0}, "<=", 5.0)
        lp.add_constraint({"x": 1.0}, ">=", 1.0)
        lp.add_constraint({"y": 2.0}, "==", 4.0)
        a_ub, b_ub, a_eq, b_eq = lp.matrices()
        assert a_ub.shape == (2, 2)
        assert a_eq.shape == (1, 2)
        assert list(b_eq) == [4.0]
        # >= is negated into <=
        assert b_ub[1] == -1.0
        assert a_ub.toarray()[1, 0] == -1.0

    def test_zero_coefficients_dropped_and_duplicates_summed(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_constraint([("x", 1.0), ("x", 2.0), ("x", 0.0)], "<=", 3.0)
        a_ub, b_ub, _, _ = lp.matrices()
        assert a_ub.toarray()[0, 0] == 3.0

    def test_unknown_sense(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError):
            lp.add_constraint({"x": 1.0}, "<", 1.0)

    def test_unknown_variable_in_constraint(self):
        lp = LinearProgram()
        with pytest.raises(LPError):
            lp.add_constraint({"ghost": 1.0}, "<=", 1.0)

    def test_empty_constraint_groups_are_none(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_constraint({"x": 1.0}, "<=", 1.0)
        a_ub, b_ub, a_eq, b_eq = lp.matrices()
        assert a_eq is None and b_eq is None
        assert a_ub is not None

    def test_num_constraints(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_constraint({"x": 1.0}, "<=", 1.0)
        lp.add_constraint({"x": 1.0}, ">=", 0.0)
        assert lp.num_constraints == 2

    def test_mapping_and_iterable_terms_equivalent(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_variable("y")
        lp.add_constraint({"x": 1.0, "y": 2.0}, "<=", 3.0)
        lp.add_constraint([("x", 1.0), ("y", 2.0)], "<=", 3.0)
        a_ub, _, _, _ = lp.matrices()
        assert np.allclose(a_ub.toarray()[0], a_ub.toarray()[1])
