"""LP-equivalence regression tests: bulk pipeline vs legacy scalar API.

Every LP builder in the repository assembles its model twice — once through
the vectorized bulk API (``build()``) and once through the legacy scalar API
(``build_scalar()``) — and the resulting ``(A_ub, b_ub, A_eq, b_eq)``
matrices, bounds, and objective vectors must be *numerically identical*.
This pins the vectorized emission to the reference implementation: any
refactor of the bulk path that changes a coefficient, a row, or the variable
ordering fails here immediately.
"""

import numpy as np
import pytest

from repro.circuit.given_paths import GivenPathsLP
from repro.circuit.routing import RoutingLP
from repro.core import topologies
from repro.core.flows import Coflow, CoflowInstance, Flow
from repro.packet.given_paths import PacketGivenPathsLP
from repro.packet.routing import PacketRoutingLP
from repro.workloads import CoflowGenerator, WorkloadConfig


def assert_identical_lps(bulk, scalar):
    """The two LinearPrograms must agree exactly (not just approximately)."""
    assert bulk.variable_keys == scalar.variable_keys
    assert bulk.num_constraints == scalar.num_constraints
    assert bulk.bounds() == scalar.bounds()
    assert np.array_equal(bulk.objective_vector(), scalar.objective_vector())
    for name, m_bulk, m_scalar in zip(
        ["A_ub", "b_ub", "A_eq", "b_eq"], bulk.matrices(), scalar.matrices()
    ):
        if m_bulk is None or m_scalar is None:
            assert m_bulk is None and m_scalar is None, f"{name}: None mismatch"
            continue
        if hasattr(m_bulk, "toarray"):
            m_bulk, m_scalar = m_bulk.toarray(), m_scalar.toarray()
        assert m_bulk.shape == m_scalar.shape, f"{name}: shape mismatch"
        assert np.array_equal(m_bulk, m_scalar), (
            f"{name}: max abs diff {np.abs(m_bulk - m_scalar).max()}"
        )


@pytest.fixture(scope="module")
def network():
    return topologies.fat_tree(4)


@pytest.fixture(scope="module")
def circuit_instance(network):
    """Small fixed-seed circuit instance (sizes > 0, staggered releases)."""
    return CoflowGenerator(
        network, WorkloadConfig(num_coflows=3, coflow_width=4, seed=7)
    ).instance()


@pytest.fixture(scope="module")
def circuit_instance_with_paths(network, circuit_instance):
    paths = {
        (i, j): tuple(network.shortest_path(f.source, f.destination))
        for i, j, f in circuit_instance.iter_flows()
    }
    return circuit_instance.with_paths(paths)


@pytest.fixture(scope="module")
def packet_instance(network, circuit_instance):
    """Unit-size, integer-release packet version of the circuit instance."""
    coflows = []
    for c in circuit_instance.coflows:
        flows = tuple(
            Flow(
                source=f.source,
                destination=f.destination,
                size=1.0,
                release_time=float(int(f.release_time)),
                path=tuple(network.shortest_path(f.source, f.destination)),
            )
            for f in c.flows
        )
        coflows.append(Coflow(flows=flows, weight=c.weight))
    return CoflowInstance(coflows=coflows)


def test_circuit_given_paths_equivalence(network, circuit_instance_with_paths):
    builder = GivenPathsLP(circuit_instance_with_paths, network)
    assert_identical_lps(builder.build(), builder.build_scalar())


def test_circuit_routing_path_equivalence(network, circuit_instance):
    builder = RoutingLP(circuit_instance, network, formulation="path")
    assert_identical_lps(builder.build(), builder.build_scalar())


def test_circuit_routing_edge_equivalence(network, circuit_instance):
    builder = RoutingLP(circuit_instance, network, formulation="edge")
    assert_identical_lps(builder.build(), builder.build_scalar())


def test_packet_given_paths_equivalence(network, packet_instance):
    builder = PacketGivenPathsLP(packet_instance, network)
    assert_identical_lps(builder.build(), builder.build_scalar())


def test_packet_time_expanded_equivalence(network, packet_instance):
    builder = PacketRoutingLP(packet_instance, network, horizon=12)
    assert_identical_lps(builder.build(), builder.build_scalar())


def test_zero_size_flows_equivalence(network):
    """Flows with size 0 skip rate variables/transfer rows in both paths."""
    hosts = [n for n in network.nodes() if str(n).startswith("host")]
    instance = CoflowInstance(
        coflows=[
            Coflow(
                flows=(
                    Flow(source=hosts[0], destination=hosts[3], size=2.0),
                    Flow(source=hosts[1], destination=hosts[2], size=0.0),
                ),
                weight=1.5,
            )
        ]
    )
    for formulation in ("path", "edge"):
        builder = RoutingLP(instance, network, formulation=formulation)
        assert_identical_lps(builder.build(), builder.build_scalar())


def test_bulk_solutions_match_scalar_solutions(network, circuit_instance):
    """Solving the bulk- and scalar-assembled LPs yields the same optimum."""
    from repro.lp import solve

    builder = RoutingLP(circuit_instance, network, formulation="path")
    bulk_obj = solve(builder.build()).objective
    scalar_obj = solve(builder.build_scalar()).objective
    assert bulk_obj == pytest.approx(scalar_obj, rel=1e-9)


def test_non_simple_path_equivalence():
    """A path traversing the same edge twice contributes one capacity term
    per edge in both the scalar (dict-semantics) and bulk paths."""
    from repro.core.network import Network

    net = Network()
    net.add_bidirectional_edge("a", "b", capacity=1.0)
    instance = CoflowInstance(
        coflows=[
            Coflow(
                flows=(
                    Flow(
                        source="a",
                        destination="b",
                        size=2.0,
                        path=("a", "b", "a", "b"),
                    ),
                ),
                weight=1.0,
            )
        ]
    )
    builder = GivenPathsLP(instance, net)
    assert_identical_lps(builder.build(), builder.build_scalar())
