"""Property tests for the LP delta-edit layer and warm-started assembly.

Two subjects (ISSUE 8):

* the generic tombstone layer on :class:`repro.lp.LinearProgram` —
  ``drop_constraints`` / ``drop_columns`` with compaction in ``matrices()``
  — held identical to from-scratch assembly over the surviving structure
  for **all five LP builders** (circuit given-paths, circuit routing in
  both formulations, packet given-paths, packet time-expanded), plus torn
  sequences: drop-then-restore round-trips, empty (no-change) epochs and
  the all-rows-dropped edge;
* :class:`repro.lp.incremental.IncrementalGivenPathsLP` — the warm-start
  assembler's re-emitted matrices and solutions held **byte-identical** to
  a cold ``GivenPathsLP`` over the same pinned grid, across arrival /
  drain / departure / re-arrival epochs.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.core import topologies
from repro.lp import LinearProgram, LPError
from repro.workloads import CoflowGenerator, WorkloadConfig


# ----------------------------------------------------------------- helpers

def snapshot(lp):
    """Capture a pristine LP's full definition (raw, pre-drop)."""
    return {
        "keys": list(lp.variable_keys),
        "bounds": list(lp.bounds()),
        "objective": np.asarray(lp.objective_vector(), dtype=float),
        "constraints": [
            (list(c.indices), list(c.coefficients), c.sense, c.rhs)
            for c in lp.iter_constraints()
        ],
    }


def build_from_scratch(snap, drop_rows=(), drop_cols=()):
    """Assemble a fresh LP holding only the surviving rows/columns."""
    drop_rows, drop_cols = set(drop_rows), set(drop_cols)
    fresh = LinearProgram()
    keep = [i for i in range(len(snap["keys"])) if i not in drop_cols]
    remap = {old: new for new, old in enumerate(keep)}
    for old in keep:
        lower, upper = snap["bounds"][old]
        fresh.add_variable(
            snap["keys"][old],
            lower=lower,
            upper=upper,
            objective=float(snap["objective"][old]),
        )
    rows, cols, vals, senses, rhs = [], [], [], [], []
    row_id = 0
    for r, (indices, coefficients, sense, b) in enumerate(snap["constraints"]):
        if r in drop_rows:
            continue
        for i, c in zip(indices, coefficients):
            if i in remap:
                rows.append(row_id)
                cols.append(remap[i])
                vals.append(c)
        senses.append(sense)
        rhs.append(b)
        row_id += 1
    if senses:
        fresh.add_constraints_coo(
            rows=rows, cols=cols, vals=vals, senses=senses, rhs=rhs
        )
    return fresh


def assert_identical(lp_a, lp_b):
    """Matrices, bounds, objective and key order all byte-identical."""
    for a, b in zip(lp_a.matrices(), lp_b.matrices()):
        if a is None or b is None:
            assert a is None and b is None
            continue
        if sparse.issparse(a):
            a, b = a.tocsr(), b.tocsr()
            assert a.shape == b.shape
            assert np.array_equal(a.indptr, b.indptr)
            assert np.array_equal(a.indices, b.indices)
            assert np.array_equal(a.data, b.data)
        else:
            assert np.array_equal(np.asarray(a), np.asarray(b))
    assert list(lp_a.variable_keys) == list(lp_b.variable_keys)
    assert lp_a.bounds() == lp_b.bounds()
    assert np.array_equal(
        np.asarray(lp_a.objective_vector()), np.asarray(lp_b.objective_vector())
    )


def _routed(instance, network):
    return instance.with_paths(
        {
            fid: network.shortest_path(
                instance.flow(fid).source, instance.flow(fid).destination
            )
            for fid in instance.flow_ids()
        }
    )


def _circuit_instance(seed=71):
    network = topologies.leaf_spine(
        num_leaves=2, num_spines=2, hosts_per_leaf=2
    )
    instance = CoflowGenerator(
        network,
        WorkloadConfig(num_coflows=2, coflow_width=3, mean_flow_size=4.0, seed=seed),
    ).instance()
    return instance, network


def _packet_instance(seed=72):
    network = topologies.leaf_spine(
        num_leaves=2, num_spines=2, hosts_per_leaf=2
    )
    instance = CoflowGenerator(
        network,
        WorkloadConfig(
            num_coflows=2,
            coflow_width=3,
            unit_sizes=True,
            release_rate=None,
            seed=seed,
        ),
    ).instance()
    return instance, network


def build_circuit_given_paths():
    from repro.circuit.given_paths import GivenPathsLP

    instance, network = _circuit_instance()
    return GivenPathsLP(_routed(instance, network), network).build()


def build_circuit_routing_edge():
    from repro.circuit.routing import RoutingLP

    instance, network = _circuit_instance()
    return RoutingLP(instance, network, formulation="edge").build()


def build_circuit_routing_path():
    from repro.circuit.routing import RoutingLP

    instance, network = _circuit_instance()
    return RoutingLP(instance, network, formulation="path").build()


def build_packet_given_paths():
    from repro.packet.given_paths import PacketGivenPathsLP

    instance, network = _packet_instance()
    return PacketGivenPathsLP(_routed(instance, network), network).build()


def build_packet_time_expanded():
    from repro.packet.routing import PacketRoutingLP

    instance, network = _packet_instance()
    return PacketRoutingLP(instance, network).build()


BUILDERS = {
    "circuit-given-paths": build_circuit_given_paths,
    "circuit-routing-edge": build_circuit_routing_edge,
    "circuit-routing-path": build_circuit_routing_path,
    "packet-given-paths": build_packet_given_paths,
    "packet-time-expanded": build_packet_time_expanded,
}


@pytest.fixture(params=sorted(BUILDERS), ids=sorted(BUILDERS))
def built_lp(request):
    return BUILDERS[request.param]()


# -------------------------------------------- delta edits vs from-scratch

class TestDropMatchesFromScratch:
    """Compacted ``matrices()`` == a fresh build of the surviving structure,
    for every one of the five LP builders."""

    def test_drop_rows(self, built_lp):
        snap = snapshot(built_lp)
        rows = list(range(0, built_lp.num_constraints, 3))
        built_lp.drop_constraints(rows)
        assert_identical(built_lp, build_from_scratch(snap, drop_rows=rows))

    def test_drop_columns(self, built_lp):
        snap = snapshot(built_lp)
        cols = list(range(0, built_lp.num_variables, 4))
        built_lp.drop_columns(cols)
        assert_identical(built_lp, build_from_scratch(snap, drop_cols=cols))

    def test_drop_rows_and_columns(self, built_lp):
        snap = snapshot(built_lp)
        rows = list(range(1, built_lp.num_constraints, 2))
        cols = list(range(0, built_lp.num_variables, 3))
        built_lp.drop_constraints(rows)
        built_lp.drop_columns(cols)
        assert_identical(
            built_lp, build_from_scratch(snap, drop_rows=rows, drop_cols=cols)
        )

    def test_restore_round_trips_to_pristine(self, built_lp):
        snap = snapshot(built_lp)
        rows = list(range(0, built_lp.num_constraints, 2))
        cols = list(range(1, built_lp.num_variables, 5))
        built_lp.drop_constraints(rows)
        built_lp.drop_columns(cols)
        built_lp.restore_constraints(rows)
        built_lp.restore_columns(cols)
        assert_identical(built_lp, build_from_scratch(snap))


class TestTornSequences:
    """Drop / restore sequences that tear the structure apart and rebuild."""

    def _small(self):
        lp = LinearProgram()
        lp.add_variables(["x", "y", "z"], lower=0.0, upper=9.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, "<=", 5.0)
        lp.add_constraint({"y": 2.0, "z": 1.0}, ">=", 1.0)
        lp.add_constraint({"z": 3.0}, "==", 6.0)
        return lp

    def test_drop_then_readd_same_rows_twice(self, built_lp):
        snap = snapshot(built_lp)
        rows = list(range(0, built_lp.num_constraints, 2))
        for _ in range(2):
            built_lp.drop_constraints(rows)
            assert_identical(built_lp, build_from_scratch(snap, drop_rows=rows))
            built_lp.restore_constraints(rows)
            assert_identical(built_lp, build_from_scratch(snap))

    def test_empty_epoch_is_stable(self, built_lp):
        """No edits between two exports: matrices are cached and identical."""
        first = built_lp.matrices()
        assert built_lp.matrices() is first

    def test_all_rows_dropped(self):
        lp = self._small()
        snap = snapshot(lp)
        lp.drop_constraints(range(lp.num_constraints))
        assert lp.num_constraints == 0
        a_ub, b_ub, a_eq, b_eq = lp.matrices()
        assert a_ub is None and b_ub is None
        assert a_eq is None and b_eq is None
        lp.restore_constraints(range(lp.num_raw_constraints))
        assert_identical(lp, build_from_scratch(snap))

    def test_all_columns_dropped(self):
        lp = self._small()
        lp.drop_columns(range(lp.num_variables))
        assert lp.num_variables == 0
        a_ub, _, a_eq, _ = lp.matrices()
        assert a_ub.shape == (2, 0)  # the <= and the negated >= row
        assert a_eq.shape == (1, 0)

    def test_drop_by_variable_key(self):
        lp = self._small()
        snap = snapshot(lp)
        lp.drop_variables(["y"])
        assert_identical(lp, build_from_scratch(snap, drop_cols=[1]))
        lp.restore_variables(["y"])
        assert_identical(lp, build_from_scratch(snap))

    def test_solution_keys_compact(self):
        lp = self._small()
        lp.drop_columns([1])
        keys, index = lp.solution_keys()
        assert keys == ["x", "z"]
        assert index == {"x": 0, "z": 1}

    def test_solve_on_dropped_lp_matches_scratch(self):
        from repro.lp import solve

        lp = self._small()
        lp.set_objective_coefficient("x", 1.0)
        lp.set_objective_coefficient("z", 1.0)
        snap = snapshot(lp)
        lp.drop_constraints([0])
        lp.drop_columns([1])
        scratch = build_from_scratch(snap, drop_rows=[0], drop_cols=[1])
        warm, cold = solve(lp), solve(scratch)
        assert warm.objective == cold.objective
        assert np.array_equal(warm.x, cold.x)
        assert warm.keys == cold.keys

    def test_validation(self):
        lp = self._small()
        with pytest.raises(LPError, match="unknown"):
            lp.drop_constraints([7])
        with pytest.raises(LPError, match="unknown"):
            lp.drop_columns([9])
        lp.drop_constraints([1])
        with pytest.raises(LPError, match="already"):
            lp.drop_constraints([1])
        with pytest.raises(LPError, match="not dropped"):
            lp.restore_constraints([0])
        lp.drop_columns([0])
        with pytest.raises(LPError, match="already"):
            lp.drop_columns([0])
        with pytest.raises(LPError, match="not dropped"):
            lp.restore_columns([2])


# ------------------------------------------- warm-started given-paths LP

class TestIncrementalGivenPaths:
    """The warm assembler re-emits byte-identical LPs across epochs."""

    def _setup(self):
        from repro.circuit.given_paths import _default_horizon

        instance, network = _circuit_instance(seed=73)
        routed = _routed(instance, network)
        horizon = _default_horizon(routed, network)
        return routed, network, horizon

    def _cold(self, instance, network, horizon):
        from repro.circuit.given_paths import GivenPathsLP

        return GivenPathsLP(instance, network, horizon=horizon).build()

    def _sub(self, routed, coflow_indices, scale=1.0):
        """A sub-instance of selected coflows with optionally drained sizes."""
        from repro.core.flows import Coflow, CoflowInstance, Flow

        coflows = []
        stable = {}
        for sub_i, i in enumerate(coflow_indices):
            coflow = routed.coflows[i]
            flows = [
                Flow(
                    source=f.source,
                    destination=f.destination,
                    size=f.size * scale,
                    release_time=f.release_time,
                    path=f.path,
                )
                for f in coflow.flows
            ]
            coflows.append(
                Coflow(flows=tuple(flows), weight=coflow.weight, name=coflow.name)
            )
            for j in range(len(flows)):
                stable[(sub_i, j)] = (i, j)
        return CoflowInstance(coflows=coflows, name="sub"), stable

    def test_epoch_sequence_byte_identical_to_cold(self):
        from repro.lp.incremental import IncrementalGivenPathsLP

        routed, network, horizon = self._setup()
        inc = IncrementalGivenPathsLP(network, horizon=horizon)
        # arrival -> full set -> drain -> departure -> re-arrival
        epochs = [
            self._sub(routed, [0]),
            self._sub(routed, [0, 1]),
            self._sub(routed, [0, 1], scale=0.5),
            self._sub(routed, [1], scale=0.5),
            self._sub(routed, [0, 1], scale=0.25),
        ]
        for sub, stable in epochs:
            inc.sync(sub, stable_ids=stable)
            assert_identical(inc.build(), self._cold(sub, network, horizon))

    def test_cache_hits_and_eviction(self):
        from repro.lp.incremental import IncrementalGivenPathsLP

        routed, network, horizon = self._setup()
        inc = IncrementalGivenPathsLP(network, horizon=horizon)
        both, stable_both = self._sub(routed, [0, 1])
        inc.sync(both, stable_ids=stable_both)
        first = dict(inc.last_sync_stats)
        assert first["cache_misses"] == first["flows"]
        # Drained sizes keep every per-flow structure cached...
        drained, stable_drained = self._sub(routed, [0, 1], scale=0.5)
        stats = inc.sync(drained, stable_ids=stable_drained)
        assert stats["cache_hits"] == stats["flows"]
        assert stats["cache_misses"] == 0
        # ...and a departure evicts exactly the departed coflow's flows.
        solo, stable_solo = self._sub(routed, [1])
        stats = inc.sync(solo, stable_ids=stable_solo)
        assert stats["cache_hits"] == stats["flows"]
        assert stats["evicted"] == first["flows"] - stats["flows"]

    def test_duplicate_stable_id_rejected(self):
        from repro.lp.incremental import IncrementalGivenPathsLP

        routed, network, horizon = self._setup()
        inc = IncrementalGivenPathsLP(network, horizon=horizon)
        sub, stable = self._sub(routed, [0])
        collide = {fid: "same" for fid in stable}
        with pytest.raises(ValueError, match="two flows"):
            inc.sync(sub, stable_ids=collide)

    def test_paths_required(self):
        from repro.lp.incremental import IncrementalGivenPathsLP

        instance, network = _circuit_instance(seed=73)
        inc = IncrementalGivenPathsLP(network, horizon=10.0)
        with pytest.raises(ValueError, match="path"):
            inc.sync(instance)

    def test_warm_solution_equals_cold_exactly(self):
        from repro.circuit.given_paths import GivenPathsLP
        from repro.lp.incremental import IncrementalGivenPathsLP

        routed, network, horizon = self._setup()
        inc = IncrementalGivenPathsLP(network, horizon=horizon, use_basis="never")
        for coflows, scale in ([(0,), 1.0], [(0, 1), 1.0], [(0, 1), 0.5], [(1,), 0.5]):
            sub, stable = self._sub(routed, list(coflows), scale=scale)
            inc.sync(sub, stable_ids=stable)
            warm = inc.relax()
            cold = GivenPathsLP(sub, network, horizon=horizon).relax()
            assert warm.solution.objective == cold.solution.objective
            assert np.array_equal(warm.solution.x, cold.solution.x)
            assert warm.flow_completion == cold.flow_completion
            assert warm.flow_order() == cold.flow_order()

    def test_basis_reuse_is_gated_not_assumed(self):
        from repro.lp import incremental

        # The pinned environment ships scipy's HiGHS only; the hook must
        # report unavailable rather than import-error at solve time.
        assert incremental.basis_reuse_available() in (True, False)
        state = incremental.WarmStartState()
        lp = LinearProgram()
        lp.add_variable("x", lower=0.0, upper=1.0, objective=1.0)
        solution = incremental.solve_warm(lp, state=state, use_basis="never")
        assert state.solves == 1
        assert solution.objective == pytest.approx(0.0)
        with pytest.raises(ValueError, match="use_basis"):
            incremental.solve_warm(lp, use_basis="sometimes")
