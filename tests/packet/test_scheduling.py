"""Tests for the store-and-forward list scheduler and its quality measures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Coflow, CoflowInstance, Flow, topologies
from repro.core.schedule import ScheduleError
from repro.packet import congestion, dilation, list_schedule_packets


def packet_instance(endpoints, releases=None):
    releases = releases or [0.0] * len(endpoints)
    return CoflowInstance(
        coflows=[
            Coflow(flows=(Flow(s, d, size=1.0, release_time=r),))
            for (s, d), r in zip(endpoints, releases)
        ]
    )


class TestMeasures:
    def test_congestion(self):
        paths = {
            (0, 0): ["a", "b", "c"],
            (1, 0): ["d", "b", "c"],
            (2, 0): ["a", "b"],
        }
        # edge (b, c) is shared by two packets
        assert congestion(paths) == 2

    def test_dilation(self):
        paths = {(0, 0): ["a", "b"], (1, 0): ["a", "b", "c", "d"]}
        assert dilation(paths) == 3

    def test_empty(self):
        assert congestion({}) == 0
        assert dilation({}) == 0


class TestListScheduling:
    def test_single_packet_goes_straight_through(self):
        net = topologies.line(4)
        instance = packet_instance([("host_0", "host_3")])
        paths = {(0, 0): net.shortest_path("host_0", "host_3")}
        schedule = list_schedule_packets(instance, paths)
        schedule.validate(instance, net)
        assert schedule.packet_completion_time((0, 0)) == 3

    def test_contending_packets_serialised_by_priority(self):
        net = topologies.line(3)
        instance = packet_instance([("host_0", "host_2"), ("host_0", "host_2")])
        paths = {fid: net.shortest_path("host_0", "host_2") for fid in instance.flow_ids()}
        schedule = list_schedule_packets(
            instance, paths, priority={(0, 0): 1.0, (1, 0): 0.0}
        )
        schedule.validate(instance, net)
        # the prioritised packet (1, 0) arrives first
        assert schedule.packet_completion_time((1, 0)) < schedule.packet_completion_time((0, 0))

    def test_release_times_respected(self):
        net = topologies.line(3)
        instance = packet_instance([("host_0", "host_2")], releases=[4.0])
        paths = {(0, 0): net.shortest_path("host_0", "host_2")}
        schedule = list_schedule_packets(instance, paths)
        assert schedule.moves((0, 0))[0].time >= 4

    def test_initial_delays_respected(self):
        net = topologies.line(3)
        instance = packet_instance([("host_0", "host_2")])
        paths = {(0, 0): net.shortest_path("host_0", "host_2")}
        schedule = list_schedule_packets(instance, paths, initial_delays={(0, 0): 3})
        assert schedule.moves((0, 0))[0].time >= 3

    def test_missing_path_raises(self):
        instance = packet_instance([("host_0", "host_2")])
        with pytest.raises(ScheduleError):
            list_schedule_packets(instance, {})

    def test_makespan_bounded_by_congestion_plus_dilation_chain(self):
        """On a shared line, makespan <= congestion + dilation - 1 for FIFO."""
        net = topologies.line(5)
        k = 4
        instance = packet_instance([("host_0", "host_4")] * k)
        paths = {fid: net.shortest_path("host_0", "host_4") for fid in instance.flow_ids()}
        schedule = list_schedule_packets(instance, paths)
        schedule.validate(instance, net)
        c, d = congestion(paths), dilation(paths)
        assert schedule.makespan() <= c + d  # pipeline: exactly c + d - 1 here
        assert schedule.makespan() >= max(c, d)


@given(
    num_packets=st.integers(min_value=1, max_value=8),
    ring_size=st.integers(min_value=3, max_value=7),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=30, deadline=None)
def test_list_schedule_always_feasible_and_bounded(num_packets, ring_size, seed):
    """Random packets on a ring: schedule is always feasible and O(C + D)."""
    import random

    rng = random.Random(seed)
    net = topologies.ring(ring_size)
    hosts = [f"host_{i}" for i in range(ring_size)]
    endpoints = []
    for _ in range(num_packets):
        s, d = rng.sample(hosts, 2)
        endpoints.append((s, d))
    instance = packet_instance(endpoints)
    paths = {
        fid: net.shortest_path(*endpoints[fid[0]]) for fid in instance.flow_ids()
    }
    schedule = list_schedule_packets(instance, paths)
    schedule.validate(instance, net)
    c, d = congestion(paths), dilation(paths)
    assert schedule.makespan() >= max(c, d)
    assert schedule.makespan() <= (c + 1) * (d + 1)
