"""Tests for the Section-3.2 packet algorithm (paths not given)."""

import pytest

from repro.core import Coflow, CoflowInstance, Flow, topologies
from repro.packet import PacketRoutingLP, PacketRoutingScheduler, schedule_packet_coflows
from repro.packet.routing import default_horizon


def packet_instance(endpoints, weights=None, releases=None):
    weights = weights or [1.0] * len(endpoints)
    releases = releases or [0.0] * len(endpoints)
    return CoflowInstance(
        coflows=[
            Coflow(flows=(Flow(s, d, size=1.0, release_time=r),), weight=w)
            for (s, d), w, r in zip(endpoints, weights, releases)
        ]
    )


@pytest.fixture
def triangle():
    return topologies.triangle()


class TestValidation:
    def test_unit_sizes_enforced(self, triangle):
        instance = CoflowInstance(
            coflows=[Coflow(flows=(Flow("x", "y", size=3.0),))]
        )
        with pytest.raises(ValueError, match="unit"):
            PacketRoutingScheduler(instance, triangle)

    def test_integral_releases_enforced(self, triangle):
        instance = CoflowInstance(
            coflows=[Coflow(flows=(Flow("x", "y", size=1.0, release_time=0.5),))]
        )
        with pytest.raises(ValueError, match="integral"):
            PacketRoutingScheduler(instance, triangle)

    def test_default_horizon_safe(self, triangle):
        instance = packet_instance([("x", "y"), ("y", "z"), ("z", "x")])
        assert default_horizon(instance, triangle) >= 3


class TestLP:
    def test_single_packet_lower_bound(self, triangle):
        instance = packet_instance([("x", "z")])
        relaxation = PacketRoutingLP(instance, triangle, horizon=6).relax()
        # one hop suffices (direct edge z exists? x->z is 1 hop on the triangle)
        assert relaxation.flow_completion[(0, 0)] >= 1.0 - 1e-6
        assert abs(relaxation.arrival_mass[(0, 0)].sum() - 1.0) < 1e-6

    def test_contention_raises_bound(self):
        net = topologies.line(3)
        instance = packet_instance([("host_0", "host_2")] * 3)
        relaxation = PacketRoutingLP(instance, net, horizon=10).relax()
        # 3 packets over the same 2-hop line: the last arrives at >= 4... LP >= 3
        assert max(relaxation.coflow_completion.values()) >= 3.0 - 1e-6

    def test_release_times_delay_arrival(self, triangle):
        instance = packet_instance([("x", "y")], releases=[4.0])
        relaxation = PacketRoutingLP(instance, triangle, horizon=10).relax()
        assert relaxation.flow_completion[(0, 0)] >= 5.0 - 1e-6
        mass = relaxation.arrival_mass[(0, 0)]
        assert mass[:5].sum() == pytest.approx(0.0, abs=1e-9)


class TestScheduler:
    def test_end_to_end_small(self, triangle):
        instance = packet_instance(
            [("x", "y"), ("y", "z"), ("z", "x"), ("x", "z")], weights=[1, 2, 1, 3]
        )
        result = PacketRoutingScheduler(instance, triangle, seed=1).schedule()
        result.schedule.validate(instance, triangle)
        assert result.objective >= result.lower_bound - 1e-6
        assert set(result.paths) == set(instance.flow_ids())

    def test_ratio_is_constant_factor_in_practice(self):
        net = topologies.ring(5)
        endpoints = [(f"host_{i}", f"host_{(i + 2) % 5}") for i in range(5)]
        instance = packet_instance(endpoints)
        result = PacketRoutingScheduler(instance, net, seed=0).schedule()
        assert result.approximation_ratio <= 8.0

    def test_batches_cover_all_packets(self, triangle):
        instance = packet_instance([("x", "y"), ("y", "x"), ("x", "z")])
        result = PacketRoutingScheduler(instance, triangle, seed=0).schedule()
        assert set(result.assigned_intervals) == set(instance.flow_ids())

    def test_dispatcher_selects_routing_variant(self, triangle):
        instance = packet_instance([("x", "y"), ("y", "z")])
        outcome = schedule_packet_coflows(instance, triangle, seed=0)
        assert outcome.variant == "routing"
        assert outcome.objective >= outcome.lower_bound - 1e-6

    def test_dispatcher_selects_given_paths_variant(self, triangle):
        instance = packet_instance([("x", "y"), ("y", "z")])
        routed = instance.with_paths(
            {fid: triangle.shortest_path(instance.flow(fid).source, instance.flow(fid).destination)
             for fid in instance.flow_ids()}
        )
        outcome = schedule_packet_coflows(routed, triangle)
        assert outcome.variant == "given-paths"
        outcome.schedule.validate(routed, triangle)
