"""Tests for packet coflows with given paths (Section 3.1)."""

import pytest

from repro.core import Coflow, CoflowInstance, Flow, topologies
from repro.packet import PacketGivenPathsLP, PacketGivenPathsScheduler


@pytest.fixture
def line_net():
    return topologies.line(4)


def routed_instance(net, endpoints, weights=None, releases=None):
    weights = weights or [1.0] * len(endpoints)
    releases = releases or [0.0] * len(endpoints)
    coflows = []
    for (s, d), w, r in zip(endpoints, weights, releases):
        path = net.shortest_path(s, d)
        coflows.append(
            Coflow(flows=(Flow(s, d, size=1.0, release_time=r, path=path),), weight=w)
        )
    return CoflowInstance(coflows=coflows)


class TestValidation:
    def test_requires_paths(self, line_net):
        instance = CoflowInstance(
            coflows=[Coflow(flows=(Flow("host_0", "host_2", size=1.0),))]
        )
        with pytest.raises(ValueError, match="path"):
            PacketGivenPathsScheduler(instance, line_net)

    def test_requires_unit_sizes(self, line_net):
        path = line_net.shortest_path("host_0", "host_2")
        instance = CoflowInstance(
            coflows=[Coflow(flows=(Flow("host_0", "host_2", size=2.0, path=path),))]
        )
        with pytest.raises(ValueError, match="unit"):
            PacketGivenPathsScheduler(instance, line_net)


class TestLPLowerBound:
    def test_single_packet_bound_equals_path_length(self, line_net):
        instance = routed_instance(line_net, [("host_0", "host_3")])
        relaxation = PacketGivenPathsLP(instance, line_net).relax()
        # the packet needs at least 3 steps (dilation)
        assert relaxation.flow_completion[(0, 0)] >= 3.0 - 1e-6

    def test_congestion_reflected(self, line_net):
        """The LP bound grows once congestion exceeds the interval resolution."""
        single = routed_instance(line_net, [("host_0", "host_3")])
        crowded = routed_instance(line_net, [("host_0", "host_3")] * 20)
        lb_single = max(
            PacketGivenPathsLP(single, line_net).relax().coflow_completion.values()
        )
        lb_crowded = max(
            PacketGivenPathsLP(crowded, line_net).relax().coflow_completion.values()
        )
        # 8 packets share every edge of the path: congestion constraint (28)
        # forces some of them into later intervals.
        assert lb_crowded > lb_single + 0.5

    def test_release_times_raise_bound(self, line_net):
        instance = routed_instance(line_net, [("host_0", "host_3")], releases=[10.0])
        relaxation = PacketGivenPathsLP(instance, line_net).relax()
        assert relaxation.flow_completion[(0, 0)] >= 13.0 - 1e-6

    def test_lower_bound_scaling(self, line_net):
        instance = routed_instance(line_net, [("host_0", "host_2")])
        relaxation = PacketGivenPathsLP(instance, line_net).relax()
        assert relaxation.lower_bound == pytest.approx(relaxation.objective / 2.0)


class TestScheduler:
    def test_schedule_feasible_and_above_bound(self, line_net):
        instance = routed_instance(
            line_net,
            [("host_0", "host_3"), ("host_1", "host_3"), ("host_0", "host_2")],
            weights=[3.0, 1.0, 2.0],
        )
        result = PacketGivenPathsScheduler(instance, line_net).schedule()
        result.schedule.validate(instance, line_net)
        assert result.objective >= result.lower_bound - 1e-6

    def test_constant_factor_on_contended_line(self, line_net):
        instance = routed_instance(line_net, [("host_0", "host_3")] * 5)
        result = PacketGivenPathsScheduler(instance, line_net).schedule()
        # O(1) approximation in practice: generous constant of 6
        assert result.approximation_ratio <= 6.0

    def test_heavier_coflow_prioritised(self, line_net):
        instance = routed_instance(
            line_net,
            [("host_0", "host_3"), ("host_0", "host_3")],
            weights=[100.0, 1.0],
        )
        result = PacketGivenPathsScheduler(instance, line_net).schedule()
        completions = result.schedule.coflow_completion_times(instance)
        assert completions[0] <= completions[1]

    def test_congestion_dilation_reported(self, line_net):
        instance = routed_instance(line_net, [("host_0", "host_3")] * 3)
        result = PacketGivenPathsScheduler(instance, line_net).schedule()
        assert result.congestion == 3
        assert result.dilation == 3
