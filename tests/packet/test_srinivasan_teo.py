"""Tests for the per-interval packet routing + scheduling subroutine."""

import pytest

from repro.core import Coflow, CoflowInstance, Flow, topologies
from repro.packet import route_and_schedule, route_packets
from repro.packet.scheduling import congestion, dilation


def packet_instance(endpoints):
    return CoflowInstance(
        coflows=[Coflow(flows=(Flow(s, d, size=1.0),)) for s, d in endpoints]
    )


@pytest.fixture
def fat_tree():
    return topologies.fat_tree(4)


class TestRouting:
    def test_paths_connect_endpoints(self, fat_tree):
        instance = packet_instance([("host_0", "host_15"), ("host_1", "host_14")])
        routing = route_packets(instance, fat_tree, seed=0)
        for fid, path in routing.paths.items():
            flow = instance.flow(fid)
            assert path[0] == flow.source and path[-1] == flow.destination
            fat_tree.validate_path(list(path))

    def test_congestion_spread_over_equal_cost_paths(self, fat_tree):
        """Many packets between the same pods spread over the 4 core routes."""
        endpoints = [("host_0", "host_15")] * 8
        instance = packet_instance(endpoints)
        routing = route_packets(instance, fat_tree, seed=1)
        # The shared host uplink makes congestion 8 unavoidable, but the
        # greedy router must still spread the packets across several of the
        # four equal-cost core routes instead of piling onto one.
        assert routing.congestion == 8
        assert routing.dilation == 6
        assert routing.lower_bound == max(routing.congestion, routing.dilation)
        cores_used = {
            node
            for path in routing.paths.values()
            for node in path
            if str(node).startswith("core_")
        }
        assert len(cores_used) >= 2

    def test_preferred_paths_kept(self, fat_tree):
        instance = packet_instance([("host_0", "host_1")])
        preferred = {(0, 0): tuple(fat_tree.shortest_path("host_0", "host_1"))}
        routing = route_packets(instance, fat_tree, preferred=preferred, seed=0)
        assert routing.paths[(0, 0)] == preferred[(0, 0)]

    def test_deterministic_given_seed(self, fat_tree):
        instance = packet_instance([("host_0", "host_15")] * 4)
        a = route_packets(instance, fat_tree, seed=3).paths
        b = route_packets(instance, fat_tree, seed=3).paths
        assert a == b


class TestRouteAndSchedule:
    def test_schedule_feasible_and_near_optimal(self, fat_tree):
        endpoints = [("host_0", "host_15"), ("host_2", "host_13"), ("host_4", "host_11")]
        instance = packet_instance(endpoints)
        routing, schedule = route_and_schedule(instance, fat_tree, seed=0)
        schedule.validate(instance, fat_tree)
        c, d = routing.congestion, routing.dilation
        assert schedule.makespan() >= max(c, d)
        # O(C + D) with a small constant in practice
        assert schedule.makespan() <= 3 * (c + d)

    def test_contended_destination(self):
        net = topologies.star(6)
        # every packet targets host_0: its downlink is the bottleneck
        endpoints = [(f"host_{i}", "host_0") for i in range(1, 6)]
        instance = packet_instance(endpoints)
        routing, schedule = route_and_schedule(instance, net, seed=0)
        schedule.validate(instance, net)
        assert routing.congestion == 5
        assert schedule.makespan() >= 5
        assert schedule.makespan() <= 2 * (routing.congestion + routing.dilation)

    def test_priorities_bias_completion(self, fat_tree):
        endpoints = [("host_0", "host_15")] * 2
        instance = packet_instance(endpoints)
        priority = {(0, 0): 5.0, (1, 0): 0.0}
        _, schedule = route_and_schedule(instance, fat_tree, seed=2, priority=priority)
        assert schedule.packet_completion_time((1, 0)) <= schedule.packet_completion_time((0, 0))
