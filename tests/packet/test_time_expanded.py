"""Tests for time-expanded graphs (Figure 2)."""

import pytest

from repro.core import topologies
from repro.packet import TimeExpandedGraph


@pytest.fixture
def line_gt():
    return TimeExpandedGraph(network=topologies.line(3), horizon=2)


class TestStructure:
    def test_counts(self, line_gt):
        net = line_gt.network
        assert line_gt.num_nodes == net.num_nodes * 3
        assert line_gt.num_movement_edges == net.num_edges * 2
        assert line_gt.num_queue_edges == net.num_nodes * 2

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            TimeExpandedGraph(network=topologies.line(3), horizon=0)

    def test_node_bounds_checked(self, line_gt):
        line_gt.node("host_0", 0)
        line_gt.node("host_2", 2)
        with pytest.raises(ValueError):
            line_gt.node("host_0", 3)
        with pytest.raises(ValueError):
            line_gt.node("ghost", 0)

    def test_movement_edges_at_step(self, line_gt):
        edges = list(line_gt.movement_edges(t=1))
        assert (("host_0", 1), ("host_1", 2)) in edges
        assert all(a[1] == 1 and b[1] == 2 for a, b in edges)
        with pytest.raises(ValueError):
            list(line_gt.movement_edges(t=2))

    def test_queue_edges(self, line_gt):
        edges = list(line_gt.queue_edges(t=0))
        assert (("host_1", 0), ("host_1", 1)) in edges
        assert len(edges) == line_gt.network.num_nodes

    def test_all_edges_count(self, line_gt):
        assert (
            len(list(line_gt.edges()))
            == line_gt.num_movement_edges + line_gt.num_queue_edges
        )

    def test_out_edges(self, line_gt):
        out = line_gt.out_edges(("host_1", 0))
        targets = {edge[1] for edge in out}
        assert ("host_1", 1) in targets  # queue edge
        assert ("host_0", 1) in targets and ("host_2", 1) in targets
        assert line_gt.out_edges(("host_0", 2)) == []

    def test_in_edges(self, line_gt):
        into = line_gt.in_edges(("host_1", 1))
        sources = {edge[0] for edge in into}
        assert ("host_1", 0) in sources
        assert ("host_0", 0) in sources and ("host_2", 0) in sources
        assert line_gt.in_edges(("host_1", 0)) == []


class TestHelpers:
    def test_is_queue_edge(self):
        assert TimeExpandedGraph.is_queue_edge((("a", 0), ("a", 1)))
        assert not TimeExpandedGraph.is_queue_edge((("a", 0), ("b", 1)))

    def test_collapse_path_drops_waits(self):
        tpath = [("a", 0), ("a", 1), ("b", 2), ("b", 3), ("c", 4)]
        assert TimeExpandedGraph.collapse_path(tpath) == ["a", "b", "c"]

    def test_path_departure_times(self):
        tpath = [("a", 0), ("a", 1), ("b", 2), ("c", 3)]
        assert TimeExpandedGraph.path_departure_times(tpath) == [1, 2]
