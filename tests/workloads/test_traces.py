"""Tests for synthetic application traces."""

import pytest

from repro.core import topologies
from repro.workloads import broadcast, heavy_tailed_instance, mapreduce_shuffle


@pytest.fixture
def fat_tree():
    return topologies.fat_tree(4)


class TestShuffle:
    def test_all_to_all_structure(self, fat_tree):
        instance = mapreduce_shuffle(
            fat_tree, num_jobs=2, mappers_per_job=3, reducers_per_job=2, bytes_per_pair=4.0
        )
        assert instance.num_coflows == 2
        for coflow in instance:
            assert coflow.width == 3 * 2
            sources = {f.source for f in coflow.flows}
            destinations = {f.destination for f in coflow.flows}
            assert len(sources) == 3 and len(destinations) == 2
            assert sources.isdisjoint(destinations)
            assert all(f.size == 4.0 for f in coflow.flows)

    def test_release_gap(self, fat_tree):
        instance = mapreduce_shuffle(fat_tree, num_jobs=3, release_gap=5.0)
        assert [c.release_time for c in instance] == [0.0, 5.0, 10.0]

    def test_too_many_endpoints(self):
        net = topologies.nonblocking_switch(4)
        with pytest.raises(ValueError):
            mapreduce_shuffle(net, mappers_per_job=3, reducers_per_job=3)

    def test_invalid_args(self, fat_tree):
        with pytest.raises(ValueError):
            mapreduce_shuffle(fat_tree, num_jobs=0)


class TestBroadcast:
    def test_structure(self, fat_tree):
        instance = broadcast(fat_tree, num_receivers=5, volume_per_receiver=3.0)
        assert instance.num_coflows == 1
        coflow = instance[0]
        assert coflow.width == 5
        senders = {f.source for f in coflow.flows}
        assert len(senders) == 1
        assert all(f.size == 3.0 for f in coflow.flows)

    def test_not_enough_hosts(self):
        net = topologies.nonblocking_switch(3)
        with pytest.raises(ValueError):
            broadcast(net, num_receivers=5)


class TestHeavyTailed:
    def test_shape_and_bounds(self, fat_tree):
        instance = heavy_tailed_instance(fat_tree, num_coflows=12, max_width=16, max_size=32.0, seed=0)
        assert instance.num_coflows == 12
        for coflow in instance:
            assert 1 <= coflow.width <= 16
            assert all(1.0 <= f.size <= 32.0 for f in coflow.flows)

    def test_deterministic(self, fat_tree):
        a = heavy_tailed_instance(fat_tree, num_coflows=5, seed=2)
        b = heavy_tailed_instance(fat_tree, num_coflows=5, seed=2)
        assert [c.width for c in a] == [c.width for c in b]

    def test_invalid(self, fat_tree):
        with pytest.raises(ValueError):
            heavy_tailed_instance(fat_tree, num_coflows=0)
