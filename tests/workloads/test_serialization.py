"""Tests for JSON serialization of coflow instances and workload configs."""

import json

import pytest

from repro.core import Coflow, CoflowInstance, Flow, topologies
from repro.workloads import (
    CoflowGenerator,
    WorkloadConfig,
    config_from_dict,
    config_to_dict,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
)


@pytest.fixture
def instance():
    return CoflowInstance(
        coflows=[
            Coflow(
                flows=(
                    Flow("a", "b", size=2.5, release_time=1.0, path=["a", "m", "b"]),
                    Flow("b", "c", size=1.0),
                ),
                weight=2.0,
                name="first",
            ),
            Coflow(flows=(Flow("c", "a", size=3.0),), weight=1.5),
        ],
        name="example",
    )


def equivalent(a, b):
    if a.num_coflows != b.num_coflows or a.name != b.name:
        return False
    for ca, cb in zip(a, b):
        if ca.weight != cb.weight or ca.name != cb.name or len(ca) != len(cb):
            return False
        for fa, fb in zip(ca.flows, cb.flows):
            if (fa.source, fa.destination, fa.size, fa.release_time, fa.path) != (
                fb.source,
                fb.destination,
                fb.size,
                fb.release_time,
                fb.path,
            ):
                return False
    return True


def test_dict_roundtrip(instance):
    assert equivalent(instance_from_dict(instance_to_dict(instance)), instance)


def test_file_roundtrip(instance, tmp_path):
    path = tmp_path / "instance.json"
    save_instance(instance, path)
    assert equivalent(load_instance(path), instance)


def test_generated_instance_roundtrip(tmp_path):
    net = topologies.fat_tree(4)
    instance = CoflowGenerator(net, WorkloadConfig(num_coflows=3, coflow_width=3, seed=1)).instance()
    path = tmp_path / "generated.json"
    save_instance(instance, path)
    assert equivalent(load_instance(path), instance)


def test_defaults_on_partial_dict():
    data = {
        "coflows": [
            {"flows": [{"source": "a", "destination": "b"}]},
        ]
    }
    instance = instance_from_dict(data)
    assert instance[0].weight == 1.0
    assert instance.flow((0, 0)).size == 1.0
    assert instance.flow((0, 0)).path is None


class TestConfigRoundTrip:
    def test_default_config(self):
        config = WorkloadConfig()
        assert config_from_dict(config_to_dict(config)) == config

    def test_extended_config(self):
        config = WorkloadConfig(
            num_coflows=7,
            coflow_width=9,
            mean_flow_size=5.5,
            release_rate=None,
            mean_weight=3.0,
            unit_sizes=True,
            seed=42,
            flow_size_distribution="pareto",
            pareto_shape=1.7,
            endpoint_distribution="incast",
            zipf_exponent=0.8,
            topology="fat_tree(k=4, oversubscription=2.0)",
        )
        data = config_to_dict(config)
        # JSON-safe: survives an actual encode/decode cycle.
        restored = config_from_dict(json.loads(json.dumps(data)))
        assert restored == config

    def test_unknown_keys_ignored(self):
        data = config_to_dict(WorkloadConfig(seed=5))
        data["added_in_a_future_version"] = 123
        assert config_from_dict(data).seed == 5

    def test_every_field_serialized(self):
        from dataclasses import fields

        data = config_to_dict(WorkloadConfig())
        assert set(data) == {f.name for f in fields(WorkloadConfig)}
