"""Tests for JSON serialization of coflow instances."""

import pytest

from repro.core import Coflow, CoflowInstance, Flow, topologies
from repro.workloads import (
    CoflowGenerator,
    WorkloadConfig,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
)


@pytest.fixture
def instance():
    return CoflowInstance(
        coflows=[
            Coflow(
                flows=(
                    Flow("a", "b", size=2.5, release_time=1.0, path=["a", "m", "b"]),
                    Flow("b", "c", size=1.0),
                ),
                weight=2.0,
                name="first",
            ),
            Coflow(flows=(Flow("c", "a", size=3.0),), weight=1.5),
        ],
        name="example",
    )


def equivalent(a, b):
    if a.num_coflows != b.num_coflows or a.name != b.name:
        return False
    for ca, cb in zip(a, b):
        if ca.weight != cb.weight or ca.name != cb.name or len(ca) != len(cb):
            return False
        for fa, fb in zip(ca.flows, cb.flows):
            if (fa.source, fa.destination, fa.size, fa.release_time, fa.path) != (
                fb.source,
                fb.destination,
                fb.size,
                fb.release_time,
                fb.path,
            ):
                return False
    return True


def test_dict_roundtrip(instance):
    assert equivalent(instance_from_dict(instance_to_dict(instance)), instance)


def test_file_roundtrip(instance, tmp_path):
    path = tmp_path / "instance.json"
    save_instance(instance, path)
    assert equivalent(load_instance(path), instance)


def test_generated_instance_roundtrip(tmp_path):
    net = topologies.fat_tree(4)
    instance = CoflowGenerator(net, WorkloadConfig(num_coflows=3, coflow_width=3, seed=1)).instance()
    path = tmp_path / "generated.json"
    save_instance(instance, path)
    assert equivalent(load_instance(path), instance)


def test_defaults_on_partial_dict():
    data = {
        "coflows": [
            {"flows": [{"source": "a", "destination": "b"}]},
        ]
    }
    instance = instance_from_dict(data)
    assert instance[0].weight == 1.0
    assert instance.flow((0, 0)).size == 1.0
    assert instance.flow((0, 0)).path is None
