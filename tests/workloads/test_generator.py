"""Tests for the Poisson workload generator."""

import pytest

from repro.core import topologies
from repro.core.topologies import host_nodes
from repro.workloads import CoflowGenerator, WorkloadConfig, generate_instance


@pytest.fixture
def fat_tree():
    return topologies.fat_tree(4)


class TestConfig:
    def test_defaults(self):
        config = WorkloadConfig()
        assert config.num_coflows == 10
        assert config.coflow_width == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_coflows=0)
        with pytest.raises(ValueError):
            WorkloadConfig(coflow_width=0)
        with pytest.raises(ValueError):
            WorkloadConfig(mean_flow_size=0.5)
        with pytest.raises(ValueError):
            WorkloadConfig(mean_weight=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(release_rate=0.0)

    def test_with_helpers(self):
        config = WorkloadConfig(num_coflows=10, coflow_width=16, seed=3)
        assert config.with_width(32).coflow_width == 32
        assert config.with_num_coflows(25).num_coflows == 25
        assert config.with_seed(9).seed == 9
        # original untouched
        assert config.coflow_width == 16


class TestGenerator:
    def test_shape_matches_config(self, fat_tree):
        config = WorkloadConfig(num_coflows=5, coflow_width=7, seed=0)
        instance = CoflowGenerator(fat_tree, config).instance()
        assert instance.num_coflows == 5
        assert all(c.width == 7 for c in instance)

    def test_deterministic_given_seed(self, fat_tree):
        config = WorkloadConfig(num_coflows=3, coflow_width=4, seed=12)
        a = CoflowGenerator(fat_tree, config).instance()
        b = CoflowGenerator(fat_tree, config).instance()
        for (i, j, fa), (_, _, fb) in zip(a.iter_flows(), b.iter_flows()):
            assert (fa.source, fa.destination, fa.size, fa.release_time) == (
                fb.source,
                fb.destination,
                fb.size,
                fb.release_time,
            )

    def test_seed_offset_changes_instance(self, fat_tree):
        generator = CoflowGenerator(fat_tree, WorkloadConfig(num_coflows=3, coflow_width=4, seed=12))
        a = generator.instance(seed_offset=0)
        b = generator.instance(seed_offset=1)
        assert any(
            fa.size != fb.size or fa.source != fb.source
            for (_, _, fa), (_, _, fb) in zip(a.iter_flows(), b.iter_flows())
        )

    def test_endpoints_are_distinct_hosts(self, fat_tree):
        instance = CoflowGenerator(
            fat_tree, WorkloadConfig(num_coflows=4, coflow_width=8, seed=1)
        ).instance()
        hosts = set(host_nodes(fat_tree))
        for _, _, flow in instance.iter_flows():
            assert flow.source in hosts
            assert flow.destination in hosts
            assert flow.source != flow.destination

    def test_sizes_and_weights_at_least_one(self, fat_tree):
        instance = CoflowGenerator(
            fat_tree, WorkloadConfig(num_coflows=6, coflow_width=6, seed=2)
        ).instance()
        assert all(f.size >= 1.0 for _, _, f in instance.iter_flows())
        assert all(c.weight >= 1.0 for c in instance)

    def test_unit_sizes_flag(self, fat_tree):
        instance = CoflowGenerator(
            fat_tree, WorkloadConfig(num_coflows=3, coflow_width=3, unit_sizes=True, seed=0)
        ).instance()
        assert all(f.size == 1.0 for _, _, f in instance.iter_flows())

    def test_release_times_monotone_within_coflow(self, fat_tree):
        instance = CoflowGenerator(
            fat_tree, WorkloadConfig(num_coflows=2, coflow_width=5, release_rate=2.0, seed=4)
        ).instance()
        for coflow in instance:
            releases = [f.release_time for f in coflow.flows]
            assert releases == sorted(releases)
            assert all(r > 0 for r in releases)

    def test_no_release_rate_means_time_zero(self, fat_tree):
        instance = CoflowGenerator(
            fat_tree, WorkloadConfig(num_coflows=2, coflow_width=3, release_rate=None, seed=4)
        ).instance()
        assert all(f.release_time == 0.0 for _, _, f in instance.iter_flows())

    def test_instances_batch(self, fat_tree):
        generator = CoflowGenerator(fat_tree, WorkloadConfig(num_coflows=2, coflow_width=2, seed=0))
        batch = generator.instances(4)
        assert len(batch) == 4

    def test_requires_hosts(self):
        from repro.core import Network

        net = Network()
        net.add_edge("a", "b")
        with pytest.raises(ValueError, match="host"):
            CoflowGenerator(net, WorkloadConfig())

    def test_generate_instance_wrapper(self, fat_tree):
        instance = generate_instance(fat_tree, WorkloadConfig(num_coflows=2, coflow_width=2))
        assert instance.num_coflows == 2
