"""Tests for the workload generator and its scenario families."""

import numpy as np
import pytest

from repro.core import topologies
from repro.core.topologies import host_nodes
from repro.workloads import CoflowGenerator, WorkloadConfig, generate_instance


@pytest.fixture
def fat_tree():
    return topologies.fat_tree(4)


class TestConfig:
    def test_defaults(self):
        config = WorkloadConfig()
        assert config.num_coflows == 10
        assert config.coflow_width == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_coflows=0)
        with pytest.raises(ValueError):
            WorkloadConfig(coflow_width=0)
        with pytest.raises(ValueError):
            WorkloadConfig(mean_flow_size=0.5)
        with pytest.raises(ValueError):
            WorkloadConfig(mean_weight=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(release_rate=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(coflow_arrival_rate=0.0)

    def test_with_helpers(self):
        config = WorkloadConfig(num_coflows=10, coflow_width=16, seed=3)
        assert config.with_width(32).coflow_width == 32
        assert config.with_num_coflows(25).num_coflows == 25
        assert config.with_seed(9).seed == 9
        # original untouched
        assert config.coflow_width == 16


class TestGenerator:
    def test_shape_matches_config(self, fat_tree):
        config = WorkloadConfig(num_coflows=5, coflow_width=7, seed=0)
        instance = CoflowGenerator(fat_tree, config).instance()
        assert instance.num_coflows == 5
        assert all(c.width == 7 for c in instance)

    def test_deterministic_given_seed(self, fat_tree):
        config = WorkloadConfig(num_coflows=3, coflow_width=4, seed=12)
        a = CoflowGenerator(fat_tree, config).instance()
        b = CoflowGenerator(fat_tree, config).instance()
        for (i, j, fa), (_, _, fb) in zip(a.iter_flows(), b.iter_flows()):
            assert (fa.source, fa.destination, fa.size, fa.release_time) == (
                fb.source,
                fb.destination,
                fb.size,
                fb.release_time,
            )

    def test_seed_offset_changes_instance(self, fat_tree):
        generator = CoflowGenerator(fat_tree, WorkloadConfig(num_coflows=3, coflow_width=4, seed=12))
        a = generator.instance(seed_offset=0)
        b = generator.instance(seed_offset=1)
        assert any(
            fa.size != fb.size or fa.source != fb.source
            for (_, _, fa), (_, _, fb) in zip(a.iter_flows(), b.iter_flows())
        )

    def test_endpoints_are_distinct_hosts(self, fat_tree):
        instance = CoflowGenerator(
            fat_tree, WorkloadConfig(num_coflows=4, coflow_width=8, seed=1)
        ).instance()
        hosts = set(host_nodes(fat_tree))
        for _, _, flow in instance.iter_flows():
            assert flow.source in hosts
            assert flow.destination in hosts
            assert flow.source != flow.destination

    def test_sizes_and_weights_at_least_one(self, fat_tree):
        instance = CoflowGenerator(
            fat_tree, WorkloadConfig(num_coflows=6, coflow_width=6, seed=2)
        ).instance()
        assert all(f.size >= 1.0 for _, _, f in instance.iter_flows())
        assert all(c.weight >= 1.0 for c in instance)

    def test_unit_sizes_flag(self, fat_tree):
        instance = CoflowGenerator(
            fat_tree, WorkloadConfig(num_coflows=3, coflow_width=3, unit_sizes=True, seed=0)
        ).instance()
        assert all(f.size == 1.0 for _, _, f in instance.iter_flows())

    def test_release_times_monotone_within_coflow(self, fat_tree):
        instance = CoflowGenerator(
            fat_tree, WorkloadConfig(num_coflows=2, coflow_width=5, release_rate=2.0, seed=4)
        ).instance()
        for coflow in instance:
            releases = [f.release_time for f in coflow.flows]
            assert releases == sorted(releases)
            assert all(r > 0 for r in releases)

    def test_coflow_arrivals_are_cumulative_and_deterministic(self, fat_tree):
        config = WorkloadConfig(
            num_coflows=4, coflow_width=3, release_rate=None,
            coflow_arrival_rate=0.5, seed=11,
        )
        instance = CoflowGenerator(fat_tree, config).instance()
        arrivals = [coflow.release_time for coflow in instance.coflows]
        # Strictly increasing arrival offsets (cumulative exponential gaps),
        # and with release_rate=None every flow of a coflow shares them.
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0.0
        assert len(set(arrivals)) == len(arrivals)
        for coflow in instance.coflows:
            assert len({f.release_time for f in coflow.flows}) == 1
        again = CoflowGenerator(fat_tree, config).instance()
        assert [c.release_time for c in again.coflows] == arrivals

    def test_no_arrival_rate_leaves_instances_unchanged(self, fat_tree):
        base = WorkloadConfig(num_coflows=2, coflow_width=3, release_rate=2.0, seed=9)
        instance = CoflowGenerator(fat_tree, base).instance()
        # The new field defaults to None and must not consume RNG draws.
        assert base.coflow_arrival_rate is None
        assert min(f.release_time for _, _, f in instance.iter_flows()) < 10.0
        assert instance.coflows[0].release_time == pytest.approx(
            min(f.release_time for f in instance.coflows[0].flows)
        )

    def test_no_release_rate_means_time_zero(self, fat_tree):
        instance = CoflowGenerator(
            fat_tree, WorkloadConfig(num_coflows=2, coflow_width=3, release_rate=None, seed=4)
        ).instance()
        assert all(f.release_time == 0.0 for _, _, f in instance.iter_flows())

    def test_instances_batch(self, fat_tree):
        generator = CoflowGenerator(fat_tree, WorkloadConfig(num_coflows=2, coflow_width=2, seed=0))
        batch = generator.instances(4)
        assert len(batch) == 4

    def test_requires_hosts(self):
        from repro.core import Network

        net = Network()
        net.add_edge("a", "b")
        with pytest.raises(ValueError, match="host"):
            CoflowGenerator(net, WorkloadConfig())

    def test_generate_instance_wrapper(self, fat_tree):
        instance = generate_instance(fat_tree, WorkloadConfig(num_coflows=2, coflow_width=2))
        assert instance.num_coflows == 2


def all_sizes(instance):
    return np.array([f.size for _, _, f in instance.iter_flows()])


class TestFlowSizeFamilies:
    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError, match="flow size distribution"):
            WorkloadConfig(flow_size_distribution="lognormal")
        with pytest.raises(ValueError, match="pareto shape"):
            WorkloadConfig(flow_size_distribution="pareto", pareto_shape=1.0)

    def test_pareto_is_heavy_tailed(self, fat_tree):
        # Same mean target, drastically different tails: the Pareto family's
        # maximum dwarfs its median, the Poisson family's does not.
        base = dict(num_coflows=10, coflow_width=16, mean_flow_size=4.0, seed=21)
        poisson = all_sizes(
            CoflowGenerator(fat_tree, WorkloadConfig(**base)).instance()
        )
        pareto = all_sizes(
            CoflowGenerator(
                fat_tree,
                WorkloadConfig(flow_size_distribution="pareto", pareto_shape=1.3, **base),
            ).instance()
        )
        assert np.max(poisson) / np.median(poisson) < 5.0
        assert np.max(pareto) / np.median(pareto) > 5.0
        # The tail index parameterisation keeps the mean in the right regime.
        assert 1.0 < np.mean(pareto) < 20.0

    def test_pareto_mean_tracks_config(self, fat_tree):
        config = WorkloadConfig(
            num_coflows=30,
            coflow_width=16,
            mean_flow_size=6.0,
            flow_size_distribution="pareto",
            pareto_shape=2.5,
            seed=5,
        )
        sizes = all_sizes(CoflowGenerator(fat_tree, config).instance())
        assert np.mean(sizes) == pytest.approx(6.0, rel=0.5)

    def test_facebook_mixture_mice_and_elephants(self, fat_tree):
        config = WorkloadConfig(
            num_coflows=20,
            coflow_width=16,
            mean_flow_size=8.0,
            flow_size_distribution="facebook",
            seed=9,
        )
        sizes = all_sizes(CoflowGenerator(fat_tree, config).instance())
        # Trace-style shape: the median flow is small relative to the mean
        # (mice majority) while the top decile carries the bytes (elephants).
        assert np.median(sizes) < np.mean(sizes)
        assert np.percentile(sizes, 90) > 3.0 * np.median(sizes)
        assert np.min(sizes) >= 1.0

    def test_unit_sizes_overrides_family(self, fat_tree):
        config = WorkloadConfig(
            num_coflows=2,
            coflow_width=4,
            unit_sizes=True,
            flow_size_distribution="pareto",
            seed=0,
        )
        assert np.all(all_sizes(CoflowGenerator(fat_tree, config).instance()) == 1.0)


class TestEndpointFamilies:
    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError, match="endpoint distribution"):
            WorkloadConfig(endpoint_distribution="ring")
        with pytest.raises(ValueError, match="zipf"):
            WorkloadConfig(endpoint_distribution="skewed", zipf_exponent=-1.0)

    def test_incast_fan_in(self, fat_tree):
        config = WorkloadConfig(
            num_coflows=5, coflow_width=6, endpoint_distribution="incast", seed=13
        )
        instance = CoflowGenerator(fat_tree, config).instance()
        destinations = set()
        for coflow in instance:
            targets = {f.destination for f in coflow.flows}
            # All of a coflow's flows converge on one destination...
            assert len(targets) == 1
            destination = targets.pop()
            destinations.add(destination)
            # ...from sources that are never the destination itself, with
            # fan-in equal to the coflow width.
            assert all(f.source != destination for f in coflow.flows)
            assert len(coflow.flows) == 6
        # Different coflows pick their own hotspots (with 16 hosts and 5
        # coflows, a collision of all five is essentially impossible).
        assert len(destinations) > 1

    def test_skewed_concentrates_traffic(self, fat_tree):
        uniform_cfg = WorkloadConfig(num_coflows=12, coflow_width=16, seed=31)
        skewed_cfg = WorkloadConfig(
            num_coflows=12,
            coflow_width=16,
            endpoint_distribution="skewed",
            zipf_exponent=2.0,
            seed=31,
        )

        def top_share(config):
            instance = CoflowGenerator(fat_tree, config).instance()
            counts = {}
            for _, _, flow in instance.iter_flows():
                for node in (flow.source, flow.destination):
                    counts[node] = counts.get(node, 0) + 1
            total = sum(counts.values())
            return max(counts.values()) / total

        # Under Zipf(2.0) the hottest host should see far more than the
        # uniform 1/16 share of endpoints.
        assert top_share(skewed_cfg) > 2.0 * top_share(uniform_cfg)

    def test_skewed_endpoints_still_distinct(self, fat_tree):
        config = WorkloadConfig(
            num_coflows=6,
            coflow_width=10,
            endpoint_distribution="skewed",
            zipf_exponent=2.5,
            seed=2,
        )
        instance = CoflowGenerator(fat_tree, config).instance()
        assert all(f.source != f.destination for _, _, f in instance.iter_flows())


class TestTopologyField:
    def test_build_network_from_spec(self):
        config = WorkloadConfig(
            num_coflows=2,
            coflow_width=2,
            topology="leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=3)",
        )
        net = config.build_network()
        assert len(host_nodes(net)) == 6
        instance = CoflowGenerator(config=config).instance()
        assert instance.num_coflows == 2

    def test_missing_topology_raises(self):
        with pytest.raises(ValueError, match="topology"):
            WorkloadConfig().build_network()
        with pytest.raises(ValueError, match="topology"):
            CoflowGenerator(config=WorkloadConfig())

    def test_explicit_network_takes_precedence(self, fat_tree):
        config = WorkloadConfig(num_coflows=2, coflow_width=2, topology="triangle")
        generator = CoflowGenerator(fat_tree, config)
        assert len(generator.hosts) == 16
