"""Cross-model integration tests and randomized feasibility sweeps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BaselineScheme, LPBasedScheme
from repro.circuit import GivenPathsScheduler, PathsNotGivenScheduler
from repro.core import Coflow, CoflowInstance, Flow, topologies
from repro.packet import schedule_packet_coflows
from repro.sim import FlowLevelSimulator
from repro.workloads import CoflowGenerator, WorkloadConfig, mapreduce_shuffle


def test_shuffle_workload_end_to_end():
    """The motivating MapReduce shuffle runs through the whole pipeline."""
    network = topologies.fat_tree(4)
    instance = mapreduce_shuffle(
        network, num_jobs=2, mappers_per_job=3, reducers_per_job=3, bytes_per_pair=2.0
    )
    scheme = LPBasedScheme(seed=0)
    plan = scheme.plan(instance, network)
    result = FlowLevelSimulator(network).run(instance, plan)
    assert result.weighted_completion_time >= scheme.last_plan.lower_bound - 1e-6
    # the realised schedule is feasible
    routed = instance.with_paths({fid: list(p) for fid, p in plan.paths.items()})
    result.schedule.validate(routed, network)


def test_circuit_and_packet_models_agree_on_unit_instances():
    """A unit-size circuit instance and its packet twin have comparable bounds."""
    network = topologies.ring(5)
    endpoints = [("host_0", "host_2"), ("host_1", "host_3"), ("host_4", "host_1")]
    instance = CoflowInstance(
        coflows=[Coflow(flows=(Flow(s, d, size=1.0),), weight=1.0) for s, d in endpoints]
    )
    circuit = PathsNotGivenScheduler(instance, network, seed=0)
    plan, circuit_result = circuit.schedule()
    packet_outcome = schedule_packet_coflows(instance, network, seed=0)
    # Packet schedules are a restriction of circuit schedules (store-and-forward,
    # one packet per edge per step), so the packet objective can never beat the
    # circuit LP lower bound.
    assert packet_outcome.objective >= plan.lower_bound - 1e-6
    assert circuit_result.objective >= plan.lower_bound - 1e-6


def test_rounded_and_simulated_backends_rank_consistently():
    """The simulator's LP-order policy never does worse than the interval rounding."""
    network = topologies.fat_tree(4)
    instance = CoflowGenerator(
        network, WorkloadConfig(num_coflows=4, coflow_width=4, seed=17)
    ).instance()
    scheduler = PathsNotGivenScheduler(instance, network, seed=1)
    plan, rounded = scheduler.schedule()
    sim_plan = LPBasedScheme(seed=1).plan(instance, network)
    simulated = FlowLevelSimulator(network).run(instance, sim_plan)
    assert simulated.weighted_completion_time <= rounded.objective + 1e-6


@given(
    num_coflows=st.integers(min_value=1, max_value=4),
    width=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=15, deadline=None)
def test_given_paths_rounding_always_feasible(num_coflows, width, seed):
    """Property: the Section-2.1 rounding always yields a feasible schedule."""
    network = topologies.fat_tree(4)
    config = WorkloadConfig(
        num_coflows=num_coflows, coflow_width=width, seed=seed, mean_flow_size=3.0
    )
    instance = CoflowGenerator(network, config).instance()
    routed = instance.with_paths(
        {
            fid: network.shortest_path(
                instance.flow(fid).source, instance.flow(fid).destination
            )
            for fid in instance.flow_ids()
        }
    )
    result = GivenPathsScheduler(routed, network).schedule()
    result.schedule.validate(routed, network)  # raises on any violation
    assert result.objective >= result.lower_bound - 1e-6


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=10, deadline=None)
def test_simulator_never_violates_capacities(seed):
    """Property: the realised simulator schedule is always capacity-feasible."""
    network = topologies.fat_tree(4)
    instance = CoflowGenerator(
        network, WorkloadConfig(num_coflows=3, coflow_width=4, seed=seed)
    ).instance()
    plan = BaselineScheme(seed=seed).plan(instance, network)
    result = FlowLevelSimulator(network).run(instance, plan)
    routed = instance.with_paths({fid: list(p) for fid, p in plan.paths.items()})
    result.schedule.validate(routed, network)
