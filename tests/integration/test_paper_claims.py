"""Integration tests for the qualitative claims of the evaluation section.

These are the shape checks DESIGN.md commits to: on random fat-tree workloads
(the Figure-3/4 regime scaled down for CI), the LP-Based scheme beats the
Baseline and Schedule-only heuristics on average, and every scheme's simulated
objective respects the LP and combinatorial lower bounds.  Absolute numbers
are not asserted — only the relationships the paper reports.
"""

import pytest

from repro.analysis import ExperimentSweep
from repro.baselines import (
    BaselineScheme,
    LPBasedScheme,
    RouteOnlyScheme,
    ScheduleOnlyScheme,
)
from repro.circuit.lower_bounds import weighted_transfer_lower_bound
from repro.core import topologies
from repro.sim import FlowLevelSimulator
from repro.workloads import CoflowGenerator, WorkloadConfig


@pytest.fixture(scope="module")
def network():
    return topologies.fat_tree(4)


@pytest.fixture(scope="module")
def sweep_result(network):
    schemes = [
        BaselineScheme(seed=0),
        ScheduleOnlyScheme(seed=0),
        RouteOnlyScheme(),
        LPBasedScheme(seed=0),
    ]
    sweep = ExperimentSweep(network, schemes, tries=3)
    config = WorkloadConfig(num_coflows=6, coflow_width=6, seed=100)
    return sweep.run(config, "coflow_width", [4, 8], label_format="{value} flows")


def test_lp_based_beats_baseline_on_average(sweep_result):
    gain = sweep_result.average_improvement("LP-Based", "Baseline")
    assert gain > 10.0  # the paper reports ~110-126%


def test_lp_based_beats_schedule_only_on_average(sweep_result):
    gain = sweep_result.average_improvement("LP-Based", "Schedule-only")
    assert gain > 5.0  # the paper reports ~72-96%


def test_lp_based_at_least_matches_route_only_on_average(sweep_result):
    gain = sweep_result.average_improvement("LP-Based", "Route-only")
    assert gain > -5.0  # the paper reports ~22-26%; never materially worse


def test_every_point_ranks_lp_based_best_or_close(sweep_result):
    for point in sweep_result.points:
        lp = point.mean("LP-Based")
        assert lp <= point.mean("Baseline") * 1.05
        assert lp <= point.mean("Schedule-only") * 1.05


def test_all_schemes_respect_combinatorial_lower_bound(network):
    instance = CoflowGenerator(
        network, WorkloadConfig(num_coflows=5, coflow_width=5, seed=7)
    ).instance()
    lower = weighted_transfer_lower_bound(instance, network)
    simulator = FlowLevelSimulator(network)
    for scheme in [
        BaselineScheme(seed=1),
        ScheduleOnlyScheme(seed=1),
        RouteOnlyScheme(),
        LPBasedScheme(seed=1),
    ]:
        result = simulator.run(instance, scheme.plan(instance, network))
        assert result.weighted_completion_time >= lower - 1e-6


def test_lp_based_objective_respects_its_own_lp_bound(network):
    instance = CoflowGenerator(
        network, WorkloadConfig(num_coflows=4, coflow_width=6, seed=21)
    ).instance()
    scheme = LPBasedScheme(seed=3)
    plan = scheme.plan(instance, network)
    result = FlowLevelSimulator(network).run(instance, plan)
    assert result.weighted_completion_time >= scheme.last_plan.lower_bound - 1e-6
