"""Integration test reproducing the Figure-1 example of the paper.

Three coflows on a unit-capacity triangle: coflow A has flows A1 (size 2) and
A2 (size 1); coflow B has one flow of size 1 sharing A2's edge; coflow C has
one flow of size 2 sharing A1's edge.  The paper discusses three schedules:

* fair sharing (every flow gets bandwidth 1/2): total completion time 10;
* strict coflow priority A > B > C: total completion time 8;
* the optimal schedule (B ahead of A2, C after A1): total completion time 7.

The tests below reproduce all three values with the library's schedule
representation and check that the LP-driven pipeline also reaches the optimal
total of 7 when simulated.
"""

import pytest

from repro.baselines import LPGivenPathsScheme
from repro.circuit import GivenPathsScheduler
from repro.core import CircuitSchedule, Coflow, CoflowInstance, Flow, topologies
from repro.sim import FlowLevelSimulator, SimulationPlan


@pytest.fixture
def network():
    return topologies.triangle()


@pytest.fixture
def instance():
    return CoflowInstance(
        coflows=[
            Coflow(
                flows=(
                    Flow("x", "y", size=2.0, path=["x", "y"]),  # A1
                    Flow("y", "z", size=1.0, path=["y", "z"]),  # A2
                ),
                weight=1.0,
                name="A",
            ),
            Coflow(flows=(Flow("y", "z", size=1.0, path=["y", "z"]),), weight=1.0, name="B"),
            Coflow(flows=(Flow("x", "y", size=2.0, path=["x", "y"]),), weight=1.0, name="C"),
        ]
    )


def test_fair_sharing_schedule_costs_10(instance, network):
    """Schedule (s1): every flow gets bandwidth 1/2."""
    schedule = CircuitSchedule()
    durations = {(0, 0): 4.0, (0, 1): 2.0, (1, 0): 2.0, (2, 0): 4.0}
    for (i, j), horizon in durations.items():
        flow = instance.flow((i, j))
        schedule.set_path((i, j), flow.path)
        schedule.add_segment((i, j), 0.0, horizon, 0.5)
    schedule.validate(instance, network)
    completions = schedule.coflow_completion_times(instance)
    assert sum(completions.values()) == pytest.approx(10.0)


def test_priority_schedule_costs_8(instance, network):
    """Schedule (s2): priority A, then B, then C."""
    schedule = CircuitSchedule()
    schedule.set_path((0, 0), ["x", "y"])
    schedule.add_segment((0, 0), 0.0, 2.0, 1.0)
    schedule.set_path((0, 1), ["y", "z"])
    schedule.add_segment((0, 1), 0.0, 1.0, 1.0)
    schedule.set_path((1, 0), ["y", "z"])
    schedule.add_segment((1, 0), 1.0, 2.0, 1.0)
    schedule.set_path((2, 0), ["x", "y"])
    schedule.add_segment((2, 0), 2.0, 4.0, 1.0)
    schedule.validate(instance, network)
    completions = schedule.coflow_completion_times(instance)
    assert completions == pytest.approx({0: 2.0, 1: 2.0, 2: 4.0})
    assert sum(completions.values()) == pytest.approx(8.0)


def test_optimal_schedule_costs_7(instance, network):
    """Schedule (s3): B goes ahead of A2, C follows A1; total is 7."""
    schedule = CircuitSchedule()
    schedule.set_path((0, 0), ["x", "y"])
    schedule.add_segment((0, 0), 0.0, 2.0, 1.0)
    schedule.set_path((0, 1), ["y", "z"])
    schedule.add_segment((0, 1), 1.0, 2.0, 1.0)
    schedule.set_path((1, 0), ["y", "z"])
    schedule.add_segment((1, 0), 0.0, 1.0, 1.0)
    schedule.set_path((2, 0), ["x", "y"])
    schedule.add_segment((2, 0), 2.0, 4.0, 1.0)
    schedule.validate(instance, network)
    completions = schedule.coflow_completion_times(instance)
    assert completions == pytest.approx({0: 2.0, 1: 1.0, 2: 4.0})
    assert sum(completions.values()) == pytest.approx(7.0)


def test_lp_lower_bound_is_below_the_optimum(instance, network):
    relaxation = GivenPathsScheduler(instance, network).relax()
    assert relaxation.lower_bound <= 7.0 + 1e-6


def test_lp_ordered_simulation_matches_the_optimum(instance, network):
    """The LP ordering fed to the work-conserving simulator achieves 7."""
    scheme = LPGivenPathsScheme()
    plan = scheme.plan(instance, network)
    result = FlowLevelSimulator(network).run(instance, plan)
    assert result.total_completion_time == pytest.approx(7.0, abs=1e-6)


def test_interval_rounding_stays_within_provable_factor(instance, network):
    scheduler = GivenPathsScheduler(instance, network)
    result = scheduler.schedule()
    assert result.objective <= scheduler.parameters.blowup_factor * 7.0
