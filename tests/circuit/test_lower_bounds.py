"""Tests for the combinatorial lower bounds."""

import pytest

from repro.circuit.lower_bounds import (
    coflow_transfer_lower_bound,
    flow_transfer_lower_bound,
    given_paths_congestion_lower_bound,
    weighted_transfer_lower_bound,
)
from repro.core import Coflow, CoflowInstance, Flow, topologies


@pytest.fixture
def triangle():
    return topologies.triangle()


def test_flow_transfer_bound(triangle):
    bound = flow_transfer_lower_bound("x", "y", size=2.0, release_time=1.0, network=triangle)
    assert bound == pytest.approx(3.0)  # 1 + 2 / capacity 1


def test_zero_size_flow_bound_is_release(triangle):
    assert flow_transfer_lower_bound("x", "y", 0.0, 4.0, triangle) == 4.0


def test_coflow_bound_is_max(triangle):
    instance = CoflowInstance(
        coflows=[
            Coflow(
                flows=(
                    Flow("x", "y", size=1.0),
                    Flow("y", "z", size=3.0),
                )
            )
        ]
    )
    assert coflow_transfer_lower_bound(instance, 0, triangle) == pytest.approx(3.0)


def test_weighted_bound(triangle):
    instance = CoflowInstance(
        coflows=[
            Coflow(flows=(Flow("x", "y", size=2.0),), weight=2.0),
            Coflow(flows=(Flow("y", "z", size=1.0),), weight=3.0),
        ]
    )
    assert weighted_transfer_lower_bound(instance, triangle) == pytest.approx(
        2.0 * 2.0 + 3.0 * 1.0
    )


def test_congestion_bound_requires_paths(triangle):
    instance = CoflowInstance(coflows=[Coflow(flows=(Flow("x", "y", size=1.0),))])
    with pytest.raises(ValueError):
        given_paths_congestion_lower_bound(instance, triangle)


def test_congestion_bound_value(triangle):
    instance = CoflowInstance(
        coflows=[
            Coflow(flows=(Flow("x", "y", size=2.0, path=["x", "y"]),)),
            Coflow(flows=(Flow("x", "y", size=3.0, path=["x", "y"]),)),
        ]
    )
    assert given_paths_congestion_lower_bound(instance, triangle) == pytest.approx(5.0)


def test_bounds_hold_against_simulated_schedules(triangle):
    """Combinatorial bounds never exceed what any executable scheme achieves."""
    from repro.baselines import BaselineScheme
    from repro.sim import FlowLevelSimulator

    instance = CoflowInstance(
        coflows=[
            Coflow(flows=(Flow("x", "y", size=2.0), Flow("y", "z", size=1.0)), weight=1.5),
            Coflow(flows=(Flow("z", "x", size=2.0),), weight=1.0),
        ]
    )
    plan = BaselineScheme(seed=0).plan(instance, triangle)
    result = FlowLevelSimulator(triangle).run(instance, plan)
    assert result.weighted_completion_time >= weighted_transfer_lower_bound(
        instance, triangle
    ) - 1e-9
