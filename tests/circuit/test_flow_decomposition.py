"""Tests for flow decomposition into thickest-first paths."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import decompose_flow
from repro.circuit.flow_decomposition import PathFlow, flow_value


class TestPathFlow:
    def test_edges_and_length(self):
        pf = PathFlow(path=("a", "b", "c"), value=2.0)
        assert pf.edges == [("a", "b"), ("b", "c")]
        assert pf.length == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            PathFlow(path=("a",), value=1.0)
        with pytest.raises(ValueError):
            PathFlow(path=("a", "b"), value=0.0)


class TestDecomposeFlow:
    def test_single_path(self):
        flow = {("s", "a"): 2.0, ("a", "t"): 2.0}
        decomposition = decompose_flow(flow, "s", "t")
        assert decomposition.num_paths == 1
        assert decomposition.paths[0].path == ("s", "a", "t")
        assert decomposition.total_value == pytest.approx(2.0)
        assert decomposition.residual == {}

    def test_two_parallel_paths_thickest_first(self):
        flow = {
            ("s", "a"): 3.0,
            ("a", "t"): 3.0,
            ("s", "b"): 1.0,
            ("b", "t"): 1.0,
        }
        decomposition = decompose_flow(flow, "s", "t")
        assert decomposition.num_paths == 2
        assert decomposition.paths[0].value == pytest.approx(3.0)
        assert decomposition.paths[0].path == ("s", "a", "t")
        assert decomposition.paths[1].value == pytest.approx(1.0)
        assert decomposition.total_value == pytest.approx(4.0)

    def test_split_and_merge(self):
        # s -> {a, b} -> m -> t, bottleneck at (m, t)
        flow = {
            ("s", "a"): 1.0,
            ("s", "b"): 1.0,
            ("a", "m"): 1.0,
            ("b", "m"): 1.0,
            ("m", "t"): 2.0,
        }
        decomposition = decompose_flow(flow, "s", "t")
        assert decomposition.total_value == pytest.approx(2.0)
        loads = decomposition.edge_loads()
        for edge, value in flow.items():
            assert loads.get(edge, 0.0) == pytest.approx(value)

    def test_cycle_is_cancelled(self):
        flow = {
            ("s", "a"): 1.0,
            ("a", "t"): 1.0,
            # a useless cycle b -> c -> b
            ("b", "c"): 0.7,
            ("c", "b"): 0.7,
        }
        decomposition = decompose_flow(flow, "s", "t")
        assert decomposition.num_paths == 1
        assert decomposition.total_value == pytest.approx(1.0)
        assert decomposition.residual == {}

    def test_residual_reported_when_disconnected(self):
        flow = {("a", "b"): 1.0}  # carries no s -> t flow
        decomposition = decompose_flow(flow, "s", "t")
        assert decomposition.num_paths == 0
        assert decomposition.residual == {("a", "b"): 1.0}

    def test_max_paths_cap(self):
        flow = {
            ("s", "a"): 1.0,
            ("a", "t"): 1.0,
            ("s", "b"): 1.0,
            ("b", "t"): 1.0,
        }
        decomposition = decompose_flow(flow, "s", "t", max_paths=1)
        assert decomposition.num_paths == 1
        assert decomposition.residual  # leftover flow reported

    def test_probabilities(self):
        flow = {
            ("s", "a"): 3.0,
            ("a", "t"): 3.0,
            ("s", "b"): 1.0,
            ("b", "t"): 1.0,
        }
        decomposition = decompose_flow(flow, "s", "t")
        probs = decomposition.probabilities()
        assert sum(probs) == pytest.approx(1.0)
        assert probs[0] == pytest.approx(0.75)

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError):
            decompose_flow({}, "s", "s")

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            decompose_flow({("a", "a"): 1.0}, "s", "t")

    def test_flow_value_helper(self):
        flow = {("s", "a"): 2.0, ("a", "t"): 2.0}
        assert flow_value(flow, "s") == pytest.approx(2.0)
        assert flow_value(flow, "a") == pytest.approx(0.0)
        assert flow_value(flow, "t") == pytest.approx(-2.0)


# --------------------------------------------------------------------------
# Property-based: decomposing a known mixture of paths recovers its value and
# never exceeds per-edge flow.
# --------------------------------------------------------------------------
@st.composite
def path_mixtures(draw):
    """Random mixtures of simple s->t paths over a small layered graph."""
    num_middle = draw(st.integers(min_value=1, max_value=4))
    middles = [f"m{k}" for k in range(num_middle)]
    num_paths = draw(st.integers(min_value=1, max_value=5))
    paths = []
    for _ in range(num_paths):
        middle = draw(st.sampled_from(middles))
        value = draw(st.floats(min_value=0.1, max_value=4.0))
        paths.append((("s", middle, "t"), value))
    return paths


@given(path_mixtures())
@settings(max_examples=60, deadline=None)
def test_decomposition_conserves_mixture_value(paths):
    flow = {}
    total = 0.0
    for path, value in paths:
        total += value
        for edge in zip(path[:-1], path[1:]):
            flow[edge] = flow.get(edge, 0.0) + value
    decomposition = decompose_flow(flow, "s", "t")
    assert decomposition.total_value == pytest.approx(total, rel=1e-6)
    # The decomposition never uses more flow on an edge than was present.
    loads = decomposition.edge_loads()
    for edge, load in loads.items():
        assert load <= flow[edge] + 1e-6
