"""Tests for Raghavan–Thompson randomized path selection."""

import random

import pytest

from repro.circuit import chernoff_congestion_bound, congestion_after_rounding, round_paths
from repro.circuit.flow_decomposition import FlowDecomposition, PathFlow
from repro.circuit.randomized_rounding import choose_path
from repro.core import topologies


def make_decomposition(values):
    paths = [
        PathFlow(path=("s", f"m{k}", "t"), value=v) for k, v in enumerate(values)
    ]
    return FlowDecomposition(source="s", sink="t", paths=paths, residual={})


class TestChoosePath:
    def test_deterministic_given_seed(self):
        decomposition = make_decomposition([1.0, 2.0, 3.0])
        a = choose_path(decomposition, random.Random(7)).path
        b = choose_path(decomposition, random.Random(7)).path
        assert a == b

    def test_single_path_always_chosen(self):
        decomposition = make_decomposition([2.5])
        for seed in range(5):
            assert choose_path(decomposition, random.Random(seed)).path == ("s", "m0", "t")

    def test_empty_decomposition_raises(self):
        empty = FlowDecomposition(source="s", sink="t", paths=[], residual={})
        with pytest.raises(ValueError):
            choose_path(empty, random.Random(0))

    def test_probabilities_roughly_proportional(self):
        decomposition = make_decomposition([1.0, 9.0])
        rng = random.Random(123)
        picks = sum(
            1 for _ in range(2000) if choose_path(decomposition, rng).path == ("s", "m1", "t")
        )
        assert picks / 2000 == pytest.approx(0.9, abs=0.05)


class TestRoundPaths:
    def test_round_paths_outcome(self):
        decompositions = {
            (0, 0): make_decomposition([1.0, 1.0]),
            (0, 1): make_decomposition([2.0]),
        }
        outcome = round_paths(decompositions, seed=1)
        assert set(outcome.paths) == {(0, 0), (0, 1)}
        assert outcome.candidates == {(0, 0): 2, (0, 1): 1}
        assert outcome.congestion_factor is None

    def test_deterministic_given_seed(self):
        decompositions = {(0, k): make_decomposition([1.0, 1.0, 1.0]) for k in range(5)}
        a = round_paths(decompositions, seed=9).paths
        b = round_paths(decompositions, seed=9).paths
        assert a == b

    def test_congestion_factor_computed(self):
        net = topologies.triangle()
        decompositions = {
            (0, 0): FlowDecomposition(
                source="x", sink="y",
                paths=[PathFlow(path=("x", "y"), value=1.0)], residual={},
            ),
            (1, 0): FlowDecomposition(
                source="x", sink="y",
                paths=[PathFlow(path=("x", "y"), value=1.0)], residual={},
            ),
        }
        demands = {(0, 0): 1.0, (1, 0): 1.0}
        outcome = round_paths(decompositions, network=net, demands=demands, seed=0)
        # both flows forced onto the unit-capacity edge (x, y): factor 2
        assert outcome.congestion_factor == pytest.approx(2.0)


class TestCongestion:
    def test_congestion_after_rounding(self):
        net = topologies.triangle()
        paths = {(0, 0): ["x", "y"], (1, 0): ["x", "y", "z"]}
        demands = {(0, 0): 0.5, (1, 0): 0.75}
        factor = congestion_after_rounding(paths, net, demands)
        assert factor == pytest.approx(1.25)

    def test_chernoff_bound_grows_slowly(self):
        small = chernoff_congestion_bound(10)
        large = chernoff_congestion_bound(10_000)
        assert 1.0 < small < large
        # Theta(log E / log log E): far below linear growth.
        assert large < small * 10

    def test_chernoff_bound_validation(self):
        with pytest.raises(ValueError):
            chernoff_congestion_bound(0)
        with pytest.raises(ValueError):
            chernoff_congestion_bound(10, failure_probability=2.0)
