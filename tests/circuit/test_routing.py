"""Tests for the Section-2.2 routing LP (both formulations)."""

import numpy as np
import pytest

from repro.circuit import RoutingLP
from repro.circuit.routing import lower_bound
from repro.core import Coflow, CoflowInstance, Flow, topologies


@pytest.fixture
def triangle():
    return topologies.triangle()


@pytest.fixture
def diamond_net():
    """Two disjoint 2-hop routes between host_0 and host_3."""
    from repro.core import Network

    net = Network(default_capacity=1.0)
    net.add_bidirectional_edge("host_0", "host_1")
    net.add_bidirectional_edge("host_1", "host_3")
    net.add_bidirectional_edge("host_0", "host_2")
    net.add_bidirectional_edge("host_2", "host_3")
    return net


@pytest.fixture
def two_flow_instance():
    return CoflowInstance(
        coflows=[
            Coflow(flows=(Flow("host_0", "host_3", size=1.0),), weight=1.0),
            Coflow(flows=(Flow("host_0", "host_3", size=1.0),), weight=1.0),
        ]
    )


class TestFormulations:
    @pytest.mark.parametrize("formulation", ["path", "edge"])
    def test_fractions_sum_to_one(self, diamond_net, two_flow_instance, formulation):
        relaxation = RoutingLP(
            two_flow_instance, diamond_net, formulation=formulation
        ).relax()
        for fractions in relaxation.fractions.values():
            assert fractions.sum() == pytest.approx(1.0, abs=1e-6)

    @pytest.mark.parametrize("formulation", ["path", "edge"])
    def test_edge_volumes_deliver_flow_size(self, diamond_net, two_flow_instance, formulation):
        relaxation = RoutingLP(
            two_flow_instance, diamond_net, formulation=formulation
        ).relax()
        for fid, decomposition in relaxation.decompositions().items():
            size = two_flow_instance.flow(fid).size
            assert decomposition.total_value == pytest.approx(size, abs=1e-5)

    def test_formulations_agree_on_objective(self, diamond_net, two_flow_instance):
        path_obj = RoutingLP(
            two_flow_instance, diamond_net, formulation="path"
        ).relax().objective
        edge_obj = RoutingLP(
            two_flow_instance, diamond_net, formulation="edge"
        ).relax().objective
        # The candidate path set contains every shortest path of this network,
        # and optima route along shortest paths here, so the bounds coincide.
        assert path_obj == pytest.approx(edge_obj, rel=0.05)

    def test_edge_formulation_never_weaker(self, diamond_net, two_flow_instance):
        # The edge formulation optimises over a superset of routings, so its
        # optimum cannot exceed the path formulation's.
        path_obj = RoutingLP(
            two_flow_instance, diamond_net, formulation="path"
        ).relax().objective
        edge_obj = RoutingLP(
            two_flow_instance, diamond_net, formulation="edge"
        ).relax().objective
        assert edge_obj <= path_obj + 1e-6

    def test_unknown_formulation_rejected(self, diamond_net, two_flow_instance):
        with pytest.raises(ValueError):
            RoutingLP(two_flow_instance, diamond_net, formulation="quantum")

    def test_missing_endpoint_rejected(self, diamond_net):
        instance = CoflowInstance(coflows=[Coflow(flows=(Flow("host_0", "mars"),))])
        with pytest.raises(ValueError):
            RoutingLP(instance, diamond_net)


class TestRelaxationProperties:
    def test_lp_uses_both_routes_under_contention(self, diamond_net, two_flow_instance):
        """With two unit flows and two disjoint routes the LP spreads load."""
        relaxation = RoutingLP(two_flow_instance, diamond_net, formulation="path").relax()
        # Combined, the two flows use more than one route (some mass on each side).
        used_edges = set()
        for volumes in relaxation.edge_volumes.values():
            used_edges.update(e for e, v in volumes.items() if v > 1e-6)
        assert ("host_0", "host_1") in used_edges or ("host_0", "host_2") in used_edges
        assert len(used_edges) >= 3

    def test_lower_bound_scaling(self, diamond_net, two_flow_instance):
        relaxation = RoutingLP(two_flow_instance, diamond_net).relax()
        assert relaxation.lower_bound == pytest.approx(
            relaxation.objective / 2.0
        )  # epsilon = 1

    def test_lower_bound_helper(self, diamond_net, two_flow_instance):
        assert lower_bound(two_flow_instance, diamond_net) > 0.0

    def test_release_times_respected(self, triangle):
        instance = CoflowInstance(
            coflows=[Coflow(flows=(Flow("x", "y", size=1.0, release_time=5.0),))]
        )
        relaxation = RoutingLP(instance, triangle).relax()
        grid = relaxation.grid
        fractions = relaxation.fractions[(0, 0)]
        for ell in range(grid.num_intervals):
            if grid.right(ell) < 5.0 - 1e-9:
                assert fractions[ell] == pytest.approx(0.0, abs=1e-8)

    def test_flow_order_covers_all_flows(self, diamond_net, two_flow_instance):
        relaxation = RoutingLP(two_flow_instance, diamond_net).relax()
        assert set(relaxation.flow_order()) == set(two_flow_instance.flow_ids())

    def test_weighted_objective_prefers_heavy_coflow(self, triangle):
        """The heavier coflow gets the earlier LP completion time."""
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=2.0),), weight=10.0),
                Coflow(flows=(Flow("x", "y", size=2.0),), weight=1.0),
            ]
        )
        relaxation = RoutingLP(instance, triangle).relax()
        assert (
            relaxation.coflow_completion[0] <= relaxation.coflow_completion[1] + 1e-6
        )

    def test_zero_size_flow_skipped(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=0.0), Flow("y", "z", size=1.0)),)
            ]
        )
        relaxation = RoutingLP(instance, triangle).relax()
        decompositions = relaxation.decompositions()
        assert (0, 0) not in decompositions
        assert (0, 1) in decompositions
