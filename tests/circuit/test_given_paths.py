"""Tests for the Section-2.1 algorithm (circuit coflows with given paths)."""

import pytest

from repro.circuit import GivenPathsLP, GivenPathsScheduler, feasible_rounding_parameters
from repro.circuit.given_paths import lower_bound
from repro.core import Coflow, CoflowInstance, Flow, RoundingParameters, topologies
from repro.core.schedule import ScheduleError


@pytest.fixture
def triangle():
    return topologies.triangle()


@pytest.fixture
def figure1_instance():
    """The Figure-1 instance: coflows A (2 flows), B, C on the triangle.

    A1 and C share the (x, y) edge; A2 and B share the (y, z) edge — the
    configuration under which the paper's three schedules cost 10, 8 and 7.
    """
    return CoflowInstance(
        coflows=[
            Coflow(
                flows=(
                    Flow("x", "y", size=2.0, path=["x", "y"]),
                    Flow("y", "z", size=1.0, path=["y", "z"]),
                ),
                weight=1.0,
                name="A",
            ),
            Coflow(flows=(Flow("y", "z", size=1.0, path=["y", "z"]),), weight=1.0, name="B"),
            Coflow(flows=(Flow("x", "y", size=2.0, path=["x", "y"]),), weight=1.0, name="C"),
        ]
    )


@pytest.fixture
def tree_instance():
    """Unique-path instance on a small tree (paths given by construction)."""
    net = topologies.tree(depth=2, fanout=2)
    hosts = [n for n in net.nodes() if str(n).startswith("host")]
    flows = []
    for k in range(3):
        src, dst = hosts[k % len(hosts)], hosts[(k + 1) % len(hosts)]
        flows.append(
            Flow(src, dst, size=1.0 + k, path=net.shortest_path(src, dst))
        )
    instance = CoflowInstance(
        coflows=[Coflow(flows=(f,), weight=1.0 + i) for i, f in enumerate(flows)]
    )
    return net, instance


class TestLPRelaxation:
    def test_requires_paths(self, triangle):
        instance = CoflowInstance(coflows=[Coflow(flows=(Flow("x", "y"),))])
        with pytest.raises(ValueError, match="fixed path"):
            GivenPathsLP(instance, triangle)

    def test_path_must_exist_in_network(self, triangle):
        instance = CoflowInstance(
            coflows=[Coflow(flows=(Flow("x", "ghost", path=["x", "ghost"]),))]
        )
        with pytest.raises(ValueError):
            GivenPathsLP(instance, triangle)

    def test_fractions_sum_to_one(self, figure1_instance, triangle):
        relaxation = GivenPathsLP(figure1_instance, triangle).relax()
        for fid, fractions in relaxation.fractions.items():
            assert fractions.sum() == pytest.approx(1.0, abs=1e-6)
            assert (fractions >= -1e-9).all()

    def test_capacity_respected_per_interval(self, figure1_instance, triangle):
        relaxation = GivenPathsLP(figure1_instance, triangle).relax()
        grid = relaxation.grid
        # flows (0,1) and (1,0) share edge (y, z) with capacity 1
        for ell in range(grid.num_intervals):
            rate = (
                figure1_instance.flow((0, 1)).size * relaxation.fractions[(0, 1)][ell]
                + figure1_instance.flow((1, 0)).size * relaxation.fractions[(1, 0)][ell]
            ) / grid.length(ell)
            assert rate <= 1.0 + 1e-6

    def test_lower_bound_below_optimum(self, figure1_instance, triangle):
        # The optimal total completion time of the Figure-1 instance is 7.
        assert lower_bound(figure1_instance, triangle) <= 7.0 + 1e-6

    def test_coflow_completion_dominates_flows(self, figure1_instance, triangle):
        relaxation = GivenPathsLP(figure1_instance, triangle).relax()
        for (i, j), c in relaxation.flow_completion.items():
            assert relaxation.coflow_completion[i] >= c - 1e-6

    def test_release_times_respected_in_lp(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(
                    flows=(Flow("x", "y", size=1.0, release_time=4.0, path=["x", "y"]),)
                )
            ]
        )
        relaxation = GivenPathsLP(instance, triangle).relax()
        grid = relaxation.grid
        fractions = relaxation.fractions[(0, 0)]
        for ell in range(grid.num_intervals):
            if grid.right(ell) < 4.0 - 1e-9:
                assert fractions[ell] == pytest.approx(0.0, abs=1e-9)
        # completion proxy cannot be earlier than some positive value
        assert relaxation.flow_completion[(0, 0)] > 0.0

    def test_flow_order_deterministic(self, figure1_instance, triangle):
        rel1 = GivenPathsLP(figure1_instance, triangle).relax()
        rel2 = GivenPathsLP(figure1_instance, triangle).relax()
        assert rel1.flow_order() == rel2.flow_order()
        assert set(rel1.flow_order()) == set(figure1_instance.flow_ids())

    def test_weights_scale_objective(self, triangle):
        def build(weight):
            return CoflowInstance(
                coflows=[
                    Coflow(flows=(Flow("x", "y", size=2.0, path=["x", "y"]),), weight=weight)
                ]
            )

        obj1 = GivenPathsLP(build(1.0), triangle).relax().objective
        obj3 = GivenPathsLP(build(3.0), triangle).relax().objective
        assert obj3 == pytest.approx(3.0 * obj1, rel=1e-6)


class TestRounding:
    def test_schedule_is_feasible(self, figure1_instance, triangle):
        result = GivenPathsScheduler(figure1_instance, triangle).schedule()
        result.schedule.validate(figure1_instance, triangle)  # no exception

    def test_objective_at_least_lower_bound(self, figure1_instance, triangle):
        result = GivenPathsScheduler(figure1_instance, triangle).schedule()
        assert result.objective >= result.lower_bound - 1e-6

    def test_measured_ratio_within_provable_blowup(self, figure1_instance, triangle):
        scheduler = GivenPathsScheduler(figure1_instance, triangle)
        result = scheduler.schedule()
        assert result.approximation_ratio <= scheduler.parameters.blowup_factor + 1e-6

    def test_tree_instance_end_to_end(self, tree_instance):
        net, instance = tree_instance
        result = GivenPathsScheduler(instance, net).schedule()
        result.schedule.validate(instance, net)
        assert result.objective >= result.lower_bound - 1e-6

    def test_release_times_respected_in_schedule(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(
                    flows=(Flow("x", "y", size=1.0, release_time=3.0, path=["x", "y"]),)
                )
            ]
        )
        result = GivenPathsScheduler(instance, triangle).schedule()
        assert result.schedule.start_time((0, 0)) >= 3.0 - 1e-9

    def test_target_interval_is_alpha_plus_displacement(self, figure1_instance, triangle):
        scheduler = GivenPathsScheduler(figure1_instance, triangle)
        relaxation = scheduler.relax()
        result = scheduler.round(relaxation)
        params = scheduler.parameters
        grid = relaxation.grid
        for fid, target in result.target_intervals.items():
            h = grid.alpha_interval(relaxation.fractions[fid], params.alpha)
            assert target == h + params.displacement

    def test_strict_rejects_unsafe_parameters(self, figure1_instance, triangle):
        unsafe = RoundingParameters(alpha=0.5, displacement=3, epsilon=0.5436)
        scheduler = GivenPathsScheduler(
            figure1_instance, triangle, parameters=unsafe, strict=True
        )
        with pytest.raises(ScheduleError, match="alpha"):
            scheduler.schedule()

    def test_non_strict_allows_paper_parameters(self, figure1_instance, triangle):
        unsafe = RoundingParameters(alpha=0.5, displacement=3, epsilon=0.5436)
        scheduler = GivenPathsScheduler(
            figure1_instance, triangle, parameters=unsafe, strict=False
        )
        result = scheduler.schedule()
        assert result.objective > 0.0

    def test_zero_size_flow_handled(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(
                    flows=(
                        Flow("x", "y", size=0.0, path=["x", "y"]),
                        Flow("y", "z", size=1.0, path=["y", "z"]),
                    )
                )
            ]
        )
        result = GivenPathsScheduler(instance, triangle).schedule()
        assert result.objective >= 0.0

    def test_lp_order_policy(self, figure1_instance, triangle):
        order = GivenPathsScheduler(figure1_instance, triangle).lp_order()
        assert set(order) == set(figure1_instance.flow_ids())


class TestFeasibleParameters:
    def test_default_parameters_satisfy_strong_condition(self):
        params = feasible_rounding_parameters()
        margin = (
            params.alpha
            * params.epsilon
            * (1.0 + params.epsilon) ** (params.displacement - 1)
        )
        assert margin >= 1.0 - 1e-9

    def test_default_blowup_reasonable(self):
        assert feasible_rounding_parameters().blowup_factor < 30.0
