"""End-to-end tests for Algorithm 1 (circuit coflows, paths not given)."""

import pytest

from repro.circuit import PathsNotGivenScheduler, route_and_order
from repro.circuit.lower_bounds import weighted_transfer_lower_bound
from repro.core import Coflow, CoflowInstance, Flow, topologies
from repro.sim import FlowLevelSimulator, SimulationPlan
from repro.workloads import CoflowGenerator, WorkloadConfig


@pytest.fixture
def fat_tree():
    return topologies.fat_tree(4)


@pytest.fixture
def workload(fat_tree):
    config = WorkloadConfig(num_coflows=4, coflow_width=3, seed=11)
    return CoflowGenerator(fat_tree, config).instance()


class TestRoutingPlan:
    def test_every_flow_gets_exactly_one_valid_path(self, fat_tree, workload):
        plan = route_and_order(workload, fat_tree, seed=5)
        assert set(plan.paths) == set(workload.flow_ids())
        for fid, path in plan.paths.items():
            flow = workload.flow(fid)
            assert path[0] == flow.source and path[-1] == flow.destination
            fat_tree.validate_path(list(path))

    def test_routed_instance_has_paths(self, fat_tree, workload):
        plan = route_and_order(workload, fat_tree, seed=5)
        assert plan.routed_instance.all_paths_given

    def test_flow_order_complete_and_deterministic(self, fat_tree, workload):
        plan1 = route_and_order(workload, fat_tree, seed=5)
        plan2 = route_and_order(workload, fat_tree, seed=5)
        assert plan1.flow_order == plan2.flow_order
        assert set(plan1.flow_order) == set(workload.flow_ids())

    def test_rounding_seed_changes_are_contained(self, fat_tree, workload):
        """Different rounding seeds may change paths but never break validity."""
        for seed in (1, 2, 3):
            plan = route_and_order(workload, fat_tree, seed=seed)
            for path in plan.paths.values():
                fat_tree.validate_path(list(path))

    def test_congestion_factor_reported(self, fat_tree, workload):
        plan = route_and_order(workload, fat_tree, seed=5)
        assert plan.congestion_factor is not None
        assert plan.congestion_factor > 0.0

    def test_fat_tree_paths_are_mostly_unique(self, fat_tree, workload):
        """The paper observes the decomposition returns one path per flow on fat-trees."""
        plan = route_and_order(workload, fat_tree, seed=5)
        assert plan.average_candidate_paths <= 2.5

    def test_lower_bound_positive_and_consistent(self, fat_tree, workload):
        plan = route_and_order(workload, fat_tree, seed=5)
        assert plan.lower_bound > 0.0


class TestProvableSchedule:
    def test_schedule_feasible_and_above_lower_bound(self, fat_tree, workload):
        scheduler = PathsNotGivenScheduler(workload, fat_tree, seed=2)
        plan, result = scheduler.schedule()
        result.schedule.validate(plan.routed_instance, fat_tree)
        assert result.objective >= plan.lower_bound - 1e-6

    def test_triangle_instance(self):
        net = topologies.triangle()
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=2.0), Flow("y", "z", size=1.0)), weight=1.0),
                Coflow(flows=(Flow("y", "z", size=1.0),), weight=1.0),
                Coflow(flows=(Flow("z", "x", size=2.0),), weight=1.0),
            ]
        )
        scheduler = PathsNotGivenScheduler(instance, net, seed=0)
        plan, result = scheduler.schedule()
        result.schedule.validate(plan.routed_instance, net)
        assert result.objective >= weighted_transfer_lower_bound(instance, net) - 1e-6


class TestSimulatedPolicy:
    def test_lp_plan_runs_in_simulator(self, fat_tree, workload):
        plan = route_and_order(workload, fat_tree, seed=5)
        sim_plan = SimulationPlan(
            paths=dict(plan.paths), order=list(plan.flow_order), name="LP-Based"
        )
        result = FlowLevelSimulator(fat_tree).run(workload, sim_plan)
        # The realised schedule is feasible and above the LP lower bound.
        result.schedule.validate(plan.routed_instance, fat_tree)
        assert result.weighted_completion_time >= plan.lower_bound - 1e-6
