"""Tests for the deterministic thickest-path selection rule (Section 4.2)."""

import pytest

from repro.circuit.flow_decomposition import FlowDecomposition, PathFlow
from repro.circuit.randomized_rounding import thickest_paths
from repro.core import Network


def decomposition(paths_with_values, source="s", sink="t"):
    return FlowDecomposition(
        source=source,
        sink=sink,
        paths=[PathFlow(path=p, value=v) for p, v in paths_with_values],
        residual={},
    )


@pytest.fixture
def two_route_network():
    net = Network(default_capacity=1.0)
    net.add_edge("s", "a")
    net.add_edge("a", "t")
    net.add_edge("s", "b")
    net.add_edge("b", "t")
    return net


def test_picks_the_dominant_path():
    decompositions = {
        (0, 0): decomposition([(("s", "a", "t"), 3.0), (("s", "b", "t"), 0.5)])
    }
    outcome = thickest_paths(decompositions)
    assert outcome.paths[(0, 0)] == ("s", "a", "t")
    assert outcome.candidates[(0, 0)] == 2


def test_near_ties_spread_by_load(two_route_network):
    decompositions = {
        (0, 0): decomposition([(("s", "a", "t"), 1.0), (("s", "b", "t"), 1.0)]),
        (1, 0): decomposition([(("s", "a", "t"), 1.0), (("s", "b", "t"), 1.0)]),
    }
    demands = {(0, 0): 1.0, (1, 0): 1.0}
    outcome = thickest_paths(decompositions, network=two_route_network, demands=demands)
    # The two flows pick different routes, so no edge carries both.
    assert outcome.paths[(0, 0)] != outcome.paths[(1, 0)]
    assert outcome.congestion_factor == pytest.approx(1.0)


def test_deterministic():
    decompositions = {
        (0, k): decomposition([(("s", "a", "t"), 2.0), (("s", "b", "t"), 1.9)])
        for k in range(4)
    }
    assert thickest_paths(decompositions).paths == thickest_paths(decompositions).paths


def test_empty_decomposition_raises():
    empty = FlowDecomposition(source="s", sink="t", paths=[], residual={})
    with pytest.raises(ValueError):
        thickest_paths({(0, 0): empty})


def test_larger_demands_routed_first(two_route_network):
    """The big flow claims its best route before the small ones."""
    decompositions = {
        (0, 0): decomposition([(("s", "a", "t"), 1.0), (("s", "b", "t"), 0.99)]),
        (1, 0): decomposition([(("s", "a", "t"), 1.0), (("s", "b", "t"), 0.99)]),
    }
    demands = {(0, 0): 10.0, (1, 0): 1.0}
    outcome = thickest_paths(decompositions, network=two_route_network, demands=demands)
    # The heavy flow gets the genuinely thickest route; the light one avoids it.
    assert outcome.paths[(0, 0)] == ("s", "a", "t")
    assert outcome.paths[(1, 0)] == ("s", "b", "t")
