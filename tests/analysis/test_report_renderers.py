"""Edge-case and golden-file tests for the report renderers.

The Markdown and CSV renders are pinned by golden files under
``tests/analysis/golden/`` — ``repro report`` promises byte-identical
re-renders from a run store, so the formats themselves must not drift
silently.  Regenerate the golden files by running this module directly::

    PYTHONPATH=src python tests/analysis/test_report_renderers.py
"""

from pathlib import Path

import pytest

from repro.analysis.report import (
    REPORT_FORMATS,
    csv_report,
    failure_rows,
    format_csv,
    format_markdown,
    format_table,
    improvement_summary,
    ratio_rows,
    ratio_table,
    render_report,
    sweep_rows,
    sweep_table,
)
from repro.analysis.sweep import SweepPoint, SweepResult

GOLDEN_DIR = Path(__file__).parent / "golden"


def reference_result() -> SweepResult:
    """A small deterministic sweep: 2 points x 2 schemes x 2 tries."""
    result = SweepResult(metric="weighted_completion_time")
    first = SweepPoint(label="4 flows")
    first.add("LP-Based", 10.0)
    first.add("LP-Based", 20.0)
    first.add("Baseline", 20.0)
    first.add("Baseline", 50.0)
    second = SweepPoint(label="8 flows")
    second.add("LP-Based", 30.0)
    second.add("LP-Based", 40.0)
    second.add("Baseline", 60.0)
    second.add("Baseline", 100.0)
    result.points = [first, second]
    return result


def golden_markdown() -> str:
    return render_report(
        reference_result(), "Reference sweep", reference="Baseline", fmt="markdown"
    )


def golden_csv() -> str:
    return render_report(
        reference_result(), "Reference sweep", reference="Baseline", fmt="csv"
    )


class TestGolden:
    def test_markdown_matches_golden(self):
        expected = (GOLDEN_DIR / "reference_report.md").read_text()
        assert golden_markdown() + "\n" == expected

    def test_csv_matches_golden(self):
        expected = (GOLDEN_DIR / "reference_report.csv").read_text()
        assert golden_csv() == expected

    def test_text_contains_both_panels(self):
        text = render_report(
            reference_result(), "Reference sweep", reference="Baseline", fmt="text"
        )
        assert "avg weighted completion time" in text
        assert "ratio w.r.t. Baseline" in text


class TestEmptySweep:
    def test_all_formats_render_headers_only(self):
        empty = SweepResult(metric="weighted_completion_time")
        for fmt in REPORT_FORMATS:
            rendered = render_report(empty, "Empty", reference=None, fmt=fmt)
            assert "point" in rendered

    def test_sweep_table_empty(self):
        empty = SweepResult(metric="weighted_completion_time")
        table = sweep_table(empty, "Empty")
        assert table.splitlines()[1].startswith("point")

    def test_csv_report_empty_has_header_only(self):
        empty = SweepResult(metric="weighted_completion_time")
        lines = csv_report(empty, reference=None).splitlines()
        assert lines == ["point,scheme,tries,mean,std"]

    def test_improvement_summary_empty_is_nan(self):
        empty = SweepResult(metric="weighted_completion_time")
        assert "nan%" in improvement_summary(empty, "LP-Based", ["Baseline"])


class TestNaNRatios:
    def zero_reference_result(self) -> SweepResult:
        result = SweepResult(metric="weighted_completion_time")
        point = SweepPoint(label="p")
        point.add("A", 10.0)
        point.add("Ref", 0.0)  # SweepPoint.ratio_to guards r > 0 -> NaN
        result.points = [point]
        return result

    def test_ratio_rows_are_nan(self):
        result = self.zero_reference_result()
        _, rows = ratio_rows(result, "Ref")
        assert all(cell != cell for cell in rows[0][1:])  # NaN != NaN

    def test_nan_renders_in_every_format(self):
        result = self.zero_reference_result()
        assert "nan" in ratio_table(result, "Ref", "t")
        headers, rows = ratio_rows(result, "Ref")
        assert "nan" in format_markdown(headers, rows, float_format="{:.3f}")
        assert "nan" in format_csv(headers, rows)


class TestSinglePoint:
    def test_single_point_tables(self):
        result = SweepResult(metric="weighted_completion_time")
        point = SweepPoint(label="only")
        point.add("A", 4.0)
        point.add("B", 8.0)
        result.points = [point]
        table = sweep_table(result, "Single")
        assert "only" in table
        headers, rows = sweep_rows(result)
        assert headers == ["point", "A", "B"]
        assert rows == [["only", 4.0, 8.0]]
        assert result.points[0].ratio_to("A", "B") == pytest.approx(0.5)


class TestSparseResults:
    def sparse_result(self) -> SweepResult:
        # Scheme "B" never completed at the second point (interrupted sweep).
        result = SweepResult(metric="weighted_completion_time")
        first = SweepPoint(label="p0")
        first.add("A", 1.0)
        first.add("B", 2.0)
        second = SweepPoint(label="p1")
        second.add("A", 3.0)
        result.points = [first, second]
        return result

    def test_missing_scheme_renders_nan(self):
        headers, rows = sweep_rows(self.sparse_result())
        assert headers == ["point", "A", "B"]
        assert rows[1][2] != rows[1][2]  # NaN

    def test_missing_scheme_in_csv_has_zero_tries(self):
        lines = csv_report(self.sparse_result(), reference="A").splitlines()
        missing = [line for line in lines if line.startswith("p1,B")]
        assert missing == ["p1,B,0,nan,nan,nan"]


class TestFormatPrimitives:
    def test_csv_quotes_commas(self):
        rendered = format_csv(["a"], [["x,y"]])
        assert '"x,y"' in rendered

    def test_markdown_title_bold(self):
        rendered = format_markdown(["a"], [[1]], title="T")
        assert rendered.splitlines()[0] == "**T**"

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown report format"):
            render_report(reference_result(), "t", fmt="html")

    def test_text_table_unchanged(self):
        # The ASCII renderer is the benchmarks' historical output format.
        table = format_table(["h1", "h2"], [["x", 1.5]], title="T")
        assert table.splitlines() == ["T", "h1  h2  ", "--  ----", "x   1.50"]


class TestFailureRendering:
    def failed_result(self) -> SweepResult:
        result = reference_result()
        # One cell at the second point lost both its tries to the solver,
        # plus a single timeout casualty on the other scheme.
        result.points[1].values.pop("LP-Based")
        result.points[1].add_failure("LP-Based", "LPInfeasibleError")
        result.points[1].add_failure("LP-Based", "LPInfeasibleError")
        result.points[1].add_failure("Baseline", "TaskTimeoutError")
        return result

    def test_failure_rows_summarise_each_cell(self):
        headers, rows = failure_rows(self.failed_result())
        assert headers == ["point", "scheme", "failed", "tries", "errors"]
        assert rows == [
            ["8 flows", "LP-Based", 2, 2, "LPInfeasibleError x2"],
            ["8 flows", "Baseline", 1, 3, "TaskTimeoutError"],
        ]

    def test_fully_successful_sweep_keeps_historical_output(self):
        # The failures block and CSV column appear ONLY when something
        # failed — clean sweeps must stay byte-identical to the goldens.
        clean = reference_result()
        assert not clean.has_failures()
        for fmt in REPORT_FORMATS:
            assert "failures" not in render_report(clean, "t", fmt=fmt)

    def test_failures_block_in_text_and_markdown(self):
        result = self.failed_result()
        for fmt in ("text", "markdown"):
            rendered = render_report(result, "Chaos sweep", "Baseline", fmt=fmt)
            assert "failures (3 failed task(s); failed cells render as nan)" in rendered
            assert "LPInfeasibleError x2" in rendered
        # The fully-failed cell renders as nan in the values panel.
        text = render_report(result, "Chaos sweep", "Baseline", fmt="text")
        assert "nan" in text

    def test_failures_column_in_csv(self):
        rendered = csv_report(self.failed_result(), "Baseline")
        lines = rendered.splitlines()
        assert lines[0].endswith(",failures")
        cells = {
            (row.split(",")[0], row.split(",")[1]): row.split(",")[-1]
            for row in lines[1:]
        }
        assert cells[("8 flows", "LP-Based")] == "2"
        assert cells[("8 flows", "Baseline")] == "1"
        assert cells[("4 flows", "Baseline")] == "0"


def regenerate() -> None:
    """Rewrite the golden files from the current renderers."""
    GOLDEN_DIR.mkdir(exist_ok=True)
    (GOLDEN_DIR / "reference_report.md").write_text(golden_markdown() + "\n")
    (GOLDEN_DIR / "reference_report.csv").write_text(golden_csv())
    print(f"regenerated golden files under {GOLDEN_DIR}")


if __name__ == "__main__":
    regenerate()
