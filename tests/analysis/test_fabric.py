"""Tests for the distributed sweep fabric.

The fabric's load-bearing guarantees:

* **store semantics** — per-shard appends become visible to peers through
  ``refresh()``, claims are advisory and idempotent, an in-flight torn
  tail is never consumed live but is skipped (with a warning) by a final
  merge, and a success record supersedes a failure for the same key;
* **worker cooperation** — two workers draining one grid produce exactly
  the records a serial run produces (bit-identical, the determinism
  guarantee), and a worker steals tasks whose claimant died;
* **merge** — folding shard files dedups double-executions, drops claim
  markers, tolerates torn tails, and writes a plain run store any
  existing consumer loads.
"""

import json

import pytest

from repro.analysis import (
    ExperimentEngine,
    RunStore,
    ShardedRunStore,
    SpecPoint,
    SweepSpec,
    Worker,
    merge_stores,
    run_spec,
    write_merged,
)
from repro.analysis.fabric.store import shard_filename
from repro.analysis.fabric.merge import expand_sources
from repro.workloads import WorkloadConfig


@pytest.fixture
def spec():
    return SweepSpec(
        name="fabric-tiny",
        points=(
            SpecPoint(
                "a",
                WorkloadConfig(
                    topology="fat_tree(k=4)", num_coflows=2, coflow_width=2,
                    seed=41,
                ),
            ),
            SpecPoint(
                "b",
                WorkloadConfig(
                    topology="fat_tree(k=4)", num_coflows=2, coflow_width=2,
                    seed=141,
                ),
            ),
        ),
        schemes=("Baseline", "Route-only"),
        tries=2,
        reference="Baseline",
    )


def record_map(store):
    return {key: store.peek(key) for key in store._records}


class TestShardedStore:
    def test_put_visible_to_peers_after_refresh(self, tmp_path):
        s0 = ShardedRunStore(tmp_path / "s", shard_id=0, shards=2)
        s1 = ShardedRunStore(tmp_path / "s", shard_id=1, shards=2)
        s0.put("k1", {"metrics": {"x": 1.0}})
        assert s1.peek("k1") is None
        assert s1.refresh() == 1
        assert s1.peek("k1") == {"metrics": {"x": 1.0}}

    def test_claims_are_advisory_and_idempotent(self, tmp_path):
        s0 = ShardedRunStore(tmp_path / "s", shard_id=0, shards=2)
        s1 = ShardedRunStore(tmp_path / "s", shard_id=1, shards=2)
        s0.claim("k1")
        s0.claim("k1")  # idempotent: no second line
        lines = (tmp_path / "s" / shard_filename(0)).read_text().splitlines()
        assert lines == [json.dumps({"key": "k1", "claim": 0})]
        s1.refresh()
        assert s1.claimed_by_other("k1")
        assert not s0.claimed_by_other("k1")  # own claims are never "other"
        s1.claim("k1")  # double claim is legal — claims are hints
        assert s1.claimants("k1") == {0, 1}
        assert not s1.claimed_by_other("k1")

    def test_live_refresh_never_consumes_unterminated_tail(self, tmp_path):
        root = tmp_path / "s"
        s0 = ShardedRunStore(root, shard_id=0, shards=2)
        s0.put("k1", {"metrics": {}})
        # A peer crashed (or is still writing) mid-append: torn tail.
        with (root / shard_filename(1)).open("w") as handle:
            handle.write('{"key": "k2", "record"')
        view = ShardedRunStore(root, shard_id=0, shards=2)
        assert view.peek("k1") == {"metrics": {}}
        assert view.refresh() == 0  # live poll leaves the tail alone
        assert view.skipped_lines == 0

    def test_final_refresh_skips_torn_tail_with_warning(self, tmp_path, capsys):
        root = tmp_path / "s"
        s0 = ShardedRunStore(root, shard_id=0, shards=2)
        s0.put("k1", {"metrics": {}})
        line = json.dumps({"key": "k2", "record": {"metrics": {}}}) + "\n"
        with (root / shard_filename(1)).open("w") as handle:
            handle.write(line + '{"key": "k3", "rec')
        view = ShardedRunStore(root)  # merge view: final refresh
        assert view.peek("k1") is not None
        assert view.peek("k2") is not None  # intact line before the tear
        assert view.peek("k3") is None
        assert view.skipped_lines == 1
        assert "torn tail" in capsys.readouterr().err

    def test_own_torn_tail_truncated_on_next_append(self, tmp_path, capsys):
        root = tmp_path / "s"
        s0 = ShardedRunStore(root, shard_id=0, shards=1)
        s0.put("k1", {"metrics": {}})
        with (root / shard_filename(0)).open("a") as handle:
            handle.write('{"key": "k2", "rec')
        reopened = ShardedRunStore(root, shard_id=0, shards=1)
        assert reopened.skipped_lines == 1
        assert "truncates" in capsys.readouterr().err
        reopened.put("k3", {"metrics": {}})
        entries = [
            json.loads(line)
            for line in (root / shard_filename(0)).read_text().splitlines()
        ]
        assert [e["key"] for e in entries] == ["k1", "k3"]

    def test_corrupt_middle_line_in_peer_shard_is_skipped(self, tmp_path):
        root = tmp_path / "s"
        ShardedRunStore(root, shard_id=0, shards=2)
        good = json.dumps({"key": "k1", "record": {"metrics": {}}})
        (root / shard_filename(1)).write_text(f"{good}\nnot json\n")
        view = ShardedRunStore(root)
        assert view.peek("k1") is not None
        assert view.skipped_lines == 1

    def test_success_supersedes_failure_across_shards(self, tmp_path):
        root = tmp_path / "s"
        s0 = ShardedRunStore(root, shard_id=0, shards=2)
        s1 = ShardedRunStore(root, shard_id=1, shards=2)
        s0.put("k1", {"failed": True, "error": "LPInfeasibleError"})
        s1.put("k1", {"metrics": {"x": 2.0}})
        view = ShardedRunStore(root)
        assert view.peek("k1") == {"metrics": {"x": 2.0}}
        # ...and in the other fold order too: the success still wins.
        s1b = ShardedRunStore(root, shard_id=1, shards=2)
        assert s1b.peek("k1") == {"metrics": {"x": 2.0}}

    def test_manifest_and_missing_shards(self, tmp_path):
        root = tmp_path / "s"
        ShardedRunStore(root, shard_id=0, shards=3)
        assert json.loads((root / "fleet.json").read_text()) == {"shards": 3}
        view = ShardedRunStore(root)
        assert view.expected_shards == 3
        assert view.missing_shards() == [1, 2]

    def test_merge_view_is_read_only(self, tmp_path):
        ShardedRunStore(tmp_path / "s", shard_id=0, shards=1)
        view = ShardedRunStore(tmp_path / "s")
        with pytest.raises(RuntimeError):
            view.put("k", {})
        with pytest.raises(RuntimeError):
            view.claim("k")

    def test_invalid_geometry_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedRunStore(tmp_path / "s", shard_id=2, shards=2)
        with pytest.raises(ValueError):
            ShardedRunStore(tmp_path / "s", shard_id=0, shards=0)


class TestMerge:
    def test_dedups_and_drops_claims(self, tmp_path):
        root = tmp_path / "s"
        s0 = ShardedRunStore(root, shard_id=0, shards=2)
        s1 = ShardedRunStore(root, shard_id=1, shards=2)
        s0.claim("k1")
        s0.put("k1", {"metrics": {"x": 1.0}})
        s1.claim("k1")
        s1.put("k1", {"metrics": {"x": 1.0}})  # double execution
        s1.put("k2", {"metrics": {"x": 2.0}})
        records, stats = merge_stores([root])
        assert set(records) == {"k1", "k2"}
        assert stats.records == 2
        assert stats.duplicates == 1
        assert stats.claim_markers == 2

    def test_skips_torn_tail_and_warns(self, tmp_path, capsys):
        root = tmp_path / "s"
        s0 = ShardedRunStore(root, shard_id=0, shards=2)
        s0.put("k1", {"metrics": {}})
        with (root / shard_filename(1)).open("w") as handle:
            handle.write('{"key": "k2", "rec')
        records, stats = merge_stores([root])
        assert set(records) == {"k1"}
        assert stats.skipped == 1
        assert "skipped 1 torn/corrupt line(s)" in capsys.readouterr().err

    def test_write_merged_is_a_sorted_plain_store(self, tmp_path):
        root = tmp_path / "s"
        s0 = ShardedRunStore(root, shard_id=0, shards=1)
        s0.put("kb", {"metrics": {"x": 2.0}})
        s0.put("ka", {"metrics": {"x": 1.0}})
        records, _ = merge_stores([root])
        out = write_merged(records, tmp_path / "merged.jsonl")
        plain = RunStore(out)
        assert len(plain) == 2
        assert plain.peek("ka") == {"metrics": {"x": 1.0}}
        keys = [
            json.loads(line)["key"] for line in out.read_text().splitlines()
        ]
        assert keys == sorted(keys)

    def test_merges_plain_and_sharded_sources_together(self, tmp_path):
        root = tmp_path / "s"
        s0 = ShardedRunStore(root, shard_id=0, shards=1)
        s0.put("k1", {"metrics": {}})
        plain = RunStore(tmp_path / "plain.jsonl")
        plain.put("k2", {"metrics": {}})
        records, stats = merge_stores([root, tmp_path / "plain.jsonl"])
        assert set(records) == {"k1", "k2"}
        assert len(stats.sources) == 2

    def test_missing_and_empty_sources_fail_loudly(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            expand_sources([tmp_path / "nope.jsonl"])
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(FileNotFoundError):
            expand_sources([empty])


class TestWorker:
    def test_two_workers_produce_the_serial_records(self, tmp_path, spec):
        ref_store = RunStore(tmp_path / "ref.jsonl")
        ref = run_spec(spec, ref_store)
        root = tmp_path / "shards"
        stats = []
        for shard_id in range(2):
            store = ShardedRunStore(root, shard_id=shard_id, shards=2)
            worker = Worker(spec, store, steal_after=0.0, poll_interval=0.001)
            stats.append(worker.run())
        view = ShardedRunStore(root)
        # Bit-identical record map, not just equal aggregates.
        assert record_map(view) == record_map(ref_store)
        total = spec.total_tasks()
        for s in stats:
            assert s.total_tasks == total
            assert s.cached + s.ceded + s.executed == total
            assert s.failed == 0
        assert sum(s.executed for s in stats) == total
        assert ref.stats.failed == 0

    def test_resume_executes_nothing_and_counts_hits(self, tmp_path, spec):
        root = tmp_path / "shards"
        store = ShardedRunStore(root, shard_id=0, shards=1)
        Worker(spec, store, steal_after=0.0).run()
        warm = ShardedRunStore(root, shard_id=0, shards=1)
        stats = Worker(spec, warm, steal_after=0.0).run()
        assert stats.executed == 0
        assert stats.cached == spec.total_tasks()
        assert warm.hits == spec.total_tasks()  # the resume proof
        assert warm.misses == 0

    def test_steals_tasks_of_a_dead_claimant(self, tmp_path, spec):
        root = tmp_path / "shards"
        # Shard 0 claims the whole grid, then "dies" without executing.
        dead = ShardedRunStore(root, shard_id=0, shards=2)
        from repro.analysis.artifacts import build_schemes
        from repro.core.topologies import from_spec

        engine = ExperimentEngine(
            from_spec(spec.points[0].config.topology),
            build_schemes(spec.schemes),
            tries=spec.tries,
            store=dead,
        )
        for task in engine.tasks_for(spec.point_specs()):
            dead.claim(task.key)
        live = ShardedRunStore(root, shard_id=1, shards=2)
        stats = Worker(
            spec, live, steal_after=0.05, poll_interval=0.01
        ).run()
        assert stats.stolen == spec.total_tasks()
        assert stats.executed == spec.total_tasks()
        view = ShardedRunStore(root)
        assert len(view) == spec.total_tasks()

    def test_skipped_records_surface_in_worker_stats(self, tmp_path, spec):
        root = tmp_path / "shards"
        store = ShardedRunStore(root, shard_id=0, shards=2)
        (root / shard_filename(1)).write_text("garbage\n")
        stats = Worker(spec, store, steal_after=0.0).run()
        assert stats.skipped_records == 1

    def test_worker_requires_a_writable_store(self, tmp_path, spec):
        ShardedRunStore(tmp_path / "s", shard_id=0, shards=1)
        with pytest.raises(ValueError):
            Worker(spec, ShardedRunStore(tmp_path / "s"))

    def test_stats_sidecar_roundtrips(self, tmp_path, spec):
        root = tmp_path / "shards"
        store = ShardedRunStore(root, shard_id=0, shards=1)
        stats = Worker(spec, store, steal_after=0.0).run()
        path = stats.write(root)
        loaded = json.loads(path.read_text())
        assert loaded["executed"] == stats.executed
        assert loaded["shard_id"] == 0
        assert "executed" in stats.summary()
