"""Tests for the experiment sweep machinery and report formatting."""

import pytest

from repro.analysis import (
    ExperimentSweep,
    SweepPoint,
    SweepResult,
    format_table,
    improvement_summary,
    ratio_table,
    sweep_table,
)
from repro.baselines import BaselineScheme, RouteOnlyScheme
from repro.core import topologies
from repro.workloads import WorkloadConfig


@pytest.fixture
def small_sweep():
    net = topologies.fat_tree(4)
    sweep = ExperimentSweep(
        net, [BaselineScheme(seed=0), RouteOnlyScheme()], tries=2
    )
    config = WorkloadConfig(num_coflows=3, coflow_width=3, seed=5)
    return sweep.run(config, "coflow_width", [3, 6], label_format="{value} flows")


class TestSweepPoint:
    def test_statistics(self):
        point = SweepPoint(label="p")
        point.add("A", 10.0)
        point.add("A", 20.0)
        point.add("B", 5.0)
        point.add("B", 10.0)
        assert point.mean("A") == 15.0
        assert point.std("A") == 5.0
        assert point.ratio_to("B", "A") == pytest.approx((5 / 10 + 10 / 20) / 2)
        assert point.improvement_percent("B", "A") == pytest.approx(100.0)


class TestExperimentSweep:
    def test_structure(self, small_sweep):
        assert len(small_sweep.points) == 2
        assert small_sweep.points[0].label == "3 flows"
        assert set(small_sweep.schemes()) == {"Baseline", "Route-only"}

    def test_each_point_has_all_tries(self, small_sweep):
        for point in small_sweep.points:
            for scheme in ("Baseline", "Route-only"):
                assert len(point.values[scheme]) == 2

    def test_series_and_ratios(self, small_sweep):
        series = small_sweep.series("Baseline")
        assert len(series) == 2 and all(v > 0 for v in series)
        ratios = small_sweep.ratio_series("Baseline", "Baseline")
        assert all(r == pytest.approx(1.0) for r in ratios)

    def test_average_improvement_finite(self, small_sweep):
        value = small_sweep.average_improvement("Route-only", "Baseline")
        assert value == value  # not NaN

    def test_invalid_parameter(self):
        net = topologies.fat_tree(4)
        sweep = ExperimentSweep(net, [BaselineScheme()], tries=1)
        with pytest.raises(ValueError):
            sweep.run(WorkloadConfig(), "not_a_config_field", [1, 2])

    def test_generalized_parameter_sweep(self):
        # Any workload config field is sweepable now, not just the two
        # figure parameters.
        net = topologies.fat_tree(4)
        sweep = ExperimentSweep(net, [BaselineScheme(seed=0)], tries=1)
        result = sweep.run(
            WorkloadConfig(num_coflows=2, coflow_width=2, seed=3),
            "mean_flow_size",
            [2.0, 8.0],
        )
        assert len(result.points) == 2
        assert result.points[0].mean("Baseline") < result.points[1].mean("Baseline")

    def test_requires_schemes_and_tries(self):
        net = topologies.fat_tree(4)
        with pytest.raises(ValueError):
            ExperimentSweep(net, [], tries=1)
        with pytest.raises(ValueError):
            ExperimentSweep(net, [BaselineScheme()], tries=0)


class TestReports:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bbbb", 22.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_sweep_and_ratio_tables(self, small_sweep):
        table = sweep_table(small_sweep, "Figure X")
        assert "Figure X" in table
        assert "3 flows" in table and "6 flows" in table
        ratios = ratio_table(small_sweep, "Baseline", "Figure X")
        assert "ratio" in ratios
        assert "1.000" in ratios

    def test_improvement_summary(self, small_sweep):
        text = improvement_summary(small_sweep, "Route-only", ["Baseline"])
        assert "Route-only" in text and "Baseline" in text and "%" in text
