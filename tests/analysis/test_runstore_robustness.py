"""Run-store crash tolerance: torn tails, corrupt lines, resync-on-append.

A process killed mid-append (``kill -9``, OOM) leaves a truncated trailing
line in the JSONL store.  These tests pin the recovery contract: loading
skips the torn tail with a stderr warning instead of crashing, intact
records before it all survive, and the next append first truncates the
file back to the last intact record so the torn bytes can never corrupt a
later line.
"""

import json

import pytest

from repro.analysis import RunStore


def write_lines(path, *entries):
    path.write_text(
        "".join(json.dumps({"key": k, "record": r}) + "\n" for k, r in entries)
    )


class TestTornTail:
    def test_truncated_trailing_line_is_skipped_with_warning(self, tmp_path, capsys):
        path = tmp_path / "store.jsonl"
        write_lines(path, ("a", {"metrics": {"m": 1.0}}))
        with path.open("a") as handle:
            handle.write('{"key": "b", "record": {"metr')  # torn mid-append

        store = RunStore(path)
        err = capsys.readouterr().err
        assert "skipped 1" in err
        assert store.skipped_lines == 1
        assert "a" in store and "b" not in store
        assert len(store) == 1

    def test_next_append_truncates_the_torn_bytes_away(self, tmp_path, capsys):
        path = tmp_path / "store.jsonl"
        write_lines(path, ("a", {"metrics": {"m": 1.0}}))
        clean_size = path.stat().st_size
        with path.open("a") as handle:
            handle.write('{"key": "b", "record"')

        store = RunStore(path)
        capsys.readouterr()
        store.put("c", {"metrics": {"m": 3.0}})

        lines = path.read_text().splitlines()
        assert len(lines) == 2
        entries = [json.loads(line) for line in lines]
        assert [e["key"] for e in entries] == ["a", "c"]
        assert path.read_text()[:clean_size] == path.read_text()[:clean_size]
        # The file reloads cleanly: no resync needed anymore.
        reloaded = RunStore(path)
        assert reloaded.skipped_lines == 0
        assert set(["a", "c"]) <= set(reloaded._records)

    def test_corrupt_middle_line_is_skipped_but_tail_survives(
        self, tmp_path, capsys
    ):
        path = tmp_path / "store.jsonl"
        write_lines(path, ("a", {"metrics": {"m": 1.0}}))
        with path.open("a") as handle:
            handle.write("%% not json at all %%\n")
        with path.open("a") as handle:
            handle.write(
                json.dumps({"key": "b", "record": {"metrics": {"m": 2.0}}}) + "\n"
            )

        store = RunStore(path)
        err = capsys.readouterr().err
        assert store.skipped_lines == 1
        assert "skipped 1" in err
        assert "a" in store and "b" in store

    def test_unterminated_but_parseable_tail_is_still_distrusted(
        self, tmp_path, capsys
    ):
        # A line without its newline may be missing trailing bytes that
        # happen to still parse; the store must not trust it.
        path = tmp_path / "store.jsonl"
        write_lines(path, ("a", {"metrics": {"m": 1.0}}))
        with path.open("a") as handle:
            handle.write(json.dumps({"key": "b", "record": {"metrics": {}}}))

        store = RunStore(path)
        capsys.readouterr()
        assert "b" not in store
        assert store.skipped_lines == 1

    def test_clean_store_loads_silently(self, tmp_path, capsys):
        path = tmp_path / "store.jsonl"
        write_lines(path, ("a", {"metrics": {"m": 1.0}}), ("b", {"metrics": {}}))
        store = RunStore(path)
        assert capsys.readouterr().err == ""
        assert store.skipped_lines == 0
        assert len(store) == 2


class TestAppendAtomicity:
    def test_put_writes_one_terminated_line(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = RunStore(path)
        store.put("a", {"metrics": {"m": 1.0}})
        store.put("b", {"metrics": {"m": 2.0}})
        text = path.read_text()
        assert text.endswith("\n")
        assert [json.loads(l)["key"] for l in text.splitlines()] == ["a", "b"]

    def test_memory_only_store_never_touches_disk(self, tmp_path):
        store = RunStore(None)
        store.put("a", {"metrics": {}})
        assert store.peek("a") == {"metrics": {}}
        assert list(tmp_path.iterdir()) == []


class TestFailureRecordsInStore:
    def test_failure_records_round_trip(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = RunStore(path)
        record = {
            "failed": True,
            "error": "LPInfeasibleError",
            "message": "boom",
            "attempts": 3,
            "elapsed": 0.5,
        }
        store.put("a", record)
        reloaded = RunStore(path)
        assert reloaded.peek("a") == record

    def test_later_record_for_same_key_wins(self, tmp_path):
        # retry_failed appends a success under the same key; reloads must
        # prefer the newer record.
        path = tmp_path / "store.jsonl"
        store = RunStore(path)
        store.put("a", {"failed": True, "error": "X", "message": "", "attempts": 1})
        store.put("a", {"metrics": {"m": 1.0}})
        reloaded = RunStore(path)
        assert reloaded.peek("a") == {"metrics": {"m": 1.0}}
