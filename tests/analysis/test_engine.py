"""Tests for the parallel, resumable experiment engine.

The two engine guarantees the benchmarks lean on:

* **determinism** — a parallel sweep (>= 2 worker processes) produces results
  identical to the serial sweep for the same seeds, because each task derives
  all randomness from its config seed;
* **resumability** — re-running against a warm run store reuses every cached
  entry without re-simulating (asserted through the store's hit/miss
  accounting), and a partially-filled store only executes the missing tasks.
"""

import json

import pytest

from repro.analysis import (
    EngineRunStats,
    ExperimentEngine,
    RunStore,
    run_key,
)
from repro.baselines import BaselineScheme, RouteOnlyScheme, ScheduleOnlyScheme
from repro.core import topologies
from repro.workloads import WorkloadConfig


@pytest.fixture
def network():
    return topologies.fat_tree(4)


@pytest.fixture
def schemes():
    return [BaselineScheme(seed=0), RouteOnlyScheme(), ScheduleOnlyScheme(seed=0)]


@pytest.fixture
def config():
    return WorkloadConfig(num_coflows=3, coflow_width=3, seed=17)


def sweep_values(result):
    return [(point.label, dict(point.values)) for point in result.points]


class TestDeterminism:
    def test_parallel_matches_serial(self, network, schemes, config):
        serial = ExperimentEngine(network, schemes, tries=2)
        parallel = ExperimentEngine(network, schemes, tries=2, workers=2)
        kwargs = dict(label_format="{value} flows")
        serial_result = serial.run(config, "coflow_width", [2, 4], **kwargs)
        parallel_result = parallel.run(config, "coflow_width", [2, 4], **kwargs)
        assert serial.last_run_stats.workers == 1
        assert parallel.last_run_stats.workers == 2
        # Bit-identical, not approximately equal: same seeds, same float ops.
        assert sweep_values(serial_result) == sweep_values(parallel_result)

    def test_repeated_serial_runs_identical(self, network, schemes, config):
        first = ExperimentEngine(network, schemes, tries=2).run(
            config, "num_coflows", [2, 3]
        )
        second = ExperimentEngine(network, schemes, tries=2).run(
            config, "num_coflows", [2, 3]
        )
        assert sweep_values(first) == sweep_values(second)


class TestRunStore:
    def test_resume_skips_all_simulation(self, tmp_path, network, schemes, config):
        store_path = tmp_path / "runs.jsonl"
        cold = ExperimentEngine(
            network, schemes, tries=2, workers=2, store=str(store_path)
        )
        cold_result = cold.run(config, "coflow_width", [2, 3])
        assert cold.last_run_stats.executed == cold.last_run_stats.total_tasks
        assert not cold.last_run_stats.all_cached

        warm = ExperimentEngine(
            network, schemes, tries=2, workers=2, store=str(store_path)
        )
        warm_result = warm.run(config, "coflow_width", [2, 3])
        assert warm.last_run_stats.all_cached
        assert warm.last_run_stats.executed == 0
        assert warm.last_run_stats.cached == cold.last_run_stats.total_tasks
        assert warm.store.hits == cold.last_run_stats.total_tasks
        assert sweep_values(cold_result) == sweep_values(warm_result)
        # The store file was not appended to by the warm run.
        lines = store_path.read_text().strip().splitlines()
        assert len(lines) == cold.last_run_stats.total_tasks

    def test_partial_store_executes_only_missing(self, tmp_path, network, config):
        schemes = [BaselineScheme(seed=0), RouteOnlyScheme()]
        store_path = tmp_path / "runs.jsonl"
        seeded = ExperimentEngine(network, schemes, tries=2, store=str(store_path))
        seeded.run(config, "coflow_width", [2])
        filled = seeded.last_run_stats.total_tasks

        resumed = ExperimentEngine(network, schemes, tries=2, store=str(store_path))
        resumed.run(config, "coflow_width", [2, 3])
        assert resumed.last_run_stats.cached == filled
        assert resumed.last_run_stats.executed == (
            resumed.last_run_stats.total_tasks - filled
        )

    def test_records_are_self_describing(self, tmp_path, network, config):
        schemes = [BaselineScheme(seed=0)]
        store_path = tmp_path / "runs.jsonl"
        engine = ExperimentEngine(network, schemes, tries=1, store=str(store_path))
        engine.run(config, "coflow_width", [2])
        entry = json.loads(store_path.read_text().splitlines()[0])
        record = entry["record"]
        assert record["scheme"] == "Baseline"
        assert record["topology"] == network.fingerprint()
        assert record["config"]["coflow_width"] == 2
        assert set(record["metrics"]) >= {
            "weighted_completion_time",
            "makespan",
        }
        # The stored key matches what the engine would recompute.
        assert entry["key"] == run_key(
            network.fingerprint(),
            WorkloadConfig(**{
                k: v for k, v in record["config"].items()
            }),
            schemes[0].signature(),
        )

    def test_key_distinguishes_topology_config_seed_scheme(self, network, config):
        fp = network.fingerprint()
        other_fp = topologies.fat_tree(4, oversubscription=2.0).fingerprint()
        baseline = BaselineScheme(seed=0)
        keys = {
            run_key(fp, config, baseline.signature()),
            run_key(other_fp, config, baseline.signature()),
            run_key(fp, config.with_seed(config.seed + 1), baseline.signature()),
            run_key(fp, config.with_width(5), baseline.signature()),
            run_key(fp, config, BaselineScheme(seed=1).signature()),
            run_key(fp, config, RouteOnlyScheme().signature()),
        }
        assert len(keys) == 6

    def test_in_memory_store_caches_within_engine(self, network, config):
        engine = ExperimentEngine(network, [BaselineScheme(seed=0)], tries=2)
        engine.run(config, "coflow_width", [2])
        first = engine.last_run_stats
        engine.run(config, "coflow_width", [2])
        assert first.executed > 0
        assert engine.last_run_stats.all_cached


class TestEngineApi:
    def test_for_config_builds_topology(self):
        config = WorkloadConfig(
            num_coflows=2,
            coflow_width=2,
            seed=3,
            topology="leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=2)",
        )
        engine = ExperimentEngine.for_config(config, [BaselineScheme(seed=0)], tries=1)
        result = engine.run(config, "coflow_width", [2])
        assert result.points[0].mean("Baseline") > 0

    def test_stats_fields(self, network, config):
        engine = ExperimentEngine(network, [BaselineScheme(seed=0)], tries=1)
        engine.run(config, "coflow_width", [2])
        stats = engine.last_run_stats
        assert isinstance(stats, EngineRunStats)
        assert stats.total_tasks == 1
        assert stats.seconds > 0

    def test_invalid_workers_rejected(self, network):
        with pytest.raises(ValueError):
            ExperimentEngine(network, [BaselineScheme()], workers=-1)

    def test_run_store_accepts_runstore_instance(self, tmp_path, network, config):
        store = RunStore(tmp_path / "shared.jsonl")
        a = ExperimentEngine(network, [BaselineScheme(seed=0)], tries=1, store=store)
        a.run(config, "coflow_width", [2])
        b = ExperimentEngine(network, [BaselineScheme(seed=0)], tries=1, store=store)
        b.run(config, "coflow_width", [2])
        assert b.last_run_stats.all_cached


class TestShardClaimRaces:
    """The fabric's safety argument, checked at the engine level: two shard
    workers racing on the *same* keys — both claiming, both executing —
    merge to exactly one record per key, bit-identical to what a serial
    single-store run produces."""

    def test_double_execution_merges_to_the_serial_records(
        self, tmp_path, network, schemes, config
    ):
        from repro.analysis import ShardedRunStore, merge_stores

        serial = ExperimentEngine(network, schemes, tries=2)
        serial_result = serial.run(config, "coflow_width", [2, 4])

        root = tmp_path / "shards"
        # Open both shard stores BEFORE either executes: neither sees the
        # other's records, so both claim and execute the full grid — the
        # worst-case claim race, every key double-executed.
        stores = [
            ShardedRunStore(root, shard_id=shard_id, shards=2)
            for shard_id in range(2)
        ]
        engines = [
            ExperimentEngine(network, schemes, tries=2, store=store)
            for store in stores
        ]
        for store, engine in zip(stores, engines):
            for task in engine.tasks_for(
                [("2 flows", [config.with_seed(config.seed + k) for k in range(2)])]
            ):
                store.claim(task.key)
        sharded_results = [
            engine.run(config, "coflow_width", [2, 4]) for engine in engines
        ]

        # Both racers saw identical aggregates, equal to the serial run's.
        assert sweep_values(sharded_results[0]) == sweep_values(serial_result)
        assert sweep_values(sharded_results[1]) == sweep_values(serial_result)

        # The merge collapses the double-executed keys to ONE record each,
        # bit-identical to the serial engine's store contents.
        records, stats = merge_stores([root])
        serial_records = {
            key: serial.store.peek(key) for key in serial.store._records
        }
        assert records == serial_records
        assert stats.records == len(serial_records)
        assert stats.duplicates > 0  # the race really happened

    def test_racing_engines_skip_peer_records_after_refresh(
        self, tmp_path, network, schemes, config
    ):
        from repro.analysis import ShardedRunStore

        root = tmp_path / "shards"
        first = ShardedRunStore(root, shard_id=0, shards=2)
        ExperimentEngine(network, schemes, tries=2, store=first).run(
            config, "coflow_width", [2, 4]
        )
        second = ShardedRunStore(root, shard_id=1, shards=2)
        engine = ExperimentEngine(network, schemes, tries=2, store=second)
        engine.run(config, "coflow_width", [2, 4])
        # Shard 1 opened after shard 0 finished: everything is a cache hit
        # across shard files, nothing re-executes.
        assert engine.last_run_stats.all_cached
        assert second.hits == engine.last_run_stats.total_tasks
