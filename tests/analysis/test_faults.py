"""Fault injection, retries and failure records: the chaos suite.

The acceptance path of the robustness PR: a seeded chaos sweep (injected
solver faults, timeouts and worker kills) runs to completion, transient
faults are retried and converge bit-identically to a fault-free run, a
killed worker breaks and respawns the pool, and permanent failures become
structured failure records plus NaN cells — all deterministically, so
serial and pooled chaos runs agree too.
"""

import json

import pytest

from repro import faults
from repro.analysis import ExperimentEngine, RunStore
from repro.analysis.engine import _failure_record
from repro.baselines import BaselineScheme
from repro.baselines.spec import scheme_from_spec
from repro.core import topologies
from repro.faults import (
    FAULT_KINDS,
    FaultConfig,
    FaultInjector,
    InjectedStoreError,
    InjectedTimeout,
    TaskTimeoutError,
    WorkerKilled,
    backoff_delay,
    deadline,
    is_transient,
    maybe_inject,
    task_scope,
)
from repro.lp.solver import LPInfeasibleError
from repro.workloads import WorkloadConfig


@pytest.fixture
def network():
    return topologies.fat_tree(4)


@pytest.fixture
def schemes():
    # One LP-solving scheme so "lp" faults have a site to fire at.
    return [BaselineScheme(seed=0), scheme_from_spec("LP-Based")]


@pytest.fixture
def config():
    return WorkloadConfig(num_coflows=2, coflow_width=2, seed=41)


@pytest.fixture(autouse=True)
def no_leaked_injector():
    yield
    assert faults.active_injector() is None, "a test leaked an installed injector"


def sweep_values(result):
    return [(point.label, dict(point.values)) for point in result.points]


def sweep_failures(result):
    return [(point.label, dict(point.failures)) for point in result.points]


# ------------------------------------------------------------- config parsing

class TestFaultConfig:
    def test_spec_round_trip(self):
        config = FaultConfig.from_spec("rate=0.1, seed=7, kinds=lp+kill, delay=0.2")
        assert config == FaultConfig(rate=0.1, seed=7, kinds=("lp", "kill"), delay=0.2)
        assert FaultConfig.from_spec(config.spec()) == config

    def test_defaults(self):
        config = FaultConfig.from_spec("rate=0.5")
        assert config.kinds == ("lp", "timeout")
        assert config.seed == 0

    @pytest.mark.parametrize(
        "spec, fragment",
        [
            ("rate=1.5", "rate"),
            ("rate=0.1,kinds=quantum", "quantum"),
            ("rate=0.1,budget=3", "budget"),
            ("rate", "key=value"),
            ("delay=-1", "delay"),
        ],
    )
    def test_bad_specs_raise_naming_the_piece(self, spec, fragment):
        with pytest.raises(ValueError, match=fragment):
            FaultConfig.from_spec(spec)

    def test_kinds_must_be_known(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultConfig(rate=0.1, kinds=("lp", "nope"))


class TestFaultInjector:
    def test_draws_are_deterministic(self):
        a = FaultInjector(FaultConfig(rate=0.5, seed=3))
        b = FaultInjector(FaultConfig(rate=0.5, seed=3))
        keys = [f"task-{i}" for i in range(200)]
        assert [a.draw(k) for k in keys] == [b.draw(k) for k in keys]

    def test_rate_bounds(self):
        keys = [f"task-{i}" for i in range(100)]
        never = FaultInjector(FaultConfig(rate=0.0))
        always = FaultInjector(FaultConfig(rate=1.0, kinds=FAULT_KINDS))
        assert all(never.draw(k) is None for k in keys)
        assert all(always.draw(k) in FAULT_KINDS for k in keys)

    def test_seed_changes_the_draws(self):
        keys = [f"task-{i}" for i in range(200)]
        a = [FaultInjector(FaultConfig(rate=0.5, seed=0)).draw(k) for k in keys]
        b = [FaultInjector(FaultConfig(rate=0.5, seed=1)).draw(k) for k in keys]
        assert a != b


class TestClassification:
    def test_timeouts_and_flagged_errors_are_transient(self):
        assert is_transient(InjectedTimeout("t"))
        assert is_transient(TaskTimeoutError("t"))
        assert is_transient(TimeoutError("t"))
        assert is_transient(WorkerKilled("k"))
        assert is_transient(InjectedStoreError("s"))

    def test_everything_else_is_permanent(self):
        assert not is_transient(LPInfeasibleError("infeasible"))
        assert not is_transient(ValueError("bad"))
        assert not is_transient(RuntimeError("bug"))


class TestInjectionScope:
    def test_noop_without_injector_or_scope(self):
        maybe_inject("lp")  # no injector installed
        faults.install(FaultInjector(FaultConfig(rate=1.0, kinds=("lp",))))
        try:
            maybe_inject("lp")  # no task scope
        finally:
            faults.uninstall()

    def test_lp_fault_fires_on_every_attempt(self):
        faults.install(FaultInjector(FaultConfig(rate=1.0, kinds=("lp",))))
        try:
            for attempt in (0, 1, 5):
                with task_scope("some-task", attempt):
                    with pytest.raises(LPInfeasibleError) as excinfo:
                        maybe_inject("lp")
                    assert excinfo.value.injected
                    assert excinfo.value.status == -1
        finally:
            faults.uninstall()

    def test_transient_kinds_fire_on_first_attempt_only(self):
        faults.install(FaultInjector(FaultConfig(rate=1.0, kinds=("timeout",))))
        try:
            with task_scope("some-task", attempt=0):
                with pytest.raises(InjectedTimeout):
                    maybe_inject("sim")
            with task_scope("some-task", attempt=1):
                maybe_inject("sim")  # the retry sails through
        finally:
            faults.uninstall()

    def test_at_most_one_fault_per_kind_per_scope(self):
        # An online scheme solves many LPs per task; it must fault once.
        faults.install(FaultInjector(FaultConfig(rate=1.0, kinds=("lp",))))
        try:
            with task_scope("some-task"):
                with pytest.raises(LPInfeasibleError):
                    maybe_inject("lp")
                maybe_inject("lp")
        finally:
            faults.uninstall()

    def test_site_mismatch_is_a_noop(self):
        faults.install(FaultInjector(FaultConfig(rate=1.0, kinds=("store",))))
        try:
            with task_scope("some-task"):
                maybe_inject("lp")
                maybe_inject("sim")
                with pytest.raises(InjectedStoreError):
                    maybe_inject("store")
        finally:
            faults.uninstall()


class TestHardeningPrimitives:
    def test_backoff_is_deterministic_and_capped(self):
        assert backoff_delay("k", 0, 0.1) == 0.0
        assert backoff_delay("k", 1, 0.0) == 0.0
        first = backoff_delay("k", 1, 0.1)
        assert first == backoff_delay("k", 1, 0.1)
        assert 0.1 <= first < 0.2
        assert backoff_delay("k", 50, 0.1, cap=2.0) == 2.0

    def test_jitter_differs_across_tasks(self):
        delays = {backoff_delay(f"task-{i}", 1, 0.1) for i in range(20)}
        assert len(delays) > 1

    def test_deadline_expires_cpu_bound_work(self):
        with pytest.raises(TaskTimeoutError):
            with deadline(0.05):
                while True:
                    sum(range(1000))

    def test_deadline_none_is_a_noop(self):
        with deadline(None):
            pass
        with deadline(0):
            pass

    def test_nested_deadline_restores_the_outer_timer(self):
        """Leaving an inner deadline() must re-arm the enclosing one.

        The inner context's cleanup used to run ``setitimer(ITIMER_REAL,
        0.0)`` unconditionally, silently disarming the outer deadline — an
        outer timeout after a quick inner section then never fired."""
        import signal

        with pytest.raises(TaskTimeoutError):
            with deadline(0.15):
                with deadline(5.0):
                    pass  # quick inner work; must not cancel the outer timer
                remaining, _interval = signal.getitimer(signal.ITIMER_REAL)
                assert 0.0 < remaining <= 0.15, "outer deadline was disarmed"
                while True:
                    sum(range(1000))
        # Fully unwound: no timer left armed.
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)

    def test_nested_deadline_inner_expiry_still_fires(self):
        import signal

        with pytest.raises(TaskTimeoutError):
            with deadline(5.0):
                with deadline(0.05):
                    while True:
                        sum(range(1000))
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)


# ------------------------------------------------------- engine fault handling

class TestEngineRetries:
    def test_transient_faults_converge_bit_identically(self, network, schemes, config):
        clean = ExperimentEngine(network, schemes, tries=2).run(
            config, "coflow_width", [2, 3]
        )
        chaotic = ExperimentEngine(
            network, schemes, tries=2, faults="rate=1.0,kinds=timeout"
        )
        result = chaotic.run(config, "coflow_width", [2, 3])
        assert chaotic.last_run_stats.retried == chaotic.last_run_stats.total_tasks
        assert chaotic.last_run_stats.failed == 0
        assert sweep_values(result) == sweep_values(clean)

    def test_serial_and_pool_chaos_agree(self, network, schemes, config):
        spec = dict(faults="rate=0.5,seed=5", tries=2, retry_backoff=0.0)
        serial = ExperimentEngine(network, schemes, **spec)
        pooled = ExperimentEngine(network, schemes, workers=2, **spec)
        serial_result = serial.run(config, "coflow_width", [2, 3])
        pooled_result = pooled.run(config, "coflow_width", [2, 3])
        assert sweep_values(serial_result) == sweep_values(pooled_result)
        assert sweep_failures(serial_result) == sweep_failures(pooled_result)
        assert serial.last_run_stats.failed == pooled.last_run_stats.failed

    def test_exhausted_retries_become_a_failure_record(self, network, config):
        # Every attempt times out (max_retries=1), so the task fails
        # transiently twice and is then recorded as permanently failed.
        engine = ExperimentEngine(
            network,
            [BaselineScheme(seed=0)],
            tries=1,
            max_retries=1,
            task_timeout=0.15,
            faults="rate=1.0,kinds=slow,delay=10",
            retry_backoff=0.0,
        )
        result = engine.run(config, "coflow_width", [2])
        assert engine.last_run_stats.failed == 1
        assert engine.last_run_stats.retried == 1
        record = engine.store.peek(engine.tasks_for(
            [("2", [config.with_seed(config.seed)])]
        )[0].key)
        assert record["failed"] is True
        assert record["error"] == "TaskTimeoutError"
        assert record["attempts"] == 2
        assert result.points[0].failures == {"Baseline": ["TaskTimeoutError"]}


class TestEngineFailureRecords:
    def chaos_engine(self, network, schemes, store=None, **kwargs):
        kwargs.setdefault("faults", "rate=1.0,kinds=lp")
        kwargs.setdefault("tries", 1)
        return ExperimentEngine(network, schemes, store=store, **kwargs)

    def test_permanent_failure_is_structured_and_renders_nan(
        self, tmp_path, network, schemes, config
    ):
        store_path = tmp_path / "runs.jsonl"
        engine = self.chaos_engine(network, schemes, store=str(store_path))
        result = engine.run(config, "coflow_width", [2])
        # Baseline never solves an LP, so only the LP scheme fails.
        assert engine.last_run_stats.failed == 1
        point = result.points[0]
        assert point.failures == {"LP-Based": ["LPInfeasibleError"]}
        assert point.values.keys() == {"Baseline"}

        entries = [json.loads(l) for l in store_path.read_text().splitlines()]
        failed = [e["record"] for e in entries if e["record"].get("failed")]
        assert len(failed) == 1
        record = failed[0]
        assert record["error"] == "LPInfeasibleError"
        assert record["attempts"] == 1
        assert record["scheme"] == "LP-Based"
        assert record["label"] == "2"
        assert record["trial"] == 0
        assert record["elapsed"] >= 0
        assert record["detail"]["status"] == -1
        assert "injected" in record["message"]

    def test_resume_skips_recorded_failures(self, tmp_path, network, schemes, config):
        store_path = tmp_path / "runs.jsonl"
        first = self.chaos_engine(network, schemes, store=str(store_path))
        first.run(config, "coflow_width", [2])

        resumed = ExperimentEngine(
            network, schemes, tries=1, store=str(store_path)
        )
        result = resumed.run(config, "coflow_width", [2])
        assert resumed.last_run_stats.executed == 0
        assert resumed.last_run_stats.failed == 1  # still counted in coverage
        assert result.points[0].failures == {"LP-Based": ["LPInfeasibleError"]}

    def test_retry_failed_reruns_and_heals(self, tmp_path, network, schemes, config):
        store_path = tmp_path / "runs.jsonl"
        first = self.chaos_engine(network, schemes, store=str(store_path))
        first.run(config, "coflow_width", [2])

        # Injection off now: the re-run succeeds and replaces the record.
        healed = ExperimentEngine(
            network, schemes, tries=1, store=str(store_path), retry_failed=True
        )
        result = healed.run(config, "coflow_width", [2])
        assert healed.last_run_stats.executed == 1
        assert healed.last_run_stats.failed == 0
        assert not result.points[0].failures
        clean = ExperimentEngine(network, schemes, tries=1).run(
            config, "coflow_width", [2]
        )
        assert sweep_values(result) == sweep_values(clean)

    def test_coverage_accounting(self, network, schemes, config):
        engine = self.chaos_engine(network, schemes)
        engine.run(config, "coflow_width", [2])
        stats = engine.last_run_stats
        assert stats.total_tasks == 2
        assert stats.failed == 1
        assert stats.coverage == pytest.approx(0.5)

    def test_lost_task_raises_naming_the_task(self, network, config):
        class AmnesiacStore(RunStore):
            def put(self, key, record):  # drop everything
                return None

        engine = ExperimentEngine(
            network, [BaselineScheme(seed=0)], tries=1, store=AmnesiacStore()
        )
        with pytest.raises(RuntimeError, match="point '2'.*trial 0.*'Baseline'"):
            engine.run(config, "coflow_width", [2])


class TestPoolRecovery:
    def test_killed_worker_respawns_pool_and_converges(
        self, network, schemes, config
    ):
        clean = ExperimentEngine(network, schemes, tries=2).run(
            config, "coflow_width", [2]
        )
        chaotic = ExperimentEngine(
            network,
            schemes,
            tries=2,
            workers=2,
            faults="rate=0.5,seed=5,kinds=kill",
            retry_backoff=0.0,
        )
        result = chaotic.run(config, "coflow_width", [2])
        assert chaotic.last_run_stats.pool_restarts >= 1
        assert chaotic.last_run_stats.failed == 0
        assert sweep_values(result) == sweep_values(clean)

    def test_serial_kill_is_transient(self, network, schemes, config):
        clean = ExperimentEngine(network, schemes, tries=2).run(
            config, "coflow_width", [2]
        )
        chaotic = ExperimentEngine(
            network,
            schemes,
            tries=2,
            faults="rate=0.5,seed=5,kinds=kill",
            retry_backoff=0.0,
        )
        result = chaotic.run(config, "coflow_width", [2])
        assert chaotic.last_run_stats.retried >= 1
        assert chaotic.last_run_stats.pool_restarts == 0
        assert sweep_values(result) == sweep_values(clean)


class TestStoreFaults:
    def test_injected_append_failures_are_retried(self, tmp_path, network, config):
        engine = ExperimentEngine(
            network,
            [BaselineScheme(seed=0)],
            tries=1,
            store=str(tmp_path / "runs.jsonl"),
            faults="rate=1.0,kinds=store",
        )
        result = engine.run(config, "coflow_width", [2])
        assert engine.last_run_stats.failed == 0
        assert engine.last_run_stats.retried >= 1
        assert result.points[0].values["Baseline"]


class TestFailureRecordShape:
    def test_solver_detail_rides_along(self, network, config):
        task = ExperimentEngine(
            network, [BaselineScheme(seed=0)], tries=1
        ).tasks_for([("p", [config])])[0]
        error = LPInfeasibleError(
            "nope", status=2, solver_message="infeasible", rows=3, cols=4, nnz=7
        )
        record = _failure_record(task, error, attempts=1, elapsed=0.5,
                                 topology_fingerprint="fp", signature="sig")
        assert record["detail"] == {
            "status": 2,
            "solver_message": "infeasible",
            "rows": 3,
            "cols": 4,
            "nnz": 7,
        }
        plain = _failure_record(task, ValueError("v"), 1, 0.1, "fp", "sig")
        assert "detail" not in plain
