"""Tests for the spec/artifact layer behind the ``repro`` CLI."""

import json
from dataclasses import replace

import pytest

from repro.analysis import RunStore, render_report
from repro.analysis.artifacts import (
    DEFAULT_SCHEMES,
    SCHEME_REGISTRY,
    build_schemes,
    export_artifacts,
    load_spec,
    provenance,
    provenance_lines,
    result_from_store,
    run_spec,
    spec_from_dict,
    stats_summary,
)

try:
    import yaml
except ImportError:  # pragma: no cover
    yaml = None


def tiny_spec_dict(**overrides):
    """A two-point, two-topology spec that runs in well under a second."""
    data = {
        "name": "tiny",
        "title": "Tiny two-topology matrix",
        "schemes": ["Baseline", "Route-only"],
        "tries": 1,
        "reference": "Baseline",
        "base": {"num_coflows": 2, "coflow_width": 2, "mean_flow_size": 2.0},
        "points": [
            {"label": "fat-tree", "config": {"seed": 1, "topology": "fat_tree(k=4)"}},
            {
                "label": "leaf-spine",
                "config": {
                    "seed": 2,
                    "topology": "leaf_spine(num_leaves=2, num_spines=1, hosts_per_leaf=2)",
                },
            },
        ],
    }
    data.update(overrides)
    return data


class TestSpecParsing:
    def test_points_form(self):
        spec = spec_from_dict(tiny_spec_dict())
        assert spec.name == "tiny"
        assert [p.label for p in spec.points] == ["fat-tree", "leaf-spine"]
        # base is merged under each point's config
        assert spec.points[0].config.num_coflows == 2
        assert spec.points[0].config.seed == 1
        assert spec.points[1].config.topology.startswith("leaf_spine")

    def test_sweep_form(self):
        spec = spec_from_dict(
            {
                "name": "width",
                "schemes": ["Baseline"],
                "tries": 1,
                "reference": "Baseline",
                "base": {"topology": "fat_tree(k=4)", "num_coflows": 2, "seed": 5},
                "sweep": {
                    "parameter": "coflow_width",
                    "values": [2, 4],
                    "label": "{value} flows",
                },
            }
        )
        assert [p.label for p in spec.points] == ["2 flows", "4 flows"]
        assert [p.config.coflow_width for p in spec.points] == [2, 4]
        # the un-swept base fields are identical across points
        assert {p.config.num_coflows for p in spec.points} == {2}

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError, match="unknown spec key"):
            spec_from_dict(tiny_spec_dict(workers=4))

    def test_unknown_config_key_rejected(self):
        data = tiny_spec_dict()
        data["points"][0]["config"]["coflow_widht"] = 3  # typo must not pass
        with pytest.raises(ValueError, match="coflow_widht"):
            spec_from_dict(data)

    def test_sweep_and_points_are_exclusive(self):
        data = tiny_spec_dict()
        data["sweep"] = {"parameter": "coflow_width", "values": [2]}
        with pytest.raises(ValueError, match="exactly one"):
            spec_from_dict(data)

    def test_missing_topology_rejected(self):
        data = tiny_spec_dict()
        del data["points"][0]["config"]["topology"]
        with pytest.raises(ValueError, match="topology"):
            spec_from_dict(data)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            spec_from_dict(tiny_spec_dict(schemes=["Baseline", "GPT-Routing"]))

    def test_reference_must_be_a_spec_scheme(self):
        with pytest.raises(ValueError, match="reference"):
            spec_from_dict(tiny_spec_dict(reference="LP-Based"))

    def test_round_trip_through_dict(self):
        spec = spec_from_dict(tiny_spec_dict())
        assert spec_from_dict(spec.to_dict()) == spec

    def test_total_tasks(self):
        spec = spec_from_dict(tiny_spec_dict(tries=3))
        assert spec.total_tasks() == 2 * 3 * 2  # points x tries x schemes


class TestSmoke:
    def test_smoke_shrinks_instances_not_grid(self):
        spec = spec_from_dict(tiny_spec_dict(tries=5))
        base = {"num_coflows": 8, "coflow_width": 8}
        spec = replace(
            spec,
            points=tuple(
                replace(p, config=replace(p.config, **base)) for p in spec.points
            ),
        )
        smoke = spec.smoke()
        assert smoke.name == "tiny-smoke"
        assert smoke.tries == 1
        assert len(smoke.points) == len(spec.points)
        for point in smoke.points:
            assert point.config.num_coflows == 2
            assert point.config.coflow_width == 2

    def test_smoke_preserves_the_swept_axis(self):
        # Clamping the swept field would collapse a width sweep into
        # identical points; smoke must leave varying fields alone.
        spec = spec_from_dict(
            {
                "name": "width",
                "schemes": ["Baseline"],
                "base": {"topology": "fat_tree(k=4)", "num_coflows": 8},
                "sweep": {"parameter": "coflow_width", "values": [4, 8, 16]},
            }
        )
        smoke = spec.smoke()
        assert [p.config.coflow_width for p in smoke.points] == [4, 8, 16]
        assert {p.config.num_coflows for p in smoke.points} == {2}


class TestSpecFiles:
    def test_load_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(tiny_spec_dict()))
        assert load_spec(path) == spec_from_dict(tiny_spec_dict())

    @pytest.mark.skipif(yaml is None, reason="PyYAML not installed")
    def test_load_yaml(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text(yaml.safe_dump(tiny_spec_dict()))
        assert load_spec(path) == spec_from_dict(tiny_spec_dict())

    def test_non_mapping_rejected(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="mapping"):
            load_spec(path)


class TestSchemeRegistry:
    def test_registry_covers_the_paper_schemes(self):
        assert set(DEFAULT_SCHEMES) <= set(SCHEME_REGISTRY)

    def test_build_schemes_names(self):
        schemes = build_schemes(DEFAULT_SCHEMES)
        assert [s.name for s in schemes] == list(DEFAULT_SCHEMES)

    def test_signatures_are_deterministic(self):
        # Spec reproducibility depends on a name alone fixing the signature.
        for name in SCHEME_REGISTRY:
            assert (
                SCHEME_REGISTRY[name]().signature()
                == SCHEME_REGISTRY[name]().signature()
            )

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            build_schemes(["Baseline", "nope"])


class TestRunSpec:
    @pytest.fixture(scope="class")
    def executed(self):
        spec = spec_from_dict(tiny_spec_dict())
        store = RunStore()
        return spec, store, run_spec(spec, store, workers=0)

    def test_point_order_preserved_across_topology_groups(self, executed):
        spec, _, run = executed
        assert [p.label for p in run.result.points] == [p.label for p in spec.points]
        for point in run.result.points:
            assert set(point.values) == {"Baseline", "Route-only"}

    def test_stats_and_store(self, executed):
        spec, store, run = executed
        assert run.stats.total_tasks == spec.total_tasks()
        assert run.stats.executed == spec.total_tasks()
        assert run.stats.cached == 0
        assert len(store) == spec.total_tasks()

    def test_fingerprint_per_topology(self, executed):
        spec, _, run = executed
        assert set(run.fingerprints) == {p.config.topology for p in spec.points}
        assert len(set(run.fingerprints.values())) == 2

    def test_warm_rerun_executes_nothing(self, executed):
        spec, store, first = executed
        warm = run_spec(spec, store, workers=0)
        assert warm.stats.executed == 0
        assert warm.stats.cached == spec.total_tasks()
        for a, b in zip(first.result.points, warm.result.points):
            assert a.values == b.values

    def test_result_from_store_matches_run(self, executed):
        spec, store, run = executed
        rebuilt, missing, fingerprints = result_from_store(spec, store)
        assert missing == 0
        assert fingerprints == run.fingerprints
        for a, b in zip(run.result.points, rebuilt.points):
            assert a.label == b.label
            assert a.values == b.values

    def test_result_from_partial_store_counts_missing(self, executed):
        spec, store, _ = executed
        partial = RunStore()
        for index, (key, record) in enumerate(store._records.items()):
            if index % 2 == 0:
                partial.put(key, record)
        _, missing, _ = result_from_store(spec, partial)
        assert missing == spec.total_tasks() - len(partial)


class TestExtraMetrics:
    def test_spec_round_trip_preserves_extra_metrics(self):
        spec = spec_from_dict(
            tiny_spec_dict(extra_metrics=["mean_slowdown", "max_slowdown"])
        )
        assert spec.extra_metrics == ("mean_slowdown", "max_slowdown")
        assert spec_from_dict(spec.to_dict()) == spec
        # Specs without the key keep an empty tuple (and omit it on export).
        plain = spec_from_dict(tiny_spec_dict())
        assert plain.extra_metrics == ()
        assert "extra_metrics" not in plain.to_dict()

    def test_run_spec_aggregates_extras_over_the_same_grid(self):
        spec = spec_from_dict(
            tiny_spec_dict(extra_metrics=["mean_slowdown", "max_slowdown"])
        )
        store = RunStore()
        run = run_spec(spec, store, workers=0)
        assert set(run.extras) == {"mean_slowdown", "max_slowdown"}
        for extra in run.extras.values():
            assert [p.label for p in extra.points] == [p.label for p in spec.points]
            for point in extra.points:
                assert set(point.values) == {"Baseline", "Route-only"}
                for values in point.values.values():
                    assert all(v >= 0.0 for v in values)

    def test_records_missing_the_metric_count_as_missing(self):
        spec = spec_from_dict(tiny_spec_dict())
        store = RunStore()
        run_spec(spec, store, workers=0)
        _, missing, _ = result_from_store(spec, store, metric="no_such_metric")
        assert missing == spec.total_tasks()

    def test_extras_render_as_report_blocks_and_csv_columns(self):
        from repro.analysis.report import csv_report, render_report

        spec = spec_from_dict(tiny_spec_dict(extra_metrics=["mean_slowdown"]))
        store = RunStore()
        run = run_spec(spec, store, workers=0)
        text = render_report(
            run.result, "Tiny", reference="Baseline", extras=run.extras
        )
        assert "Tiny — avg mean_slowdown" in text
        csv_text = csv_report(run.result, "Baseline", run.extras)
        header = csv_text.splitlines()[0].split(",")
        assert header[-1] == "mean_mean_slowdown"
        # One numeric slowdown cell per (point, scheme) row.
        assert len(csv_text.splitlines()) == 1 + 2 * 2


class TestProvenance:
    def test_provenance_document(self):
        info = provenance()
        assert info["version"]
        assert "HiGHS" in info["solver"]
        assert any("DESIGN.md" in d for d in info["deviations"])

    def test_provenance_lines_render(self):
        lines = provenance_lines()
        assert lines[0].startswith("repro ")
        assert any("deviation" in line for line in lines)

    def test_stats_summary(self):
        spec = spec_from_dict(tiny_spec_dict())
        run = run_spec(spec, RunStore(), workers=0)
        text = stats_summary(run.stats)
        assert "tasks" in text and "cached" in text and "worker" in text


class TestExportArtifacts:
    def test_files_written_and_consistent(self, tmp_path):
        spec = spec_from_dict(tiny_spec_dict())
        store = RunStore(tmp_path / "store.jsonl")
        run = run_spec(spec, store, workers=0)
        paths = export_artifacts(
            tmp_path / "out", spec, run.result, run.stats, run.fingerprints, store
        )
        for kind in ("run", "text", "markdown", "csv"):
            assert paths[kind].exists(), kind

        metadata = json.loads(paths["run"].read_text())
        assert metadata["spec"] == spec.to_dict()
        assert metadata["engine"]["executed"] == spec.total_tasks()
        assert metadata["topology_fingerprints"] == run.fingerprints
        assert metadata["provenance"]["version"]

        rendered = render_report(
            run.result, spec.display_title(), spec.reference, fmt="markdown"
        )
        assert paths["markdown"].read_text().rstrip("\n") == rendered.rstrip("\n")


class TestFaultsInSpecs:
    def test_faults_entry_round_trips(self):
        spec = spec_from_dict(tiny_spec_dict(faults="rate=0.1,seed=7"))
        assert spec.faults == "rate=0.1,seed=7"
        assert spec.to_dict()["faults"] == "rate=0.1,seed=7"
        assert spec_from_dict(spec.to_dict()) == spec
        plain = spec_from_dict(tiny_spec_dict())
        assert plain.faults is None
        assert "faults" not in plain.to_dict()

    def test_invalid_faults_entry_rejected_naming_the_spec(self):
        with pytest.raises(ValueError, match="'tiny'.*invalid faults spec"):
            spec_from_dict(tiny_spec_dict(faults="rate=9000"))

    def test_run_spec_argument_overrides_spec_faults(self):
        # The spec declares chaos; passing rate=0 from the CLI disables it.
        spec = spec_from_dict(
            tiny_spec_dict(faults="rate=1.0,kinds=timeout")
        )
        run = run_spec(spec, RunStore(), workers=0, faults="rate=0.0")
        assert run.stats.retried == 0
        assert run.stats.failed == 0

    def test_spec_declared_faults_apply(self):
        spec = spec_from_dict(tiny_spec_dict(faults="rate=1.0,kinds=timeout"))
        run = run_spec(spec, RunStore(), workers=0)
        assert run.stats.retried == spec.total_tasks()
        assert run.stats.failed == 0


class TestFailureAggregation:
    def chaos_spec(self):
        # An LP-solving scheme so "lp" faults land somewhere real.
        return spec_from_dict(
            tiny_spec_dict(schemes=["Baseline", "LP-Based"])
        )

    def test_failed_records_surface_in_result_and_stats(self):
        spec = self.chaos_spec()
        store = RunStore()
        run = run_spec(spec, store, workers=0, faults="rate=1.0,kinds=lp")
        # Every LP-Based task fails; every Baseline task succeeds.
        assert run.stats.failed == len(spec.points)
        assert run.stats.coverage == pytest.approx(0.5)
        for point in run.result.points:
            assert point.failures == {"LP-Based": ["LPInfeasibleError"]}
            assert set(point.values) == {"Baseline"}

    def test_result_from_store_routes_failures_not_missing(self):
        spec = self.chaos_spec()
        store = RunStore()
        run_spec(spec, store, workers=0, faults="rate=1.0,kinds=lp")
        rebuilt, missing, _ = result_from_store(spec, store)
        assert missing == 0  # a failed cell is known-bad, not absent
        assert rebuilt.total_failures() == len(spec.points)
        for point in rebuilt.points:
            assert point.failures == {"LP-Based": ["LPInfeasibleError"]}

    def test_stats_summary_mentions_failures_only_when_present(self):
        spec = self.chaos_spec()
        run = run_spec(spec, RunStore(), workers=0, faults="rate=1.0,kinds=lp")
        text = stats_summary(run.stats)
        assert f"{run.stats.failed} failed" in text
        clean = run_spec(spec, RunStore(), workers=0)
        assert "failed" not in stats_summary(clean.stats)
        assert "retried" not in stats_summary(clean.stats)

    def test_export_artifacts_records_failure_accounting(self, tmp_path):
        spec = self.chaos_spec()
        store = RunStore(tmp_path / "store.jsonl")
        run = run_spec(spec, store, workers=0, faults="rate=1.0,kinds=lp")
        paths = export_artifacts(
            tmp_path / "out", spec, run.result, run.stats, run.fingerprints, store
        )
        metadata = json.loads(paths["run"].read_text())
        assert metadata["engine"]["failed"] == len(spec.points)
        assert metadata["engine"]["retried"] == 0
        assert metadata["engine"]["pool_restarts"] == 0
        assert metadata["engine"]["coverage"] == pytest.approx(0.5)
        assert "failures" in paths["csv"].read_text().splitlines()[0]

    def test_retry_failed_heals_through_run_spec(self):
        spec = self.chaos_spec()
        store = RunStore()
        run_spec(spec, store, workers=0, faults="rate=1.0,kinds=lp")
        healed = run_spec(spec, store, workers=0, retry_failed=True)
        assert healed.stats.failed == 0
        clean = run_spec(spec, RunStore(), workers=0)
        for a, b in zip(healed.result.points, clean.result.points):
            assert a.values == b.values
