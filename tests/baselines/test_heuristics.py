"""Tests for the Section-4.3 heuristics and the SEBF extension."""

import pytest

from repro.baselines import (
    BaselineScheme,
    RouteOnlyScheme,
    SEBFScheme,
    ScheduleOnlyScheme,
    load_balanced_route,
    random_route,
)
from repro.core import Coflow, CoflowInstance, Flow, topologies
from repro.core.network import path_edges
from repro.sim import FlowLevelSimulator
from repro.workloads import CoflowGenerator, WorkloadConfig


@pytest.fixture
def fat_tree():
    return topologies.fat_tree(4)


@pytest.fixture
def workload(fat_tree):
    return CoflowGenerator(
        fat_tree, WorkloadConfig(num_coflows=4, coflow_width=4, seed=3)
    ).instance()


ALL_SCHEMES = [
    BaselineScheme(seed=0),
    ScheduleOnlyScheme(seed=0),
    RouteOnlyScheme(),
    SEBFScheme(),
]


class TestPlansAreValid:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_plan_valid_and_complete(self, scheme, fat_tree, workload):
        plan = scheme.plan(workload, fat_tree)
        plan.validate(workload, fat_tree)
        assert set(plan.paths) == set(workload.flow_ids())
        assert sorted(plan.order) == sorted(workload.flow_ids())

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_plan_runs_in_simulator(self, scheme, fat_tree, workload):
        plan = scheme.plan(workload, fat_tree)
        result = FlowLevelSimulator(fat_tree).run(workload, plan)
        result.schedule.validate(plan_instance(workload, plan), fat_tree)
        assert result.weighted_completion_time > 0.0


def plan_instance(instance, plan):
    """Attach the plan's paths so the realised schedule can be validated."""
    return instance.with_paths({fid: list(p) for fid, p in plan.paths.items()})


class TestRoutingHelpers:
    def test_random_route_deterministic_given_seed(self, fat_tree, workload):
        import random

        a = random_route(workload, fat_tree, random.Random(5))
        b = random_route(workload, fat_tree, random.Random(5))
        assert a == b

    def test_random_route_respects_existing_paths(self, fat_tree, workload):
        import random

        fixed = {(0, 0): tuple(fat_tree.shortest_path(
            workload.flow((0, 0)).source, workload.flow((0, 0)).destination
        ))}
        routed = workload.with_paths({k: list(v) for k, v in fixed.items()})
        paths = random_route(routed, fat_tree, random.Random(1))
        assert paths[(0, 0)] == fixed[(0, 0)]

    def test_load_balanced_route_spreads_over_cores(self, fat_tree):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=tuple(Flow("host_0", "host_15", size=1.0) for _ in range(4)))
            ]
        )
        paths = load_balanced_route(instance, fat_tree)
        cores = {
            node
            for path in paths.values()
            for node in path
            if str(node).startswith("core_")
        }
        assert len(cores) >= 2

    def test_load_balanced_route_beats_single_path_congestion(self, fat_tree):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=tuple(Flow("host_0", "host_15", size=1.0) for _ in range(8)))
            ]
        )
        paths = load_balanced_route(instance, fat_tree)
        core_load = {}
        for path in paths.values():
            for u, v in path_edges(list(path)):
                if str(u).startswith("agg_0") and str(v).startswith("core"):
                    core_load[(u, v)] = core_load.get((u, v), 0) + 1
        # 8 flows over >= 2 aggregation->core links
        assert max(core_load.values()) < 8


class TestOrderings:
    def test_schedule_only_orders_by_min_completion(self, fat_tree):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("host_0", "host_1", size=10.0),)),
                Coflow(flows=(Flow("host_2", "host_3", size=1.0),)),
            ]
        )
        plan = ScheduleOnlyScheme(seed=0).plan(instance, fat_tree)
        assert plan.order[0] == (1, 0)  # the small flow first

    def test_schedule_only_accounts_for_release_times(self, fat_tree):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("host_0", "host_1", size=1.0, release_time=50.0),)),
                Coflow(flows=(Flow("host_2", "host_3", size=2.0),)),
            ]
        )
        plan = ScheduleOnlyScheme(seed=0).plan(instance, fat_tree)
        assert plan.order[0] == (1, 0)

    def test_sebf_orders_by_coflow_bottleneck(self, fat_tree):
        light = Coflow(flows=(Flow("host_0", "host_1", size=1.0),), name="light")
        heavy = Coflow(
            flows=tuple(Flow("host_2", "host_3", size=8.0) for _ in range(3)),
            name="heavy",
        )
        instance = CoflowInstance(coflows=[heavy, light])
        plan = SEBFScheme().plan(instance, fat_tree)
        # all flows of the light coflow come before the heavy one
        positions = {fid: k for k, fid in enumerate(plan.order)}
        assert positions[(1, 0)] < min(positions[(0, j)] for j in range(3))

    def test_sebf_groups_coflows_contiguously(self, fat_tree, workload):
        plan = SEBFScheme().plan(workload, fat_tree)
        seen = []
        for i, _ in plan.order:
            if not seen or seen[-1] != i:
                seen.append(i)
        assert len(seen) == workload.num_coflows  # each coflow appears as one block

    def test_baseline_orders_differ_across_seeds(self, fat_tree, workload):
        a = BaselineScheme(seed=1).plan(workload, fat_tree).order
        b = BaselineScheme(seed=2).plan(workload, fat_tree).order
        assert a != b

    def test_route_only_keeps_instance_order(self, fat_tree, workload):
        plan = RouteOnlyScheme().plan(workload, fat_tree)
        assert plan.order == workload.flow_ids()
