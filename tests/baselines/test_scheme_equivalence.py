"""Legacy scheme names are bit-identical to their pipeline compositions.

The scheme layer was redesigned from one hand-written ``Scheme`` subclass
per evaluation cell into Router x Orderer x Allocator pipelines
(:mod:`repro.baselines.pipeline`); every legacy name now resolves through
the spec registry to a composition.  This suite keeps the pre-refactor
implementations alive as *executable references* — verbatim copies of the
deleted ``plan()`` bodies — and asserts, across seeded topology x workload
families, that each legacy name produces **bit-identical**
``SimulationPlan``s (paths and order compared exactly) and bit-identical
``SimulationResult``s (completion times and metrics compared exactly, no
tolerance) to its reference.  The online wrappers ride along: the
``online=true`` flag must reproduce the former ``OnlineScheme`` wrapper's
re-planning runs exactly.
"""

import random

import pytest

from repro.analysis.artifacts import build_schemes
from repro.baselines import (
    SCHEME_ALIASES,
    PipelineScheme,
    load_balanced_route,
    random_route,
    respect_given_paths,
    scheme_from_spec,
)
from repro.circuit.algorithm import PathsNotGivenScheduler
from repro.circuit.given_paths import DEFAULT_EPSILON, GivenPathsLP
from repro.core import topologies
from repro.core.network import path_edges
from repro.sim import FlowLevelSimulator, OnlineFlowSimulator, SimulationPlan
from repro.workloads import CoflowGenerator, WorkloadConfig


# ----------------------------------------------------- legacy reference plans
# Verbatim copies of the pre-refactor Scheme.plan() bodies (PR 4 state).

def legacy_baseline_plan(instance, network, seed=0, max_paths=16):
    """The deleted BaselineScheme.plan: one rng routes then shuffles."""
    rng = random.Random(seed)
    paths = random_route(instance, network, rng, max_paths=max_paths)
    order = list(instance.flow_ids())
    rng.shuffle(order)
    return SimulationPlan(paths=paths, order=order, name="Baseline")


def legacy_schedule_only_plan(instance, network, seed=0, max_paths=16):
    """The deleted ScheduleOnlyScheme.plan."""
    rng = random.Random(seed)
    paths = random_route(instance, network, rng, max_paths=max_paths)

    def min_completion(fid):
        flow = instance.flow(fid)
        bandwidth = network.bottleneck_capacity(list(paths[fid]))
        return flow.release_time + flow.size / bandwidth

    order = sorted(instance.flow_ids(), key=lambda fid: (min_completion(fid), fid))
    return SimulationPlan(paths=paths, order=order, name="Schedule-only")


def legacy_route_only_plan(instance, network, max_paths=16):
    """The deleted RouteOnlyScheme.plan."""
    paths = load_balanced_route(instance, network, max_paths=max_paths)
    return SimulationPlan(
        paths=paths, order=list(instance.flow_ids()), name="Route-only"
    )


def legacy_sebf_plan(instance, network, max_paths=16):
    """The deleted SEBFScheme.plan."""
    paths = load_balanced_route(instance, network, max_paths=max_paths)

    def coflow_bottleneck(index):
        loads = {}
        for j, flow in enumerate(instance[index].flows):
            for e in path_edges(list(paths[(index, j)])):
                loads[e] = loads.get(e, 0.0) + flow.size / network.capacity(*e)
        bottleneck = max(loads.values()) if loads else 0.0
        return instance[index].release_time + bottleneck

    coflow_order = sorted(
        range(len(instance.coflows)), key=lambda i: (coflow_bottleneck(i), i)
    )
    order = []
    for i in coflow_order:
        order.extend(
            sorted(
                ((i, j) for j in range(len(instance[i].flows))),
                key=lambda fid: (-instance.flow(fid).size, fid),
            )
        )
    return SimulationPlan(paths=paths, order=order, name="SEBF")


def legacy_lp_based_plan(instance, network, seed=0):
    """The deleted LPBasedScheme.plan (defaults of the registry entry)."""
    scheduler = PathsNotGivenScheduler(
        instance.without_paths(),
        network,
        formulation="path",
        max_candidate_paths=16,
        seed=seed,
        path_selection="thickest",
    )
    routing_plan = scheduler.route()
    return SimulationPlan(
        paths=dict(routing_plan.paths),
        order=list(routing_plan.flow_order),
        name="LP-Based",
    )


def legacy_lp_given_paths_plan(instance, network, epsilon=DEFAULT_EPSILON):
    """The deleted LPGivenPathsScheme.plan."""
    relaxation = GivenPathsLP(instance, network, epsilon=epsilon).relax()
    return SimulationPlan(
        paths=respect_given_paths(instance),
        order=relaxation.flow_order(),
        name="LP-Based (given paths)",
    )


#: Legacy scheme name -> reference plan function (built-in parameter
#: defaults, exactly like the registry aliases fix them).
LEGACY_PLANS = {
    "Baseline": legacy_baseline_plan,
    "Schedule-only": legacy_schedule_only_plan,
    "Route-only": legacy_route_only_plan,
    "SEBF": legacy_sebf_plan,
    "SEBF-MaxMin": legacy_sebf_plan,
    "SEBF-WFair": legacy_sebf_plan,
    "LP-Based": legacy_lp_based_plan,
}

#: Rate allocator each legacy name selected (the *-MaxMin/-WFair variants).
LEGACY_ALLOCATORS = {"SEBF-MaxMin": "max-min", "SEBF-WFair": "weighted"}

#: Online alias -> the reference plan its replanner invoked per arrival.
#: Every Online-* alias must appear here (enforced by TestRegistryCoverage).
ONLINE_LEGACY_PLANS = {
    "Online-SEBF": legacy_sebf_plan,
    "Online-Baseline": legacy_baseline_plan,
    "Online-Schedule-only": legacy_schedule_only_plan,
    "Online-Route-only": legacy_route_only_plan,
    "Online-LP-Based": legacy_lp_based_plan,
}


# ---------------------------------------------------------------- case grid

def build_case(topology_key, flow_sizes, endpoints, seed):
    """One deterministic (network, instance) pair of the equivalence grid."""
    if topology_key == "random":
        network = topologies.random_graph(
            6, edge_probability=0.35, capacity_range=(1.0, 3.0), seed=seed
        )
    elif topology_key == "leaf_spine":
        network = topologies.leaf_spine(
            num_leaves=2, num_spines=2, hosts_per_leaf=4
        )
    else:
        network = topologies.fat_tree(4)
    config = WorkloadConfig(
        num_coflows=3,
        coflow_width=4,
        mean_flow_size=3.0,
        release_rate=2.0,
        coflow_arrival_rate=0.5 if seed % 2 else None,
        seed=800 + seed,
        flow_size_distribution=flow_sizes,
        endpoint_distribution=endpoints,
    )
    return network, CoflowGenerator(network, config).instance()


CASES = [
    pytest.param(topo, fdist, edist, seed, id=f"{topo}-{fdist}-{edist}-{seed}")
    for seed, (topo, fdist, edist) in enumerate(
        [
            ("random", "poisson", "uniform"),
            ("random", "pareto", "skewed"),
            ("leaf_spine", "facebook", "incast"),
            ("fat_tree", "poisson", "uniform"),
        ]
    )
]

HEURISTIC_NAMES = sorted(set(LEGACY_PLANS) - {"LP-Based"})


def assert_bit_identical(instance, network, scheme, reference_plan):
    """Plans and simulated results must match exactly (no tolerance)."""
    plan = scheme.plan(instance, network)
    assert plan.paths == reference_plan.paths
    assert plan.order == reference_plan.order
    assert plan.allocator == reference_plan.allocator

    simulator = FlowLevelSimulator(network)
    result = scheme.simulate(instance, network, simulator)
    reference = simulator.run(instance, reference_plan)
    assert result.flow_completion == reference.flow_completion
    assert result.metrics() == reference.metrics()


class TestStaticEquivalence:
    """Every static legacy name == its pipeline alias, bit for bit."""

    @pytest.mark.parametrize("topo,fdist,edist,seed", CASES)
    @pytest.mark.parametrize("name", HEURISTIC_NAMES)
    def test_heuristics(self, name, topo, fdist, edist, seed):
        network, instance = build_case(topo, fdist, edist, seed)
        scheme = build_schemes([name])[0]
        reference = LEGACY_PLANS[name](instance, network)
        reference.allocator = LEGACY_ALLOCATORS.get(name, "greedy")
        assert_bit_identical(instance, network, scheme, reference)

    @pytest.mark.parametrize(
        "topo,fdist,edist,seed", CASES[:2], ids=["random-poisson", "random-pareto"]
    )
    def test_lp_based(self, topo, fdist, edist, seed):
        network, instance = build_case(topo, fdist, edist, seed)
        scheme = build_schemes(["LP-Based"])[0]
        reference = legacy_lp_based_plan(instance, network)
        assert_bit_identical(instance, network, scheme, reference)

    def test_lp_given_paths(self):
        network, instance = build_case("fat_tree", "poisson", "uniform", 3)
        routed = instance.with_paths(
            {
                fid: network.shortest_path(
                    instance.flow(fid).source, instance.flow(fid).destination
                )
                for fid in instance.flow_ids()
            }
        )
        scheme = scheme_from_spec("LP-Based (given paths)")
        reference = legacy_lp_given_paths_plan(routed, network)
        assert_bit_identical(routed, network, scheme, reference)


class TestOnlineEquivalence:
    """`online=true` == the deleted OnlineScheme wrapper's re-planning run."""

    @pytest.mark.parametrize("name,legacy", sorted(ONLINE_LEGACY_PLANS.items()))
    def test_online_names(self, name, legacy):
        network, instance = build_case("leaf_spine", "facebook", "incast", 1)
        scheme = build_schemes([name])[0]
        result = scheme.simulate(instance, network)
        # The deleted wrapper invoked the inner scheme's plan() at every
        # arrival context and spliced the epochs; reproduce it verbatim.
        reference = OnlineFlowSimulator(
            network, lambda context: legacy(context.instance, context.network)
        ).run(instance, plan_name=name)
        assert result.flow_completion == reference.flow_completion
        assert result.metrics() == reference.metrics()
        assert result.plan_name == name


class TestRegistryCoverage:
    """Structural guarantees over the whole alias table."""

    def test_every_alias_resolves_to_a_pipeline(self):
        for name in SCHEME_ALIASES:
            scheme = build_schemes([name])[0]
            assert isinstance(scheme, PipelineScheme)
            assert scheme.name == name

    def test_alias_and_spelled_out_spec_share_a_signature(self):
        for name, spec in SCHEME_ALIASES.items():
            assert (
                scheme_from_spec(name).signature()
                == scheme_from_spec(spec).signature()
            ), name

    def test_every_legacy_name_has_an_equivalence_reference(self):
        # Online names must be listed in ONLINE_LEGACY_PLANS explicitly —
        # a name-prefix waiver would let an untested alias slip through.
        covered = (
            set(LEGACY_PLANS)
            | set(ONLINE_LEGACY_PLANS)
            | {"LP-Based (given paths)"}
        )
        assert set(SCHEME_ALIASES) <= covered
