"""Tests for the LP-Based schemes (the paper's evaluated algorithm)."""

import pytest

from repro.baselines import LPBasedScheme, LPGivenPathsScheme
from repro.core import Coflow, CoflowInstance, Flow, topologies
from repro.sim import FlowLevelSimulator
from repro.workloads import CoflowGenerator, WorkloadConfig


@pytest.fixture
def fat_tree():
    return topologies.fat_tree(4)


@pytest.fixture
def workload(fat_tree):
    return CoflowGenerator(
        fat_tree, WorkloadConfig(num_coflows=4, coflow_width=4, seed=9)
    ).instance()


class TestLPBasedScheme:
    def test_plan_valid(self, fat_tree, workload):
        scheme = LPBasedScheme(seed=0)
        plan = scheme.plan(workload, fat_tree)
        plan.validate(workload, fat_tree)
        assert scheme.last_plan is not None
        assert scheme.last_plan.lower_bound > 0.0

    def test_simulated_objective_above_lp_lower_bound(self, fat_tree, workload):
        scheme = LPBasedScheme(seed=0)
        plan = scheme.plan(workload, fat_tree)
        result = FlowLevelSimulator(fat_tree).run(workload, plan)
        assert result.weighted_completion_time >= scheme.last_plan.lower_bound - 1e-6

    def test_deterministic_given_seed(self, fat_tree, workload):
        plan_a = LPBasedScheme(seed=4).plan(workload, fat_tree)
        plan_b = LPBasedScheme(seed=4).plan(workload, fat_tree)
        assert plan_a.paths == plan_b.paths
        assert plan_a.order == plan_b.order

    def test_works_when_instance_already_has_paths(self, fat_tree, workload):
        routed = workload.with_paths(
            {
                fid: fat_tree.shortest_path(
                    workload.flow(fid).source, workload.flow(fid).destination
                )
                for fid in workload.flow_ids()
            }
        )
        plan = LPBasedScheme(seed=0).plan(routed, fat_tree)
        plan.validate(routed, fat_tree)


class TestLPGivenPathsScheme:
    def test_requires_paths(self, fat_tree, workload):
        with pytest.raises(ValueError):
            LPGivenPathsScheme().plan(workload, fat_tree)

    def test_plan_on_switch(self):
        net = topologies.nonblocking_switch(6)
        instance = CoflowInstance(
            coflows=[
                Coflow(
                    flows=(
                        Flow("host_0", "host_1", size=2.0, path=["host_0", "switch", "host_1"]),
                        Flow("host_2", "host_3", size=1.0, path=["host_2", "switch", "host_3"]),
                    ),
                    weight=2.0,
                ),
                Coflow(
                    flows=(
                        Flow("host_4", "host_1", size=1.0, path=["host_4", "switch", "host_1"]),
                    ),
                    weight=1.0,
                ),
            ]
        )
        scheme = LPGivenPathsScheme()
        plan = scheme.plan(instance, net)
        plan.validate(instance, net)
        result = FlowLevelSimulator(net).run(instance, plan)
        assert result.weighted_completion_time >= scheme.last_relaxation.lower_bound - 1e-6
