"""The scheme spec grammar, stage registries and signature stability."""

import pickle
import random

import pytest

from repro.baselines import (
    ORDERERS,
    ROUTERS,
    SCHEME_ALIASES,
    BaselineScheme,
    LPOrderer,
    OnlineScheme,
    PipelineScheme,
    PlanContext,
    RandomOrderer,
    RandomRouter,
    SEBFOrderer,
    Scheme,
    build_stage,
    scheme_from_spec,
)
from repro.core import topologies
from repro.sim.plan import SimulationPlan
from repro.workloads import CoflowGenerator, WorkloadConfig


@pytest.fixture
def case():
    network = topologies.leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=4)
    instance = CoflowGenerator(
        network, WorkloadConfig(num_coflows=3, coflow_width=3, seed=5)
    ).instance()
    return network, instance


class TestGrammar:
    def test_alias_keeps_its_display_name(self):
        scheme = scheme_from_spec("SEBF-MaxMin")
        assert scheme.name == "SEBF-MaxMin"
        assert scheme.alloc == "max-min"
        assert scheme.orderer.key == "sebf"

    def test_raw_spec_names_itself_compactly(self):
        scheme = scheme_from_spec(
            "pipeline(router=balanced, order=sebf, alloc=greedy, online=false)"
        )
        assert scheme.name == "pipeline(router=balanced, order=sebf)"

    def test_stage_kwargs_parse_with_literal_coercion(self):
        scheme = scheme_from_spec(
            "pipeline(router=lp(epsilon=0.25, seed=7, path_selection=random), "
            "order=lp, online=true)"
        )
        assert scheme.router.epsilon == 0.25
        assert scheme.router.seed == 7
        assert scheme.router.path_selection == "random"
        assert scheme.online is True

    def test_canonical_spec_round_trips(self):
        for text in list(SCHEME_ALIASES.values()) + [
            "pipeline(router=lp(seed=3), order=mct, alloc=weighted)"
        ]:
            scheme = scheme_from_spec(text)
            reparsed = scheme_from_spec(scheme.signature())
            assert reparsed.signature() == scheme.signature(), text
            assert scheme_from_spec(scheme.spec(compact=True)).signature() == (
                scheme.signature()
            ), text

    def test_kwarg_order_and_defaults_do_not_change_the_signature(self):
        variants = [
            "pipeline(router=random, order=mct)",
            "pipeline(order=mct, router=random)",
            "pipeline(router=random(seed=0, max_paths=16), order=mct, "
            "alloc=greedy, online=false)",
            "Schedule-only",
        ]
        signatures = {scheme_from_spec(text).signature() for text in variants}
        assert len(signatures) == 1

    def test_whitespace_is_insignificant(self):
        a = scheme_from_spec("pipeline(router=random,order=mct)")
        b = scheme_from_spec("  pipeline( router = random , order = mct )  ")
        assert a.signature() == b.signature()


class TestGrammarErrors:
    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("pipeline(router=xlp, order=sebf)", "unknown router 'xlp'"),
            ("pipeline(router=xlp, order=sebf)", "valid routers: "),
            ("pipeline(router=lp, order=zebra)", "unknown orderer 'zebra'"),
            ("pipeline(router=lp, order=zebra)", "valid orderers: "),
            ("pipeline(router=lp, order=lp, alloc=fairest)", "unknown allocator"),
            ("pipeline(router=lp(eps=1), order=lp)", "unknown parameter(s) ['eps']"),
            ("pipeline(order=sebf)", "missing the required router= stage"),
            ("pipeline(router=lp)", "missing the required order= stage"),
            ("pipeline(router=lp, order=lp, foo=1)", "unknown key(s) ['foo']"),
            ("pipeline(router=lp, order=lp, online=maybe)", "online must be true or false"),
            ("pipeline(router=lp, order=lp, alloc=max-min(x=1))", "takes no parameters"),
            ("pipeline(router=lp, order=lp", "expected ',' or ')'"),
            ("pipeline(router=lp, router=lp)", "duplicate parameter 'router'"),
            ("pipeline(router=, order=lp)", "expected a value for 'router'"),
            ("nope", "unknown scheme 'nope'"),
            ("nope", "known scheme names: "),
            ("nope", "pipeline(router="),
        ],
    )
    def test_errors_name_the_bad_piece(self, text, fragment):
        with pytest.raises(ValueError, match=".*"):
            try:
                scheme_from_spec(text)
            except ValueError as error:
                assert fragment in str(error), str(error)
                raise

    def test_build_stage_unknown_name_lists_registry(self):
        with pytest.raises(ValueError) as excinfo:
            build_stage("router", ROUTERS, "bogus")
        assert "balanced, given, lp, random" in str(excinfo.value)
        assert sorted(ORDERERS) == ["arrival", "lp", "mct", "random", "sebf"]


class TestStages:
    def test_context_rng_is_shared_per_seed(self, case):
        network, instance = case
        context = PlanContext(instance, network)
        assert context.rng(0) is context.rng(0)
        assert context.rng(0) is not context.rng(1)

    def test_shared_rng_reproduces_the_single_stream_baseline(self, case):
        # Baseline's legacy contract: one Random(seed) routes then shuffles.
        network, instance = case
        plan = BaselineScheme(seed=9).plan(instance, network)
        rng = random.Random(9)
        from repro.baselines import random_route

        paths = random_route(instance, network, rng, max_paths=16)
        order = list(instance.flow_ids())
        rng.shuffle(order)
        assert plan.paths == paths
        assert plan.order == order

    def test_given_router_requires_paths(self, case):
        network, instance = case
        with pytest.raises(ValueError, match="router 'given'"):
            scheme_from_spec("pipeline(router=given, order=arrival)").plan(
                instance, network
            )

    def test_lp_orderer_consumes_the_router_hint_without_solving(self, case):
        network, instance = case
        context = PlanContext(instance, network)
        context.order_hint = list(reversed(instance.flow_ids()))
        assert LPOrderer().order(context) == list(reversed(instance.flow_ids()))
        assert "last_relaxation" not in context.diagnostics

    def test_lp_orderer_explicit_epsilon_overrides_the_hint(self, case):
        # A non-default epsilon selects a specific interval structure, so
        # it must force its own solve even when the lp router hinted an
        # order — otherwise the parameter would be a silent no-op that
        # still changed the run-store signature.
        network, instance = case
        context = PlanContext(instance, network)
        context.paths = scheme_from_spec("SEBF").router.route(context)
        context.order_hint = list(reversed(instance.flow_ids()))
        order = LPOrderer(epsilon=0.25).order(context)
        assert sorted(order) == sorted(instance.flow_ids())
        assert "last_relaxation" in context.diagnostics  # really solved

    def test_int_parameters_reject_fractional_floats(self):
        with pytest.raises(ValueError, match="expected an integer for 'max_paths'"):
            scheme_from_spec("pipeline(router=random(max_paths=2.7), order=mct)")

    def test_lp_orderer_composes_with_any_router(self, case):
        # A composition the legacy class hierarchy could not express:
        # load-balanced routing under the LP completion-time order.
        network, instance = case
        scheme = scheme_from_spec("pipeline(router=balanced, order=lp)")
        plan = scheme.plan(instance, network)
        plan.validate(instance, network)
        assert sorted(plan.order) == sorted(instance.flow_ids())
        assert scheme.last_relaxation.lower_bound > 0.0

    def test_stage_spec_compact_and_canonical(self):
        router = RandomRouter(seed=3)
        assert router.spec(compact=True) == "random(seed=3)"
        assert router.spec() == "random(seed=3, max_paths=16)"
        assert SEBFOrderer().spec(compact=True) == "sebf"
        assert str(RandomOrderer()) == "random"


class TestPipelineScheme:
    def test_plan_carries_the_canonical_spec(self, case):
        network, instance = case
        scheme = scheme_from_spec("pipeline(router=balanced, order=sebf)")
        plan = scheme.plan(instance, network)
        assert plan.spec == scheme.signature()
        assert plan.normalized(instance).spec == scheme.signature()

    def test_schemes_pickle_for_the_worker_pool(self):
        scheme = scheme_from_spec("Online-LP-Based")
        clone = pickle.loads(pickle.dumps(scheme))
        assert clone.signature() == scheme.signature()
        assert clone.name == scheme.name

    def test_with_options_replaces_only_what_is_asked(self):
        scheme = scheme_from_spec("SEBF")
        online = scheme.with_options(online=True, name="Online-SEBF")
        assert online.online and online.name == "Online-SEBF"
        assert online.router == scheme.router and online.orderer == scheme.orderer
        assert scheme.online is False  # original untouched

    def test_online_factory_rejects_non_pipeline_schemes(self):
        class Custom(Scheme):
            """A scheme outside the pipeline world."""

            def plan(self, instance, network):
                """Unused."""
                raise NotImplementedError

        with pytest.raises(TypeError, match="OnlineFlowSimulator"):
            OnlineScheme(Custom())

    def test_unknown_allocator_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown rate allocator"):
            PipelineScheme(RandomRouter(), RandomOrderer(), alloc="bogus")


class TestSignatureShim:
    """Custom Scheme subclasses keep a stable vars()-based signature."""

    def test_default_object_reprs_are_stable_across_instances(self):
        class Knob:
            """A parameter object without a custom __repr__."""

        class Custom(Scheme):
            """Custom scheme carrying an opaque parameter object."""

            name = "custom"

            def __init__(self):
                self.knob = Knob()
                self.last_debug = object()  # excluded: mutable diagnostic

            def plan(self, instance, network):
                """Unused."""
                raise NotImplementedError

        first, second = Custom(), Custom()
        # Distinct objects at distinct addresses — the pre-fix signature
        # embedded `<Knob object at 0x...>` and differed every process.
        assert first.signature() == second.signature()
        assert "0x" not in first.signature()
        assert "last_debug" not in first.signature()
        assert "Knob object" in first.signature()
