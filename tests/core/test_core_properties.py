"""Property-based tests (hypothesis) for the core substrate invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CircuitSchedule,
    Coflow,
    CoflowInstance,
    Flow,
    IntervalGrid,
    topologies,
)
from repro.core.objective import coflow_completion_times, weighted_completion_time


# --------------------------------------------------------------------------
# Interval grid invariants
# --------------------------------------------------------------------------
@given(
    epsilon=st.floats(min_value=0.05, max_value=3.0),
    horizon=st.floats(min_value=0.5, max_value=1e5),
)
@settings(max_examples=60, deadline=None)
def test_grid_boundaries_cover_horizon_and_grow_geometrically(epsilon, horizon):
    grid = IntervalGrid(epsilon=epsilon, horizon=horizon)
    boundaries = grid.boundaries
    assert boundaries[0] == 0.0
    assert boundaries[1] == 1.0
    assert boundaries[-1] >= horizon
    for ell in range(2, len(boundaries)):
        assert boundaries[ell] > boundaries[ell - 1]
        if ell >= 2:
            assert math.isclose(
                boundaries[ell] / boundaries[ell - 1], 1.0 + epsilon, rel_tol=1e-9
            )


@given(
    epsilon=st.floats(min_value=0.05, max_value=3.0),
    time=st.floats(min_value=0.0, max_value=1e4),
)
@settings(max_examples=60, deadline=None)
def test_interval_of_returns_enclosing_interval(epsilon, time):
    grid = IntervalGrid(epsilon=epsilon, horizon=max(time, 1.0) + 1.0)
    ell = grid.interval_of(time)
    assert grid.left(ell) <= time + 1e-9 or ell == 0
    assert time <= grid.right(ell) + 1e-9


@given(
    fractions=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=12),
    alpha=st.floats(min_value=0.05, max_value=1.0),
)
@settings(max_examples=80, deadline=None)
def test_alpha_interval_is_first_crossing(fractions, alpha):
    total = sum(fractions)
    if total <= 0:
        return
    normalised = [f / total for f in fractions]
    grid = IntervalGrid(epsilon=1.0, horizon=2.0 ** max(len(normalised), 2))
    ell = grid.alpha_interval(normalised, alpha)
    assert sum(normalised[: ell + 1]) >= alpha - 1e-6
    assert sum(normalised[:ell]) < alpha + 1e-6


# --------------------------------------------------------------------------
# Schedule accounting invariants
# --------------------------------------------------------------------------
@given(
    sizes=st.lists(st.floats(min_value=0.1, max_value=5.0), min_size=1, max_size=6),
    weights=st.lists(st.floats(min_value=0.0, max_value=4.0), min_size=1, max_size=6),
)
@settings(max_examples=60, deadline=None)
def test_sequential_schedule_accounting(sizes, weights):
    """Flows served back-to-back on one edge: completion times are prefix sums."""
    n = min(len(sizes), len(weights))
    sizes, weights = sizes[:n], weights[:n]
    instance = CoflowInstance(
        coflows=[
            Coflow(flows=(Flow("x", "y", size=s, path=["x", "y"]),), weight=w)
            for s, w in zip(sizes, weights)
        ]
    )
    net = topologies.triangle()
    schedule = CircuitSchedule()
    t = 0.0
    expected = {}
    for i, size in enumerate(sizes):
        schedule.set_path((i, 0), ["x", "y"])
        schedule.add_segment((i, 0), t, t + size, 1.0)
        t += size
        expected[i] = t
    schedule.validate(instance, net)
    completions = schedule.coflow_completion_times(instance)
    for i, value in expected.items():
        assert math.isclose(completions[i], value, rel_tol=1e-9)
    assert math.isclose(
        schedule.weighted_completion_time(instance),
        sum(w * expected[i] for i, w in enumerate(weights)),
        rel_tol=1e-9,
    )


@given(
    completions=st.dictionaries(
        keys=st.tuples(st.integers(0, 3), st.integers(0, 2)),
        values=st.floats(min_value=0.0, max_value=100.0),
        min_size=1,
    )
)
@settings(max_examples=60, deadline=None)
def test_weighted_objective_monotone_in_completions(completions):
    """Increasing any completion time never decreases the objective."""
    coflow_ids = sorted({i for i, _ in completions})
    flows_per_coflow = {
        i: sorted(j for (ci, j) in completions if ci == i) for i in coflow_ids
    }
    instance = CoflowInstance(
        coflows=[
            Coflow(
                flows=tuple(Flow("a", "b") for _ in flows_per_coflow[i]),
                weight=1.0 + i,
            )
            for i in coflow_ids
        ]
    )
    remap = {}
    for new_i, i in enumerate(coflow_ids):
        for new_j, j in enumerate(flows_per_coflow[i]):
            remap[(new_i, new_j)] = completions[(i, j)]
    base = weighted_completion_time(instance, remap)
    bumped = dict(remap)
    some_key = sorted(bumped)[0]
    bumped[some_key] += 5.0
    assert weighted_completion_time(instance, bumped) >= base - 1e-9
