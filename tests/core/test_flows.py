"""Unit tests for the coflow data model."""

import pytest

from repro.core import Coflow, CoflowInstance, Flow


class TestFlow:
    def test_basic_construction(self):
        flow = Flow(source="a", destination="b", size=3.0, release_time=1.0)
        assert flow.size == 3.0
        assert flow.release_time == 1.0
        assert not flow.has_path

    def test_defaults(self):
        flow = Flow(source="a", destination="b")
        assert flow.size == 1.0
        assert flow.release_time == 0.0
        assert flow.path is None

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            Flow(source="a", destination="b", size=-1.0)

    def test_negative_release_rejected(self):
        with pytest.raises(ValueError, match="release"):
            Flow(source="a", destination="b", release_time=-0.5)

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError, match="differ"):
            Flow(source="a", destination="a")

    def test_zero_size_allowed(self):
        assert Flow(source="a", destination="b", size=0.0).size == 0.0

    def test_path_endpoints_must_match(self):
        with pytest.raises(ValueError, match="endpoints"):
            Flow(source="a", destination="b", path=["a", "c"])
        with pytest.raises(ValueError, match="endpoints"):
            Flow(source="a", destination="b", path=["c", "b"])

    def test_path_too_short_rejected(self):
        with pytest.raises(ValueError):
            Flow(source="a", destination="b", path=["a"])

    def test_path_is_stored_as_tuple(self):
        flow = Flow(source="a", destination="b", path=["a", "x", "b"])
        assert flow.path == ("a", "x", "b")
        assert flow.has_path

    def test_with_path(self):
        flow = Flow(source="a", destination="b")
        routed = flow.with_path(["a", "m", "b"])
        assert routed.path == ("a", "m", "b")
        assert flow.path is None  # original unchanged
        assert routed.size == flow.size

    def test_path_edges(self):
        flow = Flow(source="a", destination="c", path=["a", "b", "c"])
        assert flow.path_edges() == [("a", "b"), ("b", "c")]

    def test_path_edges_without_path_raises(self):
        with pytest.raises(ValueError, match="no path"):
            Flow(source="a", destination="b").path_edges()

    def test_frozen(self):
        flow = Flow(source="a", destination="b")
        with pytest.raises(Exception):
            flow.size = 5.0


class TestCoflow:
    def _flows(self, n=3):
        return tuple(Flow(source=f"s{i}", destination=f"d{i}", size=i + 1) for i in range(n))

    def test_basic(self):
        coflow = Coflow(flows=self._flows(3), weight=2.0, name="job")
        assert len(coflow) == 3
        assert coflow.width == 3
        assert coflow.weight == 2.0
        assert coflow.name == "job"

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Coflow(flows=())

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            Coflow(flows=self._flows(1), weight=-1.0)

    def test_total_size(self):
        assert Coflow(flows=self._flows(3)).total_size == 1 + 2 + 3

    def test_release_time_is_min(self):
        flows = (
            Flow(source="a", destination="b", release_time=5.0),
            Flow(source="c", destination="d", release_time=2.0),
        )
        assert Coflow(flows=flows).release_time == 2.0

    def test_iteration(self):
        flows = self._flows(4)
        assert list(Coflow(flows=flows)) == list(flows)

    def test_all_paths_given(self):
        routed = tuple(
            Flow(source="a", destination="b", path=["a", "b"]) for _ in range(2)
        )
        assert Coflow(flows=routed).all_paths_given
        mixed = routed + (Flow(source="a", destination="c"),)
        assert not Coflow(flows=mixed).all_paths_given


class TestCoflowInstance:
    def _instance(self):
        return CoflowInstance(
            coflows=[
                Coflow(
                    flows=(
                        Flow(source="a", destination="b", size=2.0),
                        Flow(source="b", destination="c", size=1.0, release_time=1.0),
                    ),
                    weight=3.0,
                ),
                Coflow(flows=(Flow(source="c", destination="a", size=4.0),), weight=1.0),
            ],
            name="test",
        )

    def test_counts(self):
        instance = self._instance()
        assert instance.num_coflows == 2
        assert instance.num_flows == 3
        assert len(instance) == 2

    def test_iter_flows_order(self):
        ids = [(i, j) for i, j, _ in self._instance().iter_flows()]
        assert ids == [(0, 0), (0, 1), (1, 0)]

    def test_flow_lookup(self):
        instance = self._instance()
        assert instance.flow((1, 0)).size == 4.0
        assert instance.flow((0, 1)).release_time == 1.0

    def test_flow_ids(self):
        assert self._instance().flow_ids() == [(0, 0), (0, 1), (1, 0)]

    def test_weights(self):
        assert self._instance().weights() == {0: 3.0, 1: 1.0}

    def test_total_volume(self):
        assert self._instance().total_volume == 7.0

    def test_max_release_time(self):
        assert self._instance().max_release_time == 1.0

    def test_all_paths_given_false_then_true(self):
        instance = self._instance()
        assert not instance.all_paths_given
        routed = instance.with_paths(
            {
                (0, 0): ["a", "b"],
                (0, 1): ["b", "c"],
                (1, 0): ["c", "a"],
            }
        )
        assert routed.all_paths_given

    def test_with_paths_preserves_metadata(self):
        instance = self._instance()
        routed = instance.with_paths({(0, 0): ["a", "x", "b"]})
        assert routed.flow((0, 0)).path == ("a", "x", "b")
        assert routed.flow((0, 1)).path is None
        assert routed[0].weight == 3.0
        assert routed.flow((0, 0)).size == 2.0

    def test_without_paths(self):
        instance = self._instance().with_paths({(1, 0): ["c", "a"]})
        stripped = instance.without_paths()
        assert all(f.path is None for _, _, f in stripped.iter_flows())

    def test_scaled(self):
        scaled = self._instance().scaled(size_factor=2.0, weight_factor=0.5)
        assert scaled.flow((0, 0)).size == 4.0
        assert scaled[0].weight == 1.5
        with pytest.raises(ValueError):
            self._instance().scaled(size_factor=0.0)

    def test_single_coflow_constructor(self):
        instance = CoflowInstance.single_coflow(
            [Flow(source="a", destination="b")], weight=2.0
        )
        assert instance.num_coflows == 1
        assert instance[0].weight == 2.0

    def test_getitem(self):
        assert self._instance()[1].weight == 1.0
