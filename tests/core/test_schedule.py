"""Unit tests for circuit and packet schedule representations and validators."""

import pytest

from repro.core import (
    BandwidthSegment,
    CircuitSchedule,
    Coflow,
    CoflowInstance,
    Flow,
    PacketSchedule,
    ScheduleError,
    topologies,
)


@pytest.fixture
def triangle():
    return topologies.triangle()


@pytest.fixture
def simple_instance():
    """Two coflows on the triangle with fixed single-edge paths."""
    return CoflowInstance(
        coflows=[
            Coflow(
                flows=(
                    Flow("x", "y", size=2.0, path=["x", "y"]),
                    Flow("y", "z", size=1.0, path=["y", "z"]),
                ),
                weight=1.0,
            ),
            Coflow(flows=(Flow("z", "x", size=1.0, path=["z", "x"]),), weight=2.0),
        ]
    )


class TestBandwidthSegment:
    def test_volume_and_duration(self):
        seg = BandwidthSegment(start=1.0, end=3.0, rate=0.5)
        assert seg.duration == 2.0
        assert seg.volume == 1.0

    def test_invalid_segments(self):
        with pytest.raises(ValueError):
            BandwidthSegment(start=2.0, end=1.0, rate=1.0)
        with pytest.raises(ValueError):
            BandwidthSegment(start=0.0, end=1.0, rate=-1.0)
        with pytest.raises(ValueError):
            BandwidthSegment(start=-1.0, end=1.0, rate=1.0)


class TestCircuitSchedule:
    def test_segments_sorted_and_zero_rate_dropped(self):
        sched = CircuitSchedule()
        sched.set_path((0, 0), ["x", "y"])
        sched.add_segment((0, 0), 2.0, 3.0, 1.0)
        sched.add_segment((0, 0), 0.0, 1.0, 1.0)
        sched.add_segment((0, 0), 5.0, 6.0, 0.0)
        segs = sched.segments((0, 0))
        assert [s.start for s in segs] == [0.0, 2.0]

    def test_add_segment_requires_path(self):
        sched = CircuitSchedule()
        with pytest.raises(ScheduleError):
            sched.add_segment((0, 0), 0.0, 1.0, 1.0)

    def test_short_path_rejected(self):
        sched = CircuitSchedule()
        with pytest.raises(ScheduleError):
            sched.set_path((0, 0), ["x"])

    def test_extend_segments_bulk_append(self):
        sched = CircuitSchedule()
        sched.set_path((0, 0), ["x", "y"])
        sched.extend_segments((0, 0), [(0.0, 1.0, 1.0), (1.0, 2.0, 0.0), (2.0, 3.0, 0.5)])
        segs = sched.segments((0, 0))
        assert [(s.start, s.end, s.rate) for s in segs] == [(0.0, 1.0, 1.0), (2.0, 3.0, 0.5)]
        assert sched.delivered_volume((0, 0)) == pytest.approx(1.5)

    def test_extend_segments_appends_after_existing(self):
        sched = CircuitSchedule()
        sched.set_path((0, 0), ["x", "y"])
        sched.add_segment((0, 0), 0.0, 1.0, 1.0)
        sched.extend_segments((0, 0), [(1.0, 2.0, 0.25)])
        assert [s.rate for s in sched.segments((0, 0))] == [1.0, 0.25]

    def test_extend_segments_rejects_out_of_order_input(self):
        sched = CircuitSchedule()
        sched.set_path((0, 0), ["x", "y"])
        with pytest.raises(ScheduleError, match="out of order"):
            sched.extend_segments((0, 0), [(2.0, 3.0, 1.0), (0.0, 1.0, 1.0)])
        sched.add_segment((0, 0), 5.0, 6.0, 1.0)
        with pytest.raises(ScheduleError, match="out of order"):
            sched.extend_segments((0, 0), [(0.0, 1.0, 1.0)])

    def test_extend_segments_requires_path(self):
        sched = CircuitSchedule()
        with pytest.raises(ScheduleError, match="set_path"):
            sched.extend_segments((0, 0), [(0.0, 1.0, 1.0)])

    def test_delivered_volume(self):
        sched = CircuitSchedule()
        sched.set_path((0, 0), ["x", "y"])
        sched.add_segment((0, 0), 0.0, 2.0, 0.5)
        sched.add_segment((0, 0), 2.0, 3.0, 1.0)
        assert sched.delivered_volume((0, 0)) == pytest.approx(2.0)
        assert sched.delivered_volume((0, 0), until=1.0) == pytest.approx(0.5)
        assert sched.delivered_volume((0, 0), until=2.5) == pytest.approx(1.5)

    def test_flow_completion_time_exact(self):
        sched = CircuitSchedule()
        sched.set_path((0, 0), ["x", "y"])
        sched.add_segment((0, 0), 0.0, 4.0, 0.5)
        # size 1 is reached at t=2 even though the segment runs to t=4
        assert sched.flow_completion_time((0, 0), size=1.0) == pytest.approx(2.0)
        assert sched.flow_completion_time((0, 0)) == pytest.approx(4.0)

    def test_flow_completion_zero_size(self):
        sched = CircuitSchedule()
        sched.set_path((0, 0), ["x", "y"])
        assert sched.flow_completion_time((0, 0), size=0.0) == 0.0

    def test_flow_completion_insufficient_volume(self):
        sched = CircuitSchedule()
        sched.set_path((0, 0), ["x", "y"])
        sched.add_segment((0, 0), 0.0, 1.0, 0.5)
        with pytest.raises(ScheduleError):
            sched.flow_completion_time((0, 0), size=2.0)

    def test_no_segments_raises(self):
        sched = CircuitSchedule()
        sched.set_path((0, 0), ["x", "y"])
        with pytest.raises(ScheduleError):
            sched.flow_completion_time((0, 0), size=1.0)
        with pytest.raises(ScheduleError):
            sched.start_time((0, 0))

    def test_objective_accounting(self, simple_instance):
        sched = CircuitSchedule()
        sched.set_path((0, 0), ["x", "y"])
        sched.add_segment((0, 0), 0.0, 2.0, 1.0)
        sched.set_path((0, 1), ["y", "z"])
        sched.add_segment((0, 1), 0.0, 1.0, 1.0)
        sched.set_path((1, 0), ["z", "x"])
        sched.add_segment((1, 0), 1.0, 2.0, 1.0)
        completions = sched.coflow_completion_times(simple_instance)
        assert completions == {0: 2.0, 1: 2.0}
        assert sched.weighted_completion_time(simple_instance) == pytest.approx(
            1.0 * 2.0 + 2.0 * 2.0
        )
        assert sched.makespan(simple_instance) == 2.0

    def test_validate_happy_path(self, simple_instance, triangle):
        sched = CircuitSchedule()
        sched.set_path((0, 0), ["x", "y"])
        sched.add_segment((0, 0), 0.0, 2.0, 1.0)
        sched.set_path((0, 1), ["y", "z"])
        sched.add_segment((0, 1), 0.0, 1.0, 1.0)
        sched.set_path((1, 0), ["z", "x"])
        sched.add_segment((1, 0), 0.0, 1.0, 1.0)
        sched.validate(simple_instance, triangle)

    def test_validate_detects_capacity_violation(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=1.0, path=["x", "y"]),)),
                Coflow(flows=(Flow("x", "y", size=1.0, path=["x", "y"]),)),
            ]
        )
        sched = CircuitSchedule()
        for fid in [(0, 0), (1, 0)]:
            sched.set_path(fid, ["x", "y"])
            sched.add_segment(fid, 0.0, 1.0, 1.0)  # combined rate 2 > capacity 1
        with pytest.raises(ScheduleError, match="overloaded"):
            sched.validate(instance, triangle)

    def test_validate_detects_under_delivery(self, triangle):
        instance = CoflowInstance(
            coflows=[Coflow(flows=(Flow("x", "y", size=2.0, path=["x", "y"]),))]
        )
        sched = CircuitSchedule()
        sched.set_path((0, 0), ["x", "y"])
        sched.add_segment((0, 0), 0.0, 1.0, 1.0)
        with pytest.raises(ScheduleError, match="delivers"):
            sched.validate(instance, triangle)

    def test_validate_detects_release_violation(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(
                    flows=(
                        Flow("x", "y", size=1.0, release_time=5.0, path=["x", "y"]),
                    )
                )
            ]
        )
        sched = CircuitSchedule()
        sched.set_path((0, 0), ["x", "y"])
        sched.add_segment((0, 0), 0.0, 1.0, 1.0)
        with pytest.raises(ScheduleError, match="release"):
            sched.validate(instance, triangle)

    def test_validate_detects_missing_flow(self, simple_instance, triangle):
        sched = CircuitSchedule()
        with pytest.raises(ScheduleError, match="missing"):
            sched.validate(simple_instance, triangle)

    def test_validate_detects_wrong_endpoints(self, triangle):
        instance = CoflowInstance(
            coflows=[Coflow(flows=(Flow("x", "y", size=1.0, path=["x", "y"]),))]
        )
        sched = CircuitSchedule()
        sched.set_path((0, 0), ["y", "z"])
        sched.add_segment((0, 0), 0.0, 1.0, 1.0)
        with pytest.raises(ScheduleError, match="do not match"):
            sched.validate(instance, triangle)

    def test_validate_sequential_sharing_ok(self, triangle):
        """Two flows on the same edge at different times are feasible."""
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=1.0, path=["x", "y"]),)),
                Coflow(flows=(Flow("x", "y", size=1.0, path=["x", "y"]),)),
            ]
        )
        sched = CircuitSchedule()
        sched.set_path((0, 0), ["x", "y"])
        sched.add_segment((0, 0), 0.0, 1.0, 1.0)
        sched.set_path((1, 0), ["x", "y"])
        sched.add_segment((1, 0), 1.0, 2.0, 1.0)
        sched.validate(instance, triangle)


class TestPacketSchedule:
    @pytest.fixture
    def packet_instance(self):
        return CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "z", size=1.0),), weight=1.0),
                Coflow(flows=(Flow("y", "z", size=1.0),), weight=1.0),
            ]
        )

    def test_route_and_completion(self, packet_instance, triangle):
        sched = PacketSchedule()
        sched.set_route((0, 0), ["x", "y", "z"], [0, 1])
        sched.add_move((1, 0), 2, "y", "z")
        assert sched.packet_completion_time((0, 0)) == 2
        assert sched.packet_completion_time((1, 0)) == 3
        assert sched.route((0, 0)) == ["x", "y", "z"]
        assert sched.makespan() == 3
        assert sched.weighted_completion_time(packet_instance) == 5.0
        sched.validate(packet_instance, triangle)

    def test_set_route_length_mismatch(self):
        sched = PacketSchedule()
        with pytest.raises(ScheduleError):
            sched.set_route((0, 0), ["x", "y", "z"], [0])

    def test_validate_detects_edge_conflict(self, packet_instance, triangle):
        sched = PacketSchedule()
        sched.set_route((0, 0), ["x", "y", "z"], [0, 1])
        sched.set_route((1, 0), ["y", "z"], [1])  # same edge (y,z) at step 1
        with pytest.raises(ScheduleError, match="same step"):
            sched.validate(packet_instance, triangle)

    def test_validate_detects_teleport(self, packet_instance, triangle):
        sched = PacketSchedule()
        sched.add_move((0, 0), 0, "x", "y")
        sched.add_move((0, 0), 1, "x", "z")  # does not continue from y
        sched.set_route((1, 0), ["y", "z"], [0])
        with pytest.raises(ScheduleError, match="teleports"):
            sched.validate(packet_instance, triangle)

    def test_validate_detects_wrong_destination(self, triangle):
        instance = CoflowInstance(coflows=[Coflow(flows=(Flow("x", "z", size=1.0),))])
        sched = PacketSchedule()
        sched.set_route((0, 0), ["x", "y"], [0])
        with pytest.raises(ScheduleError, match="ends at"):
            sched.validate(instance, triangle)

    def test_validate_detects_early_start(self, triangle):
        instance = CoflowInstance(
            coflows=[Coflow(flows=(Flow("x", "y", size=1.0, release_time=3.0),))]
        )
        sched = PacketSchedule()
        sched.set_route((0, 0), ["x", "y"], [0])
        with pytest.raises(ScheduleError, match="release"):
            sched.validate(instance, triangle)

    def test_validate_detects_missing_edge(self, triangle):
        instance = CoflowInstance(coflows=[Coflow(flows=(Flow("x", "y", size=1.0),))])
        sched = PacketSchedule()
        sched.add_move((0, 0), 0, "x", "ghost")
        sched.add_move((0, 0), 1, "ghost", "y")
        with pytest.raises(ScheduleError, match="missing edge"):
            sched.validate(instance, triangle)

    def test_validate_detects_non_increasing_times(self, triangle):
        instance = CoflowInstance(coflows=[Coflow(flows=(Flow("x", "z", size=1.0),))])
        sched = PacketSchedule()
        sched.add_move((0, 0), 1, "x", "y")
        sched.add_move((0, 0), 1, "y", "z")
        with pytest.raises(ScheduleError, match="non-increasing"):
            sched.validate(instance, triangle)

    def test_missing_packet(self, packet_instance, triangle):
        sched = PacketSchedule()
        sched.set_route((0, 0), ["x", "y", "z"], [0, 1])
        with pytest.raises(ScheduleError, match="missing"):
            sched.validate(packet_instance, triangle)

    def test_empty_moves_completion_raises(self):
        sched = PacketSchedule()
        with pytest.raises(ScheduleError):
            sched.packet_completion_time((0, 0))

    def test_invalid_move(self):
        with pytest.raises(ValueError):
            PacketSchedule().add_move((0, 0), -1, "x", "y")
