"""Unit tests for the capacitated network substrate."""

import networkx as nx
import pytest

from repro.core import Network
from repro.core.network import path_edges


@pytest.fixture
def diamond():
    """a -> {b, c} -> d with distinct capacities."""
    net = Network()
    net.add_edge("a", "b", capacity=2.0)
    net.add_edge("b", "d", capacity=2.0)
    net.add_edge("a", "c", capacity=5.0)
    net.add_edge("c", "d", capacity=3.0)
    return net


class TestConstruction:
    def test_empty(self):
        net = Network()
        assert net.num_nodes == 0
        assert net.num_edges == 0

    def test_from_digraph(self):
        g = nx.DiGraph()
        g.add_edge("x", "y", capacity=7.0)
        g.add_edge("y", "z")
        net = Network(g, default_capacity=2.0)
        assert net.capacity("x", "y") == 7.0
        assert net.capacity("y", "z") == 2.0

    def test_default_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Network(default_capacity=0.0)

    def test_add_edge_default_capacity(self):
        net = Network(default_capacity=4.0)
        net.add_edge("a", "b")
        assert net.capacity("a", "b") == 4.0

    def test_self_loop_rejected(self):
        net = Network()
        with pytest.raises(ValueError, match="self-loop"):
            net.add_edge("a", "a")

    def test_nonpositive_capacity_rejected(self):
        net = Network()
        with pytest.raises(ValueError, match="capacity"):
            net.add_edge("a", "b", capacity=0.0)

    def test_bidirectional_edge(self):
        net = Network()
        net.add_bidirectional_edge("a", "b", capacity=3.0)
        assert net.capacity("a", "b") == 3.0
        assert net.capacity("b", "a") == 3.0

    def test_add_node(self):
        net = Network()
        net.add_node("solo")
        assert net.has_node("solo")
        assert net.num_nodes == 1


class TestAccessors:
    def test_capacity_missing_edge(self, diamond):
        with pytest.raises(KeyError):
            diamond.capacity("d", "a")

    def test_capacities_map(self, diamond):
        caps = diamond.capacities()
        assert caps[("a", "c")] == 5.0
        assert len(caps) == 4

    def test_min_capacity(self, diamond):
        assert diamond.min_capacity() == 2.0

    def test_min_capacity_empty_raises(self):
        with pytest.raises(ValueError):
            Network().min_capacity()

    def test_in_out_edges(self, diamond):
        assert set(diamond.out_edges("a")) == {("a", "b"), ("a", "c")}
        assert set(diamond.in_edges("d")) == {("b", "d"), ("c", "d")}
        assert set(diamond.incident_edges("b")) == {("a", "b"), ("b", "d")}

    def test_edge_index_deterministic(self, diamond):
        idx1 = diamond.edge_index()
        idx2 = diamond.edge_index()
        assert idx1 == idx2
        assert sorted(idx1.values()) == list(range(diamond.num_edges))

    def test_edge_index_invalidated_on_change(self, diamond):
        before = dict(diamond.edge_index())
        diamond.add_edge("d", "a", capacity=1.0)
        assert len(diamond.edge_index()) == len(before) + 1


class TestPaths:
    def test_shortest_path(self, diamond):
        path = diamond.shortest_path("a", "d")
        assert path[0] == "a" and path[-1] == "d" and len(path) == 3

    def test_shortest_path_length(self, diamond):
        assert diamond.shortest_path_length("a", "d") == 2

    def test_no_path_raises(self, diamond):
        with pytest.raises(ValueError, match="no path"):
            diamond.shortest_path("d", "a")

    def test_all_shortest_paths(self, diamond):
        paths = diamond.all_shortest_paths("a", "d")
        assert len(paths) == 2
        assert {tuple(p) for p in paths} == {("a", "b", "d"), ("a", "c", "d")}

    def test_all_shortest_paths_limit(self, diamond):
        assert len(diamond.all_shortest_paths("a", "d", limit=1)) == 1

    def test_k_shortest_paths(self, diamond):
        diamond.add_edge("b", "c", capacity=1.0)
        paths = diamond.k_shortest_paths("a", "d", 3)
        assert len(paths) == 3
        assert len(paths[0]) <= len(paths[-1])

    def test_k_shortest_paths_invalid_k(self, diamond):
        with pytest.raises(ValueError):
            diamond.k_shortest_paths("a", "d", 0)

    def test_candidate_paths_equal_cost(self, diamond):
        paths = diamond.candidate_paths("a", "d")
        assert len(paths) == 2
        assert all(len(p) == 3 for p in paths)

    def test_candidate_paths_stretch(self, diamond):
        diamond.add_edge("b", "c", capacity=1.0)
        no_stretch = diamond.candidate_paths("a", "d", stretch=0)
        stretched = diamond.candidate_paths("a", "d", stretch=1)
        assert len(stretched) > len(no_stretch)

    def test_candidate_paths_max_paths(self, diamond):
        assert len(diamond.candidate_paths("a", "d", max_paths=1)) == 1

    def test_bottleneck_capacity(self, diamond):
        assert diamond.bottleneck_capacity(["a", "c", "d"]) == 3.0
        assert diamond.bottleneck_capacity(["a", "b", "d"]) == 2.0

    def test_bottleneck_capacity_trivial_path_raises(self, diamond):
        with pytest.raises(ValueError):
            diamond.bottleneck_capacity(["a"])

    def test_widest_path(self, diamond):
        path = diamond.widest_path("a", "d")
        assert path == ["a", "c", "d"]

    def test_widest_path_no_route(self, diamond):
        diamond.add_node("island")
        with pytest.raises(ValueError):
            diamond.widest_path("a", "island")

    def test_widest_path_missing_node(self, diamond):
        with pytest.raises(ValueError):
            diamond.widest_path("a", "ghost")

    def test_validate_path(self, diamond):
        diamond.validate_path(["a", "b", "d"])
        with pytest.raises(ValueError, match="missing edge"):
            diamond.validate_path(["a", "d"])
        with pytest.raises(ValueError, match="two nodes"):
            diamond.validate_path(["a"])


class TestUtilities:
    def test_copy_is_independent(self, diamond):
        clone = diamond.copy()
        clone.add_edge("d", "a", capacity=1.0)
        assert not diamond.has_edge("d", "a")
        assert clone.capacity("a", "b") == diamond.capacity("a", "b")

    def test_scaled_capacities(self, diamond):
        scaled = diamond.scaled_capacities(10.0)
        assert scaled.capacity("a", "b") == 20.0
        assert diamond.capacity("a", "b") == 2.0
        with pytest.raises(ValueError):
            diamond.scaled_capacities(0.0)

    def test_path_edges_helper(self):
        assert path_edges(["a", "b", "c"]) == [("a", "b"), ("b", "c")]
        assert path_edges(["a"]) == []
