"""Unit tests for objective-function helpers."""

import pytest

from repro.core import Coflow, CoflowInstance, Flow
from repro.core.objective import (
    coflow_completion_times,
    makespan,
    objective_breakdown,
    total_completion_time,
    weighted_completion_time,
)


@pytest.fixture
def instance():
    return CoflowInstance(
        coflows=[
            Coflow(
                flows=(Flow("a", "b"), Flow("b", "c")),
                weight=2.0,
            ),
            Coflow(flows=(Flow("c", "a"),), weight=1.0),
        ]
    )


@pytest.fixture
def completions():
    return {(0, 0): 4.0, (0, 1): 6.0, (1, 0): 3.0}


def test_coflow_completion_is_max_over_flows(instance, completions):
    per_coflow = coflow_completion_times(instance, completions)
    assert per_coflow == {0: 6.0, 1: 3.0}


def test_missing_flow_raises(instance):
    with pytest.raises(KeyError):
        coflow_completion_times(instance, {(0, 0): 1.0})


def test_weighted_completion_time(instance, completions):
    assert weighted_completion_time(instance, completions) == pytest.approx(
        2.0 * 6.0 + 1.0 * 3.0
    )


def test_total_completion_time(instance, completions):
    assert total_completion_time(instance, completions) == pytest.approx(9.0)


def test_makespan(completions):
    assert makespan(completions) == 6.0
    assert makespan({}) == 0.0


def test_objective_breakdown(instance, completions):
    breakdown = objective_breakdown(instance, completions)
    assert breakdown.weighted_completion_time == pytest.approx(15.0)
    assert breakdown.total_completion_time == pytest.approx(9.0)
    assert breakdown.average_completion_time == pytest.approx(4.5)
    assert breakdown.makespan == 6.0
    assert breakdown.per_coflow == {0: 6.0, 1: 3.0}


def test_single_coflow_reduces_to_makespan():
    instance = CoflowInstance.single_coflow(
        [Flow("a", "b"), Flow("b", "c"), Flow("c", "d")], weight=1.0
    )
    completions = {(0, 0): 2.0, (0, 1): 7.0, (0, 2): 5.0}
    assert weighted_completion_time(instance, completions) == makespan(completions)
