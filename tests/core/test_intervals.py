"""Unit tests for the geometric interval grid and rounding parameters."""

import math

import pytest

from repro.core import (
    IntervalGrid,
    RoundingParameters,
    PAPER_ALPHA,
    PAPER_DISPLACEMENT,
    PAPER_EPSILON,
    paper_rounding_parameters,
)


class TestRoundingParameters:
    def test_paper_constants_accepted(self):
        params = paper_rounding_parameters()
        assert params.alpha == PAPER_ALPHA
        assert params.displacement == PAPER_DISPLACEMENT
        assert params.epsilon == PAPER_EPSILON

    def test_paper_blowup_close_to_published_value(self):
        # The paper reports 17.5319 for alpha=0.5, D=3, eps~0.5436.
        assert paper_rounding_parameters().blowup_factor == pytest.approx(17.53, abs=0.05)

    def test_condition_12_enforced(self):
        # D must be at least ceil(log_{1+eps}(1/alpha)) + 1.
        with pytest.raises(ValueError, match="condition"):
            RoundingParameters(alpha=0.5, displacement=1, epsilon=0.5436)

    def test_condition_13_enforced(self):
        with pytest.raises(ValueError):
            RoundingParameters(alpha=0.1, displacement=2, epsilon=0.2)

    def test_alpha_range(self):
        with pytest.raises(ValueError):
            RoundingParameters(alpha=0.0, displacement=3, epsilon=0.5)
        with pytest.raises(ValueError):
            RoundingParameters(alpha=1.5, displacement=3, epsilon=0.5)

    def test_epsilon_positive(self):
        with pytest.raises(ValueError):
            RoundingParameters(alpha=0.5, displacement=3, epsilon=0.0)

    def test_displacement_positive(self):
        with pytest.raises(ValueError):
            RoundingParameters(alpha=0.5, displacement=0, epsilon=0.5436)

    def test_blowup_formula(self):
        params = RoundingParameters(alpha=0.5, displacement=4, epsilon=1.0)
        expected = 2.0 ** 6 / 0.5
        assert params.blowup_factor == pytest.approx(expected)


class TestIntervalGridConstruction:
    def test_boundaries_geometric(self):
        grid = IntervalGrid(epsilon=1.0, horizon=16.0)
        b = grid.boundaries
        assert b[0] == 0.0
        assert b[1] == 1.0
        assert b[2] == 2.0
        assert b[3] == 4.0
        assert b[-1] >= 16.0

    def test_num_intervals_covers_horizon(self):
        for horizon in (1.0, 7.3, 100.0, 12345.0):
            grid = IntervalGrid(epsilon=0.5436, horizon=horizon)
            assert grid.boundaries[-1] >= horizon

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            IntervalGrid(epsilon=0.0, horizon=10.0)
        with pytest.raises(ValueError):
            IntervalGrid(epsilon=1.0, horizon=0.0)
        with pytest.raises(ValueError):
            IntervalGrid(epsilon=1.0, horizon=1.0, min_intervals=0)

    def test_left_right_length(self):
        grid = IntervalGrid(epsilon=1.0, horizon=8.0)
        assert grid.left(0) == 0.0
        assert grid.right(0) == 1.0
        assert grid.length(0) == 1.0
        assert grid.left(2) == 2.0
        assert grid.right(2) == 4.0
        assert grid.length(2) == 2.0

    def test_index_bounds_checked(self):
        grid = IntervalGrid(epsilon=1.0, horizon=4.0)
        with pytest.raises(IndexError):
            grid.left(-1)
        with pytest.raises(IndexError):
            grid.right(grid.num_intervals)


class TestIntervalQueries:
    def test_interval_of(self):
        grid = IntervalGrid(epsilon=1.0, horizon=32.0)
        assert grid.interval_of(0.0) == 0
        assert grid.interval_of(0.5) == 0
        assert grid.interval_of(1.0) == 0
        assert grid.interval_of(1.5) == 1
        assert grid.interval_of(2.0) == 1
        assert grid.interval_of(3.0) == 2
        assert grid.interval_of(4.0) == 2
        assert grid.interval_of(5.0) == 3

    def test_interval_of_boundary_consistency(self):
        grid = IntervalGrid(epsilon=0.5436, horizon=50.0)
        for ell in range(grid.num_intervals):
            left, right = grid.left(ell), grid.right(ell)
            assert grid.interval_of(right) == ell
            mid = (left + right) / 2
            assert grid.interval_of(mid) == ell

    def test_interval_of_out_of_range(self):
        grid = IntervalGrid(epsilon=1.0, horizon=4.0)
        with pytest.raises(ValueError):
            grid.interval_of(-1.0)
        with pytest.raises(ValueError):
            grid.interval_of(grid.boundaries[-1] * 2)

    def test_release_interval(self):
        grid = IntervalGrid(epsilon=1.0, horizon=32.0)
        assert grid.release_interval(0.0) == 0
        assert grid.release_interval(0.7) == 0
        assert grid.release_interval(3.0) == 2

    def test_alpha_interval(self):
        grid = IntervalGrid(epsilon=1.0, horizon=8.0)
        fractions = [0.2, 0.2, 0.3, 0.3]
        assert grid.alpha_interval(fractions, alpha=0.5) == 2
        assert grid.alpha_interval(fractions, alpha=0.2) == 0
        assert grid.alpha_interval(fractions, alpha=1.0) == 3

    def test_alpha_interval_incomplete_raises(self):
        grid = IntervalGrid(epsilon=1.0, horizon=8.0)
        with pytest.raises(ValueError, match="incomplete"):
            grid.alpha_interval([0.1, 0.1], alpha=0.5)

    def test_alpha_interval_invalid_alpha(self):
        grid = IntervalGrid(epsilon=1.0, horizon=8.0)
        with pytest.raises(ValueError):
            grid.alpha_interval([1.0], alpha=0.0)

    def test_extended(self):
        grid = IntervalGrid(epsilon=1.0, horizon=8.0)
        bigger = grid.extended(3)
        assert bigger.num_intervals == grid.num_intervals + 3
        # existing boundaries preserved
        assert list(bigger.boundaries[: grid.num_intervals + 1]) == list(grid.boundaries)
        # continues geometrically
        assert bigger.boundaries[-1] == pytest.approx(2 * bigger.boundaries[-2])
        with pytest.raises(ValueError):
            grid.extended(-1)
