"""Unit tests for the topology builders."""

import pytest

from repro.core import topologies
from repro.core.topologies import host_nodes


class TestFatTree:
    def test_host_count_k4(self):
        net = topologies.fat_tree(4)
        hosts = host_nodes(net)
        assert len(hosts) == 16
        assert topologies.fat_tree_hosts(4) == 16

    def test_host_count_k8(self):
        # the paper's 128-server testbed
        assert topologies.fat_tree_hosts(8) == 128

    def test_switch_counts_k4(self):
        net = topologies.fat_tree(4)
        nodes = net.nodes()
        assert sum(1 for n in nodes if str(n).startswith("edge_")) == 8
        assert sum(1 for n in nodes if str(n).startswith("agg_")) == 8
        assert sum(1 for n in nodes if str(n).startswith("core_")) == 4

    def test_edges_bidirectional(self):
        net = topologies.fat_tree(4)
        for u, v in net.edges():
            assert net.has_edge(v, u)

    def test_link_capacity(self):
        net = topologies.fat_tree(4, link_capacity=10.0)
        assert all(c == 10.0 for c in net.capacities().values())

    def test_intra_pod_path_length(self):
        net = topologies.fat_tree(4)
        # hosts 0 and 1 share an edge switch: 2 hops
        assert net.shortest_path_length("host_0", "host_1") == 2

    def test_inter_pod_path_length_and_multiplicity(self):
        net = topologies.fat_tree(4)
        # hosts in different pods: 6 hops via core, (k/2)^2 = 4 equal-cost paths
        assert net.shortest_path_length("host_0", "host_15") == 6
        assert len(net.all_shortest_paths("host_0", "host_15")) == 4

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            topologies.fat_tree(3)
        with pytest.raises(ValueError):
            topologies.fat_tree_hosts(5)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            topologies.fat_tree(4, link_capacity=0.0)


class TestTriangle:
    def test_structure(self):
        net = topologies.triangle()
        assert net.num_nodes == 3
        assert net.num_edges == 6  # three bidirectional links
        assert net.capacity("x", "y") == 1.0

    def test_custom_capacity(self):
        assert topologies.triangle(capacity=4.0).capacity("y", "z") == 4.0


class TestSwitch:
    def test_structure(self):
        net = topologies.nonblocking_switch(8)
        assert len(host_nodes(net)) == 8
        assert net.num_nodes == 9
        # unique path between any host pair
        assert len(net.all_shortest_paths("host_0", "host_5")) == 1

    def test_port_capacity(self):
        net = topologies.nonblocking_switch(4, port_capacity=2.5)
        assert net.capacity("host_0", "switch") == 2.5

    def test_too_few_hosts(self):
        with pytest.raises(ValueError):
            topologies.nonblocking_switch(1)


class TestSimpleFamilies:
    def test_line(self):
        net = topologies.line(5)
        assert net.shortest_path_length("host_0", "host_4") == 4
        with pytest.raises(ValueError):
            topologies.line(1)

    def test_ring(self):
        net = topologies.ring(6)
        assert net.shortest_path_length("host_0", "host_3") == 3
        assert net.shortest_path_length("host_0", "host_5") == 1
        with pytest.raises(ValueError):
            topologies.ring(2)

    def test_star(self):
        net = topologies.star(4)
        assert net.shortest_path_length("host_0", "host_3") == 2
        with pytest.raises(ValueError):
            topologies.star(1)

    def test_tree(self):
        net = topologies.tree(depth=2, fanout=2)
        hosts = host_nodes(net)
        assert len(hosts) == 4
        # unique paths in a tree
        assert len(net.all_shortest_paths(hosts[0], hosts[-1])) == 1
        with pytest.raises(ValueError):
            topologies.tree(depth=0, fanout=2)

    def test_tree_switch_leaves(self):
        net = topologies.tree(depth=2, fanout=2, host_leaves=False)
        assert host_nodes(net) == []


class TestRandomGraph:
    def test_connectivity_and_determinism(self):
        net1 = topologies.random_graph(8, seed=3)
        net2 = topologies.random_graph(8, seed=3)
        assert sorted(map(repr, net1.edges())) == sorted(map(repr, net2.edges()))
        hosts = host_nodes(net1)
        # ring backbone guarantees strong connectivity
        for target in hosts[1:]:
            assert net1.shortest_path(hosts[0], target)

    def test_capacity_range(self):
        net = topologies.random_graph(6, capacity_range=(2.0, 3.0), seed=1)
        assert all(2.0 <= c <= 3.0 for c in net.capacities().values())

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            topologies.random_graph(1)
        with pytest.raises(ValueError):
            topologies.random_graph(4, edge_probability=1.5)
        with pytest.raises(ValueError):
            topologies.random_graph(4, capacity_range=(0.0, 1.0))


class TestHostNodes:
    def test_sorted_and_filtered(self):
        net = topologies.nonblocking_switch(3)
        assert host_nodes(net) == ["host_0", "host_1", "host_2"]
