"""Unit tests for the topology builders."""

import pytest

from repro.core import topologies
from repro.core.topologies import host_nodes


class TestFatTree:
    def test_host_count_k4(self):
        net = topologies.fat_tree(4)
        hosts = host_nodes(net)
        assert len(hosts) == 16
        assert topologies.fat_tree_hosts(4) == 16

    def test_host_count_k8(self):
        # the paper's 128-server testbed
        assert topologies.fat_tree_hosts(8) == 128

    def test_switch_counts_k4(self):
        net = topologies.fat_tree(4)
        nodes = net.nodes()
        assert sum(1 for n in nodes if str(n).startswith("edge_")) == 8
        assert sum(1 for n in nodes if str(n).startswith("agg_")) == 8
        assert sum(1 for n in nodes if str(n).startswith("core_")) == 4

    def test_edges_bidirectional(self):
        net = topologies.fat_tree(4)
        for u, v in net.edges():
            assert net.has_edge(v, u)

    def test_link_capacity(self):
        net = topologies.fat_tree(4, link_capacity=10.0)
        assert all(c == 10.0 for c in net.capacities().values())

    def test_intra_pod_path_length(self):
        net = topologies.fat_tree(4)
        # hosts 0 and 1 share an edge switch: 2 hops
        assert net.shortest_path_length("host_0", "host_1") == 2

    def test_inter_pod_path_length_and_multiplicity(self):
        net = topologies.fat_tree(4)
        # hosts in different pods: 6 hops via core, (k/2)^2 = 4 equal-cost paths
        assert net.shortest_path_length("host_0", "host_15") == 6
        assert len(net.all_shortest_paths("host_0", "host_15")) == 4

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            topologies.fat_tree(3)
        with pytest.raises(ValueError):
            topologies.fat_tree_hosts(5)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            topologies.fat_tree(4, link_capacity=0.0)


class TestTriangle:
    def test_structure(self):
        net = topologies.triangle()
        assert net.num_nodes == 3
        assert net.num_edges == 6  # three bidirectional links
        assert net.capacity("x", "y") == 1.0

    def test_custom_capacity(self):
        assert topologies.triangle(capacity=4.0).capacity("y", "z") == 4.0


class TestSwitch:
    def test_structure(self):
        net = topologies.nonblocking_switch(8)
        assert len(host_nodes(net)) == 8
        assert net.num_nodes == 9
        # unique path between any host pair
        assert len(net.all_shortest_paths("host_0", "host_5")) == 1

    def test_port_capacity(self):
        net = topologies.nonblocking_switch(4, port_capacity=2.5)
        assert net.capacity("host_0", "switch") == 2.5

    def test_too_few_hosts(self):
        with pytest.raises(ValueError):
            topologies.nonblocking_switch(1)


class TestSimpleFamilies:
    def test_line(self):
        net = topologies.line(5)
        assert net.shortest_path_length("host_0", "host_4") == 4
        with pytest.raises(ValueError):
            topologies.line(1)

    def test_ring(self):
        net = topologies.ring(6)
        assert net.shortest_path_length("host_0", "host_3") == 3
        assert net.shortest_path_length("host_0", "host_5") == 1
        with pytest.raises(ValueError):
            topologies.ring(2)

    def test_star(self):
        net = topologies.star(4)
        assert net.shortest_path_length("host_0", "host_3") == 2
        with pytest.raises(ValueError):
            topologies.star(1)

    def test_tree(self):
        net = topologies.tree(depth=2, fanout=2)
        hosts = host_nodes(net)
        assert len(hosts) == 4
        # unique paths in a tree
        assert len(net.all_shortest_paths(hosts[0], hosts[-1])) == 1
        with pytest.raises(ValueError):
            topologies.tree(depth=0, fanout=2)

    def test_tree_switch_leaves(self):
        net = topologies.tree(depth=2, fanout=2, host_leaves=False)
        assert host_nodes(net) == []


class TestRandomGraph:
    def test_connectivity_and_determinism(self):
        net1 = topologies.random_graph(8, seed=3)
        net2 = topologies.random_graph(8, seed=3)
        assert sorted(map(repr, net1.edges())) == sorted(map(repr, net2.edges()))
        hosts = host_nodes(net1)
        # ring backbone guarantees strong connectivity
        for target in hosts[1:]:
            assert net1.shortest_path(hosts[0], target)

    def test_capacity_range(self):
        net = topologies.random_graph(6, capacity_range=(2.0, 3.0), seed=1)
        assert all(2.0 <= c <= 3.0 for c in net.capacities().values())

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            topologies.random_graph(1)
        with pytest.raises(ValueError):
            topologies.random_graph(4, edge_probability=1.5)
        with pytest.raises(ValueError):
            topologies.random_graph(4, capacity_range=(0.0, 1.0))


class TestHostNodes:
    def test_sorted_and_filtered(self):
        net = topologies.nonblocking_switch(3)
        assert host_nodes(net) == ["host_0", "host_1", "host_2"]


class TestOversubscribedFatTree:
    def test_default_is_full_bisection(self):
        plain = topologies.fat_tree(4)
        explicit = topologies.fat_tree(4, oversubscription=1.0)
        assert plain.capacities() == explicit.capacities()

    def test_uplinks_scaled_host_links_untouched(self):
        net = topologies.fat_tree(4, oversubscription=4.0)
        caps = net.capacities()
        assert caps[("host_0", "edge_0_0")] == 1.0
        assert caps[("edge_0_0", "agg_0_0")] == pytest.approx(0.25)
        assert caps[("agg_0_0", "core_0_0")] == pytest.approx(0.25)

    def test_bidirectional_symmetry(self):
        net = topologies.fat_tree(4, oversubscription=2.0)
        caps = net.capacities()
        for (u, v), cap in caps.items():
            assert caps[(v, u)] == cap

    def test_undersubscription_rejected(self):
        with pytest.raises(ValueError):
            topologies.fat_tree(4, oversubscription=0.5)


class TestLeafSpine:
    def test_host_count(self):
        net = topologies.leaf_spine(num_leaves=4, num_spines=2, hosts_per_leaf=3)
        assert len(host_nodes(net)) == 12

    def test_bidirectional_links(self):
        net = topologies.leaf_spine(num_leaves=3, num_spines=2, hosts_per_leaf=2)
        caps = net.capacities()
        for (u, v), cap in caps.items():
            assert caps[(v, u)] == cap

    def test_every_leaf_reaches_every_spine(self):
        net = topologies.leaf_spine(num_leaves=3, num_spines=4, hosts_per_leaf=1)
        for leaf in range(3):
            for spine in range(4):
                assert net.has_edge(f"leaf_{leaf}", f"spine_{spine}")

    def test_cross_leaf_path_diversity(self):
        net = topologies.leaf_spine(num_leaves=2, num_spines=3, hosts_per_leaf=1)
        # host - leaf - spine - leaf - host: one path per spine.
        assert len(net.all_shortest_paths("host_0", "host_1")) == 3

    def test_uplink_capacity(self):
        net = topologies.leaf_spine(
            num_leaves=2, num_spines=2, hosts_per_leaf=2, uplink_capacity=4.0
        )
        caps = net.capacities()
        assert caps[("host_0", "leaf_0")] == 1.0
        assert caps[("leaf_0", "spine_0")] == 4.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            topologies.leaf_spine(num_leaves=1)
        with pytest.raises(ValueError):
            topologies.leaf_spine(num_spines=0)
        with pytest.raises(ValueError):
            topologies.leaf_spine(hosts_per_leaf=0)
        with pytest.raises(ValueError):
            topologies.leaf_spine(uplink_capacity=0.0)


class TestRandomRegular:
    def test_host_count_and_determinism(self):
        net1 = topologies.random_regular(num_switches=8, degree=3, hosts_per_switch=2, seed=5)
        net2 = topologies.random_regular(num_switches=8, degree=3, hosts_per_switch=2, seed=5)
        assert len(host_nodes(net1)) == 16
        assert net1.fingerprint() == net2.fingerprint()

    def test_switch_degree_regular(self):
        degree, hosts_per_switch = 3, 2
        net = topologies.random_regular(
            num_switches=8, degree=degree, hosts_per_switch=hosts_per_switch, seed=0
        )
        for sw in range(8):
            neighbours = [v for _, v in net.out_edges(f"sw_{sw}")]
            switch_neighbours = [n for n in neighbours if str(n).startswith("sw_")]
            host_neighbours = [n for n in neighbours if str(n).startswith("host_")]
            assert len(switch_neighbours) == degree
            assert len(host_neighbours) == hosts_per_switch

    def test_bidirectional_links(self):
        net = topologies.random_regular(num_switches=6, degree=3, seed=2)
        caps = net.capacities()
        for (u, v), cap in caps.items():
            assert caps[(v, u)] == cap

    def test_all_hosts_connected(self):
        net = topologies.random_regular(num_switches=6, degree=3, hosts_per_switch=1, seed=4)
        hosts = host_nodes(net)
        for target in hosts[1:]:
            assert net.shortest_path(hosts[0], target)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            topologies.random_regular(num_switches=1)
        with pytest.raises(ValueError):
            topologies.random_regular(num_switches=4, degree=0)
        with pytest.raises(ValueError):
            # odd num_switches * degree has no regular graph
            topologies.random_regular(num_switches=5, degree=3)
        with pytest.raises(ValueError):
            topologies.random_regular(num_switches=4, degree=2, hosts_per_switch=0)


class TestFromSpec:
    def test_name_only(self):
        assert len(host_nodes(topologies.from_spec("fat_tree"))) == 16

    def test_with_arguments(self):
        net = topologies.from_spec("leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=4)")
        assert len(host_nodes(net)) == 8

    def test_matches_direct_builder(self):
        via_spec = topologies.from_spec("fat_tree(k=4, oversubscription=2.0)")
        direct = topologies.fat_tree(4, oversubscription=2.0)
        assert via_spec.fingerprint() == direct.fingerprint()

    def test_value_literals(self):
        net = topologies.from_spec("random_regular(num_switches=6, degree=3, seed=none)")
        assert len(host_nodes(net)) == 12

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            topologies.from_spec("hypercube(k=3)")

    def test_malformed_spec_rejected(self):
        with pytest.raises(ValueError):
            topologies.from_spec("fat_tree(k=4")
        with pytest.raises(ValueError):
            topologies.from_spec("fat_tree(4)")

    def test_registry_covers_all_builders(self):
        assert set(topologies.TOPOLOGY_BUILDERS) >= {
            "fat_tree",
            "leaf_spine",
            "random_regular",
            "nonblocking_switch",
            "random_graph",
        }
