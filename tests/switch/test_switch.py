"""Tests for the non-blocking-switch special case."""

import pytest

from repro.core import Coflow, CoflowInstance, Flow, topologies
from repro.switch import (
    SwitchScheduler,
    attach_switch_paths,
    coflow_isolation_bottleneck,
    switch_lower_bound,
)


@pytest.fixture
def switch():
    return topologies.nonblocking_switch(6, port_capacity=1.0)


@pytest.fixture
def instance():
    return CoflowInstance(
        coflows=[
            Coflow(
                flows=(
                    Flow("host_0", "host_1", size=2.0),
                    Flow("host_0", "host_2", size=1.0),
                ),
                weight=2.0,
            ),
            Coflow(flows=(Flow("host_3", "host_1", size=1.0),), weight=1.0),
        ]
    )


class TestPaths:
    def test_attach_switch_paths(self, switch, instance):
        routed = attach_switch_paths(instance, switch)
        assert routed.all_paths_given
        for _, _, flow in routed.iter_flows():
            assert flow.path == (flow.source, "switch", flow.destination)

    def test_requires_switch_topology(self, instance):
        net = topologies.triangle()
        with pytest.raises(ValueError, match="switch"):
            attach_switch_paths(instance, net)

    def test_unknown_port_rejected(self, switch):
        bad = CoflowInstance(coflows=[Coflow(flows=(Flow("ghost", "host_1", size=1.0),))])
        with pytest.raises(ValueError):
            attach_switch_paths(bad, switch)


class TestBounds:
    def test_isolation_bottleneck(self, switch, instance):
        # coflow 0 sends 3 units out of host_0's 1-capacity uplink
        assert coflow_isolation_bottleneck(instance, switch, 0) == pytest.approx(3.0)
        assert coflow_isolation_bottleneck(instance, switch, 1) == pytest.approx(1.0)

    def test_ingress_bottleneck_detected(self, switch):
        # two flows into host_1's downlink
        instance = CoflowInstance(
            coflows=[
                Coflow(
                    flows=(
                        Flow("host_0", "host_1", size=2.0),
                        Flow("host_2", "host_1", size=2.0),
                    )
                )
            ]
        )
        assert coflow_isolation_bottleneck(instance, switch, 0) == pytest.approx(4.0)

    def test_release_time_added(self, switch):
        instance = CoflowInstance(
            coflows=[Coflow(flows=(Flow("host_0", "host_1", size=1.0, release_time=5.0),))]
        )
        assert coflow_isolation_bottleneck(instance, switch, 0) == pytest.approx(6.0)

    def test_switch_lower_bound_weighted(self, switch, instance):
        assert switch_lower_bound(instance, switch) == pytest.approx(2.0 * 3.0 + 1.0 * 1.0)


class TestScheduler:
    def test_end_to_end(self, switch, instance):
        outcome = SwitchScheduler(instance, switch).schedule()
        # both back-ends respect the combinatorial lower bound
        assert outcome.rounded.objective >= outcome.combinatorial_lower_bound - 1e-6
        assert (
            outcome.simulated.weighted_completion_time
            >= outcome.combinatorial_lower_bound - 1e-6
        )
        # the provable schedule is feasible
        outcome.rounded.schedule.validate(outcome.instance, switch)

    def test_lp_bound_not_above_simulated(self, switch, instance):
        outcome = SwitchScheduler(instance, switch).schedule()
        assert outcome.lp_lower_bound <= outcome.simulated.weighted_completion_time + 1e-6
