"""Executable documentation: fenced ``python`` blocks must actually run.

Extracts every fenced ``python`` code block from ``README.md`` and
``docs/*.md`` and executes it in an isolated namespace with a temporary
working directory, so documentation cannot rot: a snippet referring to a
renamed function or stale API fails this suite.

Conventions for doc authors:

* every ````` ```python ````` block is executed verbatim, top to bottom,
  and must be self-contained (imports included) and cheap (< ~2 s);
* a block whose first line is ``# doc-snippet: no-run`` is collected but
  not executed — reserve it for illustrative fragments that cannot run
  (e.g. requiring the paper-scale topology);
* other languages (````` ```bash `````, ````` ```yaml `````) are never
  executed.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]

FENCE = re.compile(r"```python[ \t]*\n(.*?)^```", re.DOTALL | re.MULTILINE)
SKIP_MARK = "# doc-snippet: no-run"


def collect_snippets():
    """Yield (file, starting line, code) for every fenced python block."""
    snippets = []
    for path in DOC_FILES:
        if not path.exists():
            continue
        text = path.read_text()
        for match in FENCE.finditer(text):
            line = text[: match.start()].count("\n") + 2
            snippets.append((path, line, match.group(1)))
    return snippets


SNIPPETS = collect_snippets()


def test_documentation_has_executable_snippets():
    """The docs suite must actually contain runnable examples."""
    executable = [s for s in SNIPPETS if SKIP_MARK not in s[2]]
    assert len(executable) >= 6, (
        f"expected at least 6 executable python snippets across "
        f"{[p.name for p in DOC_FILES]}, found {len(executable)}"
    )


def test_every_doc_file_is_linked_from_readme():
    """docs/*.md are discoverable: each is referenced by README.md."""
    readme = (ROOT / "README.md").read_text()
    for path in DOC_FILES:
        if path.name == "README.md":
            continue
        assert f"docs/{path.name}" in readme, f"{path.name} not linked from README"


@pytest.mark.parametrize(
    "path,line,code",
    SNIPPETS,
    ids=[f"{p.name}:{line}" for p, line, _ in SNIPPETS],
)
def test_snippet_executes(path, line, code, tmp_path, monkeypatch):
    if SKIP_MARK in code:
        pytest.skip("snippet marked no-run")
    # Isolate filesystem side effects (snippets may write artifacts).
    monkeypatch.chdir(tmp_path)
    namespace = {"__name__": f"doc_snippet_{path.stem}_{line}"}
    exec(compile(code, f"{path.name}:{line}", "exec"), namespace)
