"""Docstring coverage for the public API.

Walks the modules listed in :data:`MODULES` and asserts that the module
itself, every public class and function defined in it, and every public
method of those classes carries a non-trivial docstring.  This is the
enforcement half of the "no undocumented public surface" satellite: adding
a public name without documentation fails here, naming the offender.
"""

import importlib
import inspect

import pytest

#: Modules whose public surface must be fully documented.
MODULES = [
    "repro.analysis.artifacts",
    "repro.analysis.engine",
    "repro.analysis.fabric",
    "repro.analysis.fabric.merge",
    "repro.analysis.fabric.store",
    "repro.analysis.fabric.worker",
    "repro.analysis.report",
    "repro.analysis.runstore",
    "repro.analysis.sweep",
    "repro.baselines.pipeline",
    "repro.baselines.spec",
    "repro.baselines.stages",
    "repro.cli",
    "repro.cli.main",
    "repro.cli.run",
    "repro.cli.sweep",
    "repro.cli.report",
    "repro.cli.merge",
    "repro.cli.bench",
    "repro.sim.allocators",
    "repro.sim.kernel",
    "repro.sim.metrics",
    "repro.sim.online",
    "repro.sim.plan",
    "repro.sim.simulator",
    "repro.sim.streaming",
    "repro.lp.incremental",
    "repro.workloads.generator",
    "repro.workloads.serialization",
]


def public_members(module):
    """Public functions/classes *defined in* (not imported into) a module."""
    for name, obj in sorted(vars(module).items()):
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        yield name, obj


def missing_docstrings(module):
    """All undocumented public names in a module, fully qualified."""
    missing = []
    if not (module.__doc__ or "").strip():
        missing.append(module.__name__)
    for name, obj in public_members(module):
        if not (inspect.getdoc(obj) or "").strip():
            missing.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for attr_name, attr in sorted(vars(obj).items()):
                if attr_name.startswith("_"):
                    continue
                if isinstance(attr, property):
                    target = attr.fget
                elif inspect.isfunction(attr):
                    target = attr
                elif isinstance(attr, (classmethod, staticmethod)):
                    target = attr.__func__
                else:
                    continue
                if not (inspect.getdoc(target) or "").strip():
                    missing.append(f"{module.__name__}.{name}.{attr_name}")
    return missing


@pytest.mark.parametrize("module_name", MODULES)
def test_public_api_is_documented(module_name):
    module = importlib.import_module(module_name)
    missing = missing_docstrings(module)
    assert not missing, (
        "undocumented public API (add a docstring, with an example where "
        f"cheap): {missing}"
    )
