"""End-to-end tests for the ``repro`` CLI.

Covers the acceptance path of the CLI PR: ``repro sweep`` on the
scenario-matrix spec with a 2-worker pool, interrupted (emulated by
truncating the run store) and re-invoked, resumes from the store without
re-simulating completed tasks, and ``repro report`` renders identical
Markdown/CSV tables from the store alone.
"""

import json
import os
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.cli.bench import (
    fig3_spec,
    fig4_spec,
    online_spec,
    pipeline_matrix_spec,
    scenario_matrix_spec,
)
from repro.analysis.artifacts import load_spec

ROOT = Path(__file__).resolve().parents[2]
SPECS_DIR = ROOT / "specs"

try:
    import yaml  # noqa: F401 - availability probe for the checked-in specs
    HAVE_YAML = True
except ImportError:  # pragma: no cover
    HAVE_YAML = False

needs_yaml = pytest.mark.skipif(not HAVE_YAML, reason="PyYAML not installed")


def tiny_spec_path(tmp_path, tries=1) -> Path:
    """Write a minimal JSON sweep spec and return its path."""
    spec = {
        "name": "tiny",
        "schemes": ["Baseline", "Route-only"],
        "tries": tries,
        "reference": "Baseline",
        "base": {"num_coflows": 2, "coflow_width": 2, "topology": "fat_tree(k=4)"},
        "sweep": {"parameter": "coflow_width", "values": [2, 3], "label": "{value}f"},
    }
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps(spec))
    return path


def run_metadata(out_dir: Path, name: str) -> dict:
    return json.loads((out_dir / name / "run.json").read_text())


class TestTopLevel:
    def test_version_prints_provenance(self, capsys):
        assert main(["--version"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert "HiGHS" in out
        assert "deviations" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "sweep" in capsys.readouterr().out

    def test_parser_knows_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("run", "sweep", "report", "bench"):
            assert command in text


class TestRun:
    def test_json_document_on_stdout(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--scheme",
                    "Baseline",
                    "--num-coflows",
                    "2",
                    "--coflow-width",
                    "2",
                    "--seed",
                    "1",
                ]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["scheme"]["name"] == "Baseline"
        assert document["config"]["seed"] == 1
        assert document["topology"]["spec"] == "fat_tree(k=4)"
        assert document["metrics"]["weighted_completion_time"] > 0
        assert document["provenance"]["version"]

    def test_backend_flag_is_provenance_not_identity(self, capsys, monkeypatch):
        """``--backend`` picks the kernel tier (via ``REPRO_SIM_BACKEND``)
        and is recorded in the document, but never changes the results."""
        monkeypatch.delenv("REPRO_SIM_BACKEND", raising=False)
        args = ["run", "--scheme", "Baseline", "--num-coflows", "2",
                "--coflow-width", "2", "--seed", "1"]
        documents = {}
        for backend in ("array", "auto"):
            assert main(args + ["--backend", backend]) == 0
            documents[backend] = json.loads(capsys.readouterr().out)
            # The flag travels to scheme-built simulators as the env var.
            assert os.environ["REPRO_SIM_BACKEND"] == backend
            monkeypatch.delenv("REPRO_SIM_BACKEND")
        from repro.sim import kernel_jit

        assert documents["array"]["simulator"]["backend"] == "array"
        expected = "jit" if kernel_jit.available() else "array"
        assert documents["auto"]["simulator"]["backend"] == expected
        # Bit-identity contract: the tier is a speed knob, not a parameter.
        assert documents["array"]["metrics"] == documents["auto"]["metrics"]

    def test_online_scheme_runs_its_replanning_loop(self, capsys):
        # Regression: `repro run` must dispatch through Scheme.simulate(),
        # not plan()+run() — otherwise Online-* schemes silently simulate
        # their static inner plan under the online label.
        args = [
            "run",
            "--scheme", "Online-SEBF",
            "--topology", "leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=4)",
            "--num-coflows", "3",
            "--coflow-width", "3",
            "--coflow-arrival-rate", "0.5",
            "--seed", "3",
        ]
        assert main(args) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["scheme"]["name"] == "Online-SEBF"
        assert document["config"]["coflow_arrival_rate"] == 0.5

        from repro.analysis.artifacts import build_schemes, strict_config_from_dict
        from repro.workloads import CoflowGenerator

        config = strict_config_from_dict(document["config"])
        network = config.build_network()
        instance = CoflowGenerator(network, config).instance()
        expected = build_schemes(["Online-SEBF"])[0].simulate(instance, network)
        assert document["metrics"] == pytest.approx(expected.metrics())

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "result.json"
        assert (
            main(
                [
                    "run",
                    "--scheme",
                    "Baseline",
                    "--num-coflows",
                    "2",
                    "--coflow-width",
                    "2",
                    "--output",
                    str(target),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert json.loads(target.read_text())["scheme"]["name"] == "Baseline"

    def test_composed_pipeline_spec_as_scheme(self, capsys):
        args = [
            "run",
            "--scheme", "pipeline(router=balanced, order=sebf, alloc=max-min)",
            "--num-coflows", "2",
            "--coflow-width", "2",
            "--seed", "2",
        ]
        assert main(args) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["scheme"]["name"] == (
            "pipeline(router=balanced, order=sebf, alloc=max-min)"
        )
        assert "alloc=max-min" in document["scheme"]["signature"]
        assert document["metrics"]["weighted_completion_time"] > 0

    def test_unknown_scheme_name_exits_cleanly_listing_choices(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--scheme", "nope", "--num-coflows", "2"])
        message = str(excinfo.value)
        assert message.startswith("repro run:")
        assert "unknown scheme 'nope'" in message
        assert "Baseline" in message and "pipeline(router=" in message

    def test_malformed_pipeline_spec_names_the_bad_stage(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--scheme", "pipeline(router=xlp, order=sebf)"])
        message = str(excinfo.value)
        assert "unknown router 'xlp'" in message
        assert "valid routers: balanced, given, lp, random" in message

    def test_plan_time_contract_violation_exits_cleanly(self):
        # The 'given' router cannot route a freshly generated (pathless)
        # instance; that must be a clean CLI error, not a traceback.
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--scheme", "LP-Based (given paths)", "--num-coflows", "2"])
        message = str(excinfo.value)
        assert message.startswith("repro run:")
        assert "router 'given'" in message

    def test_config_file_with_flag_override(self, tmp_path, capsys):
        config = tmp_path / "config.json"
        config.write_text(
            json.dumps({"num_coflows": 2, "coflow_width": 2, "seed": 9})
        )
        assert (
            main(["run", "--scheme", "Baseline", "--config", str(config), "--seed", "3"])
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["config"]["seed"] == 3  # flag wins
        assert document["config"]["num_coflows"] == 2  # file survives


class TestSweepAndReport:
    def test_sweep_writes_artifacts_and_resumes(self, tmp_path, capsys):
        spec = tiny_spec_path(tmp_path)
        out = tmp_path / "artifacts"
        assert main(["sweep", str(spec), "--out", str(out)]) == 0
        capsys.readouterr()
        metadata = run_metadata(out, "tiny")
        assert metadata["engine"]["executed"] == 4  # 2 points x 1 try x 2 schemes
        for name in ("runstore.jsonl", "report.txt", "report.md", "report.csv"):
            assert (out / "tiny" / name).exists(), name

        # Second invocation: resume-by-default, nothing re-simulated.
        assert main(["sweep", str(spec), "--out", str(out)]) == 0
        assert "resuming" in capsys.readouterr().out
        assert run_metadata(out, "tiny")["engine"]["executed"] == 0

    def test_interrupted_sweep_resumes_only_the_missing_tasks(
        self, tmp_path, capsys
    ):
        spec = tiny_spec_path(tmp_path)
        out = tmp_path / "artifacts"
        main(["sweep", str(spec), "--out", str(out)])
        store_path = out / "tiny" / "runstore.jsonl"
        lines = store_path.read_text().splitlines()
        # Emulate an interruption: keep only half the completed tasks.
        store_path.write_text("\n".join(lines[:2]) + "\n")
        capsys.readouterr()
        assert main(["sweep", str(spec), "--out", str(out)]) == 0
        metadata = run_metadata(out, "tiny")
        assert metadata["engine"]["cached"] == 2
        assert metadata["engine"]["executed"] == 2

    def test_fresh_forces_a_cold_run(self, tmp_path, capsys):
        spec = tiny_spec_path(tmp_path)
        out = tmp_path / "artifacts"
        main(["sweep", str(spec), "--out", str(out)])
        main(["sweep", str(spec), "--out", str(out), "--fresh"])
        capsys.readouterr()
        assert run_metadata(out, "tiny")["engine"]["executed"] == 4

    def test_report_renders_identical_tables_from_the_store_alone(
        self, tmp_path, capsys
    ):
        spec = tiny_spec_path(tmp_path)
        out = tmp_path / "artifacts"
        main(["sweep", str(spec), "--out", str(out)])
        capsys.readouterr()

        for fmt, filename in (("markdown", "report.md"), ("csv", "report.csv")):
            assert (
                main(["report", str(spec), "--out", str(out), "--format", fmt]) == 0
            )
            stdout = capsys.readouterr().out
            artifact = (out / "tiny" / filename).read_text()
            assert stdout.rstrip("\n") == artifact.rstrip("\n"), fmt

    def test_report_without_store_fails_cleanly(self, tmp_path, capsys):
        spec = tiny_spec_path(tmp_path)
        assert main(["report", str(spec), "--out", str(tmp_path / "nowhere")]) == 1
        assert "no run store" in capsys.readouterr().err

    def test_report_on_empty_store_fails_cleanly(self, tmp_path, capsys):
        spec = tiny_spec_path(tmp_path)
        out = tmp_path / "artifacts"
        store = out / "tiny" / "runstore.jsonl"
        store.parent.mkdir(parents=True)
        store.write_text("")  # sweep killed before its first task persisted
        assert main(["report", str(spec), "--out", str(out)]) == 1
        assert "is empty" in capsys.readouterr().err

    def test_report_warns_on_partial_store(self, tmp_path, capsys):
        spec = tiny_spec_path(tmp_path)
        out = tmp_path / "artifacts"
        main(["sweep", str(spec), "--out", str(out)])
        store_path = out / "tiny" / "runstore.jsonl"
        store_path.write_text(store_path.read_text().splitlines()[0] + "\n")
        capsys.readouterr()
        assert main(["report", str(spec), "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert "store covers 1/4 tasks" in captured.err
        assert "nan" in captured.out

    def test_report_export_rewrites_artifacts(self, tmp_path, capsys):
        spec = tiny_spec_path(tmp_path)
        out = tmp_path / "artifacts"
        main(["sweep", str(spec), "--out", str(out)])
        markdown = (out / "tiny" / "report.md").read_text()
        engine_stats = run_metadata(out, "tiny")["engine"]
        (out / "tiny" / "report.md").unlink()
        capsys.readouterr()
        assert main(["report", str(spec), "--out", str(out), "--export"]) == 0
        assert (out / "tiny" / "report.md").read_text() == markdown
        # The rewritten run.json keeps the sweep's execution accounting.
        assert run_metadata(out, "tiny")["engine"] == engine_stats


@needs_yaml
class TestScenarioMatrixAcceptance:
    """The PR's acceptance criterion, against the checked-in spec."""

    def test_checked_in_specs_pin_the_bench_suites(self):
        assert load_spec(SPECS_DIR / "scenario-matrix.yaml") == scenario_matrix_spec()
        assert load_spec(SPECS_DIR / "fig3.yaml") == fig3_spec()
        assert load_spec(SPECS_DIR / "fig4.yaml") == fig4_spec()
        assert load_spec(SPECS_DIR / "online.yaml") == online_spec()
        assert load_spec(SPECS_DIR / "pipeline-matrix.yaml") == pipeline_matrix_spec()

    def test_checked_in_spec_pins_the_100k_bench_gate(self):
        from repro.analysis.artifacts import load_document
        from repro.cli.bench import _SIMULATOR_BENCH_100K

        assert load_document(SPECS_DIR / "simulator-100k.yaml") == _SIMULATOR_BENCH_100K

    def test_checked_in_spec_pins_the_streaming_gate(self):
        from repro.analysis.artifacts import load_document
        from repro.cli.bench import _STREAMING_BENCH

        assert load_document(SPECS_DIR / "streaming.yaml") == _STREAMING_BENCH

    def test_checked_in_spec_pins_the_streaming_resident_gate(self):
        from repro.analysis.artifacts import load_document
        from repro.cli.bench import _STREAMING_BENCH_100K

        assert (
            load_document(SPECS_DIR / "streaming-100k.yaml")
            == _STREAMING_BENCH_100K
        )

    def test_smoke_sweep_two_workers_resume_and_report(self, tmp_path, capsys):
        spec = str(SPECS_DIR / "scenario-matrix.yaml")
        out = tmp_path / "artifacts"
        args = ["sweep", spec, "--smoke", "--workers", "2", "--out", str(out)]
        assert main(args) == 0
        capsys.readouterr()
        metadata = run_metadata(out, "scenario-matrix-smoke")
        assert metadata["engine"]["executed"] == 16  # 4 points x 1 try x 4 schemes
        assert metadata["engine"]["workers"] == 2

        # Re-invoked: resumes from the store, re-simulates nothing.
        assert main(args) == 0
        capsys.readouterr()
        assert run_metadata(out, "scenario-matrix-smoke")["engine"]["executed"] == 0

        # Report renders identical tables from the store alone.
        for fmt, filename in (("markdown", "report.md"), ("csv", "report.csv")):
            assert (
                main(
                    [
                        "report",
                        spec,
                        "--smoke",
                        "--out",
                        str(out),
                        "--format",
                        fmt,
                    ]
                )
                == 0
            )
            stdout = capsys.readouterr().out
            artifact = (out / "scenario-matrix-smoke" / filename).read_text()
            assert stdout.rstrip("\n") == artifact.rstrip("\n"), fmt


@needs_yaml
class TestOnlineAcceptance:
    """Online-vs-static end-to-end, with per-coflow slowdown columns."""

    def test_smoke_sweep_renders_slowdown_columns(self, tmp_path, capsys):
        spec = str(SPECS_DIR / "online.yaml")
        out = tmp_path / "artifacts"
        assert main(["sweep", spec, "--smoke", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        # The rendered report carries the slowdown tables next to the
        # completion-time panels, for static and online schemes alike.
        assert "avg mean_slowdown" in stdout
        assert "avg max_slowdown" in stdout
        assert "Online-SEBF" in stdout and "SEBF" in stdout
        csv_text = (out / "online-smoke" / "report.csv").read_text()
        assert "mean_mean_slowdown" in csv_text.splitlines()[0]
        assert "mean_max_slowdown" in csv_text.splitlines()[0]

        # `repro report` re-renders the identical artifacts from the store.
        for fmt, filename in (("markdown", "report.md"), ("csv", "report.csv")):
            assert main(["report", spec, "--smoke", "--out", str(out), "--format", fmt]) == 0
            stdout = capsys.readouterr().out
            artifact = (out / "online-smoke" / filename).read_text()
            assert stdout.rstrip("\n") == artifact.rstrip("\n"), fmt


@needs_yaml
class TestPipelineMatrixAcceptance:
    """The pipeline-API acceptance: the composed-spec cross-product sweeps
    end-to-end and every composition gets its own report column."""

    def test_smoke_sweep_renders_one_column_per_composition(self, tmp_path, capsys):
        spec_path = str(SPECS_DIR / "pipeline-matrix.yaml")
        out = tmp_path / "artifacts"
        assert main(["sweep", spec_path, "--smoke", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        spec = load_spec(SPECS_DIR / "pipeline-matrix.yaml")
        assert len(spec.schemes) >= 9  # Baseline + >= 8 composed pipelines

        import csv

        rows = list(
            csv.DictReader(
                (out / "pipeline-matrix-smoke" / "report.csv").open()
            )
        )
        assert {row["scheme"] for row in rows} == set(spec.schemes)
        markdown = (out / "pipeline-matrix-smoke" / "report.md").read_text()
        header = markdown.splitlines()[:6]
        for scheme in spec.schemes:
            assert any(scheme in line for line in header), scheme
            assert scheme in stdout

    def test_sweep_spec_with_bad_scheme_exits_cleanly(self, tmp_path):
        bad = {
            "name": "bad",
            "schemes": ["Baseline", "pipeline(router=lp, order=zebra)"],
            "base": {"num_coflows": 2, "coflow_width": 2, "topology": "fat_tree(k=4)"},
            "sweep": {"parameter": "coflow_width", "values": [2]},
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", str(path), "--out", str(tmp_path / "a")])
        message = str(excinfo.value)
        assert "invalid sweep spec" in message
        assert "unknown orderer 'zebra'" in message


class TestBench:
    def test_pipeline_stage_breakdown_smoke(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert main(["bench", "pipeline", "--smoke", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "per-stage plan time" in stdout
        assert "route (hinted order)" in stdout
        metadata = run_metadata(out, "pipeline-smoke")
        timings = metadata["timings"]
        assert "pipeline(router=lp, order=lp)" in timings
        for breakdown in timings.values():
            assert set(breakdown) == {"route_ms", "order_ms", "plan_ms"}

    def test_fig3_smoke_suite(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert main(["bench", "fig3", "--smoke", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "Figure 3" in stdout
        assert "Average improvement of LP-Based" in stdout
        metadata = run_metadata(out, "fig3-smoke")
        assert metadata["engine"]["executed"] == 12  # 3 widths x 1 try x 4 schemes

    def test_table1_suite(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert main(["bench", "table1", "--out", str(out)]) == 0
        assert "Table 1" in capsys.readouterr().out
        for name in ("report.txt", "report.md", "report.csv", "run.json"):
            assert (out / "table1" / name).exists()

    def test_table1_warns_about_ignored_flags(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert main(["bench", "table1", "--out", str(out), "--workers", "2"]) == 0
        assert "does not use --workers" in capsys.readouterr().err

    def test_streaming_smoke_suite(self, tmp_path, capsys, monkeypatch):
        bench_file = tmp_path / "bench.json"
        monkeypatch.setenv("REPRO_BENCH_FILE", str(bench_file))
        monkeypatch.setenv("REPRO_BENCH_TIMESTAMP", "2026-01-01T00:00:00Z")
        out = tmp_path / "artifacts"
        assert main(["bench", "streaming", "--smoke", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        # The first-class service metrics appear as report columns.
        assert "replans/sec" in stdout
        assert "p99 decision ms" in stdout
        assert "setup ms/replan" in stdout
        assert "online events/sec" in stdout
        assert "warm batched vs cold per-arrival throughput" in stdout
        assert "resident session vs rebuild-per-replan" in stdout

        metadata = run_metadata(out, "streaming-smoke")
        assert metadata["suite"] == "streaming-smoke"
        assert metadata["policy"]["max_batch"] >= 2

        document = json.loads(bench_file.read_text())
        (record,) = document["runs"]
        assert record["timestamp"] == "2026-01-01T00:00:00Z"
        assert record["suite"] == "streaming-smoke"
        assert record["smoke"] is True
        assert record["throughput_ratio"] > 0
        # Both residency modes are recorded on every run, smoke included,
        # so the perf trajectory always carries the gate's two rates.
        assert record["resident_speedup"] > 0
        assert set(record["streaming"]) == {
            "cold / per-arrival",
            "warm / per-arrival",
            "cold / batched",
            "warm / batched",
            "resident / 100k",
            "rebuild / 100k",
        }
        for metrics in record["streaming"].values():
            assert {
                "replans",
                "replans_per_sec",
                "arrivals_per_plan_sec",
                "p99_decision_latency",
                "max_staleness",
                "staleness_bound",
                "epoch_setup_seconds",
                "online_events_per_sec",
            } <= set(metrics)

    def test_streaming_smoke_recovers_corrupt_bench_file(
        self, tmp_path, capsys, monkeypatch
    ):
        bench_file = tmp_path / "bench.json"
        bench_file.write_text("{not json")
        monkeypatch.setenv("REPRO_BENCH_FILE", str(bench_file))
        out = tmp_path / "artifacts"
        assert main(["bench", "streaming", "--smoke", "--out", str(out)]) == 0
        capsys.readouterr()
        # The corrupt file is renamed aside, and a fresh trajectory starts
        # with the streaming record shape.
        assert bench_file.with_suffix(".json.bak").read_text() == "{not json"
        document = json.loads(bench_file.read_text())
        (record,) = document["runs"]
        assert record["suite"] == "streaming-smoke"
        assert "streaming" in record
        assert "throughput_ratio" in record

    def test_headline_smoke_suite(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert main(["bench", "headline", "--smoke", "--out", str(out)]) == 0
        assert "Headline" in capsys.readouterr().out
        metadata = json.loads((out / "headline-smoke" / "run.json").read_text())
        # smoke: (2 width points + 1 count point) x 1 try x 4 schemes
        assert metadata["engine"]["executed"] == 12
        assert metadata["provenance"]["version"]


class TestFaultTolerantSweep:
    """``repro sweep`` under injected chaos: flags, exit codes, reports."""

    def chaos_spec_path(self, tmp_path) -> Path:
        """A tiny spec with one LP-solving scheme so ``lp`` faults can fire."""
        spec = {
            "name": "chaos",
            "schemes": ["Baseline", "LP-Based"],
            "tries": 1,
            "reference": "Baseline",
            "base": {
                "num_coflows": 2,
                "coflow_width": 2,
                "topology": "fat_tree(k=4)",
            },
            "sweep": {"parameter": "coflow_width", "values": [2], "label": "{value}f"},
        }
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps(spec))
        return path

    def test_invalid_inject_faults_exits_cleanly(self, tmp_path):
        spec = tiny_spec_path(tmp_path)
        with pytest.raises(SystemExit, match="invalid --inject-faults"):
            main(["sweep", str(spec), "--inject-faults", "rate=5"])

    def test_invalid_min_coverage_exits_cleanly(self, tmp_path):
        spec = tiny_spec_path(tmp_path)
        with pytest.raises(SystemExit, match="min-coverage"):
            main(["sweep", str(spec), "--min-coverage", "1.5"])

    def test_transient_chaos_sweep_matches_fault_free_run(self, tmp_path, capsys):
        spec = tiny_spec_path(tmp_path)
        clean_out = tmp_path / "clean"
        chaos_out = tmp_path / "chaos"
        assert main(["sweep", str(spec), "--out", str(clean_out)]) == 0
        assert (
            main(
                [
                    "sweep",
                    str(spec),
                    "--out",
                    str(chaos_out),
                    "--inject-faults",
                    "rate=1.0,kinds=timeout",
                ]
            )
            == 0
        )
        capsys.readouterr()
        # Every task faulted once, was retried, and converged: the CSV is
        # byte-identical to the fault-free run (no failures column appears).
        clean_csv = (clean_out / "tiny" / "report.csv").read_text()
        chaos_csv = (chaos_out / "tiny" / "report.csv").read_text()
        assert chaos_csv == clean_csv
        assert "failures" not in chaos_csv
        metadata = run_metadata(chaos_out, "tiny")
        assert metadata["engine"]["retried"] == metadata["engine"]["total_tasks"]
        assert metadata["engine"]["failed"] == 0
        assert metadata["engine"]["coverage"] == 1.0

    def test_permanent_failures_fail_the_exit_code_by_default(
        self, tmp_path, capsys
    ):
        spec = self.chaos_spec_path(tmp_path)
        out = tmp_path / "artifacts"
        code = main(
            [
                "sweep",
                str(spec),
                "--out",
                str(out),
                "--inject-faults",
                "rate=1.0,kinds=lp",
            ]
        )
        assert code == 3
        captured = capsys.readouterr()
        assert "below" in captured.err
        assert "failed permanently" in captured.err
        # The sweep still completed: report carries the failures block and
        # the failed cell renders as nan.
        assert "failures" in captured.out
        text = (out / "chaos" / "report.txt").read_text()
        assert "failures (1 failed task(s)" in text
        assert "LPInfeasibleError" in text
        csv_text = (out / "chaos" / "report.csv").read_text()
        assert csv_text.splitlines()[0].endswith(",failures")
        metadata = run_metadata(out, "chaos")
        assert metadata["engine"]["failed"] == 1
        assert metadata["engine"]["coverage"] == 0.5

    def test_min_coverage_tolerates_the_failures(self, tmp_path, capsys):
        spec = self.chaos_spec_path(tmp_path)
        code = main(
            [
                "sweep",
                str(spec),
                "--out",
                str(tmp_path / "artifacts"),
                "--inject-faults",
                "rate=1.0,kinds=lp",
                "--min-coverage",
                "0.5",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "failed permanently" in captured.err
        assert "below" not in captured.err

    def test_retry_failed_heals_the_store(self, tmp_path, capsys):
        spec = self.chaos_spec_path(tmp_path)
        out = tmp_path / "artifacts"
        assert (
            main(
                [
                    "sweep",
                    str(spec),
                    "--out",
                    str(out),
                    "--inject-faults",
                    "rate=1.0,kinds=lp",
                ]
            )
            == 3
        )
        capsys.readouterr()
        # Resume without --retry-failed: the failure is kept, nothing runs.
        assert main(["sweep", str(spec), "--out", str(out)]) == 3
        metadata = run_metadata(out, "chaos")
        assert metadata["engine"]["executed"] == 0
        assert metadata["engine"]["failed"] == 1
        capsys.readouterr()
        # Resume with --retry-failed and no injection: the cell heals.
        assert main(["sweep", str(spec), "--out", str(out), "--retry-failed"]) == 0
        metadata = run_metadata(out, "chaos")
        assert metadata["engine"]["executed"] == 1
        assert metadata["engine"]["failed"] == 0
        text = (out / "chaos" / "report.txt").read_text()
        assert "failures" not in text
        capsys.readouterr()

    def test_report_notes_failed_cells(self, tmp_path, capsys):
        spec = self.chaos_spec_path(tmp_path)
        out = tmp_path / "artifacts"
        main(
            [
                "sweep",
                str(spec),
                "--out",
                str(out),
                "--inject-faults",
                "rate=1.0,kinds=lp",
            ]
        )
        capsys.readouterr()
        assert main(["report", str(spec), "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert "1 task(s) recorded as permanent failures" in captured.err
        assert "failures (1 failed task(s)" in captured.out

    def test_spec_document_can_declare_its_own_faults(self, tmp_path, capsys):
        document = json.loads(self.chaos_spec_path(tmp_path).read_text())
        document["faults"] = "rate=1.0,kinds=lp"
        path = tmp_path / "declared.json"
        path.write_text(json.dumps(document))
        assert main(["sweep", str(path), "--out", str(tmp_path / "a")]) == 3
        metadata = run_metadata(tmp_path / "a", "chaos")
        assert metadata["engine"]["failed"] == 1
        assert metadata["spec"]["faults"] == "rate=1.0,kinds=lp"
        capsys.readouterr()


class TestCrashResume:
    """kill -9 mid-sweep, then resume: only unfinished work re-executes and
    the final artifacts are bit-identical to an uninterrupted run."""

    def crash_spec_path(self, tmp_path) -> Path:
        spec = {
            "name": "crashy",
            "schemes": ["Baseline", "Route-only"],
            "tries": 1,
            "reference": "Baseline",
            "base": {
                "num_coflows": 2,
                "coflow_width": 2,
                "topology": "fat_tree(k=4)",
            },
            "sweep": {
                "parameter": "coflow_width",
                "values": [2, 3, 4],
                "label": "{value}f",
            },
        }
        path = tmp_path / "crashy.json"
        path.write_text(json.dumps(spec))
        return path

    def test_kill_nine_then_resume_is_bit_identical(self, tmp_path, capsys):
        import os
        import signal
        import subprocess
        import sys
        import time

        spec = self.crash_spec_path(tmp_path)
        ref_out = tmp_path / "reference"
        out = tmp_path / "interrupted"

        # Uninterrupted reference run (no faults, serial).
        assert main(["sweep", str(spec), "--out", str(ref_out)]) == 0
        capsys.readouterr()

        # Launch a 2-worker sweep slowed by injected delays (a kill window),
        # wait until at least one record is on disk, then kill -9 the whole
        # process group mid-flight.
        store_path = out / "crashy" / "runstore.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "sweep",
                str(spec),
                "--out",
                str(out),
                "--workers",
                "2",
                "--inject-faults",
                "rate=1.0,kinds=slow,delay=0.4,seed=1",
            ],
            env=env,
            cwd=str(ROOT),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    break
                if store_path.exists() and store_path.read_text().count("\n") >= 1:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("sweep subprocess never wrote a record")
        finally:
            if process.poll() is None:
                os.killpg(process.pid, signal.SIGKILL)
            process.wait(timeout=30)

        recorded = store_path.read_text().count("\n")
        assert recorded >= 1
        # The kill must have landed mid-flight for resume to have work left;
        # the injected 0.4s-per-task delay makes finishing all 6 tasks before
        # the first record appears effectively impossible.
        assert recorded < 6, "subprocess finished before the kill landed"

        # Resume without injection: only the missing tasks execute, and the
        # final report is byte-identical to the uninterrupted reference.
        assert main(["sweep", str(spec), "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert "resuming from" in captured.out
        metadata = run_metadata(out, "crashy")
        assert metadata["engine"]["cached"] >= recorded - 1  # minus a torn tail
        assert metadata["engine"]["executed"] <= 6 - metadata["engine"]["cached"]
        assert metadata["engine"]["failed"] == 0
        for name in ("report.csv", "report.txt", "report.md"):
            assert (out / "crashy" / name).read_text() == (
                ref_out / "crashy" / name
            ).read_text()


class TestShardedSweep:
    """The fabric's CLI surface: ``sweep --shards N`` fleets, shard-worker
    mode, ``merge``, and the lost-shard exit-code degradation."""

    def test_shard_worker_mode_drains_the_grid(self, tmp_path, capsys):
        spec = tiny_spec_path(tmp_path)
        out = tmp_path / "artifacts"
        root = tmp_path / "shards"
        code = main(
            [
                "sweep", str(spec), "--out", str(out),
                "--shards", "1", "--shard-id", "0", "--store", str(root),
                "--steal-after", "0.2",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "shard 0/1: 4 tasks" in captured.out
        assert "4 executed" in captured.out
        assert (root / "shard-0000.jsonl").exists()
        assert json.loads((root / "fleet.json").read_text()) == {"shards": 1}
        stats = json.loads((root / "shard-0000.stats.json").read_text())
        assert stats["executed"] == 4

    def test_three_shard_fleet_matches_single_shard_reference(
        self, tmp_path, capsys
    ):
        spec = tiny_spec_path(tmp_path)
        ref_out = tmp_path / "ref"
        out = tmp_path / "fleet"
        assert main(["sweep", str(spec), "--out", str(ref_out)]) == 0
        assert (
            main(
                [
                    "sweep", str(spec), "--out", str(out),
                    "--shards", "3", "--steal-after", "0.5",
                ]
            )
            == 0
        )
        capsys.readouterr()
        for name in ("report.txt", "report.md", "report.csv"):
            assert (out / "tiny" / name).read_text() == (
                ref_out / "tiny" / name
            ).read_text()
        metadata = run_metadata(out, "tiny")
        fleet = metadata["fleet"]
        assert fleet["shards"] == 3
        assert fleet["lost_shards"] == []
        assert metadata["engine"]["executed"] == 4
        assert metadata["engine"]["skipped_records"] == 0

        # Fleet resume: every task is already recorded, no shard simulates
        # anything, and run.json proves it.
        assert (
            main(
                [
                    "sweep", str(spec), "--out", str(out),
                    "--shards", "3", "--steal-after", "0.5",
                ]
            )
            == 0
        )
        capsys.readouterr()
        resumed = run_metadata(out, "tiny")
        assert resumed["engine"]["executed"] == 0
        assert resumed["engine"]["cached"] == 4
        for shard_stats in resumed["fleet"]["shard_stats"].values():
            assert shard_stats["executed"] == 0
            assert shard_stats["cached"] == 4

    def test_lost_shard_degrades_to_exit_3_naming_the_shard(
        self, tmp_path, capsys, monkeypatch
    ):
        import sys as _sys

        from repro.cli import sweep as sweep_module

        spec = tiny_spec_path(tmp_path)
        out = tmp_path / "artifacts"
        real_command = sweep_module._shard_command

        def sabotaged(args, root, shard_id):
            if shard_id == 1:
                return [_sys.executable, "-c", "raise SystemExit(9)"]
            return real_command(args, root, shard_id)

        monkeypatch.setattr(sweep_module, "_shard_command", sabotaged)
        code = main(
            [
                "sweep", str(spec), "--out", str(out),
                "--shards", "2", "--steal-after", "0.2",
            ]
        )
        captured = capsys.readouterr()
        # The survivor stole the dead shard's claims, so the report is
        # complete — but the lost shard still degrades the exit status and
        # is named on stderr, never silently absorbed.
        assert code == 3
        assert "shard 1 was lost" in captured.err
        assert run_metadata(out, "tiny")["fleet"]["lost_shards"] == [1]
        # --min-coverage 0 is the explicit opt-in to a partial fleet.
        monkeypatch.setattr(sweep_module, "_shard_command", real_command)
        assert (
            main(
                [
                    "sweep", str(spec), "--out", str(out),
                    "--shards", "2", "--steal-after", "0.2",
                    "--min-coverage", "0",
                ]
            )
            == 0
        )
        capsys.readouterr()

    def test_merge_cli_produces_a_reportable_plain_store(
        self, tmp_path, capsys
    ):
        spec = tiny_spec_path(tmp_path)
        out = tmp_path / "artifacts"
        root = tmp_path / "shards"
        assert (
            main(
                [
                    "sweep", str(spec), "--out", str(out),
                    "--shards", "1", "--shard-id", "0", "--store", str(root),
                ]
            )
            == 0
        )
        capsys.readouterr()
        merged = tmp_path / "merged.jsonl"
        assert main(["merge", str(root), "-o", str(merged)]) == 0
        captured = capsys.readouterr()
        assert "merged 1 store(s): 4 record(s)" in captured.out
        assert main(["report", str(spec), "--store", str(merged)]) == 0
        assert "tiny" in capsys.readouterr().out

    def test_merge_cli_missing_input_fails_cleanly(self, tmp_path, capsys):
        assert main(["merge", str(tmp_path / "nope")]) == 1
        assert "repro merge:" in capsys.readouterr().err

    def test_report_reads_the_shard_directory_and_names_missing_shards(
        self, tmp_path, capsys
    ):
        spec = tiny_spec_path(tmp_path)
        out = tmp_path / "artifacts"
        assert (
            main(
                [
                    "sweep", str(spec), "--out", str(out),
                    "--shards", "2", "--steal-after", "0.2",
                ]
            )
            == 0
        )
        capsys.readouterr()
        # No runstore.jsonl exists; report falls back to <out>/tiny/shards/.
        assert main(["report", str(spec), "--out", str(out)]) == 0
        capsys.readouterr()
        # A lost shard file is called out by id, not silently skipped.
        (out / "tiny" / "shards" / "shard-0001.jsonl").unlink()
        assert main(["report", str(spec), "--out", str(out)]) == 0
        assert "shard 1" in capsys.readouterr().err

    def test_shard_id_out_of_range_exits_cleanly(self, tmp_path):
        spec = tiny_spec_path(tmp_path)
        with pytest.raises(SystemExit, match="out of range"):
            main(["sweep", str(spec), "--shards", "2", "--shard-id", "2"])


class TestShardCrashResume:
    """kill -9 one shard worker mid-sweep: the surviving shard steals its
    claims and finishes, the killed shard resumes executing nothing, and
    the merged artifacts are bit-identical to an uninterrupted run."""

    def test_kill_nine_a_shard_worker_then_resume(self, tmp_path, capsys):
        import os
        import signal
        import subprocess
        import sys
        import time

        spec = tiny_spec_path(tmp_path)
        ref_out = tmp_path / "reference"
        out = tmp_path / "interrupted"
        root = out / "tiny" / "shards"
        assert main(["sweep", str(spec), "--out", str(ref_out)]) == 0
        capsys.readouterr()

        # Shard 1 of 2, slowed by injected delays (the kill window).
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        shard_file = root / "shard-0001.jsonl"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "sweep", str(spec),
                "--out", str(out), "--shards", "2", "--shard-id", "1",
                "--store", str(root), "--min-coverage", "0",
                "--inject-faults", "rate=1.0,kinds=slow,delay=0.4,seed=1",
            ],
            env=env,
            cwd=str(ROOT),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    break
                if shard_file.exists() and any(
                    '"record"' in line
                    for line in shard_file.read_text().splitlines()
                ):
                    break
                time.sleep(0.02)
            else:
                pytest.fail("shard worker never wrote a record")
        finally:
            if process.poll() is None:
                os.killpg(process.pid, signal.SIGKILL)
            process.wait(timeout=30)

        recorded = sum(
            1
            for line in shard_file.read_text().splitlines()
            if '"record"' in line
        )
        assert 1 <= recorded < 4, "kill did not land mid-flight"

        # Shard 0 drains the rest, stealing the dead shard's claims.
        assert (
            main(
                [
                    "sweep", str(spec), "--out", str(out),
                    "--shards", "2", "--shard-id", "0", "--store", str(root),
                    "--steal-after", "0.2", "--min-coverage", "0",
                ]
            )
            == 0
        )
        survivor = capsys.readouterr().out
        assert f"{4 - recorded} executed" in survivor

        # The killed shard resumes: every task is already recorded, so it
        # executes nothing — the no-re-simulation proof, via hit counts.
        assert (
            main(
                [
                    "sweep", str(spec), "--out", str(out),
                    "--shards", "2", "--shard-id", "1", "--store", str(root),
                    "--steal-after", "0.2",
                ]
            )
            == 0
        )
        resumed = capsys.readouterr().out
        assert "resuming from" in resumed
        assert "0 executed" in resumed
        assert "4 cached" in resumed

        # Merged artifacts are bit-identical to the uninterrupted run.
        merged = tmp_path / "merged.jsonl"
        assert main(["merge", str(root), "-o", str(merged)]) == 0
        assert (
            main(
                [
                    "report", str(spec), "--out", str(out),
                    "--store", str(merged), "--export",
                ]
            )
            == 0
        )
        capsys.readouterr()
        for name in ("report.csv", "report.txt", "report.md"):
            assert (out / "tiny" / name).read_text() == (
                ref_out / "tiny" / name
            ).read_text()


class TestBenchFileLock:
    """Concurrent bench recorders must serialize on the file lock instead
    of interleaving read-modify-write cycles and dropping runs."""

    def test_concurrent_recorders_lose_no_runs(self, tmp_path, monkeypatch):
        import threading

        from repro.cli.bench import _persist_bench_run

        bench_file = tmp_path / "bench.json"
        monkeypatch.setenv("REPRO_BENCH_FILE", str(bench_file))
        barrier = threading.Barrier(8)

        def record(i):
            barrier.wait()
            _persist_bench_run({"suite": "lock-test", "worker": i})

        threads = [
            threading.Thread(target=record, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        document = json.loads(bench_file.read_text())
        assert len(document["runs"]) == 8
        assert sorted(run["worker"] for run in document["runs"]) == list(
            range(8)
        )

    def test_crash_safe_rewrite_leaves_no_temp_file(
        self, tmp_path, monkeypatch
    ):
        from repro.cli.bench import _persist_bench_run

        bench_file = tmp_path / "bench.json"
        monkeypatch.setenv("REPRO_BENCH_FILE", str(bench_file))
        _persist_bench_run({"suite": "lock-test"})
        assert json.loads(bench_file.read_text())["runs"]
        assert not bench_file.with_suffix(".json.tmp").exists()
