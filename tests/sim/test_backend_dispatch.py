"""Backend dispatch: selection precedence, fallback, and cache identity.

The kernel tier (``array`` / ``jit`` / ``auto``) is a *speed* knob — the
backends are bit-identical by contract — so the dispatch layer must (a)
resolve the explicit argument > plan field > ``REPRO_SIM_BACKEND``
environment variable > ``"array"`` chain deterministically, (b) degrade
gracefully (warn, never fail) when the compiled tier cannot run, and (c)
keep the choice *out* of scheme signatures and run-store keys: the same
experiment simulated on either backend must hit the same cache entry.
"""

import warnings

import pytest

from repro.analysis.runstore import run_key
from repro.baselines import SEBFScheme
from repro.core import topologies
from repro.sim import (
    BACKENDS,
    BatchPolicy,
    FlowLevelSimulator,
    JitSimulationKernel,
    SimulationKernel,
    SimulationPlan,
    StaticPlanReplanner,
    StreamingScheduler,
    kernel_jit,
    make_kernel,
    resolve_backend,
    resolve_resident,
    validate_backend,
)
from repro.workloads import CoflowGenerator, WorkloadConfig


@pytest.fixture
def case():
    network = topologies.leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=2)
    config = WorkloadConfig(
        num_coflows=2, coflow_width=3, mean_flow_size=2.0, release_rate=1.0, seed=9
    )
    instance = CoflowGenerator(network, config).instance()
    plan = SEBFScheme().plan(instance, network).normalized(instance)
    return network, config, instance, plan


class TestResolution:
    def test_default_is_array(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_BACKEND", raising=False)
        assert resolve_backend() == "array"
        assert resolve_backend(None) == "array"

    def test_explicit_argument_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BACKEND", "jit")
        assert resolve_backend("array") == "array"

    def test_environment_applies_when_unpinned(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BACKEND", "jit")
        assert resolve_backend() == "jit"
        monkeypatch.setenv("REPRO_SIM_BACKEND", "")  # empty == unset
        assert resolve_backend() == "array"

    def test_auto_resolves_to_a_concrete_tier(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_BACKEND", raising=False)
        resolved = resolve_backend("auto")
        assert resolved == ("jit" if kernel_jit.available() else "array")

    def test_unknown_names_raise(self):
        with pytest.raises(ValueError, match="unknown simulator backend"):
            validate_backend("numba")
        with pytest.raises(ValueError, match="unknown simulator backend"):
            resolve_backend("cython")
        for backend in BACKENDS:
            validate_backend(backend)  # all published names are valid

    def test_plan_validate_rejects_unknown_backend(self, case):
        import dataclasses

        network, _config, instance, plan = case
        bad = dataclasses.replace(plan, backend="turbo")
        with pytest.raises(ValueError, match="unknown simulator backend"):
            bad.validate(instance, network)

    def test_plan_backend_survives_normalization(self, case):
        import dataclasses

        _network, _config, instance, plan = case
        pinned = dataclasses.replace(plan, backend="jit")
        assert pinned.normalized(instance).backend == "jit"


class TestDispatch:
    def test_plan_backend_selects_the_kernel_class(self, case, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_BACKEND", raising=False)
        import dataclasses

        network, _config, instance, plan = case
        assert type(make_kernel(network, instance, plan)) is SimulationKernel
        if kernel_jit.available():
            pinned = dataclasses.replace(plan, backend="jit")
            assert isinstance(make_kernel(network, instance, pinned), JitSimulationKernel)

    def test_explicit_backend_overrides_plan(self, case, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_BACKEND", raising=False)
        import dataclasses

        network, _config, instance, plan = case
        pinned = dataclasses.replace(plan, backend="jit")
        kernel = make_kernel(network, instance, pinned, backend="array")
        assert type(kernel) is SimulationKernel

    def test_environment_variable_reaches_the_kernel(self, case, monkeypatch):
        if not kernel_jit.available():
            pytest.skip("compiled kernel tier unavailable")
        network, _config, instance, plan = case
        monkeypatch.setenv("REPRO_SIM_BACKEND", "jit")
        assert isinstance(make_kernel(network, instance, plan), JitSimulationKernel)

    def test_unavailable_jit_falls_back_with_a_warning(self, case, monkeypatch):
        """An explicit jit request on a machine without a toolchain degrades
        to the array kernel (identical results) instead of failing."""
        network, _config, instance, plan = case
        monkeypatch.setattr(kernel_jit, "available", lambda: False)
        monkeypatch.setattr(
            kernel_jit, "unavailable_reason", lambda: "no C compiler (test)"
        )
        from repro.sim import simulator as simulator_module

        monkeypatch.setattr(simulator_module, "_fallback_warned", False)
        with pytest.warns(RuntimeWarning, match="falling back to the 'array'"):
            kernel = make_kernel(network, instance, plan, backend="jit")
        assert type(kernel) is SimulationKernel
        # ... and only warns once per process.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            kernel = make_kernel(network, instance, plan, backend="jit")
        assert type(kernel) is SimulationKernel

    def test_jit_kernel_without_library_delegates_to_python_loop(self, case, monkeypatch):
        """A constructed JitSimulationKernel still runs correctly when the
        compiled core vanishes (e.g. cache deleted mid-process)."""
        network, _config, instance, plan = case
        kernel = JitSimulationKernel(network, instance, plan)
        monkeypatch.setattr(kernel_jit, "available", lambda: False)
        assert kernel.run()
        reference = SimulationKernel(network, instance, plan)
        reference.run()
        assert kernel.flow_completion_map() == reference.flow_completion_map()

    def test_simulator_constructor_validates_backend(self, case):
        network, _config, _instance, _plan = case
        with pytest.raises(ValueError, match="unknown simulator backend"):
            FlowLevelSimulator(network, backend="fortran")


class TestResidentResolution:
    """Streaming-session residency is a speed knob with the backend's
    contract: explicit argument > ``REPRO_SIM_RESIDENT`` environment
    variable > off, bit-identical either way, never in cache keys."""

    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_RESIDENT", raising=False)
        assert resolve_resident() is False
        assert resolve_resident(None) is False

    def test_explicit_argument_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_RESIDENT", "1")
        assert resolve_resident(False) is False
        monkeypatch.setenv("REPRO_SIM_RESIDENT", "0")
        assert resolve_resident(True) is True

    def test_environment_spellings(self, monkeypatch):
        for raw, expected in [
            ("1", True), ("true", True), ("yes", True), ("on", True),
            ("0", False), ("false", False), ("no", False), ("off", False),
            ("TRUE", True), ("Off", False), (" on ", True),
        ]:
            monkeypatch.setenv("REPRO_SIM_RESIDENT", raw)
            assert resolve_resident() is expected, raw
        monkeypatch.setenv("REPRO_SIM_RESIDENT", "")  # empty == unset
        assert resolve_resident() is False

    def test_unrecognised_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_RESIDENT", "maybe")
        with pytest.raises(ValueError, match="REPRO_SIM_RESIDENT"):
            resolve_resident()

    def test_environment_reaches_the_streaming_session(self, case, monkeypatch):
        network, _config, instance, plan = case
        monkeypatch.setenv("REPRO_SIM_RESIDENT", "on")
        session = StreamingScheduler(
            network, StaticPlanReplanner(plan), policy=BatchPolicy(max_batch=1)
        )
        assert session.resident is True
        session.run(instance)
        assert session._session_kernel is not None

    def test_explicit_off_beats_environment_in_the_session(
        self, case, monkeypatch
    ):
        network, _config, instance, plan = case
        monkeypatch.setenv("REPRO_SIM_RESIDENT", "1")
        session = StreamingScheduler(
            network,
            StaticPlanReplanner(plan),
            policy=BatchPolicy(max_batch=1),
            resident=False,
        )
        assert session.resident is False
        session.run(instance)
        assert session._session_kernel is None

    def test_residency_never_forks_the_run_store_key(self, case, monkeypatch):
        network, config, _instance, _plan = case
        scheme = SEBFScheme()
        keys = set()
        signatures = set()
        for raw in ("0", "1"):
            monkeypatch.setenv("REPRO_SIM_RESIDENT", raw)
            keys.add(run_key(network.fingerprint(), config, scheme.signature()))
            signatures.add(scheme.signature())
        assert len(keys) == 1
        assert len(signatures) == 1
        assert all("resident" not in s for s in signatures)


class TestCacheIdentity:
    def test_backends_share_one_run_store_key(self, case, monkeypatch):
        """Same topology, config and scheme -> same run-store key, whatever
        backend the environment selects: the tier must never fork the cache."""
        network, config, _instance, _plan = case
        scheme = SEBFScheme()
        keys = set()
        for backend in ("array", "jit"):
            monkeypatch.setenv("REPRO_SIM_BACKEND", backend)
            keys.add(run_key(network.fingerprint(), config, scheme.signature()))
        assert len(keys) == 1

    def test_scheme_signatures_do_not_encode_the_backend(self, case, monkeypatch):
        _network, _config, _instance, _plan = case
        scheme = SEBFScheme()
        monkeypatch.setenv("REPRO_SIM_BACKEND", "jit")
        jit_signature = scheme.signature()
        monkeypatch.setenv("REPRO_SIM_BACKEND", "array")
        assert scheme.signature() == jit_signature
        assert "jit" not in jit_signature and "backend" not in jit_signature

    def test_results_are_identical_across_backends(self, case, monkeypatch):
        if not kernel_jit.available():
            pytest.skip("compiled kernel tier unavailable")
        network, _config, instance, plan = case
        simulator = FlowLevelSimulator(network)
        array = simulator.run(instance, plan, backend="array")
        jit = simulator.run(instance, plan, backend="jit")
        assert array.flow_completion == jit.flow_completion
        assert array.metrics() == jit.metrics()
