"""Property-based invariants of the flow-level simulator.

Scaling the evaluation (parallel sweeps over many scenario families) demands
trust in the simulator, so these tests replay randomized workloads on seeded
``random_graph`` topologies and check the three structural guarantees the
Section-4.1 methodology relies on:

1. **capacity feasibility** — at no point in time does the sum of granted
   rates on an edge exceed its capacity;
2. **work conservation** — whenever a released, unfinished flow receives no
   bandwidth, some edge on its path is saturated by higher-priority flows
   (no idle capacity while a runnable flow exists);
3. **completion** — every released flow completes, no earlier than its
   release time and no earlier than its intrinsic lower bound
   (size / bottleneck capacity after release).

The checks reconstruct the rate allocation from the simulator's recorded
:class:`~repro.core.schedule.CircuitSchedule` segments, so they validate the
simulator's *output*, not its internal bookkeeping.
"""

import math

import pytest

from repro.baselines import BaselineScheme, RouteOnlyScheme, ScheduleOnlyScheme
from repro.core import topologies
from repro.core.network import path_edges
from repro.sim import FlowLevelSimulator
from repro.workloads import CoflowGenerator, WorkloadConfig

EPS = 1e-7

#: (topology seed, workload family) grid: every case is deterministic, so a
#: failure reproduces from its parameter id alone.
CASES = [
    pytest.param(seed, fdist, edist, id=f"seed{seed}-{fdist}-{edist}")
    for seed, (fdist, edist) in enumerate(
        [
            ("poisson", "uniform"),
            ("poisson", "incast"),
            ("pareto", "uniform"),
            ("pareto", "skewed"),
            ("facebook", "uniform"),
            ("facebook", "incast"),
            ("poisson", "skewed"),
            ("pareto", "incast"),
        ]
    )
]

SCHEMES = {
    "baseline": lambda seed: BaselineScheme(seed=seed),
    "schedule-only": lambda seed: ScheduleOnlyScheme(seed=seed),
    "route-only": lambda seed: RouteOnlyScheme(),
}


def simulate_case(seed, flow_sizes, endpoints, scheme_key="baseline"):
    network = topologies.random_graph(
        6, edge_probability=0.35, capacity_range=(1.0, 3.0), seed=seed
    )
    config = WorkloadConfig(
        num_coflows=3,
        coflow_width=4,
        mean_flow_size=3.0,
        release_rate=2.0,
        seed=100 + seed,
        flow_size_distribution=flow_sizes,
        endpoint_distribution=endpoints,
    )
    instance = CoflowGenerator(network, config).instance()
    plan = SCHEMES[scheme_key](seed).plan(instance, network)
    result = FlowLevelSimulator(network).run(instance, plan)
    return network, instance, result


def interval_grid(instance, result):
    """All (start, end) intervals between consecutive simulator events."""
    times = {0.0}
    for _, _, flow in instance.iter_flows():
        times.add(flow.release_time)
    for fid in result.schedule.flow_ids():
        for segment in result.schedule.segments(fid):
            times.add(segment.start)
            times.add(segment.end)
    ordered = sorted(times)
    return [(a, b) for a, b in zip(ordered, ordered[1:]) if b - a > EPS]


def rates_in_interval(result, start, end):
    """Per-flow transfer rate inside (start, end), from recorded segments."""
    mid = 0.5 * (start + end)
    rates = {}
    for fid in result.schedule.flow_ids():
        for segment in result.schedule.segments(fid):
            if segment.start <= mid <= segment.end:
                rates[fid] = rates.get(fid, 0.0) + segment.rate
    return rates


@pytest.mark.parametrize("seed,flow_sizes,endpoints", CASES)
def test_edge_capacities_never_exceeded(seed, flow_sizes, endpoints):
    network, instance, result = simulate_case(seed, flow_sizes, endpoints)
    capacities = network.capacities()
    for start, end in interval_grid(instance, result):
        usage = {}
        for fid, rate in rates_in_interval(result, start, end).items():
            for edge in path_edges(list(result.schedule.path(fid))):
                usage[edge] = usage.get(edge, 0.0) + rate
        for edge, used in usage.items():
            assert used <= capacities[edge] + EPS, (
                f"edge {edge} over capacity in [{start}, {end}]: "
                f"{used} > {capacities[edge]}"
            )


@pytest.mark.parametrize("seed,flow_sizes,endpoints", CASES)
def test_work_conserving(seed, flow_sizes, endpoints):
    network, instance, result = simulate_case(seed, flow_sizes, endpoints)
    capacities = network.capacities()
    release = {fid: instance.flow(fid).release_time for fid in instance.flow_ids()}
    for start, end in interval_grid(instance, result):
        rates = rates_in_interval(result, start, end)
        residual = dict(capacities)
        for fid, rate in rates.items():
            for edge in path_edges(list(result.schedule.path(fid))):
                residual[edge] -= rate
        for fid in instance.flow_ids():
            runnable = (
                release[fid] <= start + EPS
                and result.flow_completion[fid] >= end - EPS
            )
            if not runnable or rates.get(fid, 0.0) > EPS:
                continue
            # A starved runnable flow must be blocked by a saturated edge.
            bottleneck = min(
                residual[edge]
                for edge in path_edges(list(result.schedule.path(fid)))
            )
            assert bottleneck <= EPS, (
                f"flow {fid} idle in [{start}, {end}] with "
                f"{bottleneck} spare capacity along its whole path"
            )


@pytest.mark.parametrize("seed,flow_sizes,endpoints", CASES)
def test_all_released_flows_complete(seed, flow_sizes, endpoints):
    network, instance, result = simulate_case(seed, flow_sizes, endpoints)
    flow_ids = list(instance.flow_ids())
    assert set(result.flow_completion) == set(flow_ids)
    for fid in flow_ids:
        flow = instance.flow(fid)
        completion = result.flow_completion[fid]
        assert math.isfinite(completion)
        assert completion >= flow.release_time - EPS
        # No flow can beat its own bottleneck transfer time.
        bottleneck = network.bottleneck_capacity(list(result.schedule.path(fid)))
        assert completion >= flow.release_time + flow.size / bottleneck - EPS


@pytest.mark.parametrize("scheme_key", sorted(SCHEMES))
def test_invariants_hold_across_schemes(scheme_key):
    # The invariants are properties of the simulator, not of one scheme's
    # plans; spot-check the full battery on each heuristic.
    network, instance, result = simulate_case(
        3, "pareto", "uniform", scheme_key=scheme_key
    )
    capacities = network.capacities()
    for start, end in interval_grid(instance, result):
        usage = {}
        for fid, rate in rates_in_interval(result, start, end).items():
            for edge in path_edges(list(result.schedule.path(fid))):
                usage[edge] = usage.get(edge, 0.0) + rate
        assert all(used <= capacities[e] + EPS for e, used in usage.items())
    assert set(result.flow_completion) == set(instance.flow_ids())
