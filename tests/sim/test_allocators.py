"""Rate-allocator behaviour: greedy priority vs the fair-sharing policies."""

import dataclasses

import pytest

from repro.core import Coflow, CoflowInstance, Flow, topologies
from repro.sim import (
    ALLOCATORS,
    FlowLevelSimulator,
    GreedyPriorityAllocator,
    MaxMinFairAllocator,
    SimulationPlan,
    WeightedFairAllocator,
    resolve_allocator,
)


def shared_edge_instance(weights=(1.0, 1.0)):
    network = topologies.triangle()
    instance = CoflowInstance(
        coflows=[
            Coflow(flows=(Flow("x", "y", size=1.0),), weight=weights[0]),
            Coflow(flows=(Flow("x", "y", size=1.0),), weight=weights[1]),
        ]
    )
    plan = SimulationPlan(
        paths={(0, 0): ("x", "y"), (1, 0): ("x", "y")},
        order=[(0, 0), (1, 0)],
        name="test",
    )
    return network, instance, plan


class TestRegistry:
    def test_known_allocators(self):
        assert set(ALLOCATORS) == {"greedy", "max-min", "weighted"}
        assert isinstance(resolve_allocator("greedy"), GreedyPriorityAllocator)
        assert isinstance(resolve_allocator("max-min"), MaxMinFairAllocator)
        assert isinstance(resolve_allocator("weighted"), WeightedFairAllocator)

    def test_unknown_allocator_raises_with_known_names(self):
        with pytest.raises(ValueError, match="unknown rate allocator.*greedy"):
            resolve_allocator("fifo")

    def test_plan_validation_rejects_unknown_allocator(self):
        network, instance, plan = shared_edge_instance()
        plan = dataclasses.replace(plan, allocator="fifo")
        with pytest.raises(ValueError, match="unknown rate allocator"):
            FlowLevelSimulator(network).run(instance, plan)


class TestPolicies:
    def test_greedy_serialises_the_shared_edge(self):
        network, instance, plan = shared_edge_instance()
        result = FlowLevelSimulator(network).run(instance, plan)
        assert result.flow_completion[(0, 0)] == pytest.approx(1.0)
        assert result.flow_completion[(1, 0)] == pytest.approx(2.0)

    def test_max_min_splits_the_shared_edge_evenly(self):
        network, instance, plan = shared_edge_instance()
        plan = dataclasses.replace(plan, allocator="max-min")
        result = FlowLevelSimulator(network).run(instance, plan)
        # Both flows run at rate 1/2 and finish together.
        assert result.flow_completion[(0, 0)] == pytest.approx(2.0)
        assert result.flow_completion[(1, 0)] == pytest.approx(2.0)
        result.schedule.validate(instance, network)

    def test_max_min_ignores_priority_order(self):
        network, instance, plan = shared_edge_instance()
        reordered = dataclasses.replace(
            plan, order=[(1, 0), (0, 0)], allocator="max-min"
        )
        result = FlowLevelSimulator(network).run(instance, reordered)
        assert result.flow_completion[(0, 0)] == result.flow_completion[(1, 0)]

    def test_weighted_fair_shares_proportionally(self):
        network, instance, plan = shared_edge_instance(weights=(2.0, 1.0))
        plan = dataclasses.replace(plan, allocator="weighted")
        result = FlowLevelSimulator(network).run(instance, plan)
        # Rates 2/3 and 1/3 until t=1.5; the survivor then takes the edge.
        assert result.flow_completion[(0, 0)] == pytest.approx(1.5)
        assert result.flow_completion[(1, 0)] == pytest.approx(2.0)
        result.schedule.validate(instance, network)

    def test_weighted_with_equal_weights_is_max_min(self):
        network, instance, plan = shared_edge_instance()
        fair = FlowLevelSimulator(network).run(
            instance, dataclasses.replace(plan, allocator="max-min")
        )
        weighted = FlowLevelSimulator(network).run(
            instance, dataclasses.replace(plan, allocator="weighted")
        )
        assert fair.flow_completion == weighted.flow_completion

    def test_fair_policies_are_work_conserving(self):
        # Disjoint second flow must still get the full idle edge.
        network = topologies.triangle()
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=2.0),)),
                Coflow(flows=(Flow("y", "z", size=2.0),)),
            ]
        )
        plan = SimulationPlan(
            paths={(0, 0): ("x", "y"), (1, 0): ("y", "z")},
            order=[(0, 0), (1, 0)],
            allocator="max-min",
        )
        result = FlowLevelSimulator(network).run(instance, plan)
        assert result.makespan == pytest.approx(2.0)


class TestSchemeSelection:
    def test_schemes_propagate_the_allocator_to_their_plans(self):
        from repro.baselines import SEBFScheme

        network = topologies.leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=2)
        from repro.workloads import CoflowGenerator, WorkloadConfig

        instance = CoflowGenerator(
            network, WorkloadConfig(num_coflows=2, coflow_width=2, seed=1)
        ).instance()
        plan = SEBFScheme(allocator="max-min").plan(instance, network)
        assert plan.allocator == "max-min"
        # And the allocator is part of the scheme's cache signature.
        assert "max-min" in SEBFScheme(allocator="max-min").signature()
