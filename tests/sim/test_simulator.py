"""Tests for the flow-level event-driven simulator."""

import pytest

from repro.core import Coflow, CoflowInstance, Flow, topologies
from repro.sim import FlowLevelSimulator, SimulationPlan


@pytest.fixture
def triangle():
    return topologies.triangle()


def plan_for(instance, network, order=None, name="test"):
    paths = {
        (i, j): tuple(network.shortest_path(f.source, f.destination))
        for i, j, f in instance.iter_flows()
    }
    return SimulationPlan(paths=paths, order=order or instance.flow_ids(), name=name)


class TestSingleFlow:
    def test_completion_is_size_over_capacity(self, triangle):
        instance = CoflowInstance(coflows=[Coflow(flows=(Flow("x", "y", size=3.0),))])
        result = FlowLevelSimulator(triangle).run(instance, plan_for(instance, triangle))
        assert result.flow_completion[(0, 0)] == pytest.approx(3.0)
        assert result.makespan == pytest.approx(3.0)

    def test_release_time_delays_start(self, triangle):
        instance = CoflowInstance(
            coflows=[Coflow(flows=(Flow("x", "y", size=2.0, release_time=5.0),))]
        )
        result = FlowLevelSimulator(triangle).run(instance, plan_for(instance, triangle))
        assert result.flow_start[(0, 0)] == pytest.approx(5.0)
        assert result.flow_completion[(0, 0)] == pytest.approx(7.0)

    def test_zero_size_flow(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=0.0, release_time=2.0), Flow("y", "z", size=1.0)))
            ]
        )
        result = FlowLevelSimulator(triangle).run(instance, plan_for(instance, triangle))
        assert result.flow_completion[(0, 0)] == pytest.approx(2.0)
        assert result.flow_completion[(0, 1)] == pytest.approx(1.0)


class TestContention:
    def test_priority_order_serialises_shared_edge(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=2.0),)),
                Coflow(flows=(Flow("x", "y", size=1.0),)),
            ]
        )
        plan = plan_for(instance, triangle, order=[(1, 0), (0, 0)])
        result = FlowLevelSimulator(triangle).run(instance, plan)
        # flow (1, 0) has priority: finishes at 1; flow (0, 0) then at 3
        assert result.flow_completion[(1, 0)] == pytest.approx(1.0)
        assert result.flow_completion[(0, 0)] == pytest.approx(3.0)

    def test_reversed_priority(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=2.0),)),
                Coflow(flows=(Flow("x", "y", size=1.0),)),
            ]
        )
        plan = plan_for(instance, triangle, order=[(0, 0), (1, 0)])
        result = FlowLevelSimulator(triangle).run(instance, plan)
        assert result.flow_completion[(0, 0)] == pytest.approx(2.0)
        assert result.flow_completion[(1, 0)] == pytest.approx(3.0)

    def test_disjoint_paths_run_in_parallel(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=2.0),)),
                Coflow(flows=(Flow("y", "z", size=2.0),)),
            ]
        )
        result = FlowLevelSimulator(triangle).run(instance, plan_for(instance, triangle))
        assert result.makespan == pytest.approx(2.0)

    def test_work_conservation_after_completion(self, triangle):
        """A blocked flow picks up the freed bandwidth immediately."""
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=1.0),)),
                Coflow(flows=(Flow("x", "y", size=1.0),)),
            ]
        )
        result = FlowLevelSimulator(triangle).run(instance, plan_for(instance, triangle))
        # back-to-back, no idle gap: second finishes exactly at 2
        assert result.flow_completion[(1, 0)] == pytest.approx(2.0)

    def test_later_release_backfills(self, triangle):
        """A later-released lower-priority flow cannot delay an earlier one."""
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=4.0),)),
                Coflow(flows=(Flow("x", "y", size=1.0, release_time=1.0),)),
            ]
        )
        plan = plan_for(instance, triangle, order=[(0, 0), (1, 0)])
        result = FlowLevelSimulator(triangle).run(instance, plan)
        assert result.flow_completion[(0, 0)] == pytest.approx(4.0)
        assert result.flow_completion[(1, 0)] == pytest.approx(5.0)


class TestRealisedSchedule:
    def test_schedule_is_feasible_and_matches_completions(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=2.0), Flow("y", "z", size=1.0)), weight=2.0),
                Coflow(flows=(Flow("x", "y", size=1.0),), weight=1.0),
            ]
        )
        result = FlowLevelSimulator(triangle).run(instance, plan_for(instance, triangle))
        result.schedule.validate(instance, triangle)
        for fid, completion in result.flow_completion.items():
            flow = instance.flow(fid)
            if flow.size > 0:
                assert result.schedule.flow_completion_time(fid, size=flow.size) == pytest.approx(
                    completion, rel=1e-6
                )

    def test_breakdown_consistency(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=2.0),), weight=3.0),
                Coflow(flows=(Flow("y", "z", size=1.0),), weight=1.0),
            ]
        )
        result = FlowLevelSimulator(triangle).run(instance, plan_for(instance, triangle))
        assert result.weighted_completion_time == pytest.approx(3.0 * 2.0 + 1.0 * 1.0)
        assert result.total_completion_time == pytest.approx(3.0)
        assert result.average_completion_time == pytest.approx(1.5)


class TestPlanValidation:
    def test_missing_path_raises(self, triangle):
        instance = CoflowInstance(coflows=[Coflow(flows=(Flow("x", "y", size=1.0),))])
        plan = SimulationPlan(paths={}, order=[], name="broken")
        with pytest.raises(ValueError, match="missing paths"):
            FlowLevelSimulator(triangle).run(instance, plan)

    def test_wrong_endpoints_raise(self, triangle):
        instance = CoflowInstance(coflows=[Coflow(flows=(Flow("x", "y", size=1.0),))])
        plan = SimulationPlan(paths={(0, 0): ("y", "z")}, order=[(0, 0)], name="broken")
        with pytest.raises(ValueError, match="endpoints"):
            FlowLevelSimulator(triangle).run(instance, plan)

    def test_partial_order_is_completed(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=1.0),)),
                Coflow(flows=(Flow("y", "z", size=1.0),)),
            ]
        )
        plan = plan_for(instance, triangle, order=[(1, 0)])
        result = FlowLevelSimulator(triangle).run(instance, plan)
        assert set(result.flow_completion) == {(0, 0), (1, 0)}

    def test_priority_rank(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=1.0),)),
                Coflow(flows=(Flow("y", "z", size=1.0),)),
            ]
        )
        plan = plan_for(instance, triangle, order=[(1, 0), (0, 0)])
        assert plan.priority_rank() == {(1, 0): 0, (0, 0): 1}
