"""Tests for the flow-level event-driven simulator."""

import pytest

from repro.core import Coflow, CoflowInstance, Flow, topologies
from repro.sim import FlowLevelSimulator, RateAllocator, SimulationPlan


@pytest.fixture
def triangle():
    return topologies.triangle()


def plan_for(instance, network, order=None, name="test"):
    paths = {
        (i, j): tuple(network.shortest_path(f.source, f.destination))
        for i, j, f in instance.iter_flows()
    }
    return SimulationPlan(paths=paths, order=order or instance.flow_ids(), name=name)


class TestSingleFlow:
    def test_completion_is_size_over_capacity(self, triangle):
        instance = CoflowInstance(coflows=[Coflow(flows=(Flow("x", "y", size=3.0),))])
        result = FlowLevelSimulator(triangle).run(instance, plan_for(instance, triangle))
        assert result.flow_completion[(0, 0)] == pytest.approx(3.0)
        assert result.makespan == pytest.approx(3.0)

    def test_release_time_delays_start(self, triangle):
        instance = CoflowInstance(
            coflows=[Coflow(flows=(Flow("x", "y", size=2.0, release_time=5.0),))]
        )
        result = FlowLevelSimulator(triangle).run(instance, plan_for(instance, triangle))
        assert result.flow_start[(0, 0)] == pytest.approx(5.0)
        assert result.flow_completion[(0, 0)] == pytest.approx(7.0)

    def test_zero_size_flow(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=0.0, release_time=2.0), Flow("y", "z", size=1.0)))
            ]
        )
        result = FlowLevelSimulator(triangle).run(instance, plan_for(instance, triangle))
        assert result.flow_completion[(0, 0)] == pytest.approx(2.0)
        assert result.flow_completion[(0, 1)] == pytest.approx(1.0)


class TestContention:
    def test_priority_order_serialises_shared_edge(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=2.0),)),
                Coflow(flows=(Flow("x", "y", size=1.0),)),
            ]
        )
        plan = plan_for(instance, triangle, order=[(1, 0), (0, 0)])
        result = FlowLevelSimulator(triangle).run(instance, plan)
        # flow (1, 0) has priority: finishes at 1; flow (0, 0) then at 3
        assert result.flow_completion[(1, 0)] == pytest.approx(1.0)
        assert result.flow_completion[(0, 0)] == pytest.approx(3.0)

    def test_reversed_priority(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=2.0),)),
                Coflow(flows=(Flow("x", "y", size=1.0),)),
            ]
        )
        plan = plan_for(instance, triangle, order=[(0, 0), (1, 0)])
        result = FlowLevelSimulator(triangle).run(instance, plan)
        assert result.flow_completion[(0, 0)] == pytest.approx(2.0)
        assert result.flow_completion[(1, 0)] == pytest.approx(3.0)

    def test_disjoint_paths_run_in_parallel(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=2.0),)),
                Coflow(flows=(Flow("y", "z", size=2.0),)),
            ]
        )
        result = FlowLevelSimulator(triangle).run(instance, plan_for(instance, triangle))
        assert result.makespan == pytest.approx(2.0)

    def test_work_conservation_after_completion(self, triangle):
        """A blocked flow picks up the freed bandwidth immediately."""
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=1.0),)),
                Coflow(flows=(Flow("x", "y", size=1.0),)),
            ]
        )
        result = FlowLevelSimulator(triangle).run(instance, plan_for(instance, triangle))
        # back-to-back, no idle gap: second finishes exactly at 2
        assert result.flow_completion[(1, 0)] == pytest.approx(2.0)

    def test_later_release_backfills(self, triangle):
        """A later-released lower-priority flow cannot delay an earlier one."""
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=4.0),)),
                Coflow(flows=(Flow("x", "y", size=1.0, release_time=1.0),)),
            ]
        )
        plan = plan_for(instance, triangle, order=[(0, 0), (1, 0)])
        result = FlowLevelSimulator(triangle).run(instance, plan)
        assert result.flow_completion[(0, 0)] == pytest.approx(4.0)
        assert result.flow_completion[(1, 0)] == pytest.approx(5.0)


class TestRealisedSchedule:
    def test_schedule_is_feasible_and_matches_completions(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=2.0), Flow("y", "z", size=1.0)), weight=2.0),
                Coflow(flows=(Flow("x", "y", size=1.0),), weight=1.0),
            ]
        )
        result = FlowLevelSimulator(triangle).run(instance, plan_for(instance, triangle))
        result.schedule.validate(instance, triangle)
        for fid, completion in result.flow_completion.items():
            flow = instance.flow(fid)
            if flow.size > 0:
                assert result.schedule.flow_completion_time(fid, size=flow.size) == pytest.approx(
                    completion, rel=1e-6
                )

    def test_breakdown_consistency(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=2.0),), weight=3.0),
                Coflow(flows=(Flow("y", "z", size=1.0),), weight=1.0),
            ]
        )
        result = FlowLevelSimulator(triangle).run(instance, plan_for(instance, triangle))
        assert result.weighted_completion_time == pytest.approx(3.0 * 2.0 + 1.0 * 1.0)
        assert result.total_completion_time == pytest.approx(3.0)
        assert result.average_completion_time == pytest.approx(1.5)


class TestKernelFlowLookups:
    """Per-flow kernel lookups are O(1) and name the flow on a miss."""

    def build_kernel(self, triangle):
        from repro.sim.kernel import SimulationKernel

        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=2.0), Flow("y", "z", size=1.0))),
            ],
            name="lookup-case",
        )
        plan = plan_for(instance, triangle).normalized(instance)
        kernel = SimulationKernel(triangle, instance, plan)
        kernel.run()
        return kernel

    def test_position_maps_every_flow(self, triangle):
        kernel = self.build_kernel(triangle)
        for k, fid in enumerate(kernel.fids):
            assert kernel.position(fid) == k

    def test_unknown_flow_raises_keyerror_naming_it(self, triangle):
        kernel = self.build_kernel(triangle)
        with pytest.raises(KeyError, match=r"unknown flow \(7, 7\).*lookup-case"):
            kernel.position((7, 7))
        with pytest.raises(KeyError, match=r"unknown flow \(7, 7\)"):
            kernel.raw_segments((7, 7))

    def test_raw_segments_returns_coalesced_tuples(self, triangle):
        kernel = self.build_kernel(triangle)
        segments = kernel.raw_segments((0, 0))
        assert segments and all(len(seg) == 3 for seg in segments)
        assert all(isinstance(seg, tuple) for seg in segments)


class TestPlanValidation:
    def test_missing_path_raises(self, triangle):
        instance = CoflowInstance(coflows=[Coflow(flows=(Flow("x", "y", size=1.0),))])
        plan = SimulationPlan(paths={}, order=[], name="broken")
        with pytest.raises(ValueError, match="missing paths"):
            FlowLevelSimulator(triangle).run(instance, plan)

    def test_wrong_endpoints_raise(self, triangle):
        instance = CoflowInstance(coflows=[Coflow(flows=(Flow("x", "y", size=1.0),))])
        plan = SimulationPlan(paths={(0, 0): ("y", "z")}, order=[(0, 0)], name="broken")
        with pytest.raises(ValueError, match="endpoints"):
            FlowLevelSimulator(triangle).run(instance, plan)

    def test_partial_order_is_completed(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=1.0),)),
                Coflow(flows=(Flow("y", "z", size=1.0),)),
            ]
        )
        plan = plan_for(instance, triangle, order=[(1, 0)])
        result = FlowLevelSimulator(triangle).run(instance, plan)
        assert set(result.flow_completion) == {(0, 0), (1, 0)}

    def test_priority_rank(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=1.0),)),
                Coflow(flows=(Flow("y", "z", size=1.0),)),
            ]
        )
        plan = plan_for(instance, triangle, order=[(1, 0), (0, 0)])
        assert plan.priority_rank() == {(1, 0): 0, (0, 0): 1}


RUN_PATHS = ["run", "run_reference"]


class _StarvingAllocator(RateAllocator):
    """Deliberately broken policy: grants nothing, ever (stall trigger)."""

    name = "starving"

    def allocate(self, residual, flows):
        return {key: 0.0 for key, _edges, _weight in flows}


class TestActionableErrors:
    """Satellite bugfix: stall / event-cap errors name the stuck flows."""

    @pytest.mark.parametrize("path", RUN_PATHS)
    def test_event_cap_error_names_flows_and_saturated_edges(self, triangle, path):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=1.0),)),
                Coflow(flows=(Flow("x", "y", size=1.0),)),
            ]
        )
        plan = plan_for(instance, triangle)
        simulate = getattr(FlowLevelSimulator(triangle), path)
        with pytest.raises(RuntimeError) as excinfo:
            simulate(instance, plan, max_events=1)
        message = str(excinfo.value)
        assert "event cap (1)" in message
        assert "(1, 0)" in message  # the flow still unfinished
        assert "release=0" in message
        assert "remaining=1" in message
        assert "saturated edges" in message and "'x', 'y'" in message

    @pytest.mark.parametrize("path", RUN_PATHS)
    def test_stall_error_names_the_unfinished_flows(self, triangle, path):
        instance = CoflowInstance(
            coflows=[Coflow(flows=(Flow("x", "y", size=2.0),))]
        )
        plan = plan_for(instance, triangle)
        simulate = getattr(FlowLevelSimulator(triangle), path)
        with pytest.raises(RuntimeError) as excinfo:
            simulate(instance, plan, allocator=_StarvingAllocator())
        message = str(excinfo.value)
        assert "stalled" in message
        assert "(0, 0)" in message
        assert "release=0" in message and "remaining=2" in message


class TestStartRequiresRealVolume:
    """Satellite bugfix: a vanishing transfer inside an epsilon-sized step
    must not count as the flow's start."""

    @pytest.mark.parametrize("path", RUN_PATHS)
    def test_epsilon_step_does_not_record_a_start(self, triangle, path):
        # L is released at t=1.0; the higher-priority H follows 1.5e-12
        # later, forcing an epsilon-sized step in which L moves ~1.5e-12
        # volume before being preempted until t~2.  L's recorded start must
        # be its real start (~2.0), not the vanishing dribble at 1.0.
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=1.0, release_time=1.0 + 1.5e-12),)),
                Coflow(flows=(Flow("x", "y", size=1.0, release_time=1.0),)),
            ]
        )
        plan = plan_for(instance, triangle, order=[(0, 0), (1, 0)])
        result = getattr(FlowLevelSimulator(triangle), path)(instance, plan)
        assert result.flow_start[(0, 0)] == pytest.approx(1.0, abs=1e-6)
        # Regression: this used to report ~1.0 (the dribble step).
        assert result.flow_start[(1, 0)] == pytest.approx(2.0, abs=1e-6)
        assert result.flow_completion[(1, 0)] == pytest.approx(3.0, abs=1e-6)

    @pytest.mark.parametrize("path", RUN_PATHS)
    def test_normal_start_times_are_unchanged(self, triangle, path):
        instance = CoflowInstance(
            coflows=[Coflow(flows=(Flow("x", "y", size=2.0, release_time=1.0),))]
        )
        plan = plan_for(instance, triangle)
        result = getattr(FlowLevelSimulator(triangle), path)(instance, plan)
        assert result.flow_start[(0, 0)] == pytest.approx(1.0)


class TestSlowdownMetrics:
    def test_slowdowns_on_an_uncontended_instance_are_one(self, triangle):
        instance = CoflowInstance(
            coflows=[Coflow(flows=(Flow("x", "y", size=3.0),))]
        )
        result = FlowLevelSimulator(triangle).run(instance, plan_for(instance, triangle))
        assert result.coflow_slowdowns == {0: pytest.approx(1.0)}
        assert result.mean_slowdown == pytest.approx(1.0)
        assert result.max_slowdown == pytest.approx(1.0)
        assert result.metrics()["mean_slowdown"] == pytest.approx(1.0)

    def test_contention_doubles_the_trailing_coflow_slowdown(self, triangle):
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=1.0),)),
                Coflow(flows=(Flow("x", "y", size=1.0),)),
            ]
        )
        result = FlowLevelSimulator(triangle).run(instance, plan_for(instance, triangle))
        assert result.coflow_slowdowns[0] == pytest.approx(1.0)
        assert result.coflow_slowdowns[1] == pytest.approx(2.0)
        assert result.max_slowdown == pytest.approx(2.0)
        assert result.metrics()["max_slowdown"] == pytest.approx(2.0)
