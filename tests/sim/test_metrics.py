"""Tests for cross-scheme comparison metrics."""

import math

import pytest

from repro.core import Coflow, CoflowInstance, Flow, topologies
from repro.sim import (
    FlowLevelSimulator,
    SchemeComparison,
    SimulationPlan,
    improvement_percent,
)


def test_improvement_percent():
    assert improvement_percent(reference=200.0, value=100.0) == pytest.approx(100.0)
    assert improvement_percent(reference=122.0, value=100.0) == pytest.approx(22.0)
    assert improvement_percent(reference=100.0, value=100.0) == pytest.approx(0.0)
    with pytest.raises(ValueError):
        improvement_percent(100.0, 0.0)


@pytest.fixture
def comparison():
    net = topologies.triangle()
    instance = CoflowInstance(
        coflows=[
            Coflow(flows=(Flow("x", "y", size=2.0),), weight=1.0),
            Coflow(flows=(Flow("x", "y", size=1.0),), weight=1.0),
        ]
    )
    paths = {(0, 0): ("x", "y"), (1, 0): ("x", "y")}
    sim = FlowLevelSimulator(net)
    cmp = SchemeComparison()
    cmp.add(sim.run(instance, SimulationPlan(paths=paths, order=[(0, 0), (1, 0)], name="big-first")))
    cmp.add(sim.run(instance, SimulationPlan(paths=paths, order=[(1, 0), (0, 0)], name="small-first")))
    return cmp


def test_values_and_schemes(comparison):
    assert set(comparison.schemes()) == {"big-first", "small-first"}
    # big first: 2 + 3 = 5; small first: 1 + 3 = 4
    assert comparison.value("big-first") == pytest.approx(5.0)
    assert comparison.value("small-first") == pytest.approx(4.0)


def test_ratios(comparison):
    ratios = comparison.ratios_to("big-first")
    assert ratios["big-first"] == pytest.approx(1.0)
    assert ratios["small-first"] == pytest.approx(0.8)


def test_improvement_over(comparison):
    assert comparison.improvement_over("small-first", "big-first") == pytest.approx(25.0)


def test_missing_scheme_raises(comparison):
    with pytest.raises(KeyError):
        comparison.value("nonexistent")


def test_ratios_to_zero_reference_is_nan(comparison):
    # A reference scheme whose metric is zero must not raise
    # ZeroDivisionError; every ratio becomes NaN (mirroring the guard in
    # SweepPoint.ratio_to).
    net = topologies.triangle()
    sim = FlowLevelSimulator(net)
    instance = CoflowInstance(
        coflows=[Coflow(flows=(Flow("x", "y", size=0.0),), weight=1.0)]
    )
    plan = SimulationPlan(paths={(0, 0): ("x", "y")}, order=[(0, 0)], name="empty")
    cmp = SchemeComparison()
    cmp.add(sim.run(instance, plan))
    assert cmp.value("empty") == 0.0
    ratios = cmp.ratios_to("empty")
    assert math.isnan(ratios["empty"])


def test_ratios_to_zero_reference_all_schemes_nan(comparison):
    # Force a zero value onto a recorded result to check every scheme's
    # ratio degrades to NaN, not just the reference's own entry.
    comparison.results["big-first"].breakdown = type(
        comparison.results["big-first"].breakdown
    )(
        weighted_completion_time=0.0,
        total_completion_time=0.0,
        average_completion_time=0.0,
        makespan=0.0,
        per_coflow={},
    )
    ratios = comparison.ratios_to("big-first")
    assert set(ratios) == {"big-first", "small-first"}
    assert all(math.isnan(r) for r in ratios.values())
