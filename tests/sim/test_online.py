"""Behavioural tests of the online re-planning engine."""

import math

import pytest

from repro.baselines import BaselineScheme, OnlineScheme, SEBFScheme
from repro.core import Coflow, CoflowInstance, Flow, topologies
from repro.core.network import Network
from repro.sim import (
    FlowLevelSimulator,
    OnlineFlowSimulator,
    SimulationPlan,
)
from repro.workloads import CoflowGenerator, WorkloadConfig


def two_coflow_contention():
    """Coflow A (size 10, t=0) and coflow B (size 1, arriving at t=4) share
    the unit-capacity edge x->y of the triangle."""
    network = topologies.triangle()
    instance = CoflowInstance(
        coflows=[
            Coflow(flows=(Flow("x", "y", size=10.0),)),
            Coflow(flows=(Flow("x", "y", size=1.0, release_time=4.0),)),
        ]
    )
    paths = {(0, 0): ("x", "y"), (1, 0): ("x", "y")}
    return network, instance, paths


class SRPTReplanner:
    """Order unfinished flows by remaining volume (smallest first)."""

    def __init__(self):
        self.contexts = []

    def __call__(self, context):
        self.contexts.append(context)
        order = sorted(
            context.instance.flow_ids(),
            key=lambda fid: (context.instance.flow(fid).size, fid),
        )
        paths = {
            fid: ("x", "y") for fid in context.instance.flow_ids()
        }
        return SimulationPlan(paths=paths, order=order, name="srpt")


class TestReplanningChangesTheSchedule:
    def test_replan_preempts_the_elephant(self):
        network, instance, paths = two_coflow_contention()
        static_plan = SimulationPlan(paths=paths, order=[(0, 0), (1, 0)], name="static")
        static = FlowLevelSimulator(network).run(instance, static_plan)
        assert static.flow_completion[(0, 0)] == pytest.approx(10.0)
        assert static.flow_completion[(1, 0)] == pytest.approx(11.0)

        replanner = SRPTReplanner()
        online = OnlineFlowSimulator(network, replanner).run(instance)
        # At t=4 the mouse (remaining 1) preempts the elephant (remaining 6).
        assert online.flow_completion[(1, 0)] == pytest.approx(5.0)
        assert online.flow_completion[(0, 0)] == pytest.approx(11.0)
        online.schedule.validate(instance, network)

    def test_replanner_sees_remaining_volumes(self):
        network, instance, paths = two_coflow_contention()
        replanner = SRPTReplanner()
        OnlineFlowSimulator(network, replanner).run(instance)
        assert len(replanner.contexts) == 2
        first, second = replanner.contexts
        assert first.now == pytest.approx(0.0)
        assert first.instance.num_flows == 1
        assert second.now == pytest.approx(4.0)
        # The elephant has moved 4 units by the second arrival.
        sizes = sorted(
            second.instance.flow(fid).size for fid in second.instance.flow_ids()
        )
        assert sizes == pytest.approx([1.0, 6.0])
        # The elephant is mid-transfer, so its path is pinned.
        assert second.pinned_paths == {(0, 0): ("x", "y")}

    def test_flows_that_moved_volume_keep_their_path(self):
        # Diamond: two disjoint 2-hop routes from s to t.
        network = Network()
        for u, v in [("s", "a"), ("a", "t"), ("s", "b"), ("b", "t")]:
            network.add_edge(u, v, capacity=1.0)
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("s", "t", size=4.0),)),
                Coflow(flows=(Flow("s", "t", size=1.0, release_time=1.0),)),
            ]
        )

        def reroute_everything(context):
            # Tries to push every flow onto the b-route at every arrival.
            fids = context.instance.flow_ids()
            return SimulationPlan(
                paths={fid: ("s", "b", "t") for fid in fids},
                order=list(fids),
                name="reroute",
            )

        result = OnlineFlowSimulator(network, reroute_everything).run(instance)
        # Flow (0,0) transferred volume on s->b->t during epoch 0 (the first
        # plan routed it there), so later re-plans cannot move it; it simply
        # keeps its route and finishes undisturbed.
        assert result.schedule.path((0, 0)) == ("s", "b", "t")
        result.schedule.validate(instance, network)

    def test_zero_size_flows_complete_at_release(self):
        network = topologies.triangle()
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=0.0, release_time=2.0), Flow("x", "y", size=1.0),)),
            ]
        )
        replanner = SRPTReplanner()
        result = OnlineFlowSimulator(network, replanner).run(instance)
        assert result.flow_completion[(0, 0)] == pytest.approx(2.0)
        assert result.flow_completion[(0, 1)] == pytest.approx(1.0)


class TestOnlineScheme:
    def test_online_scheme_runs_end_to_end_and_is_deterministic(self):
        network = topologies.leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=4)
        config = WorkloadConfig(
            num_coflows=4,
            coflow_width=3,
            mean_flow_size=4.0,
            release_rate=2.0,
            coflow_arrival_rate=0.3,
            seed=17,
        )
        instance = CoflowGenerator(network, config).instance()
        scheme = OnlineScheme(SEBFScheme())
        first = scheme.simulate(instance, network)
        second = scheme.simulate(instance, network)
        assert first.plan_name == "Online-SEBF"
        assert first.flow_completion == second.flow_completion
        assert set(first.flow_completion) == set(instance.flow_ids())
        first.schedule.validate(instance, network)
        for fid, completion in first.flow_completion.items():
            assert completion >= instance.flow(fid).release_time - 1e-9
        assert first.mean_slowdown >= 0.0

    def test_signature_includes_the_inner_stages(self):
        scheme = OnlineScheme(BaselineScheme(seed=3))
        assert scheme.name == "Online-Baseline"
        assert scheme.online is True
        assert "router=random" in scheme.signature()
        assert "seed=3" in scheme.signature()
        assert "online=true" in scheme.signature()
        assert scheme.signature() == OnlineScheme(BaselineScheme(seed=3)).signature()
        assert scheme.signature() != OnlineScheme(BaselineScheme(seed=4)).signature()
        # The online flag distinguishes the signature from the static scheme.
        assert scheme.signature() != BaselineScheme(seed=3).signature()

    def test_plan_returns_the_epoch_zero_decision(self):
        network = topologies.leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=2)
        config = WorkloadConfig(num_coflows=2, coflow_width=2, seed=3)
        instance = CoflowGenerator(network, config).instance()
        scheme = OnlineScheme(SEBFScheme())
        plan = scheme.plan(instance, network)
        assert plan.name == "Online-SEBF"
        # The epoch-zero decision matches the static composition's plan.
        static = SEBFScheme().plan(instance, network)
        assert plan.paths == static.paths
        assert plan.order == static.order
        plan.normalized(instance).validate(instance, network)
