"""Every kernel tier is numerically identical to the reference event loop.

``FlowLevelSimulator.run`` (the array kernel and, where a C toolchain
exists, the compiled jit kernel) and ``run_reference`` (the original
dict-based loop, kept as the executable specification) must agree
*exactly* — same arithmetic on the same values in the same order — across
random topologies x workload families x every rate allocator.  These
property tests replay seeded scenarios through all paths (a 3-way check
when the jit tier is available) and compare completion times bit-for-bit,
plus the realised schedule volumes (where segment coalescing legitimately
reorders float additions, so a tight tolerance applies).

The online engine's anchor property rides along: online simulation under a
scheduler that never changes the plan (``StaticPlanReplanner``) reproduces
the static simulation up to splice-point rounding — on every backend, since
the jit tier implements the same pause-at-deadline splice semantics.
"""

import dataclasses
import math

import pytest

from repro.baselines import BaselineScheme, RouteOnlyScheme, ScheduleOnlyScheme, SEBFScheme
from repro.core import topologies
from repro.sim import (
    ALLOCATORS,
    FlowLevelSimulator,
    OnlineFlowSimulator,
    StaticPlanReplanner,
    kernel_jit,
)
from repro.workloads import CoflowGenerator, WorkloadConfig

#: The kernel tiers under test; the jit tier drops out (skip, not fail) on
#: machines without a C toolchain.
BACKENDS_UNDER_TEST = [
    "array",
    pytest.param(
        "jit",
        marks=pytest.mark.skipif(
            not kernel_jit.available(), reason="compiled kernel tier unavailable"
        ),
    ),
]

#: (topology seed, size family, endpoint family, scheme) grid: every case is
#: deterministic, so a failure reproduces from its parameter id alone.
CASES = [
    pytest.param(seed, fdist, edist, scheme, id=f"seed{seed}-{fdist}-{edist}-{key}")
    for seed, (fdist, edist, scheme, key) in enumerate(
        [
            ("poisson", "uniform", BaselineScheme(seed=0), "baseline"),
            ("poisson", "incast", ScheduleOnlyScheme(seed=1), "schedule-only"),
            ("pareto", "uniform", RouteOnlyScheme(), "route-only"),
            ("pareto", "skewed", SEBFScheme(), "sebf"),
            ("facebook", "uniform", BaselineScheme(seed=2), "baseline"),
            ("facebook", "incast", SEBFScheme(), "sebf"),
        ]
    )
]


def build_case(seed, flow_sizes, endpoints, scheme):
    network = topologies.random_graph(
        6, edge_probability=0.35, capacity_range=(1.0, 3.0), seed=seed
    )
    config = WorkloadConfig(
        num_coflows=3,
        coflow_width=4,
        mean_flow_size=3.0,
        release_rate=2.0,
        coflow_arrival_rate=0.5 if seed % 2 else None,
        seed=700 + seed,
        flow_size_distribution=flow_sizes,
        endpoint_distribution=endpoints,
    )
    instance = CoflowGenerator(network, config).instance()
    plan = scheme.plan(instance, network)
    return network, instance, plan


def assert_identical(kernel, reference):
    """Kernel and reference results agree exactly (volumes: tight approx)."""
    assert kernel.events == reference.events
    assert set(kernel.flow_completion) == set(reference.flow_completion)
    for fid, completion in reference.flow_completion.items():
        assert kernel.flow_completion[fid] == completion, fid
    assert set(kernel.flow_start) == set(reference.flow_start)
    for fid, start in reference.flow_start.items():
        assert kernel.flow_start[fid] == start, fid
    for fid in reference.flow_completion:
        assert kernel.schedule.delivered_volume(fid) == pytest.approx(
            reference.schedule.delivered_volume(fid), rel=1e-9, abs=1e-9
        ), fid
    assert kernel.coflow_slowdowns == pytest.approx(reference.coflow_slowdowns)


@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("seed,flow_sizes,endpoints,scheme", CASES)
@pytest.mark.parametrize("allocator", sorted(ALLOCATORS))
def test_kernel_matches_reference(seed, flow_sizes, endpoints, scheme, allocator, backend):
    network, instance, plan = build_case(seed, flow_sizes, endpoints, scheme)
    plan = dataclasses.replace(plan, allocator=allocator)
    simulator = FlowLevelSimulator(network)
    kernel = simulator.run(instance, plan, backend=backend)
    reference = simulator.run_reference(instance, plan)
    assert_identical(kernel, reference)
    kernel.schedule.validate(instance, network)


@pytest.mark.parametrize("seed,flow_sizes,endpoints,scheme", CASES)
def test_jit_segments_are_bit_identical_to_array(seed, flow_sizes, endpoints, scheme):
    """Beyond completion times: the realised segments agree bit-for-bit."""
    if not kernel_jit.available():
        pytest.skip("compiled kernel tier unavailable")
    network, instance, plan = build_case(seed, flow_sizes, endpoints, scheme)
    simulator = FlowLevelSimulator(network)
    array = simulator.run(instance, plan, backend="array")
    jit = simulator.run(instance, plan, backend="jit")
    assert array.flow_completion == jit.flow_completion
    assert array.flow_start == jit.flow_start
    assert array.events == jit.events
    for fid in instance.flow_ids():
        assert array.schedule.segments(fid) == jit.schedule.segments(fid), fid


@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("seed,flow_sizes,endpoints,scheme", CASES)
def test_online_with_frozen_plan_equals_static(seed, flow_sizes, endpoints, scheme, backend):
    network, instance, plan = build_case(seed, flow_sizes, endpoints, scheme)
    static = FlowLevelSimulator(network).run(instance, plan)
    online = OnlineFlowSimulator(
        network, StaticPlanReplanner(plan), backend=backend
    ).run(instance)
    assert set(online.flow_completion) == set(static.flow_completion)
    for fid, completion in static.flow_completion.items():
        assert online.flow_completion[fid] == pytest.approx(
            completion, rel=1e-9, abs=1e-9
        ), fid
    online.schedule.validate(instance, network)
    assert online.weighted_completion_time == pytest.approx(
        static.weighted_completion_time, rel=1e-9
    )


def test_kernel_on_leaf_spine_benchmark_shape():
    """Exact agreement on the benchmark-style instance (staggered arrivals)."""
    network = topologies.leaf_spine(num_leaves=3, num_spines=2, hosts_per_leaf=4)
    config = WorkloadConfig(
        num_coflows=5,
        coflow_width=8,
        mean_flow_size=5.0,
        release_rate=1.0,
        coflow_arrival_rate=0.2,
        seed=31,
    )
    instance = CoflowGenerator(network, config).instance()
    plan = SEBFScheme().plan(instance, network)
    simulator = FlowLevelSimulator(network)
    assert_identical(simulator.run(instance, plan), simulator.run_reference(instance, plan))


def _pause_resume_case():
    network = topologies.leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=2)
    config = WorkloadConfig(
        num_coflows=3, coflow_width=3, mean_flow_size=2.0, release_rate=1.0, seed=5
    )
    instance = CoflowGenerator(network, config).instance()
    plan = BaselineScheme(seed=0).plan(instance, network).normalized(instance)
    return network, instance, plan


@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
def test_pause_and_resume_matches_uninterrupted_run(backend):
    """run(until=...) splicing reproduces an uninterrupted run of the kernel."""
    from repro.sim import make_kernel
    from repro.sim.kernel import SimulationKernel

    network, instance, plan = _pause_resume_case()
    whole = SimulationKernel(network, instance, plan)
    whole.run()
    paused = make_kernel(network, instance, plan, backend=backend)
    for deadline in (0.5, 1.0, 1.7, 2.5):
        paused.run(until=deadline)
    paused.run()
    assert paused.flow_completion_map() == pytest.approx(whole.flow_completion_map())
    assert whole.finished and paused.finished


def test_mixed_backend_splicing_is_identical():
    """Alternating event loops across pauses on one kernel's state produces
    the exact uninterrupted result: the compiled core reads and writes the
    same canonical state as the Python loop."""
    if not kernel_jit.available():
        pytest.skip("compiled kernel tier unavailable")
    from repro.sim import JitSimulationKernel
    from repro.sim.kernel import SimulationKernel

    network, instance, plan = _pause_resume_case()
    whole = SimulationKernel(network, instance, plan)
    whole.run()
    mixed = JitSimulationKernel(network, instance, plan)
    mixed.run(until=0.5)                         # compiled loop
    SimulationKernel.run(mixed, until=1.0)       # Python loop, same state
    mixed.run(until=1.7)                         # compiled again
    mixed.run()
    assert mixed.flow_completion_map() == whole.flow_completion_map()
    for fid in instance.flow_ids():
        assert mixed.raw_segments(fid) == whole.raw_segments(fid), fid
