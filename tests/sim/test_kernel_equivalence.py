"""The array kernel is numerically identical to the reference event loop.

``FlowLevelSimulator.run`` (the array kernel) and ``run_reference`` (the
original dict-based loop, kept as the executable specification) must agree
*exactly* — same arithmetic on the same values in the same order — across
random topologies x workload families x every rate allocator.  These
property tests replay seeded scenarios through both paths and compare
completion times bit-for-bit, plus the realised schedule volumes (where
segment coalescing legitimately reorders float additions, so a tight
tolerance applies).

The online engine's anchor property rides along: online simulation under a
scheduler that never changes the plan (``StaticPlanReplanner``) reproduces
the static simulation up to splice-point rounding.
"""

import dataclasses
import math

import pytest

from repro.baselines import BaselineScheme, RouteOnlyScheme, ScheduleOnlyScheme, SEBFScheme
from repro.core import topologies
from repro.sim import (
    ALLOCATORS,
    FlowLevelSimulator,
    OnlineFlowSimulator,
    StaticPlanReplanner,
)
from repro.workloads import CoflowGenerator, WorkloadConfig

#: (topology seed, size family, endpoint family, scheme) grid: every case is
#: deterministic, so a failure reproduces from its parameter id alone.
CASES = [
    pytest.param(seed, fdist, edist, scheme, id=f"seed{seed}-{fdist}-{edist}-{key}")
    for seed, (fdist, edist, scheme, key) in enumerate(
        [
            ("poisson", "uniform", BaselineScheme(seed=0), "baseline"),
            ("poisson", "incast", ScheduleOnlyScheme(seed=1), "schedule-only"),
            ("pareto", "uniform", RouteOnlyScheme(), "route-only"),
            ("pareto", "skewed", SEBFScheme(), "sebf"),
            ("facebook", "uniform", BaselineScheme(seed=2), "baseline"),
            ("facebook", "incast", SEBFScheme(), "sebf"),
        ]
    )
]


def build_case(seed, flow_sizes, endpoints, scheme):
    network = topologies.random_graph(
        6, edge_probability=0.35, capacity_range=(1.0, 3.0), seed=seed
    )
    config = WorkloadConfig(
        num_coflows=3,
        coflow_width=4,
        mean_flow_size=3.0,
        release_rate=2.0,
        coflow_arrival_rate=0.5 if seed % 2 else None,
        seed=700 + seed,
        flow_size_distribution=flow_sizes,
        endpoint_distribution=endpoints,
    )
    instance = CoflowGenerator(network, config).instance()
    plan = scheme.plan(instance, network)
    return network, instance, plan


def assert_identical(kernel, reference):
    """Kernel and reference results agree exactly (volumes: tight approx)."""
    assert kernel.events == reference.events
    assert set(kernel.flow_completion) == set(reference.flow_completion)
    for fid, completion in reference.flow_completion.items():
        assert kernel.flow_completion[fid] == completion, fid
    assert set(kernel.flow_start) == set(reference.flow_start)
    for fid, start in reference.flow_start.items():
        assert kernel.flow_start[fid] == start, fid
    for fid in reference.flow_completion:
        assert kernel.schedule.delivered_volume(fid) == pytest.approx(
            reference.schedule.delivered_volume(fid), rel=1e-9, abs=1e-9
        ), fid
    assert kernel.coflow_slowdowns == pytest.approx(reference.coflow_slowdowns)


@pytest.mark.parametrize("seed,flow_sizes,endpoints,scheme", CASES)
@pytest.mark.parametrize("allocator", sorted(ALLOCATORS))
def test_kernel_matches_reference(seed, flow_sizes, endpoints, scheme, allocator):
    network, instance, plan = build_case(seed, flow_sizes, endpoints, scheme)
    plan = dataclasses.replace(plan, allocator=allocator)
    simulator = FlowLevelSimulator(network)
    kernel = simulator.run(instance, plan)
    reference = simulator.run_reference(instance, plan)
    assert_identical(kernel, reference)
    kernel.schedule.validate(instance, network)


@pytest.mark.parametrize("seed,flow_sizes,endpoints,scheme", CASES)
def test_online_with_frozen_plan_equals_static(seed, flow_sizes, endpoints, scheme):
    network, instance, plan = build_case(seed, flow_sizes, endpoints, scheme)
    static = FlowLevelSimulator(network).run(instance, plan)
    online = OnlineFlowSimulator(network, StaticPlanReplanner(plan)).run(instance)
    assert set(online.flow_completion) == set(static.flow_completion)
    for fid, completion in static.flow_completion.items():
        assert online.flow_completion[fid] == pytest.approx(
            completion, rel=1e-9, abs=1e-9
        ), fid
    online.schedule.validate(instance, network)
    assert online.weighted_completion_time == pytest.approx(
        static.weighted_completion_time, rel=1e-9
    )


def test_kernel_on_leaf_spine_benchmark_shape():
    """Exact agreement on the benchmark-style instance (staggered arrivals)."""
    network = topologies.leaf_spine(num_leaves=3, num_spines=2, hosts_per_leaf=4)
    config = WorkloadConfig(
        num_coflows=5,
        coflow_width=8,
        mean_flow_size=5.0,
        release_rate=1.0,
        coflow_arrival_rate=0.2,
        seed=31,
    )
    instance = CoflowGenerator(network, config).instance()
    plan = SEBFScheme().plan(instance, network)
    simulator = FlowLevelSimulator(network)
    assert_identical(simulator.run(instance, plan), simulator.run_reference(instance, plan))


def test_pause_and_resume_matches_uninterrupted_run():
    """run(until=...) splicing reproduces an uninterrupted run of the kernel."""
    from repro.sim.kernel import SimulationKernel

    network = topologies.leaf_spine(num_leaves=2, num_spines=2, hosts_per_leaf=2)
    config = WorkloadConfig(
        num_coflows=3, coflow_width=3, mean_flow_size=2.0, release_rate=1.0, seed=5
    )
    instance = CoflowGenerator(network, config).instance()
    plan = BaselineScheme(seed=0).plan(instance, network).normalized(instance)

    whole = SimulationKernel(network, instance, plan)
    whole.run()
    paused = SimulationKernel(network, instance, plan)
    for deadline in (0.5, 1.0, 1.7, 2.5):
        paused.run(until=deadline)
    paused.run()
    assert paused.flow_completion_map() == pytest.approx(whole.flow_completion_map())
    assert whole.finished and paused.finished
