"""Property harness for the streaming scheduler service (ISSUE 8/9).

Five pillars:

* **batch=1 == online** — a batch-size-1 :class:`StreamingScheduler`
  session reproduces :class:`OnlineFlowSimulator` bit-identically across a
  seeded topology × workload-family × allocator matrix (the online engine
  is the streaming service's special case, and must stay that way);
* **warm == cold** — :class:`WarmLPReplanner`'s warm-started LP decisions
  match :class:`ColdLPReplanner`'s rebuild-from-scratch decisions exactly
  (``==``, no tolerance), including after coflow departures pruned the LP;
* **staleness bound** — under any :class:`BatchPolicy`, no coflow waits
  longer than the policy's declared bound between arriving and being
  planned, and the realised re-plan times equal
  ``BatchPolicy.replan_times`` of the distinct release times;
* **pause/resume splice** — feeding the same stream through interleaved
  ``submit``/``advance`` calls yields the identical epoch structure and
  result as a one-shot ``run``, with the fid-map memoization (replan count
  and map identity) stable across the splice;
* **resident == rebuild** — a session holding one resident kernel across
  every re-plan (``resident=True`` / ``REPRO_SIM_RESIDENT``) reproduces
  the rebuild-per-epoch reference bit-identically (``==``, no tolerance)
  on both kernel tiers, including under departures (free-list recycling),
  buffer growth past the initial capacities, zero-size ghosts and
  pause/resume splices.
"""

import gc

import pytest

from repro.baselines import SEBFScheme
from repro.core import Coflow, CoflowInstance, Flow, topologies
from repro.sim import (
    BatchPolicy,
    ColdLPReplanner,
    OnlineFlowSimulator,
    ResidentJitKernel,
    ResidentSimulationKernel,
    SimulationPlan,
    StaticPlanReplanner,
    StreamingError,
    StreamingScheduler,
    WarmLPReplanner,
    kernel_jit,
    paused_gc,
)
from repro.workloads import CoflowGenerator, WorkloadConfig

needs_jit = pytest.mark.skipif(
    not kernel_jit.available(), reason="compiled kernel tier unavailable"
)


def assert_results_identical(a, b):
    """Bit-exact equality of everything a simulation result asserts."""
    assert a.flow_completion == b.flow_completion
    assert a.flow_start == b.flow_start
    assert a.events == b.events
    assert a.coflow_slowdowns == b.coflow_slowdowns


TOPOLOGIES = {
    "leaf-spine": lambda: topologies.leaf_spine(
        num_leaves=2, num_spines=2, hosts_per_leaf=2
    ),
    "fat-tree": lambda: topologies.fat_tree(4),
}
WORKLOADS = {
    "poisson": {},
    "pareto": {"flow_size_distribution": "pareto"},
}


def seeded_case(topology_key, workload_key, seed=11):
    network = TOPOLOGIES[topology_key]()
    config = WorkloadConfig(
        num_coflows=4,
        coflow_width=3,
        mean_flow_size=4.0,
        coflow_arrival_rate=0.4,
        seed=seed,
        **WORKLOADS[workload_key],
    )
    instance = CoflowGenerator(network, config).instance()
    return network, instance


def staircase_stream():
    """Deterministic stream on the triangle: unit flows arriving far enough
    apart that earlier coflows *depart* before later ones arrive."""
    network = topologies.triangle()
    coflows = [
        Coflow(flows=(Flow("x", "y", size=1.0),), name="c0"),
        Coflow(flows=(Flow("x", "y", size=1.0, release_time=3.0),), name="c1"),
        Coflow(
            flows=(
                Flow("y", "z", size=1.0, release_time=6.0),
                Flow("x", "y", size=2.0, release_time=6.0),
            ),
            name="c2",
        ),
        Coflow(flows=(Flow("z", "x", size=1.0, release_time=9.0),), name="c3"),
    ]
    return network, CoflowInstance(coflows=coflows, name="staircase")


# ------------------------------------------------- batch=1 == online engine

class TestBatchOneEqualsOnline:
    @pytest.mark.parametrize("topology_key", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("workload_key", sorted(WORKLOADS))
    @pytest.mark.parametrize("allocator", ["greedy", "max-min"])
    def test_bit_identical_across_matrix(
        self, topology_key, workload_key, allocator
    ):
        network, instance = seeded_case(topology_key, workload_key)
        base = SEBFScheme().plan(instance, network)
        plan = SimulationPlan(
            paths=base.paths, order=base.order, name="sebf", allocator=allocator
        )
        online = OnlineFlowSimulator(network, StaticPlanReplanner(plan)).run(
            instance
        )
        session = StreamingScheduler(
            network, StaticPlanReplanner(plan), policy=BatchPolicy(max_batch=1)
        )
        streamed = session.run(instance)
        assert_results_identical(streamed, online)
        # batch=1 re-plans exactly once per distinct release time.
        releases = sorted({c.release_time for c in instance.coflows})
        assert [e["now"] for e in session.decision_log] == releases
        assert session.staleness_report() == {
            "max_staleness": 0.0,
            "mean_staleness": 0.0,
            "bound": 0.0,
            "within_bound": 1.0,
        }


# ------------------------------------------------------------ warm == cold

class TestWarmEqualsCold:
    def _horizon(self, instance, network):
        from repro.circuit.given_paths import _default_horizon

        routed = instance.with_paths(
            {
                fid: network.shortest_path(
                    instance.flow(fid).source, instance.flow(fid).destination
                )
                for fid in instance.flow_ids()
            }
        )
        return _default_horizon(routed, network)

    @pytest.mark.parametrize(
        "policy",
        [BatchPolicy(max_batch=1), BatchPolicy(max_batch=2, max_delay=4.0)],
        ids=["per-arrival", "batched"],
    )
    def test_exact_equality_with_departures(self, policy):
        network, instance = staircase_stream()
        horizon = self._horizon(instance, network)
        warm_session = StreamingScheduler(
            network, WarmLPReplanner(network, horizon), policy=policy
        )
        cold_session = StreamingScheduler(
            network, ColdLPReplanner(network, horizon), policy=policy
        )
        warm = warm_session.run(instance)
        cold = cold_session.run(instance)
        assert_results_identical(warm, cold)
        # The stream really exercises departures: some re-plan sees fewer
        # active coflows than have been admitted by then.
        admitted = 0
        pruned = False
        for entry in warm_session.decision_log:
            admitted += entry["admitted"]
            if entry["active_coflows"] < admitted:
                pruned = True
        assert pruned, "no coflow departed mid-stream; the case is too easy"

    @pytest.mark.parametrize(
        "policy",
        [BatchPolicy(max_batch=1), BatchPolicy(max_batch=3, max_delay=5.0)],
        ids=["per-arrival", "batched"],
    )
    def test_exact_equality_on_seeded_matrix(self, policy):
        network, instance = seeded_case("leaf-spine", "poisson", seed=23)
        horizon = self._horizon(instance, network)
        warm = StreamingScheduler(
            network, WarmLPReplanner(network, horizon), policy=policy
        ).run(instance)
        cold = StreamingScheduler(
            network, ColdLPReplanner(network, horizon), policy=policy
        ).run(instance)
        assert_results_identical(warm, cold)

    def test_warm_assembler_caches_across_epochs(self):
        network, instance = staircase_stream()
        horizon = self._horizon(instance, network)
        replanner = WarmLPReplanner(network, horizon)
        StreamingScheduler(
            network, replanner, policy=BatchPolicy(max_batch=1)
        ).run(instance)
        stats = replanner.assembler.last_sync_stats
        assert stats["flows"] >= 1
        # Pinned mid-transfer flows keep their cached structure; only truly
        # new arrivals miss.
        assert replanner.assembler.warm_state.solves == 4


# --------------------------------------------------------- staleness bound

class TestStalenessBound:
    POLICIES = [
        BatchPolicy(max_batch=1),
        BatchPolicy(max_batch=2, max_delay=3.0),
        BatchPolicy(max_batch=4, max_delay=8.0),
        BatchPolicy(max_batch=None, max_delay=5.0),
    ]

    @pytest.mark.parametrize(
        "policy", POLICIES, ids=["one", "two", "four", "unbounded"]
    )
    def test_no_coflow_waits_past_the_bound(self, policy):
        network, instance = seeded_case("leaf-spine", "poisson", seed=37)
        base = SEBFScheme().plan(instance, network)
        session = StreamingScheduler(
            network, StaticPlanReplanner(base), policy=policy
        )
        session.run(instance)
        report = session.staleness_report()
        assert report["within_bound"] == 1.0
        assert report["max_staleness"] <= policy.staleness_bound() + 1e-9

        # The realised re-plan times are exactly the policy's closed-form
        # schedule over the distinct release times.
        releases = sorted({c.release_time for c in instance.coflows})
        assert [e["now"] for e in session.decision_log] == pytest.approx(
            policy.replan_times(releases)
        )
        # Every coflow is admitted at the first re-plan at/after its release
        # — within the bound of its own arrival.
        times = policy.replan_times(releases)
        for coflow in instance.coflows:
            admission = min(t for t in times if t >= coflow.release_time)
            assert admission - coflow.release_time <= (
                policy.staleness_bound() + 1e-9
            )

    def test_replan_times_closed_form(self):
        policy = BatchPolicy(max_batch=2, max_delay=3.0)
        assert policy.replan_times([0.0, 1.0, 2.5, 7.0, 8.0]) == [1.0, 5.5, 8.0]
        # Suffix property: the schedule for a suffix starting at a batch
        # boundary is the suffix of the schedule.
        assert policy.replan_times([2.5, 7.0, 8.0]) == [5.5, 8.0]
        assert BatchPolicy(max_batch=1).replan_times([0.0, 4.0]) == [0.0, 4.0]
        assert BatchPolicy(max_batch=None, max_delay=2.0).replan_times(
            [0.0, 1.0, 1.5, 5.0]
        ) == [2.0, 7.0]

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError, match="max_delay"):
            BatchPolicy(max_batch=2, max_delay=-1.0)
        with pytest.raises(ValueError, match="max_delay"):
            BatchPolicy(max_batch=2, max_delay=float("inf"))
        with pytest.raises(ValueError, match="unbounded"):
            BatchPolicy(max_batch=None, max_delay=0.0)
        assert BatchPolicy(max_batch=1, max_delay=9.0).staleness_bound() == 0.0
        assert BatchPolicy(max_batch=2, max_delay=9.0).staleness_bound() == 9.0


# ------------------------------------------------------ pause/resume splice

class RecordingReplanner:
    """SRPT on remaining volume, recording every context's fid_map."""

    def __init__(self, network):
        self.network = network
        self.fid_maps = []

    def __call__(self, context):
        self.fid_maps.append(context.fid_map)
        order = sorted(
            context.instance.flow_ids(),
            key=lambda fid: (context.instance.flow(fid).size, fid),
        )
        paths = {}
        for fid in context.instance.flow_ids():
            flow = context.instance.flow(fid)
            paths[fid] = tuple(
                self.network.shortest_path(flow.source, flow.destination)
            )
        return SimulationPlan(paths=paths, order=order, name="srpt")


class TestPauseResumeSplice:
    @pytest.mark.parametrize(
        "policy",
        [BatchPolicy(max_batch=1), BatchPolicy(max_batch=2, max_delay=4.0)],
        ids=["per-arrival", "batched"],
    )
    def test_splice_is_epoch_identical_to_one_shot(self, policy):
        network, instance = seeded_case("leaf-spine", "poisson", seed=51)

        one_shot = StreamingScheduler(
            network, RecordingReplanner(network), policy=policy
        )
        expected = one_shot.run(instance)

        spliced = StreamingScheduler(
            network, RecordingReplanner(network), policy=policy
        )
        for coflow in sorted(instance.coflows, key=lambda c: c.release_time):
            spliced.submit(coflow)
            spliced.advance(until=coflow.release_time)
        result = spliced.finish()

        assert_results_identical(result, expected)
        assert spliced.replan_count == one_shot.replan_count
        assert [e["now"] for e in spliced.decision_log] == [
            e["now"] for e in one_shot.decision_log
        ]
        assert spliced.fid_map_reuses == one_shot.fid_map_reuses

    def test_fid_map_object_reused_when_membership_stable(self):
        """A re-plan whose active membership matches the previous one gets
        the *same* fid_map dict object (the ISSUE-8 memoization fix)."""
        network = topologies.triangle()
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=10.0),), name="elephant"),
                # Zero-size coflow: completes at release, contributes no
                # members — the membership signature does not change.
                Coflow(
                    flows=(Flow("x", "y", size=0.0, release_time=2.0),),
                    name="ghost",
                ),
            ],
            name="stable-membership",
        )
        replanner = RecordingReplanner(network)
        session = StreamingScheduler(
            network, replanner, policy=BatchPolicy(max_batch=1)
        )
        result = session.run(instance)
        assert session.replan_count == 2
        assert session.fid_map_reuses == 1
        assert replanner.fid_maps[1] is replanner.fid_maps[0]
        assert result.flow_completion[(1, 0)] == pytest.approx(2.0)
        assert result.flow_completion[(0, 0)] == pytest.approx(10.0)


# -------------------------------------------------------- service contract

class TestServiceContract:
    def _simple(self):
        network = topologies.triangle()
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=2.0),)),
                Coflow(flows=(Flow("x", "y", size=1.0, release_time=4.0),)),
            ]
        )
        return network, instance

    def test_late_arrival_rejected(self):
        network, instance = self._simple()
        session = StreamingScheduler(network, RecordingReplanner(network))
        session.submit(instance.coflows[1])
        session.advance()
        with pytest.raises(StreamingError, match="late arrival"):
            session.submit(instance.coflows[0])

    def test_finish_is_idempotent_and_seals_the_session(self):
        network, instance = self._simple()
        session = StreamingScheduler(network, RecordingReplanner(network))
        result = session.run(instance)
        assert session.finish() is result
        with pytest.raises(StreamingError, match="finished"):
            session.submit(instance.coflows[0])
        with pytest.raises(StreamingError, match="finished"):
            session.advance()
        with pytest.raises(StreamingError, match="fresh session"):
            session.run(instance)

    def test_metrics_shape(self):
        network, instance = self._simple()
        session = StreamingScheduler(network, RecordingReplanner(network))
        session.run(instance)
        metrics = session.streaming_metrics()
        for key in (
            "replans",
            "arrivals",
            "plan_seconds",
            "replans_per_sec",
            "arrivals_per_plan_sec",
            "p50_decision_latency",
            "p99_decision_latency",
            "max_decision_latency",
            "max_staleness",
            "staleness_bound",
            "events",
            "fid_map_reuses",
            "epoch_setup_seconds",
        ):
            assert key in metrics
        assert metrics["replans"] == 2.0
        assert metrics["arrivals"] == 2.0
        assert metrics["plan_seconds"] > 0.0
        assert metrics["epoch_setup_seconds"] >= 0.0
        assert session.completed_coflows() == [0, 1]


# ------------------------------------------------------ resident == rebuild

class TestResidentEqualsRebuild:
    """The resident session (ISSUE 9) is a speed knob: one kernel survives
    every re-plan — arrivals are ingested as deltas, re-plans patch
    priorities and paths in place, departures tombstone slots into a
    free-list — and the results must stay bit-identical (``==``, no
    tolerance) to the rebuild-per-epoch reference."""

    def _sessions(self, network, plan, policy=None, backend=None):
        policy = policy or BatchPolicy(max_batch=1)
        make = lambda resident: StreamingScheduler(
            network,
            StaticPlanReplanner(plan),
            policy=policy,
            backend=backend,
            resident=resident,
        )
        return make(True), make(False)

    @pytest.mark.parametrize("topology_key", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("workload_key", sorted(WORKLOADS))
    @pytest.mark.parametrize("allocator", ["greedy", "max-min"])
    def test_bit_identical_across_matrix(
        self, topology_key, workload_key, allocator
    ):
        network, instance = seeded_case(topology_key, workload_key)
        base = SEBFScheme().plan(instance, network)
        plan = SimulationPlan(
            paths=base.paths, order=base.order, name="sebf", allocator=allocator
        )
        resident_session, rebuild_session = self._sessions(network, plan)
        resident = resident_session.run(instance)
        rebuild = rebuild_session.run(instance)
        assert_results_identical(resident, rebuild)
        # Residency really engaged — and only on the resident session.
        assert resident_session._session_kernel is not None
        assert rebuild_session._session_kernel is None
        assert [e["now"] for e in resident_session.decision_log] == [
            e["now"] for e in rebuild_session.decision_log
        ]

    @needs_jit
    @pytest.mark.parametrize("topology_key", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("workload_key", sorted(WORKLOADS))
    def test_bit_identical_on_the_compiled_tier(
        self, topology_key, workload_key
    ):
        network, instance = seeded_case(topology_key, workload_key)
        plan = SEBFScheme().plan(instance, network)
        resident_session, rebuild_session = self._sessions(
            network, plan, backend="jit"
        )
        resident = resident_session.run(instance)
        rebuild = rebuild_session.run(instance)
        assert_results_identical(resident, rebuild)
        assert isinstance(resident_session._session_kernel, ResidentJitKernel)
        # ... and both agree with the array-resident session.
        array_session, _ = self._sessions(network, plan, backend="array")
        assert_results_identical(array_session.run(instance), resident)

    def test_departures_recycle_slots(self):
        """The staircase stream departs coflows mid-session: the resident
        kernel must tombstone their slots and hand them to later arrivals
        (the free list is load-bearing, not decorative)."""
        network, instance = staircase_stream()
        rebuild = StreamingScheduler(
            network, RecordingReplanner(network), policy=BatchPolicy(max_batch=1)
        ).run(instance)
        session = StreamingScheduler(
            network,
            RecordingReplanner(network),
            policy=BatchPolicy(max_batch=1),
            resident=True,
        )
        result = session.run(instance)
        assert_results_identical(result, rebuild)
        assert session._session_kernel.slots_reused > 0

    def test_zero_size_ghost_never_reaches_the_session(self):
        """Zero-size coflows complete at submit time; the resident kernel
        must never see them (ingesting one is an error by contract)."""
        network = topologies.triangle()
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=10.0),), name="elephant"),
                Coflow(
                    flows=(Flow("x", "y", size=0.0, release_time=2.0),),
                    name="ghost",
                ),
            ],
            name="stable-membership",
        )
        rebuild = StreamingScheduler(
            network, RecordingReplanner(network), policy=BatchPolicy(max_batch=1)
        ).run(instance)
        session = StreamingScheduler(
            network,
            RecordingReplanner(network),
            policy=BatchPolicy(max_batch=1),
            resident=True,
        )
        result = session.run(instance)
        assert_results_identical(result, rebuild)
        assert result.flow_completion[(1, 0)] == pytest.approx(2.0)
        kernel = session._session_kernel
        assert all(fid != (1, 0) for fid in kernel.fids if fid is not None)

    @pytest.mark.parametrize(
        "policy",
        [BatchPolicy(max_batch=1), BatchPolicy(max_batch=2, max_delay=4.0)],
        ids=["per-arrival", "batched"],
    )
    def test_pause_resume_splice_stays_identical(self, policy):
        network, instance = seeded_case("leaf-spine", "poisson", seed=51)
        one_shot = StreamingScheduler(
            network, RecordingReplanner(network), policy=policy, resident=True
        )
        expected = one_shot.run(instance)

        spliced = StreamingScheduler(
            network, RecordingReplanner(network), policy=policy, resident=True
        )
        for coflow in sorted(instance.coflows, key=lambda c: c.release_time):
            spliced.submit(coflow)
            spliced.advance(until=coflow.release_time)
        result = spliced.finish()

        assert_results_identical(result, expected)
        assert spliced.replan_count == one_shot.replan_count
        # The spliced resident stream also matches the rebuild reference.
        rebuild = StreamingScheduler(
            network, RecordingReplanner(network), policy=policy
        ).run(instance)
        assert_results_identical(result, rebuild)


@needs_jit
class TestResidentBufferGrowth:
    """Drive the compiled resident tier directly — ingest → begin_epoch →
    run → harvest cycles — with pathologically small initial buffers, the
    growable array tier as the correctness twin: slot rows, the edge pool
    and the segment log must all grow past their initial capacities
    mid-session (the segment buffer mid-*run*) without disturbing results,
    and tombstoned slots must come back through the free list."""

    def _drive(self, kernel, batches, path):
        """Run one epoch per batch to completion; fold harvests the way the
        streaming engine does (earliest start wins)."""
        completions, starts = {}, {}
        live = []
        now = 0.0
        for new_flows in batches:
            for fid, size, release in new_flows:
                kernel.ingest(fid, size, now + release, path)
                live.append(fid)
            kernel.begin_epoch(now, [kernel.slot_of(fid) for fid in live])
            assert kernel.run() is True
            done, started, _touched, _moved = kernel.harvest_epoch()
            for k, t in done:
                completions[kernel.fids[k]] = t
            for k, t in started:
                starts.setdefault(kernel.fids[k], t)
            live = [fid for fid in live if fid not in completions]
            now = kernel.now
        return completions, starts

    def _batches(self):
        # 20 same-edge flows: >16 bandwidth segments in epoch 0, so the
        # segment buffer grows mid-run; 20 + 8 concurrent rows grow the
        # slot columns past initial_capacity=1; batch 3 recycles the 20
        # slots freed when batch 1's flows were tombstoned.
        first = [(("a", i), 1.0 + 0.5 * i, 0.25 * i) for i in range(20)]
        second = [(("b", i), 2.0 + 0.25 * i, 0.0) for i in range(8)]
        third = [(("c", i), 1.0 + 0.125 * i, 0.5 * i) for i in range(25)]
        return [first, second, third]

    def test_growth_and_reuse_match_the_array_twin(self):
        network = topologies.triangle()
        path = network.shortest_path("x", "y")
        jit = ResidentJitKernel(
            network, initial_capacity=1, initial_segment_capacity=16
        )
        twin = ResidentSimulationKernel(network)
        batches = self._batches()
        jit_completions, jit_starts = self._drive(jit, batches, path)
        twin_completions, twin_starts = self._drive(twin, batches, path)
        assert jit_completions == twin_completions
        assert jit_starts == twin_starts
        assert dict(jit.drain_all_segments()) == dict(twin.drain_all_segments())
        # The tiny initial buffers really grew, and slots really recycled.
        assert jit._cap > 1
        assert jit._seg_cap > 16
        assert jit.slots_reused == twin.slots_reused == 20

    def test_ingest_many_matches_sequential_ingest(self):
        """The vectorised batch ingest is defined as ``ingest`` in a loop:
        same slots, same sids, same epoch outcome."""
        network = topologies.triangle()
        path = network.shortest_path("x", "y")
        batch = ResidentJitKernel(
            network, initial_capacity=1, initial_segment_capacity=16
        )
        seq = ResidentJitKernel(
            network, initial_capacity=1, initial_segment_capacity=16
        )
        fids = [("a", i) for i in range(9)]
        sizes = [1.0 + 0.5 * i for i in range(9)]
        releases = [0.5 * i for i in range(9)]
        ks = batch.ingest_many(fids, sizes, releases, [path] * 9)
        ks_seq = [
            seq.ingest(fid, size, release, path)
            for fid, size, release in zip(fids, sizes, releases)
        ]
        assert list(ks) == ks_seq
        assert [batch.sid_of(fid) for fid in fids] == [
            seq.sid_of(fid) for fid in fids
        ]
        for kernel in (batch, seq):
            kernel.begin_epoch(0.0, [kernel.slot_of(fid) for fid in fids])
            assert kernel.run() is True
        done_batch, starts_batch, _, _ = batch.harvest_epoch()
        done_seq, starts_seq, _, _ = seq.harvest_epoch()
        assert done_batch == done_seq
        assert starts_batch == starts_seq

    def test_zero_volume_flow_is_rejected_by_both_tiers(self):
        network = topologies.triangle()
        path = network.shortest_path("x", "y")
        kernels = [
            ResidentJitKernel(
                network, initial_capacity=1, initial_segment_capacity=16
            ),
            ResidentSimulationKernel(network),
        ]
        for kernel in kernels:
            with pytest.raises(ValueError, match="no volume"):
                kernel.ingest(("ghost", 0), 0.0, 0.0, path)
            with pytest.raises(ValueError, match="no volume"):
                kernel.ingest_many([("ghost", 1)], [0.0], [0.0], [path])
            # A rejected batch admits nothing at all.
            assert all(fid is None for fid in kernel.fids)


# -------------------------------------------------------------- GC pausing

class TestPausedGC:
    """``paused_gc`` hoists the GC pause around the compiled event loop; it
    must restore whatever collector state it found — including when the
    guarded block raises — and nest as a no-op."""

    def test_restores_on_exception(self):
        was_enabled = gc.isenabled()
        gc.enable()
        try:
            with pytest.raises(RuntimeError, match="boom"):
                with paused_gc():
                    assert not gc.isenabled()
                    raise RuntimeError("boom")
            assert gc.isenabled()
        finally:
            gc.enable() if was_enabled else gc.disable()

    def test_nested_and_already_disabled(self):
        was_enabled = gc.isenabled()
        try:
            gc.disable()
            with paused_gc():
                assert not gc.isenabled()
            assert not gc.isenabled()  # found disabled: left disabled
            gc.enable()
            with paused_gc():
                with paused_gc():
                    assert not gc.isenabled()
                assert not gc.isenabled()  # inner exit keeps the outer pause
            assert gc.isenabled()
        finally:
            gc.enable() if was_enabled else gc.disable()
