"""Property harness for the streaming scheduler service (ISSUE 8).

Four pillars:

* **batch=1 == online** — a batch-size-1 :class:`StreamingScheduler`
  session reproduces :class:`OnlineFlowSimulator` bit-identically across a
  seeded topology × workload-family × allocator matrix (the online engine
  is the streaming service's special case, and must stay that way);
* **warm == cold** — :class:`WarmLPReplanner`'s warm-started LP decisions
  match :class:`ColdLPReplanner`'s rebuild-from-scratch decisions exactly
  (``==``, no tolerance), including after coflow departures pruned the LP;
* **staleness bound** — under any :class:`BatchPolicy`, no coflow waits
  longer than the policy's declared bound between arriving and being
  planned, and the realised re-plan times equal
  ``BatchPolicy.replan_times`` of the distinct release times;
* **pause/resume splice** — feeding the same stream through interleaved
  ``submit``/``advance`` calls yields the identical epoch structure and
  result as a one-shot ``run``, with the fid-map memoization (replan count
  and map identity) stable across the splice.
"""

import pytest

from repro.baselines import SEBFScheme
from repro.core import Coflow, CoflowInstance, Flow, topologies
from repro.sim import (
    BatchPolicy,
    ColdLPReplanner,
    OnlineFlowSimulator,
    SimulationPlan,
    StaticPlanReplanner,
    StreamingError,
    StreamingScheduler,
    WarmLPReplanner,
)
from repro.workloads import CoflowGenerator, WorkloadConfig


def assert_results_identical(a, b):
    """Bit-exact equality of everything a simulation result asserts."""
    assert a.flow_completion == b.flow_completion
    assert a.flow_start == b.flow_start
    assert a.events == b.events
    assert a.coflow_slowdowns == b.coflow_slowdowns


TOPOLOGIES = {
    "leaf-spine": lambda: topologies.leaf_spine(
        num_leaves=2, num_spines=2, hosts_per_leaf=2
    ),
    "fat-tree": lambda: topologies.fat_tree(4),
}
WORKLOADS = {
    "poisson": {},
    "pareto": {"flow_size_distribution": "pareto"},
}


def seeded_case(topology_key, workload_key, seed=11):
    network = TOPOLOGIES[topology_key]()
    config = WorkloadConfig(
        num_coflows=4,
        coflow_width=3,
        mean_flow_size=4.0,
        coflow_arrival_rate=0.4,
        seed=seed,
        **WORKLOADS[workload_key],
    )
    instance = CoflowGenerator(network, config).instance()
    return network, instance


def staircase_stream():
    """Deterministic stream on the triangle: unit flows arriving far enough
    apart that earlier coflows *depart* before later ones arrive."""
    network = topologies.triangle()
    coflows = [
        Coflow(flows=(Flow("x", "y", size=1.0),), name="c0"),
        Coflow(flows=(Flow("x", "y", size=1.0, release_time=3.0),), name="c1"),
        Coflow(
            flows=(
                Flow("y", "z", size=1.0, release_time=6.0),
                Flow("x", "y", size=2.0, release_time=6.0),
            ),
            name="c2",
        ),
        Coflow(flows=(Flow("z", "x", size=1.0, release_time=9.0),), name="c3"),
    ]
    return network, CoflowInstance(coflows=coflows, name="staircase")


# ------------------------------------------------- batch=1 == online engine

class TestBatchOneEqualsOnline:
    @pytest.mark.parametrize("topology_key", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("workload_key", sorted(WORKLOADS))
    @pytest.mark.parametrize("allocator", ["greedy", "max-min"])
    def test_bit_identical_across_matrix(
        self, topology_key, workload_key, allocator
    ):
        network, instance = seeded_case(topology_key, workload_key)
        base = SEBFScheme().plan(instance, network)
        plan = SimulationPlan(
            paths=base.paths, order=base.order, name="sebf", allocator=allocator
        )
        online = OnlineFlowSimulator(network, StaticPlanReplanner(plan)).run(
            instance
        )
        session = StreamingScheduler(
            network, StaticPlanReplanner(plan), policy=BatchPolicy(max_batch=1)
        )
        streamed = session.run(instance)
        assert_results_identical(streamed, online)
        # batch=1 re-plans exactly once per distinct release time.
        releases = sorted({c.release_time for c in instance.coflows})
        assert [e["now"] for e in session.decision_log] == releases
        assert session.staleness_report() == {
            "max_staleness": 0.0,
            "mean_staleness": 0.0,
            "bound": 0.0,
            "within_bound": 1.0,
        }


# ------------------------------------------------------------ warm == cold

class TestWarmEqualsCold:
    def _horizon(self, instance, network):
        from repro.circuit.given_paths import _default_horizon

        routed = instance.with_paths(
            {
                fid: network.shortest_path(
                    instance.flow(fid).source, instance.flow(fid).destination
                )
                for fid in instance.flow_ids()
            }
        )
        return _default_horizon(routed, network)

    @pytest.mark.parametrize(
        "policy",
        [BatchPolicy(max_batch=1), BatchPolicy(max_batch=2, max_delay=4.0)],
        ids=["per-arrival", "batched"],
    )
    def test_exact_equality_with_departures(self, policy):
        network, instance = staircase_stream()
        horizon = self._horizon(instance, network)
        warm_session = StreamingScheduler(
            network, WarmLPReplanner(network, horizon), policy=policy
        )
        cold_session = StreamingScheduler(
            network, ColdLPReplanner(network, horizon), policy=policy
        )
        warm = warm_session.run(instance)
        cold = cold_session.run(instance)
        assert_results_identical(warm, cold)
        # The stream really exercises departures: some re-plan sees fewer
        # active coflows than have been admitted by then.
        admitted = 0
        pruned = False
        for entry in warm_session.decision_log:
            admitted += entry["admitted"]
            if entry["active_coflows"] < admitted:
                pruned = True
        assert pruned, "no coflow departed mid-stream; the case is too easy"

    @pytest.mark.parametrize(
        "policy",
        [BatchPolicy(max_batch=1), BatchPolicy(max_batch=3, max_delay=5.0)],
        ids=["per-arrival", "batched"],
    )
    def test_exact_equality_on_seeded_matrix(self, policy):
        network, instance = seeded_case("leaf-spine", "poisson", seed=23)
        horizon = self._horizon(instance, network)
        warm = StreamingScheduler(
            network, WarmLPReplanner(network, horizon), policy=policy
        ).run(instance)
        cold = StreamingScheduler(
            network, ColdLPReplanner(network, horizon), policy=policy
        ).run(instance)
        assert_results_identical(warm, cold)

    def test_warm_assembler_caches_across_epochs(self):
        network, instance = staircase_stream()
        horizon = self._horizon(instance, network)
        replanner = WarmLPReplanner(network, horizon)
        StreamingScheduler(
            network, replanner, policy=BatchPolicy(max_batch=1)
        ).run(instance)
        stats = replanner.assembler.last_sync_stats
        assert stats["flows"] >= 1
        # Pinned mid-transfer flows keep their cached structure; only truly
        # new arrivals miss.
        assert replanner.assembler.warm_state.solves == 4


# --------------------------------------------------------- staleness bound

class TestStalenessBound:
    POLICIES = [
        BatchPolicy(max_batch=1),
        BatchPolicy(max_batch=2, max_delay=3.0),
        BatchPolicy(max_batch=4, max_delay=8.0),
        BatchPolicy(max_batch=None, max_delay=5.0),
    ]

    @pytest.mark.parametrize(
        "policy", POLICIES, ids=["one", "two", "four", "unbounded"]
    )
    def test_no_coflow_waits_past_the_bound(self, policy):
        network, instance = seeded_case("leaf-spine", "poisson", seed=37)
        base = SEBFScheme().plan(instance, network)
        session = StreamingScheduler(
            network, StaticPlanReplanner(base), policy=policy
        )
        session.run(instance)
        report = session.staleness_report()
        assert report["within_bound"] == 1.0
        assert report["max_staleness"] <= policy.staleness_bound() + 1e-9

        # The realised re-plan times are exactly the policy's closed-form
        # schedule over the distinct release times.
        releases = sorted({c.release_time for c in instance.coflows})
        assert [e["now"] for e in session.decision_log] == pytest.approx(
            policy.replan_times(releases)
        )
        # Every coflow is admitted at the first re-plan at/after its release
        # — within the bound of its own arrival.
        times = policy.replan_times(releases)
        for coflow in instance.coflows:
            admission = min(t for t in times if t >= coflow.release_time)
            assert admission - coflow.release_time <= (
                policy.staleness_bound() + 1e-9
            )

    def test_replan_times_closed_form(self):
        policy = BatchPolicy(max_batch=2, max_delay=3.0)
        assert policy.replan_times([0.0, 1.0, 2.5, 7.0, 8.0]) == [1.0, 5.5, 8.0]
        # Suffix property: the schedule for a suffix starting at a batch
        # boundary is the suffix of the schedule.
        assert policy.replan_times([2.5, 7.0, 8.0]) == [5.5, 8.0]
        assert BatchPolicy(max_batch=1).replan_times([0.0, 4.0]) == [0.0, 4.0]
        assert BatchPolicy(max_batch=None, max_delay=2.0).replan_times(
            [0.0, 1.0, 1.5, 5.0]
        ) == [2.0, 7.0]

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError, match="max_delay"):
            BatchPolicy(max_batch=2, max_delay=-1.0)
        with pytest.raises(ValueError, match="max_delay"):
            BatchPolicy(max_batch=2, max_delay=float("inf"))
        with pytest.raises(ValueError, match="unbounded"):
            BatchPolicy(max_batch=None, max_delay=0.0)
        assert BatchPolicy(max_batch=1, max_delay=9.0).staleness_bound() == 0.0
        assert BatchPolicy(max_batch=2, max_delay=9.0).staleness_bound() == 9.0


# ------------------------------------------------------ pause/resume splice

class RecordingReplanner:
    """SRPT on remaining volume, recording every context's fid_map."""

    def __init__(self, network):
        self.network = network
        self.fid_maps = []

    def __call__(self, context):
        self.fid_maps.append(context.fid_map)
        order = sorted(
            context.instance.flow_ids(),
            key=lambda fid: (context.instance.flow(fid).size, fid),
        )
        paths = {}
        for fid in context.instance.flow_ids():
            flow = context.instance.flow(fid)
            paths[fid] = tuple(
                self.network.shortest_path(flow.source, flow.destination)
            )
        return SimulationPlan(paths=paths, order=order, name="srpt")


class TestPauseResumeSplice:
    @pytest.mark.parametrize(
        "policy",
        [BatchPolicy(max_batch=1), BatchPolicy(max_batch=2, max_delay=4.0)],
        ids=["per-arrival", "batched"],
    )
    def test_splice_is_epoch_identical_to_one_shot(self, policy):
        network, instance = seeded_case("leaf-spine", "poisson", seed=51)

        one_shot = StreamingScheduler(
            network, RecordingReplanner(network), policy=policy
        )
        expected = one_shot.run(instance)

        spliced = StreamingScheduler(
            network, RecordingReplanner(network), policy=policy
        )
        for coflow in sorted(instance.coflows, key=lambda c: c.release_time):
            spliced.submit(coflow)
            spliced.advance(until=coflow.release_time)
        result = spliced.finish()

        assert_results_identical(result, expected)
        assert spliced.replan_count == one_shot.replan_count
        assert [e["now"] for e in spliced.decision_log] == [
            e["now"] for e in one_shot.decision_log
        ]
        assert spliced.fid_map_reuses == one_shot.fid_map_reuses

    def test_fid_map_object_reused_when_membership_stable(self):
        """A re-plan whose active membership matches the previous one gets
        the *same* fid_map dict object (the ISSUE-8 memoization fix)."""
        network = topologies.triangle()
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=10.0),), name="elephant"),
                # Zero-size coflow: completes at release, contributes no
                # members — the membership signature does not change.
                Coflow(
                    flows=(Flow("x", "y", size=0.0, release_time=2.0),),
                    name="ghost",
                ),
            ],
            name="stable-membership",
        )
        replanner = RecordingReplanner(network)
        session = StreamingScheduler(
            network, replanner, policy=BatchPolicy(max_batch=1)
        )
        result = session.run(instance)
        assert session.replan_count == 2
        assert session.fid_map_reuses == 1
        assert replanner.fid_maps[1] is replanner.fid_maps[0]
        assert result.flow_completion[(1, 0)] == pytest.approx(2.0)
        assert result.flow_completion[(0, 0)] == pytest.approx(10.0)


# -------------------------------------------------------- service contract

class TestServiceContract:
    def _simple(self):
        network = topologies.triangle()
        instance = CoflowInstance(
            coflows=[
                Coflow(flows=(Flow("x", "y", size=2.0),)),
                Coflow(flows=(Flow("x", "y", size=1.0, release_time=4.0),)),
            ]
        )
        return network, instance

    def test_late_arrival_rejected(self):
        network, instance = self._simple()
        session = StreamingScheduler(network, RecordingReplanner(network))
        session.submit(instance.coflows[1])
        session.advance()
        with pytest.raises(StreamingError, match="late arrival"):
            session.submit(instance.coflows[0])

    def test_finish_is_idempotent_and_seals_the_session(self):
        network, instance = self._simple()
        session = StreamingScheduler(network, RecordingReplanner(network))
        result = session.run(instance)
        assert session.finish() is result
        with pytest.raises(StreamingError, match="finished"):
            session.submit(instance.coflows[0])
        with pytest.raises(StreamingError, match="finished"):
            session.advance()
        with pytest.raises(StreamingError, match="fresh session"):
            session.run(instance)

    def test_metrics_shape(self):
        network, instance = self._simple()
        session = StreamingScheduler(network, RecordingReplanner(network))
        session.run(instance)
        metrics = session.streaming_metrics()
        for key in (
            "replans",
            "arrivals",
            "plan_seconds",
            "replans_per_sec",
            "arrivals_per_plan_sec",
            "p50_decision_latency",
            "p99_decision_latency",
            "max_decision_latency",
            "max_staleness",
            "staleness_bound",
            "events",
            "fid_map_reuses",
        ):
            assert key in metrics
        assert metrics["replans"] == 2.0
        assert metrics["arrivals"] == 2.0
        assert metrics["plan_seconds"] > 0.0
        assert session.completed_coflows() == [0, 1]
