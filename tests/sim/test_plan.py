"""Tests for the SimulationPlan interface between schedulers and the simulator."""

import pytest

from repro.core import Coflow, CoflowInstance, Flow, topologies
from repro.sim import SimulationPlan


@pytest.fixture
def triangle():
    return topologies.triangle()


@pytest.fixture
def instance():
    return CoflowInstance(
        coflows=[
            Coflow(flows=(Flow("x", "y", size=1.0), Flow("y", "z", size=2.0))),
            Coflow(flows=(Flow("z", "x", size=1.0),)),
        ]
    )


def full_paths(instance, network):
    return {
        (i, j): tuple(network.shortest_path(f.source, f.destination))
        for i, j, f in instance.iter_flows()
    }


def test_normalized_appends_missing_flows(instance, triangle):
    plan = SimulationPlan(paths=full_paths(instance, triangle), order=[(1, 0)], name="p")
    normalized = plan.normalized(instance)
    assert normalized.order[0] == (1, 0)
    assert set(normalized.order) == set(instance.flow_ids())
    assert len(normalized.order) == instance.num_flows


def test_normalized_requires_all_paths(instance, triangle):
    plan = SimulationPlan(paths={(0, 0): ("x", "y")}, order=[], name="p")
    with pytest.raises(ValueError, match="missing paths"):
        plan.normalized(instance)


def test_validate_checks_endpoints_and_edges(instance, triangle):
    paths = full_paths(instance, triangle)
    paths[(0, 1)] = ("y", "x")  # wrong destination
    plan = SimulationPlan(paths=paths, order=instance.flow_ids(), name="p")
    with pytest.raises(ValueError, match="endpoints"):
        plan.validate(instance, triangle)

    paths = full_paths(instance, triangle)
    paths[(0, 0)] = ("x", "ghost", "y")
    plan = SimulationPlan(paths=paths, order=instance.flow_ids(), name="p")
    with pytest.raises(ValueError):
        plan.validate(instance, triangle)


def test_validate_requires_every_flow(instance, triangle):
    paths = full_paths(instance, triangle)
    del paths[(1, 0)]
    plan = SimulationPlan(paths=paths, order=instance.flow_ids(), name="p")
    with pytest.raises(ValueError, match="no path"):
        plan.validate(instance, triangle)


def test_priority_rank_order(instance, triangle):
    plan = SimulationPlan(
        paths=full_paths(instance, triangle), order=[(1, 0), (0, 1), (0, 0)], name="p"
    )
    ranks = plan.priority_rank()
    assert ranks[(1, 0)] == 0 and ranks[(0, 0)] == 2


def test_normalized_preserves_name_and_paths(instance, triangle):
    plan = SimulationPlan(paths=full_paths(instance, triangle), order=[], name="scheme-x")
    normalized = plan.normalized(instance)
    assert normalized.name == "scheme-x"
    assert normalized.paths == plan.paths
