"""Repository-level pytest configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed (the offline CI environment cannot run ``pip install -e .`` because
the ``wheel`` package is unavailable there); in a normal environment
``pip install -e .`` makes this a no-op.
"""
import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
