"""Non-blocking switch special case (extension module).

Section 2 of the paper observes that "any network topology in which there is a
unique path between pairs of vertices, e.g. trees or non-blocking switches,
falls into" the paths-given category.  The non-blocking switch (the big-switch
abstraction of the Varys/Aalo line of work) is the most common such topology,
so this module packages that special case:

* :func:`attach_switch_paths` — give every flow its unique
  ``host -> switch -> host`` path;
* :func:`coflow_isolation_bottleneck` — a coflow's completion time if it had
  the switch to itself (the quantity SEBF orders by and a per-coflow lower
  bound);
* :func:`switch_lower_bound` — an LP-free lower bound on the weighted sum of
  coflow completion times on a switch, obtained by applying the classical
  single-machine scheduling bound on every ingress and egress port;
* :class:`SwitchScheduler` — the Section-2.1 machinery (LP + rounding, or the
  LP ordering fed to the flow-level simulator) specialised to the switch.
"""

from .model import (
    SwitchScheduler,
    SwitchScheduleOutcome,
    attach_switch_paths,
    coflow_isolation_bottleneck,
    switch_lower_bound,
)

__all__ = [
    "attach_switch_paths",
    "coflow_isolation_bottleneck",
    "switch_lower_bound",
    "SwitchScheduler",
    "SwitchScheduleOutcome",
]
