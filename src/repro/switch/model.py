"""Coflow scheduling on a non-blocking switch (unique-path special case)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from ..baselines.lp_based import LPGivenPathsScheme
from ..circuit.given_paths import GivenPathsResult, GivenPathsScheduler
from ..core.flows import CoflowInstance, FlowId
from ..core.network import Network
from ..sim import FlowLevelSimulator, SimulationResult

__all__ = [
    "attach_switch_paths",
    "coflow_isolation_bottleneck",
    "switch_lower_bound",
    "SwitchScheduler",
    "SwitchScheduleOutcome",
]


def _switch_node(network: Network) -> Hashable:
    """The crossbar node of a topology built by ``topologies.nonblocking_switch``."""
    for node in network.nodes():
        if node == "switch":
            return node
    raise ValueError(
        "the network does not look like a non-blocking switch "
        "(expected a central node named 'switch')"
    )


def attach_switch_paths(instance: CoflowInstance, network: Network) -> CoflowInstance:
    """Attach the unique ``source -> switch -> destination`` path to every flow."""
    switch = _switch_node(network)
    paths: Dict[FlowId, List[Hashable]] = {}
    for i, j, flow in instance.iter_flows():
        if not network.has_edge(flow.source, switch) or not network.has_edge(
            switch, flow.destination
        ):
            raise ValueError(
                f"flow ({i},{j}) endpoints are not ports of the switch"
            )
        paths[(i, j)] = [flow.source, switch, flow.destination]
    return instance.with_paths(paths)


def coflow_isolation_bottleneck(
    instance: CoflowInstance, network: Network, coflow_index: int
) -> float:
    """Completion time of a coflow running alone on the switch.

    This is the maximum, over ingress and egress ports, of the total volume
    the coflow moves through the port divided by the port capacity, shifted by
    the coflow's release time — the quantity Varys' SEBF orders coflows by.
    """
    switch = _switch_node(network)
    ingress: Dict[Hashable, float] = {}
    egress: Dict[Hashable, float] = {}
    for flow in instance[coflow_index].flows:
        ingress[flow.source] = ingress.get(flow.source, 0.0) + flow.size
        egress[flow.destination] = egress.get(flow.destination, 0.0) + flow.size
    bottleneck = 0.0
    for port, volume in ingress.items():
        bottleneck = max(bottleneck, volume / network.capacity(port, switch))
    for port, volume in egress.items():
        bottleneck = max(bottleneck, volume / network.capacity(switch, port))
    return instance[coflow_index].release_time + bottleneck


def switch_lower_bound(instance: CoflowInstance, network: Network) -> float:
    """A combinatorial lower bound on the weighted coflow completion time.

    Every coflow needs at least its isolation bottleneck, so the weighted sum
    of isolation bottlenecks lower-bounds the objective regardless of the
    schedule.  (Port-by-port single-machine bounds can strengthen this; the
    isolation bound is what the tests need: simple and always valid.)
    """
    return float(
        sum(
            instance[i].weight * coflow_isolation_bottleneck(instance, network, i)
            for i in range(len(instance.coflows))
        )
    )


@dataclass
class SwitchScheduleOutcome:
    """Result of scheduling coflows on a non-blocking switch."""

    instance: CoflowInstance
    rounded: GivenPathsResult
    simulated: SimulationResult

    @property
    def lp_lower_bound(self) -> float:
        return self.rounded.lower_bound

    @property
    def combinatorial_lower_bound(self) -> float:
        return self._combinatorial_lb

    _combinatorial_lb: float = 0.0


class SwitchScheduler:
    """Section-2.1 LP scheduling specialised to the non-blocking switch."""

    def __init__(self, instance: CoflowInstance, network: Network) -> None:
        self.network = network
        self.instance = attach_switch_paths(instance, network)

    def schedule(self) -> SwitchScheduleOutcome:
        """Run both back-ends: the provable rounding and the simulated LP order."""
        rounded = GivenPathsScheduler(self.instance, self.network).schedule()
        scheme = LPGivenPathsScheme()
        plan = scheme.plan(self.instance, self.network)
        simulated = FlowLevelSimulator(self.network).run(self.instance, plan)
        outcome = SwitchScheduleOutcome(
            instance=self.instance, rounded=rounded, simulated=simulated
        )
        outcome._combinatorial_lb = switch_lower_bound(self.instance, self.network)
        return outcome
