"""Deterministic fault injection and task-hardening primitives.

The experiment engine promises that one infeasible LP, solver hiccup or
OOM-killed worker does not abort a whole sweep.  Proving that requires a
controllable source of failures: :class:`FaultInjector` is a *seeded,
deterministic* chaos layer that decides — from the fault seed and the task's
run-store key alone — whether a task faults, with which kind, and at which
instrumented site.  The three production sites are

* the LP solve (:func:`repro.lp.solver.solve`)         — site ``"lp"``,
* the simulator kernel (:meth:`SimulationKernel.run`)  — site ``"sim"``,
* run-store appends (:meth:`RunStore.put`)             — site ``"store"``,

each carrying a one-line :func:`maybe_inject` hook that is a no-op unless an
injector is installed *and* the caller is inside a :func:`task_scope`.
Determinism is the point: the same ``(seed, task key)`` pair draws the same
fault in every process, every run, serial or pooled — so chaos sweeps are
reproducible and retried tasks converge to values bit-identical to a
fault-free run.

Fault kinds (``FAULT_KINDS``):

``lp``
    Raises :class:`~repro.lp.solver.LPInfeasibleError` from inside the LP
    solve.  *Permanent*: fires on every attempt (an infeasible LP stays
    infeasible), so the engine records a structured failure.
``timeout``
    Raises :class:`InjectedTimeout` (a :class:`TimeoutError`) from the
    simulator kernel.  *Transient*: fires on the first attempt only, so a
    retry succeeds.
``kill``
    Terminates the worker process with ``os._exit`` (pool workers), forcing
    a ``BrokenProcessPool`` the engine must recover from; in-process
    execution raises the transient :class:`WorkerKilled` instead.
``slow``
    Sleeps ``delay`` seconds inside the kernel on every attempt — the
    substrate for wall-clock-timeout and kill-mid-flight tests.
``store``
    Raises :class:`InjectedStoreError` (an :class:`OSError`) from the
    run-store append.  *Transient*: first store attempt only.

This module also hosts the engine's hardening primitives: the
:func:`deadline` wall-clock guard (SIGALRM-based, POSIX main thread) and
:func:`backoff_delay`, the capped exponential backoff with deterministic
per-task jitter.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Set, Tuple

__all__ = [
    "FAULT_KINDS",
    "FaultConfig",
    "FaultInjector",
    "InjectedTimeout",
    "InjectedStoreError",
    "WorkerKilled",
    "TaskTimeoutError",
    "task_scope",
    "maybe_inject",
    "install",
    "uninstall",
    "active_injector",
    "mark_worker_process",
    "is_transient",
    "deadline",
    "backoff_delay",
]

#: Every recognised fault kind, and the instrumented site where it fires.
FAULT_KINDS: Tuple[str, ...] = ("lp", "timeout", "kill", "slow", "store")
_SITE_OF: Dict[str, str] = {
    "lp": "lp",
    "timeout": "sim",
    "kill": "sim",
    "slow": "sim",
    "store": "store",
}


# ------------------------------------------------------------------ failures

class InjectedTimeout(TimeoutError):
    """An injected solver/simulator hang; transient, retried by the engine."""


class WorkerKilled(RuntimeError):
    """In-process stand-in for a worker death (serial execution cannot
    actually lose a process); transient."""

    transient = True


class InjectedStoreError(OSError):
    """An injected run-store append failure; transient."""

    transient = True


class TaskTimeoutError(TimeoutError):
    """A task exceeded its wall-clock budget (see :func:`deadline`)."""


def is_transient(error: BaseException) -> bool:
    """Whether the engine should retry after ``error``.

    Timeouts (real or injected) and anything flagged ``transient = True``
    are retryable; everything else — infeasible LPs, contract violations,
    programming errors — is permanent and becomes a failure record.
    """
    return isinstance(error, TimeoutError) or bool(getattr(error, "transient", False))


# -------------------------------------------------------------------- config

@dataclass(frozen=True)
class FaultConfig:
    """Declarative chaos parameters (parsed from ``--inject-faults``).

    Parameters
    ----------
    rate:
        Per-task probability of drawing a fault, in ``[0, 1]``.
    kinds:
        Fault kinds eligible for the draw (see :data:`FAULT_KINDS`).
    seed:
        Chaos seed; together with the task key it fully determines every
        draw, so a chaos sweep is exactly reproducible.
    delay:
        Sleep injected by ``slow`` faults, in seconds.
    """

    rate: float = 0.0
    kinds: Tuple[str, ...] = ("lp", "timeout")
    seed: int = 0
    delay: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if not self.kinds:
            raise ValueError("fault config needs at least one kind")
        unknown = sorted(set(self.kinds) - set(FAULT_KINDS))
        if unknown:
            raise ValueError(
                f"unknown fault kind(s) {unknown} "
                f"(known: {', '.join(FAULT_KINDS)})"
            )
        if self.delay < 0:
            raise ValueError(f"fault delay must be >= 0, got {self.delay}")

    @classmethod
    def from_spec(cls, text: str) -> "FaultConfig":
        """Parse a ``key=value`` spec: ``"rate=0.1,seed=7,kinds=lp+timeout"``.

        Keys: ``rate`` (float), ``seed`` (int), ``delay`` (float), ``kinds``
        (``+``-separated subset of :data:`FAULT_KINDS`).  Unknown keys and
        malformed entries raise ``ValueError`` naming the bad piece.
        """
        values: Dict[str, object] = {}
        for part in filter(None, (p.strip() for p in text.split(","))):
            if "=" not in part:
                raise ValueError(
                    f"malformed fault spec entry {part!r} (expected key=value)"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            raw = raw.strip()
            if key == "rate":
                values["rate"] = float(raw)
            elif key == "seed":
                values["seed"] = int(raw)
            elif key == "delay":
                values["delay"] = float(raw)
            elif key == "kinds":
                values["kinds"] = tuple(k.strip() for k in raw.split("+") if k.strip())
            else:
                raise ValueError(
                    f"unknown fault spec key {key!r} "
                    "(known: rate, seed, delay, kinds)"
                )
        return cls(**values)  # type: ignore[arg-type]

    def spec(self) -> str:
        """The canonical spec string (``from_spec`` round-trips it)."""
        return (
            f"rate={self.rate},seed={self.seed},"
            f"kinds={'+'.join(self.kinds)},delay={self.delay}"
        )


class FaultInjector:
    """Seeded, deterministic fault source for the instrumented sites."""

    def __init__(self, config: FaultConfig) -> None:
        self.config = config

    def draw(self, task_key: str) -> Optional[str]:
        """The fault kind for ``task_key``, or ``None`` (pure function).

        The decision hashes ``(seed, task key)`` only — not the worker, not
        the attempt, not wall-clock time — so the same task draws the same
        fault wherever and whenever it runs.
        """
        digest = hashlib.sha256(
            f"fault:{self.config.seed}:{task_key}".encode()
        ).digest()
        if int.from_bytes(digest[:8], "big") / 2.0**64 >= self.config.rate:
            return None
        return self.config.kinds[
            int.from_bytes(digest[8:12], "big") % len(self.config.kinds)
        ]


# ----------------------------------------------------- installation and scope

#: Process-wide active injector (``None`` = all hooks are no-ops).
_ACTIVE: Optional[FaultInjector] = None
#: True in pool worker processes, where ``kill`` faults really exit.
_IS_WORKER = False


def install(injector: Optional[FaultInjector]) -> None:
    """Install ``injector`` process-wide (``None`` uninstalls)."""
    global _ACTIVE
    _ACTIVE = injector


def uninstall() -> None:
    """Remove the active injector (all hooks become no-ops again)."""
    install(None)


def active_injector() -> Optional[FaultInjector]:
    """The currently installed injector, if any."""
    return _ACTIVE


def mark_worker_process(is_worker: bool = True) -> None:
    """Declare this process a pool worker (``kill`` faults call ``os._exit``)."""
    global _IS_WORKER
    _IS_WORKER = is_worker


class _Scope:
    __slots__ = ("key", "attempt", "fired")

    def __init__(self, key: str, attempt: int) -> None:
        self.key = key
        self.attempt = attempt
        self.fired: Set[str] = set()


_SCOPE: Optional[_Scope] = None


@contextmanager
def task_scope(key: str, attempt: int = 0) -> Iterator[None]:
    """Declare the current task identity for the instrumented sites.

    Sites only fire inside a scope; ``attempt`` starts at 0 and transient
    kinds fire on attempt 0 only (so retries converge).  Scopes nest
    (the previous scope is restored on exit), and each scope fires at most
    one fault per kind — online schemes that solve dozens of LPs per task
    still fault once, not once per epoch.
    """
    global _SCOPE
    previous = _SCOPE
    _SCOPE = _Scope(key, attempt)
    try:
        yield
    finally:
        _SCOPE = previous


def maybe_inject(site: str) -> None:
    """Fire the scoped task's fault if it targets ``site`` (else no-op).

    This is the one-line hook the production sites call; with no injector
    installed or outside a task scope it returns immediately.
    """
    injector, scope = _ACTIVE, _SCOPE
    if injector is None or scope is None:
        return
    kind = injector.draw(scope.key)
    if kind is None or _SITE_OF[kind] != site or kind in scope.fired:
        return
    scope.fired.add(kind)
    if kind == "slow":
        time.sleep(injector.config.delay)
        return
    if kind == "lp":
        from .lp.solver import LPInfeasibleError

        error = LPInfeasibleError(
            f"injected solver fault (seed={injector.config.seed}, "
            f"task={scope.key})",
            status=-1,
            solver_message="injected by FaultInjector",
        )
        error.injected = True
        raise error
    if scope.attempt > 0:
        return  # transient kinds fire on the first attempt only
    if kind == "timeout":
        raise InjectedTimeout(
            f"injected timeout (seed={injector.config.seed}, task={scope.key})"
        )
    if kind == "store":
        raise InjectedStoreError(
            f"injected store-append failure (task={scope.key})"
        )
    if kind == "kill":
        if _IS_WORKER:
            os._exit(1)  # a real worker death: the pool breaks
        raise WorkerKilled(f"injected worker kill (task={scope.key})")


# -------------------------------------------------------- hardening utilities

@contextmanager
def deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`TaskTimeoutError` if the body exceeds ``seconds``.

    SIGALRM-based, so it interrupts CPU-bound LP solves and kernel loops —
    not just sleeps.  Silently a no-op off the main thread or on platforms
    without ``SIGALRM`` (Windows); injected ``timeout`` faults keep the
    timeout *handling* path testable everywhere regardless.

    Deadlines nest: the process owns a single ``ITIMER_REAL``, so entering
    an inner deadline captures whatever time the outer one had left (the
    ``setitimer`` return value) and the inner ``finally`` re-arms the outer
    timer with its *remaining* budget — elapsed wall-clock deducted, and an
    outer budget the inner body already exhausted fires (almost)
    immediately — instead of silently cancelling it.
    """
    if (
        not seconds
        or seconds <= 0
        or threading.current_thread() is not threading.main_thread()
        or not hasattr(signal, "SIGALRM")
    ):
        yield
        return

    def _expire(signum, frame):  # pragma: no cover - signal context
        raise TaskTimeoutError(f"task exceeded its {seconds}s wall-clock limit")

    previous = signal.signal(signal.SIGALRM, _expire)
    entered = time.monotonic()
    outer_remaining, _outer_interval = signal.setitimer(
        signal.ITIMER_REAL, seconds
    )
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if outer_remaining > 0.0:
            # Re-arm the enclosing deadline with whatever budget it has
            # left.  An already-exhausted outer budget cannot be armed with
            # 0.0 (that would disarm it), so it fires after a vanishing
            # grace period instead.
            remaining = outer_remaining - (time.monotonic() - entered)
            signal.setitimer(signal.ITIMER_REAL, max(remaining, 1e-6))


def backoff_delay(
    task_key: str, attempt: int, base: float, cap: float = 2.0
) -> float:
    """Capped exponential backoff with deterministic per-task jitter.

    ``attempt`` is the retry number (1 = first retry).  The jitter in
    ``[0, 1)`` is hashed from ``(task key, attempt)``, so parallel and
    serial runs — and re-runs — sleep identically: no shared-clock
    thundering herd, no nondeterminism.
    """
    if attempt <= 0 or base <= 0:
        return 0.0
    digest = hashlib.sha256(f"backoff:{task_key}:{attempt}".encode()).digest()
    jitter = int.from_bytes(digest[:4], "big") / 2.0**32
    return min(cap, base * (2.0 ** (attempt - 1)) * (1.0 + jitter))
