"""repro — reproduction of "Asymptotically Optimal Approximation Algorithms
for Coflow Scheduling" (Jahanjou, Kantor & Rajaraman, SPAA 2017).

The package implements the paper's LP-based coflow scheduling framework over
general network topologies together with everything it depends on:

* :mod:`repro.core` — coflow data model, capacitated networks, datacenter
  topologies, interval grids, schedule representations and validators;
* :mod:`repro.lp` — the sparse LP modelling layer (HiGHS back-end);
* :mod:`repro.circuit` — circuit-based coflows: the Section-2.1
  constant-factor algorithm (paths given) and Algorithm 1 of Section 2.2
  (joint routing and scheduling);
* :mod:`repro.packet` — packet-based coflows: the job-shop algorithm of
  Section 3.1 and the time-expanded-graph algorithm of Section 3.2;
* :mod:`repro.switch` — the non-blocking switch special case;
* :mod:`repro.baselines` — the competing heuristics of Section 4.3
  (Baseline, Schedule-only, Route-only) plus SEBF;
* :mod:`repro.sim` — the flow-level datacenter simulator of Section 4;
* :mod:`repro.workloads` — Poisson workload generation and synthetic traces;
* :mod:`repro.analysis` — experiment sweeps and report tables used by the
  benchmark harness that regenerates the paper's figures.

Quickstart::

    from repro.core import topologies
    from repro.workloads import WorkloadConfig, CoflowGenerator
    from repro.baselines import LPBasedScheme, BaselineScheme
    from repro.sim import FlowLevelSimulator

    network = topologies.fat_tree(k=4)
    instance = CoflowGenerator(network, WorkloadConfig(num_coflows=10,
                                                       coflow_width=8)).instance()
    simulator = FlowLevelSimulator(network)
    lp = simulator.run(instance, LPBasedScheme().plan(instance, network))
    base = simulator.run(instance, BaselineScheme().plan(instance, network))
    print(lp.weighted_completion_time, base.weighted_completion_time)
"""

__version__ = "1.0.0"

from . import analysis, baselines, circuit, core, lp, packet, sim, switch, workloads
from .core import Coflow, CoflowInstance, Flow, Network, topologies

__all__ = [
    "__version__",
    "core",
    "lp",
    "circuit",
    "packet",
    "switch",
    "baselines",
    "sim",
    "workloads",
    "analysis",
    "Flow",
    "Coflow",
    "CoflowInstance",
    "Network",
    "topologies",
]
