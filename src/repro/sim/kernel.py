"""Array-based simulation kernel: the fast event core of the simulator.

The original event loop (preserved as
:meth:`repro.sim.simulator.FlowLevelSimulator.run_reference`) re-derives
every flow's state from Python dicts at every event: it copies the capacity
dict, scans *all* flows for eligibility, scans all flows again for the next
release, and records every bandwidth segment through a per-segment
``insort``.  That made the simulator the last pure-Python hot path of large
scenario sweeps.

:class:`SimulationKernel` keeps the exact same event semantics but lays the
state out in flat index-addressed arrays built once per run:

* flows become contiguous indices ``0..n-1`` with ``remaining`` /
  ``release`` / ``rate`` state vectors (exposed as NumPy snapshots);
* the flow -> edge-index incidence is built once from the plan as a
  CSR-style pair (``flow_edge_ptr``, ``flow_edge_idx``) over the network's
  deterministic edge indexing; the allocation pass walks per-flow views of
  it against the edge-residual array;
* the *active* set (released, unfinished) is maintained incrementally in
  priority order — releases arrive through a sorted pointer, completions
  delete in place — so per-event work scales with the number of active
  flows, not the instance size;
* rate allocation is an index-ordered pass over the edge-residual array;
  for the default greedy-priority policy the pass is incremental: a flow's
  rate is re-derived only when it is marked *dirty* (a release, completion
  or upstream rate change on one of its edges), which is exact because a
  greedy rate depends only on higher-priority contributions — and when no
  flow is dirty the previous grants are reused outright;
* next-event selection is a running argmin over projected completion
  times, and the next release comes from the sorted pointer instead of a
  scan;
* bandwidth segments are coalesced on the fly (consecutive events at the
  same rate extend one segment) and recorded into
  :class:`~repro.core.schedule.CircuitSchedule` through the bulk
  :meth:`~repro.core.schedule.CircuitSchedule.extend_segments` append.

The kernel is numerically *identical* to the reference loop — same
arithmetic on the same values in the same order (covered by
``tests/sim/test_kernel_equivalence.py``) — and supports pausing at a
deadline (``run(until=...)``), which is what the online re-planning engine
in :mod:`repro.sim.online` splices epochs with.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.flows import CoflowInstance, FlowId
from ..core.network import Network, path_edges
from ..core.schedule import CircuitSchedule
from ..faults import maybe_inject
from .allocators import GreedyPriorityAllocator, RateAllocator, resolve_allocator
from .plan import SimulationPlan

__all__ = ["SimulationKernel", "ResidentSimulationKernel", "format_stuck_report"]

#: Volumes below this are considered fully transferred (numerical guard).
_VOLUME_EPS = 1e-9
#: Minimum simulated time step (guards against event-time rounding stalls).
_TIME_EPS = 1e-12


def format_stuck_report(
    reason: str,
    unfinished: Sequence[Tuple[FlowId, float, float]],
    saturated: Sequence[Tuple[Hashable, Hashable]],
    limit: int = 8,
) -> str:
    """Render an actionable stall / event-cap error message.

    ``unfinished`` lists ``(flow id, release time, remaining volume)`` of
    the flows the simulation still owes; ``saturated`` lists the edges with
    no residual capacity left under the current allocation.  Both are
    truncated to ``limit`` entries so pathological instances stay readable.
    """
    flows_text = ", ".join(
        f"{fid} (release={release:g}, remaining={remaining:g})"
        for fid, release, remaining in unfinished[:limit]
    )
    if len(unfinished) > limit:
        flows_text += f", ... {len(unfinished) - limit} more"
    lines = [reason, f"unfinished flows: {flows_text or 'none'}"]
    if saturated:
        edges_text = ", ".join(repr(e) for e in saturated[:limit])
        if len(saturated) > limit:
            edges_text += f", ... {len(saturated) - limit} more"
        lines.append(f"saturated edges on their paths: {edges_text}")
    else:
        lines.append("no saturated edges on their paths")
    return "; ".join(lines)


class SimulationKernel:
    """One simulation run over flat array state (see the module docstring).

    Parameters
    ----------
    network:
        The capacitated topology.
    instance:
        The coflow instance being simulated.
    plan:
        A *normalized and validated* simulation plan (the
        :class:`~repro.sim.simulator.FlowLevelSimulator` orchestrator takes
        care of that before building a kernel).
    allocator:
        Rate policy override; defaults to the allocator named by the plan.
    max_events:
        Optional event cap (defaults to the same ``4 n + 16`` defensive
        bound as the reference loop).
    start_time:
        Simulation clock start; the online engine launches epoch kernels at
        the arrival time they splice in at.
    """

    def __init__(
        self,
        network: Network,
        instance: CoflowInstance,
        plan: SimulationPlan,
        allocator: Optional[RateAllocator] = None,
        max_events: Optional[int] = None,
        start_time: float = 0.0,
    ) -> None:
        self.network = network
        self.instance = instance
        self.plan = plan
        self.allocator = allocator or resolve_allocator(plan.allocator)
        self.fids: List[FlowId] = instance.flow_ids()
        n = len(self.fids)
        #: flow id -> array position, prebuilt so per-flow lookups are O(1)
        #: (``fids.index`` would be O(n) per call — O(n^2) when iterating).
        self._pos: Dict[FlowId, int] = {fid: k for k, fid in enumerate(self.fids)}

        flows = [instance.flow(fid) for fid in self.fids]
        self._size: List[float] = [float(f.size) for f in flows]
        self._remaining: List[float] = list(self._size)
        self._release: List[float] = [float(f.release_time) for f in flows]
        self._completion: List[float] = [math.nan] * n
        self._start: List[float] = [math.nan] * n
        self._started: List[bool] = [False] * n
        coflow_weight = {
            i: float(coflow.weight) for i, coflow in enumerate(instance.coflows)
        }

        # Edge indexing shared with the LP layer: deterministic edge -> id.
        edge_index = network.edge_index()
        self.edge_list: List[Tuple[Hashable, Hashable]] = [None] * len(edge_index)
        for edge, idx in edge_index.items():
            self.edge_list[idx] = edge
        capacities = network.capacities()
        self._caps: List[float] = [0.0] * len(edge_index)
        for edge, idx in edge_index.items():
            self._caps[idx] = capacities[edge]

        # CSR-style flow -> edge-id incidence (built once from the plan);
        # the allocation pass walks the per-flow row views.
        ptr = [0]
        flat: List[int] = []
        for fid in self.fids:
            flat.extend(edge_index[e] for e in path_edges(list(plan.paths[fid])))
            ptr.append(len(flat))
        self.flow_edge_ptr = np.array(ptr, dtype=np.intp)
        self.flow_edge_idx = np.array(flat, dtype=np.intp)
        self._edges_of: List[List[int]] = [
            flat[ptr[k] : ptr[k + 1]] for k in range(n)
        ]

        # Allocator entries: (position, edge ids, coflow weight), prebuilt so
        # a generic allocator pass only gathers references.
        self._entries = [
            (k, self._edges_of[k], coflow_weight[self.fids[k][0]])
            for k in range(n)
        ]

        # Priority rank per position; the active list stays sorted by it.
        rank_of = plan.priority_rank()
        self._rank = [rank_of[fid] for fid in self.fids]

        # Pre-complete zero-size flows; everything else is pending release.
        self._segments: List[List[List[float]]] = [[] for _ in range(n)]
        self._completed = 0
        self._active: List[int] = []
        self._active_ranks: List[int] = []
        pending: List[Tuple[float, int, int]] = []
        for k in range(n):
            if self._size[k] <= _VOLUME_EPS:
                self._completion[k] = self._release[k]
                self._completed += 1
            else:
                pending.append((self._release[k], self._rank[k], k))
        pending.sort()
        self._pending = pending
        self._pending_ptr = 0

        # Incremental greedy state: previous rates, cached grants, and
        # flow-level dirty marks.  A greedy rate depends only on
        # higher-priority contributions on shared edges, so a change at one
        # flow can only affect the *active* lower-priority flows on its
        # edges; those are found through per-edge active lists kept sorted
        # by rank.
        self._greedy = type(self.allocator) is GreedyPriorityAllocator
        self._rate_prev: List[float] = [0.0] * n
        self._flow_dirty: List[bool] = [False] * n
        self._dirty_flows: List[int] = []
        self._force_full = True
        self._granted_pos: List[int] = []
        self._granted_rate: List[float] = []
        self._edge_active: List[List[int]] = [[] for _ in edge_index]
        self._edge_active_ranks: List[List[int]] = [[] for _ in edge_index]

        self.now = float(start_time)
        self.events = 0
        self.max_events = max_events if max_events is not None else 4 * n + 16

    # ------------------------------------------------------------- snapshots
    @property
    def remaining(self) -> np.ndarray:
        """Remaining volume per flow position (snapshot vector)."""
        return np.array(self._remaining)

    @property
    def release(self) -> np.ndarray:
        """Release time per flow position (snapshot vector)."""
        return np.array(self._release)

    @property
    def rate(self) -> np.ndarray:
        """Most recently allocated rate per flow position (snapshot vector)."""
        return np.array(self._rate_prev)

    @property
    def completion(self) -> np.ndarray:
        """Completion time per flow position (NaN = unfinished)."""
        return np.array(self._completion)

    @property
    def finished(self) -> bool:
        """Whether every flow of the instance has completed."""
        return self._completed == len(self.fids)

    def position(self, fid: FlowId) -> int:
        """The array position of flow ``fid`` (O(1)).

        Raises a ``KeyError`` naming the flow when the id is not part of
        this kernel's instance.
        """
        try:
            return self._pos[fid]
        except KeyError:
            raise KeyError(
                f"unknown flow {fid!r}: not part of instance "
                f"{self.instance.name!r}"
            ) from None

    def raw_segments(self, fid: FlowId) -> List[Tuple[float, float, float]]:
        """The coalesced ``(start, end, rate)`` segments recorded for ``fid``."""
        return [tuple(seg) for seg in self._segments[self.position(fid)]]

    def iter_raw_segments(
        self,
    ) -> Iterator[Tuple[FlowId, List[List[float]]]]:
        """Yield ``(flow id, [[start, end, rate], ...])`` for every flow."""
        for k, fid in enumerate(self.fids):
            yield fid, self._segments[k]

    def remaining_map(self) -> Dict[FlowId, float]:
        """Remaining volume per flow id."""
        return {fid: self._remaining[k] for k, fid in enumerate(self.fids)}

    def flow_completion_map(self) -> Dict[FlowId, float]:
        """Completion time per flow id (only flows that completed)."""
        return {
            fid: self._completion[k]
            for k, fid in enumerate(self.fids)
            if not math.isnan(self._completion[k])
        }

    def flow_start_map(self) -> Dict[FlowId, float]:
        """Start time per flow id (only flows that moved real volume)."""
        return {
            fid: self._start[k]
            for k, fid in enumerate(self.fids)
            if self._started[k]
        }

    # ------------------------------------------------------------ diagnostics
    def _unfinished_report(self) -> List[Tuple[FlowId, float, float]]:
        return [
            (self.fids[k], self._release[k], self._remaining[k])
            for k in range(len(self.fids))
            if math.isnan(self._completion[k])
        ]

    def _current_residual(self) -> List[float]:
        """Residual capacities under the current grants (diagnostics only)."""
        residual = self._caps.copy()
        for k, rate in zip(self._granted_pos, self._granted_rate):
            for e in self._edges_of[k]:
                residual[e] -= rate
        return residual

    def _saturated_edges(
        self, residual: List[float]
    ) -> List[Tuple[Hashable, Hashable]]:
        saturated: List[int] = []
        seen = set()
        for k in range(len(self.fids)):
            if math.isnan(self._completion[k]):
                for e in self._edges_of[k]:
                    if e not in seen and residual[e] <= _VOLUME_EPS:
                        seen.add(e)
                        saturated.append(e)
        return [self.edge_list[e] for e in sorted(saturated)]

    def _stuck_error(self, reason: str) -> RuntimeError:
        return RuntimeError(
            format_stuck_report(
                reason,
                self._unfinished_report(),
                self._saturated_edges(self._current_residual()),
            )
        )

    # ------------------------------------------------------------- allocation
    def _mark_dirty(self, k: int, include_self: bool = False) -> None:
        """Mark the flows a change at flow ``k`` can affect: the *active*
        flows sharing an edge with it at lower priority (plus, on release,
        ``k`` itself)."""
        if not self._greedy:
            return
        flow_dirty = self._flow_dirty
        dirty_flows = self._dirty_flows
        if include_self and not flow_dirty[k]:
            flow_dirty[k] = True
            dirty_flows.append(k)
        own = self._rank[k]
        for e in self._edges_of[k]:
            ranks = self._edge_active_ranks[e]
            for f in self._edge_active[e][bisect_right(ranks, own) :]:
                if not flow_dirty[f]:
                    flow_dirty[f] = True
                    dirty_flows.append(f)

    def _enter_active(self, k: int, rank: int) -> None:
        lo = bisect_right(self._active_ranks, rank)
        self._active.insert(lo, k)
        self._active_ranks.insert(lo, rank)
        if self._greedy:
            for e in self._edges_of[k]:
                lo = bisect_right(self._edge_active_ranks[e], rank)
                self._edge_active[e].insert(lo, k)
                self._edge_active_ranks[e].insert(lo, rank)

    def _leave_active(self, k: int) -> None:
        i = self._active.index(k)
        del self._active[i]
        del self._active_ranks[i]
        if self._greedy:
            for e in self._edges_of[k]:
                i = self._edge_active[e].index(k)
                del self._edge_active[e][i]
                del self._edge_active_ranks[e][i]

    def _allocate(self) -> Tuple[List[int], List[float]]:
        """One rate-allocation pass; returns the granted (positions, rates).

        The greedy-priority policy runs incrementally over flow-level dirty
        marks (exactly equivalent to a full pass — a greedy rate can only
        change when a higher-priority contribution on one of its edges
        changes, and every such change marks the edge's active flows).
        When no flow is dirty the previous grants are returned unchanged.
        Other allocators recompute from scratch through their shared
        :meth:`~repro.sim.allocators.RateAllocator.allocate` implementation.
        """
        if not self._greedy:
            residual = self._caps.copy()
            entries = [self._entries[k] for k in self._active]
            rates = self.allocator.allocate(residual, entries)
            granted_pos: List[int] = []
            granted_rate: List[float] = []
            for k in self._active:
                rate = rates[k]
                self._rate_prev[k] = rate
                if rate > 0.0:
                    granted_pos.append(k)
                    granted_rate.append(rate)
            self._granted_pos = granted_pos
            self._granted_rate = granted_rate
            return granted_pos, granted_rate

        if not self._force_full and not self._dirty_flows:
            # Nothing on any edge changed since the previous event (the
            # completion/release bookkeeping marks every flow a change could
            # reach), so the previous grant lists are still exact.
            return self._granted_pos, self._granted_rate

        granted_pos = []
        granted_rate = []
        edges_of = self._edges_of
        rate_prev = self._rate_prev
        flow_dirty = self._flow_dirty
        residual = self._caps.copy()
        lookup = residual.__getitem__
        force = self._force_full
        self._force_full = False
        for k in self._active:
            if force or flow_dirty[k]:
                edges = edges_of[k]
                rate = min(map(lookup, edges))
                if rate <= _VOLUME_EPS:
                    rate = 0.0
                if rate != rate_prev[k]:
                    rate_prev[k] = rate
                    if not force:
                        self._mark_dirty(k)
            else:
                rate = rate_prev[k]
            if rate > 0.0:
                for e in edges_of[k]:
                    residual[e] -= rate
                granted_pos.append(k)
                granted_rate.append(rate)
        for k in self._dirty_flows:
            flow_dirty[k] = False
        self._dirty_flows.clear()
        self._granted_pos = granted_pos
        self._granted_rate = granted_rate
        return granted_pos, granted_rate

    # ------------------------------------------------------------- event loop
    def run(self, until: Optional[float] = None) -> bool:
        """Advance the simulation; returns ``True`` once every flow is done.

        With ``until`` the loop pauses (state intact, segments recorded up
        to the deadline) as soon as the next event would land strictly
        beyond it — the online engine's splice point.
        """
        maybe_inject("sim")
        remaining = self._remaining
        size = self._size
        completion = self._completion
        start = self._start
        started = self._started
        n = len(self.fids)

        while self._completed < n:
            # 0. Releases whose time has come join the active set (kept in
            #    priority order; eligibility matches the reference's
            #    ``release > now + eps -> skip`` test).
            threshold = self.now + _TIME_EPS
            while (
                self._pending_ptr < len(self._pending)
                and self._pending[self._pending_ptr][0] <= threshold
            ):
                _release, flow_rank, k = self._pending[self._pending_ptr]
                self._pending_ptr += 1
                self._enter_active(k, flow_rank)
                self._mark_dirty(k, include_self=True)

            # 1. Allocate rates (index-ordered pass over the edge residuals).
            granted_pos, granted_rate = self._allocate()

            # 2. Next event: earliest projected completion vs next release.
            next_completion = math.inf
            for k, rate in zip(granted_pos, granted_rate):
                projected = self.now + remaining[k] / rate
                if projected < next_completion:
                    next_completion = projected
            next_release = (
                self._pending[self._pending_ptr][0]
                if self._pending_ptr < len(self._pending)
                else math.inf
            )
            next_time = min(next_completion, next_release)
            if not math.isfinite(next_time):
                raise self._stuck_error(
                    f"simulation stalled at t={self.now:g}: no runnable "
                    "flow and no pending release"
                )
            next_time = max(next_time, self.now + _TIME_EPS)

            # 3. Pause at the splice deadline instead of crossing it (a pause
            #    is not an event: nothing completes and no release passes).
            if until is not None and next_time > until:
                elapsed = until - self.now
                if elapsed > 0.0:
                    for k, rate in zip(granted_pos, granted_rate):
                        transferred = rate * elapsed
                        if transferred > remaining[k]:
                            transferred = remaining[k]
                        remaining[k] -= transferred
                        self._record_segment(k, self.now, until, rate)
                        if not started[k] and size[k] - remaining[k] > _VOLUME_EPS:
                            started[k] = True
                            start[k] = self.now
                    self.now = until
                return False

            self.events += 1
            if self.events > self.max_events:
                raise self._stuck_error(
                    f"simulation exceeded the event cap ({self.max_events}) "
                    f"at t={self.now:g}; this indicates an internal "
                    "inconsistency"
                )

            # 4. Advance: move volume, record segments, retire completions.
            elapsed = next_time - self.now
            done: List[int] = []
            for k, rate in zip(granted_pos, granted_rate):
                volume = remaining[k]
                transferred = rate * elapsed
                if transferred > volume:
                    transferred = volume
                after = volume - transferred
                if after <= _VOLUME_EPS:
                    after = 0.0
                    done.append(k)
                remaining[k] = after
                if not started[k] and size[k] - after > _VOLUME_EPS:
                    started[k] = True
                    start[k] = self.now
                self._record_segment(k, self.now, next_time, rate)
            for k in done:
                completion[k] = next_time
                self._completed += 1
                self._leave_active(k)
                self._rate_prev[k] = 0.0
                # Keep the cached grant lists exact for the no-change fast
                # path (a completed flow always held a positive grant).
                gi = self._granted_pos.index(k)
                del self._granted_pos[gi]
                del self._granted_rate[gi]
                self._mark_dirty(k)
            self.now = next_time
        return True

    def _record_segment(self, k: int, start: float, end: float, rate: float) -> None:
        segs = self._segments[k]
        if segs:
            last = segs[-1]
            if last[1] == start and last[2] == rate:
                last[1] = end
                return
        segs.append([start, end, rate])

    # ----------------------------------------------------------------- output
    def build_schedule(self) -> CircuitSchedule:
        """Materialise the realised :class:`CircuitSchedule` (bulk append)."""
        schedule = CircuitSchedule()
        for k, fid in enumerate(self.fids):
            schedule.set_path(fid, self.plan.paths[fid])
            if self._segments[k]:
                schedule.extend_segments(
                    fid, [(s, e, r) for s, e, r in self._segments[k]]
                )
        return schedule


class ResidentSimulationKernel(SimulationKernel):
    """A :class:`SimulationKernel` whose state survives re-plans.

    The per-epoch rebuild path constructs a fresh kernel from a
    sub-instance at every re-plan; this class instead keeps all per-flow
    state resident in growable slot arrays with a free-list, so a re-plan
    is an in-place delta:

    * :meth:`ingest` appends a row (or reuses a freed slot) for each newly
      admitted flow;
    * :meth:`begin_epoch` tombstones departed flows, re-ranks the
      survivors from the new plan order, rebuilds the release/active
      bookkeeping and resets the epoch-local baselines (sizes, start
      detection, event counter) so the inherited event loop behaves
      exactly as a freshly built kernel would;
    * :meth:`harvest_epoch` reports what the closing epoch changed
      (completions, starts, touched volumes, first-moved flows) in
      O(slots) bookkeeping scans, and :meth:`drain_all_segments` yields
      every flow's coalesced segments keyed by its ingest-unique id.

    The event loop itself is inherited unchanged, which is what makes the
    resident session bit-identical to the rebuild reference: within an
    epoch both run the same arithmetic on the same values in the same
    order, and :meth:`begin_epoch` reproduces exactly the state a fresh
    kernel construction would reach (unique ranks from the plan order, a
    rank-sorted active set, ``(release, rank, slot)``-sorted pending
    admissions, a forced full first allocation pass).

    Contract: flows are ingested with positive sizes only (the streaming
    engine completes zero-size ghosts at submit time, exactly like the
    rebuild path, which never places them in a sub-instance), and
    :meth:`ingest` / :meth:`update_path` are only called between
    :meth:`run` returning and the next :meth:`begin_epoch`.
    """

    def __init__(
        self,
        network: Network,
        allocator: str = "greedy",
        start_time: float = 0.0,
    ) -> None:
        self.network = network
        self.instance = None
        self.plan = None
        self.allocator_name = str(allocator)
        self.allocator = resolve_allocator(self.allocator_name)

        # Slot state (grows by append; freed slots are recycled LIFO).
        self.fids: List[Optional[FlowId]] = []
        self._pos: Dict[FlowId, int] = {}
        self._free: List[int] = []
        self._sid: List[int] = []  # ingest-unique id per slot occupancy
        self._next_sid = 0
        self.slots_reused = 0
        self._live: List[bool] = []
        self._size: List[float] = []
        self._remaining: List[float] = []
        self._release: List[float] = []
        self._completion: List[float] = []
        self._start: List[float] = []
        self._started: List[bool] = []
        self._rate_prev: List[float] = []
        self._rank: List[int] = []
        self._flow_dirty: List[bool] = []
        self._weight: List[float] = []
        self._edges_of: List[List[int]] = []
        self._entries: List[Tuple[int, List[int], float]] = []
        self._segments: List[List[List[float]]] = []

        # Harvest bookkeeping (what has already been reported upstream).
        self._harvested_completed: List[bool] = []
        self._harvest_remaining: List[float] = []
        self._harvest_moved: List[bool] = []
        self._archived_segments: Dict[int, List[List[float]]] = {}

        # Edge indexing shared with the LP layer (fixed for the session).
        edge_index = network.edge_index()
        self._edge_index = edge_index
        self.edge_list = [None] * len(edge_index)
        for edge, idx in edge_index.items():
            self.edge_list[idx] = edge
        capacities = network.capacities()
        self._caps = [0.0] * len(edge_index)
        for edge, idx in edge_index.items():
            self._caps[idx] = capacities[edge]

        # Event-loop state (rebuilt per epoch by begin_epoch).
        self._greedy = type(self.allocator) is GreedyPriorityAllocator
        self._completed = 0
        self._active: List[int] = []
        self._active_ranks: List[int] = []
        self._pending: List[Tuple[float, int, int]] = []
        self._pending_ptr = 0
        self._dirty_flows: List[int] = []
        self._force_full = True
        self._granted_pos: List[int] = []
        self._granted_rate: List[float] = []
        self._edge_active: List[List[int]] = [[] for _ in edge_index]
        self._edge_active_ranks: List[List[int]] = [[] for _ in edge_index]

        self.now = float(start_time)
        self.events = 0
        self.max_events = 16

    # ------------------------------------------------------------ slot deltas
    def _path_edge_ids(self, path) -> List[int]:
        edge_index = self._edge_index
        return [edge_index[e] for e in path_edges(list(path))]

    def ingest(self, fid: FlowId, size: float, release: float, path,
               weight: float = 1.0) -> int:
        """Admit one flow into a (new or recycled) slot; returns the slot."""
        if fid in self._pos:
            raise ValueError(f"flow {fid!r} is already resident")
        size = float(size)
        if size <= _VOLUME_EPS:
            raise ValueError(
                f"flow {fid!r} has no volume ({size:g}); zero-size flows "
                "complete at submit time and are never ingested"
            )
        edges = self._path_edge_ids(path)
        sid = self._next_sid
        self._next_sid += 1
        if self._free:
            k = self._free.pop()
            self.slots_reused += 1
            self.fids[k] = fid
            self._sid[k] = sid
            self._live[k] = True
            self._size[k] = size
            self._remaining[k] = size
            self._release[k] = float(release)
            self._completion[k] = math.nan
            self._start[k] = math.nan
            self._started[k] = False
            self._rate_prev[k] = 0.0
            self._rank[k] = 0
            self._flow_dirty[k] = False
            self._weight[k] = float(weight)
            self._edges_of[k] = edges
            self._entries[k] = (k, edges, float(weight))
            self._segments[k] = []
            self._harvested_completed[k] = False
            self._harvest_remaining[k] = size
            self._harvest_moved[k] = False
        else:
            k = len(self.fids)
            self.fids.append(fid)
            self._sid.append(sid)
            self._live.append(True)
            self._size.append(size)
            self._remaining.append(size)
            self._release.append(float(release))
            self._completion.append(math.nan)
            self._start.append(math.nan)
            self._started.append(False)
            self._rate_prev.append(0.0)
            self._rank.append(0)
            self._flow_dirty.append(False)
            self._weight.append(float(weight))
            self._edges_of.append(edges)
            self._entries.append((k, edges, float(weight)))
            self._segments.append([])
            self._harvested_completed.append(False)
            self._harvest_remaining.append(size)
            self._harvest_moved.append(False)
        self._pos[fid] = k
        return k

    def ingest_many(self, fids, sizes, releases, paths,
                    weight: float = 1.0) -> List[int]:
        """Admit a batch of flows; equivalent to sequential :meth:`ingest`.

        The compiled tier overrides this with a vectorised version; here it
        is the plain loop, kept so both tiers expose the same delta API.
        """
        return [
            self.ingest(fid, size, release, path, weight=weight)
            for fid, size, release, path in zip(fids, sizes, releases, paths)
        ]

    def slot_of(self, fid: FlowId) -> int:
        """The slot currently holding ``fid`` (raises when not resident)."""
        return self._pos[fid]

    def sid_of(self, fid: FlowId) -> int:
        """The ingest-unique id of the slot currently holding ``fid``."""
        return self._sid[self._pos[fid]]

    def update_path(self, k: int, path) -> None:
        """Re-route slot ``k`` (only legal between epochs, and only for
        flows that have not moved volume yet — the engine pins the path of
        every flow with recorded segments)."""
        edges = self._path_edge_ids(path)
        self._edges_of[k] = edges
        self._entries[k] = (k, edges, self._weight[k])

    def _free_slot(self, k: int, tombstone_time: float) -> None:
        if math.isnan(self._completion[k]):
            # Dwindled below the volume epsilon under a pause: the engine
            # records its completion at the re-plan time, mirror that here
            # so diagnostics never list a freed slot as unfinished.
            self._completion[k] = tombstone_time
        segments = self._segments[k]
        if segments:
            self._archived_segments[self._sid[k]] = segments
        self._segments[k] = []
        del self._pos[self.fids[k]]
        self.fids[k] = None
        self._live[k] = False
        self._free.append(k)

    # ------------------------------------------------------------- epoch turn
    def begin_epoch(
        self,
        now: float,
        order: Sequence[int],
        max_events: Optional[int] = None,
        allocator: Optional[str] = None,
    ) -> None:
        """Start a new epoch at time ``now`` with slots in ``order`` (the
        plan's priority order over every live, unfinished flow).

        Live slots missing from ``order`` must be finished (completed
        during the closing epoch, or paused below the volume epsilon) and
        are tombstoned into the free-list.  Everything a fresh kernel
        construction would derive — ranks, the rank-sorted active set and
        per-edge slabs, the ``(release, rank, slot)`` pending order, the
        epoch-local size/start baselines, the event counter and cap, the
        forced full allocation pass — is rebuilt in place.
        """
        if now + _TIME_EPS < self.now:
            raise ValueError(
                f"epoch start t={now:g} precedes the kernel clock "
                f"t={self.now:g}"
            )
        if allocator is not None and allocator != self.allocator_name:
            self.allocator_name = str(allocator)
            self.allocator = resolve_allocator(self.allocator_name)
            self._greedy = type(self.allocator) is GreedyPriorityAllocator

        in_order = set(order)
        for k in range(len(self.fids)):
            if self._live[k] and k not in in_order:
                if (math.isnan(self._completion[k])
                        and self._remaining[k] > _VOLUME_EPS):
                    raise ValueError(
                        f"slot {k} ({self.fids[k]!r}) still holds "
                        f"{self._remaining[k]:g} volume but is absent from "
                        "the epoch order"
                    )
                self._free_slot(k, now)

        rank = self._rank
        size = self._size
        remaining = self._remaining
        release = self._release
        start = self._start
        started = self._started
        threshold = now + _TIME_EPS
        active: List[int] = []
        active_ranks: List[int] = []
        pending: List[Tuple[float, int, int]] = []
        for i, k in enumerate(order):
            rank[k] = i
            # Epoch-local baselines: a fresh kernel's size is the volume
            # remaining at the epoch start, and start detection restarts
            # (the engine keeps only the first epoch's start per flow).
            size[k] = remaining[k]
            started[k] = False
            start[k] = math.nan
            if release[k] <= threshold:
                active.append(k)
                active_ranks.append(i)
            else:
                pending.append((release[k], i, k))
        pending.sort()
        self._active = active
        self._active_ranks = active_ranks
        self._pending = pending
        self._pending_ptr = 0

        edge_active = self._edge_active = [[] for _ in self._caps]
        edge_active_ranks = self._edge_active_ranks = [[] for _ in self._caps]
        if self._greedy:
            for k, rk in zip(active, active_ranks):
                for e in self._edges_of[k]:
                    edge_active[e].append(k)
                    edge_active_ranks[e].append(rk)

        for k in self._dirty_flows:
            self._flow_dirty[k] = False
        self._dirty_flows.clear()
        self._force_full = True
        self._granted_pos = []
        self._granted_rate = []
        # Freed slots count as completed so the inherited loop's
        # ``completed < len(fids)`` termination sees only live work.
        self._completed = len(self.fids) - len(order)
        self.now = float(now)
        self.events = 0
        self.max_events = (
            max_events if max_events is not None else 4 * len(order) + 16
        )

    # ---------------------------------------------------------------- harvest
    def harvest_epoch(self):
        """What the closing epoch changed, as slot-keyed deltas.

        Returns ``(completions, starts, touched, moved)``:
        ``completions`` / ``starts`` are ``(slot, time)`` pairs newly
        observed since the previous harvest, ``touched`` is ``(slot,
        remaining)`` for flows whose volume moved, and ``moved`` lists
        slots that recorded their first bandwidth segment (the engine pins
        their paths).  Call this *before* :meth:`begin_epoch` frees the
        departed slots.
        """
        completions: List[Tuple[int, float]] = []
        starts: List[Tuple[int, float]] = []
        touched: List[Tuple[int, float]] = []
        moved: List[int] = []
        for k in range(len(self.fids)):
            if not self._live[k]:
                continue
            if (not self._harvested_completed[k]
                    and not math.isnan(self._completion[k])):
                self._harvested_completed[k] = True
                completions.append((k, self._completion[k]))
            if self._started[k]:
                starts.append((k, self._start[k]))
            if self._remaining[k] != self._harvest_remaining[k]:
                self._harvest_remaining[k] = self._remaining[k]
                touched.append((k, self._remaining[k]))
            if self._segments[k] and not self._harvest_moved[k]:
                self._harvest_moved[k] = True
                moved.append(k)
        return completions, starts, touched, moved

    def drain_all_segments(self) -> Iterator[Tuple[int, List[List[float]]]]:
        """Yield ``(ingest id, segments)`` for every flow that ever moved
        volume in this session (tombstoned occupancies included)."""
        yield from self._archived_segments.items()
        for k in range(len(self.fids)):
            if self._live[k] and self._segments[k]:
                yield self._sid[k], self._segments[k]

    def build_schedule(self) -> CircuitSchedule:  # pragma: no cover - guard
        raise RuntimeError(
            "a resident kernel has no plan of its own; the streaming "
            "engine assembles the final schedule from its session state"
        )
