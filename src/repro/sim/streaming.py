"""Streaming scheduler service: batched, warm-startable re-planning.

:mod:`repro.sim.online` re-plans at *every* coflow arrival — the right
semantics for paper-style comparisons, but unusable at production arrival
rates: plan time (LP assembly + solve) dominates once the compiled kernel
tier made simulation cheap.  This module generalises the online engine into
a long-running **service**:

* :class:`StreamingScheduler` ingests a stream of coflow arrivals
  (:meth:`StreamingScheduler.submit`) and departures (a coflow departs when
  its last flow completes; completed coflows leave every future plan), and
  re-plans in **batches** governed by a :class:`BatchPolicy` — a batch
  closes at the ``max_batch``-th pending arrival or ``max_delay`` after its
  first pending arrival, whichever comes first;
* every re-plan admits *all* arrivals known at the re-plan time, so a
  coflow waits **at most** ``max_delay`` between arriving and being planned
  — the policy's declared *staleness bound*
  (:meth:`BatchPolicy.staleness_bound`), asserted on every run via
  :meth:`StreamingScheduler.staleness_report`;
* per re-plan wall-clock decision latency and replans/sec are recorded
  first-class (:meth:`StreamingScheduler.streaming_metrics`) — the metrics
  ``repro bench streaming`` appends to ``BENCH_simulator.json``.

With ``BatchPolicy(max_batch=1)`` the re-plan times are exactly the distinct
coflow release times, and the engine reproduces
:class:`repro.sim.online.OnlineFlowSimulator` **bit-identically** — the
online simulator is now literally a batch-size-1 streaming session (see its
``run``), and ``tests/sim/test_streaming_equivalence.py`` holds the two
engines equal across a seeded topology × workload × allocator matrix.

Warm-starting lives one layer down: replanners that solve the Section-2.1 LP
per epoch can keep a :class:`repro.lp.incremental.IncrementalGivenPathsLP`
across re-plans (see :class:`WarmLPReplanner`), which caches per-flow
derived structure over a pinned interval grid and re-emits matrices
byte-identical to a cold rebuild — so warm-started solutions match cold ones
exactly (``==``, no tolerance) while skipping the per-flow path/bottleneck/
grid work.  The engine itself additionally **memoizes the sub-instance**
across re-plans: per-flow ``Flow`` objects are rebuilt only when their
remaining volume changed, per-coflow sections only when membership or any
member's volume changed, and the ``fid_map`` object is *reused* whenever the
active membership is unchanged (the fix for the per-arrival fid-map rebuild
noted in ISSUE 8).

The service API is deliberately small::

    scheduler = StreamingScheduler(network, replanner, policy=BatchPolicy(4, 2.0))
    for coflow in feed:
        scheduler.submit(coflow)          # arrivals, in release-time order
        scheduler.advance(until=now)      # process matured re-plan batches
    result = scheduler.finish()           # drain and splice the final result

``advance``/``finish`` may be interleaved with ``submit`` freely as long as
arrivals are not submitted "late" (at or before an already-processed re-plan
time); re-plan boundaries depend only on the arrival stream, so pausing and
resuming a session never changes the epoch structure (property-tested).
"""

from __future__ import annotations

import bisect
import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.flows import Coflow, CoflowInstance, Flow, FlowId
from ..core.network import Network
from ..core.schedule import CircuitSchedule
from .allocators import resolve_allocator
from .kernel import ResidentSimulationKernel, SimulationKernel
from .kernel_jit import paused_gc
from .plan import SimulationPlan
from .simulator import (
    SimulationResult,
    _build_result,
    make_kernel,
    resolve_backend,
    resolve_resident,
    validate_backend,
)

__all__ = [
    "BatchPolicy",
    "ReplanContext",
    "Replanner",
    "StaticPlanReplanner",
    "StreamingError",
    "StreamingScheduler",
    "WarmLPReplanner",
    "ColdLPReplanner",
]

#: Volumes below this are considered fully transferred (numerical guard).
_VOLUME_EPS = 1e-9


class StreamingError(RuntimeError):
    """Raised on service-contract violations (late arrivals, reuse after
    finish, duplicate runs on one session)."""


@dataclass(frozen=True)
class BatchPolicy:
    """When does the scheduler re-plan?

    Attributes
    ----------
    max_batch:
        Close the current batch as soon as it holds this many pending coflow
        arrivals.  ``1`` re-plans at every arrival (the online engine);
        ``None`` means unbounded (time-driven batching only).
    max_delay:
        Close the current batch at the latest ``max_delay`` after its *first*
        pending arrival.  Because a re-plan admits every coflow that has
        arrived by the re-plan time, no coflow ever waits longer than
        ``max_delay`` between arriving and being planned — this is the
        policy's staleness bound.
    """

    max_batch: Optional[int] = 1
    max_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.max_batch is not None and self.max_batch < 1:
            raise ValueError("max_batch must be >= 1 (or None for unbounded)")
        if self.max_delay < 0 or not math.isfinite(self.max_delay):
            raise ValueError("max_delay must be finite and >= 0")
        if self.max_batch is None and self.max_delay == 0:
            raise ValueError(
                "unbounded max_batch requires a positive max_delay "
                "(otherwise the batch never closes)"
            )

    def staleness_bound(self) -> float:
        """Max time a coflow can wait between arrival and admission."""
        if self.max_batch == 1:
            return 0.0
        return self.max_delay

    def next_replan_time(self, arrivals: Sequence[float], start: int = 0) -> Tuple[float, int]:
        """Close time of the batch opening at ``arrivals[start]``.

        Returns ``(close_time, next_start)`` where ``next_start`` indexes the
        first arrival of the following batch.  ``arrivals`` must be sorted
        and distinct.
        """
        n = len(arrivals)
        deadline = arrivals[start] + self.max_delay
        j = start + 1
        count = 1
        while (
            j < n
            and (self.max_batch is None or count < self.max_batch)
            and arrivals[j] <= deadline
        ):
            j += 1
            count += 1
        if self.max_batch is not None and count >= self.max_batch:
            return arrivals[j - 1], j
        return deadline, j

    def replan_times(self, arrivals: Sequence[float]) -> List[float]:
        """Re-plan times for a sorted stream of *distinct* arrival times.

        Scans left to right: a batch opens at the first unadmitted arrival
        and closes at its ``max_batch``-th member or ``max_delay`` after it
        opened, whichever is earlier; the re-plan at the close time admits
        every arrival ≤ that time.  The recursion restarts at the first
        still-unadmitted arrival, so the output for a suffix of the stream
        equals the suffix of the output — which is what makes pause/resume
        splices of a streaming session epoch-identical to a straight run.
        """
        times: List[float] = []
        i = 0
        while i < len(arrivals):
            close, i = self.next_replan_time(arrivals, i)
            times.append(close)
        return times


@dataclass
class ReplanContext:
    """What a replanner sees at one re-plan event.

    Attributes
    ----------
    now:
        The re-plan time (an arrival time with ``max_batch=1``; a batch
        close time in general).
    instance:
        Sub-instance of all *arrived* coflows restricted to their unfinished
        flows, with each flow's size replaced by its remaining volume.
        Coflow positions and weights are preserved for arrived coflows;
        flow ids are renumbered — use :attr:`fid_map` to translate.
    network:
        The capacitated topology.
    fid_map:
        Sub-instance flow id -> original instance flow id.  When the active
        membership is unchanged since the previous re-plan this is the *same
        dict object* (memoized); treat it as read-only.
    pinned_paths:
        Original flow id -> path, for flows that already moved volume.  The
        engine forces these paths onto the returned plan; replanners may
        consult them (e.g. for congestion-aware routing of new flows).
    previous:
        The previous epoch's plan in *original* flow ids (``None`` at the
        first re-plan).
    """

    now: float
    instance: CoflowInstance
    network: Network
    fid_map: Dict[FlowId, FlowId]
    pinned_paths: Dict[FlowId, Tuple[Hashable, ...]]
    previous: Optional[SimulationPlan] = None


#: A replanner maps a re-plan context to a plan over the context's
#: sub-instance (plan paths/order are keyed by *sub-instance* flow ids).
Replanner = Callable[[ReplanContext], SimulationPlan]


class StaticPlanReplanner:
    """Replanner that always answers with one fixed plan's restriction.

    The degenerate online scheduler: at every re-plan it returns the
    original static plan, restricted to the unfinished flows of the arrived
    coflows.  Online simulation under this replanner reproduces the static
    simulation of the same plan — the anchor property of the online engine's
    test suite.
    """

    def __init__(self, plan: SimulationPlan) -> None:
        self.plan = plan
        self._rank = {fid: index for index, fid in enumerate(plan.order)}

    def __call__(self, context: ReplanContext) -> SimulationPlan:
        """Restrict the fixed plan to the context's sub-instance.

        Sorting the live flows by their precomputed global rank produces
        exactly the order of walking the full plan and keeping the live
        entries (ranks are unique), but costs O(live log live) per re-plan
        instead of O(full plan) — the difference between this replanner
        being usable or not on 100k-flow streams.
        """
        fid_map = context.fid_map
        plan = self.plan
        rank = self._rank
        paths = {sub: plan.paths[orig] for sub, orig in fid_map.items()}
        order = sorted(
            (sub for sub in fid_map if fid_map[sub] in rank),
            key=lambda sub: rank[fid_map[sub]],
        )
        return SimulationPlan(
            paths=paths,
            order=order,
            name=plan.name,
            allocator=plan.allocator,
        )


@dataclass
class _CoflowSection:
    """Memoized sub-instance section for one original coflow."""

    members: Tuple[FlowId, ...]
    sizes: Tuple[float, ...]
    coflow: Coflow


class StreamingScheduler:
    """Long-running scheduler session over a stream of coflow arrivals.

    One session simulates one continuous horizon; construct a fresh session
    per run (:class:`repro.sim.online.OnlineFlowSimulator` does exactly
    that with ``BatchPolicy(max_batch=1)``).

    Parameters
    ----------
    network:
        The capacitated topology.
    replanner:
        Callback invoked at every re-plan (see :data:`Replanner`).
    policy:
        Batching policy; the default re-plans at every arrival.
    max_events:
        Optional per-epoch event cap forwarded to each kernel epoch.
    backend:
        Kernel backend for every epoch (``"array"``, ``"jit"``, ``"auto"``
        or ``None`` — defer to the per-epoch plan / environment).
    resident:
        Keep one resident kernel session across re-plans instead of
        rebuilding a kernel per epoch: arrivals are ingested once,
        re-plans patch priorities/paths on the live kernel, and departures
        tombstone slots into a free-list.  ``None`` defers to the
        ``REPRO_SIM_RESIDENT`` environment variable, then ``False``.
        Orthogonal to ``backend`` and bit-identical to the rebuild path
        by contract (the equivalence suite asserts it), so — like the
        backend — it never enters scheme signatures or run-store keys.
    """

    def __init__(
        self,
        network: Network,
        replanner: Replanner,
        policy: BatchPolicy = BatchPolicy(),
        max_events: Optional[int] = None,
        backend: Optional[str] = None,
        name: Optional[str] = None,
        resident: Optional[bool] = None,
    ) -> None:
        validate_backend(backend)
        self.network = network
        self.replanner = replanner
        self.policy = policy
        self.max_events = max_events
        self.backend = backend
        self.resident = resolve_resident(resident)
        self.name = name
        # ---- arrival stream state
        self._coflows: List[Coflow] = []
        self._pending: List[Tuple[float, int]] = []  # (release, idx), sorted
        self._admitted: Dict[int, float] = {}  # coflow idx -> admission time
        self._active_arrived: List[int] = []  # admitted, not yet departed
        self._last_replan: Optional[float] = None
        # ---- accumulators (original flow ids)
        self._remaining: Dict[FlowId, float] = {}
        self._completion: Dict[FlowId, float] = {}
        self._start: Dict[FlowId, float] = {}
        self._segments: Dict[FlowId, List[List[float]]] = {}
        self._current_path: Dict[FlowId, Tuple[Hashable, ...]] = {}
        self._pinned: Dict[FlowId, Tuple[Hashable, ...]] = {}
        self._previous_plan: Optional[SimulationPlan] = None
        self._events = 0
        # ---- the epoch planned at the last re-plan, not yet simulated
        self._open_epoch: Optional[
            Tuple[float, CoflowInstance, SimulationPlan, Dict[FlowId, FlowId]]
        ] = None
        # ---- sub-instance memoization
        self._flow_memo: Dict[FlowId, Tuple[float, Flow]] = {}
        self._section_memo: Dict[int, _CoflowSection] = {}
        self._fid_map_signature: Optional[Tuple] = None
        self._fid_map: Dict[FlowId, FlowId] = {}
        self._fid_map_reuses = 0
        #: Coflows with a member whose remaining volume changed since the
        #: previous re-plan (their memoized section must be re-derived) and
        #: coflows whose every flow has completed (skipped outright).
        self._dirty_coflows: set = set()
        self._done_coflows: set = set()
        #: Per-flow validated-path cache: original fid -> the exact tuple
        #: object last validated against the network for that flow.  A
        #: steady-state re-plan revalidates only flows whose path changed,
        #: and path tuples are canonicalised to one object per flow so the
        #: resident patch can compare paths by identity.
        self._validated_paths: Dict[FlowId, Tuple[Hashable, ...]] = {}
        self._validated_specs: set = set()
        #: Re-routes observed by the last _finalize_plan pass: (orig fid,
        #: new canonical path) for resident flows whose planned path moved
        #: away from the session's current one.  Lets the per-epoch patch
        #: skip the per-flow path compare entirely.
        self._changed_paths: List[Tuple[FlowId, Tuple[Hashable, ...]]] = []
        # ---- the resident kernel session (lazy; rebuild mode never makes one)
        self._session_kernel: Optional[ResidentSimulationKernel] = None
        self._sid_to_fid: Dict[int, FlowId] = {}
        # ---- observability
        self.decision_log: List[Dict[str, float]] = []
        self._staleness: List[float] = []
        self._setup_seconds = 0.0
        self._result: Optional[SimulationResult] = None
        self._source_instance: Optional[CoflowInstance] = None

    # -------------------------------------------------------------- ingestion
    @property
    def replan_count(self) -> int:
        """Number of re-plans the session has executed so far."""
        return len(self.decision_log)

    @property
    def fid_map_reuses(self) -> int:
        """How many re-plans reused the previous fid-map object outright."""
        return self._fid_map_reuses

    def submit(self, coflow: Coflow) -> int:
        """Ingest one coflow arrival; returns its index in the stream.

        Arrivals must respect causality: submitting a coflow whose release
        time is at or before an already-processed re-plan time raises
        :class:`StreamingError` (that re-plan should have admitted it).
        """
        if self._result is not None:
            raise StreamingError("session is finished; start a new one")
        release = coflow.release_time
        if self._last_replan is not None and release <= self._last_replan:
            raise StreamingError(
                f"late arrival: release {release:g} is not after the last "
                f"processed re-plan at {self._last_replan:g}"
            )
        index = len(self._coflows)
        self._coflows.append(coflow)
        bisect.insort(self._pending, (release, index))
        for j, flow in enumerate(coflow.flows):
            fid = (index, j)
            self._remaining[fid] = flow.size
            self._segments[fid] = []
            if flow.size <= _VOLUME_EPS:
                # Zero-size flows complete at release, as in the static loop.
                self._completion[fid] = flow.release_time
        return index

    def completed_coflows(self) -> List[int]:
        """Indices of departed coflows (every flow finished) so far."""
        done = []
        for i, coflow in enumerate(self._coflows):
            if all((i, j) in self._completion for j in range(len(coflow.flows))):
                done.append(i)
        return done

    # ------------------------------------------------------------- processing
    def advance(self, until: Optional[float] = None) -> int:
        """Process every matured re-plan batch; returns how many ran.

        With ``until`` given, only re-plans scheduled at or before ``until``
        run (call again later, after submitting more arrivals, to continue);
        without it every batch derivable from the known arrivals runs.  The
        epoch planned by the final re-plan stays open until the next
        ``advance`` or :meth:`finish` closes it — its simulation outcome
        depends only on the plan, so deferring it never changes the result.
        """
        if self._result is not None:
            raise StreamingError("session is finished; start a new one")
        ran = 0
        max_batch = self.policy.max_batch
        max_delay = self.policy.max_delay
        # One GC pause spans every epoch this call processes — the compiled
        # tier's per-run pause (kernel_jit.paused_gc) nests as a no-op.
        with paused_gc():
            while self._pending:
                # next_replan_time only ever inspects distinct arrival times
                # up to the batch deadline (or the max_batch-th), so feed it
                # that prefix instead of sorting the whole pending set every
                # iteration — O(batch) per re-plan, not O(pending).
                deadline = self._pending[0][0] + max_delay
                arrivals: List[float] = []
                for release, _i in self._pending:
                    if release > deadline:
                        break
                    if not arrivals or release != arrivals[-1]:
                        arrivals.append(release)
                        if max_batch is not None and len(arrivals) >= max_batch:
                            break
                t, _next = self.policy.next_replan_time(arrivals)
                if until is not None and t > until:
                    break
                self._process_replan(t)
                ran += 1
        return ran

    def drain(self) -> None:
        """Process every known re-plan and run the final epoch to completion.

        The online phase of :meth:`finish` without the result assembly —
        the seam the streaming bench times (both modes pay the same final
        materialisation cost, which would otherwise dilute the comparison).
        No-op on a finished session.
        """
        if self._result is not None:
            return
        with paused_gc():
            self.advance()
            self._close_open_epoch(until=None)

    def finish(self) -> SimulationResult:
        """Process all known re-plans, drain the last epoch, splice the result.

        Idempotent: repeated calls return the same result object.
        """
        if self._result is None:
            self.drain()
            self._result = self._build_final()
        return self._result

    def run(
        self, instance: CoflowInstance, plan_name: Optional[str] = None
    ) -> SimulationResult:
        """Convenience one-shot: submit the whole instance, drain, splice.

        This is the entry point :class:`repro.sim.online.OnlineFlowSimulator`
        delegates to; it requires a pristine session.
        """
        if self._coflows or self._result is not None:
            raise StreamingError("run() requires a fresh session")
        if plan_name is not None:
            self.name = plan_name
        self._source_instance = instance
        for coflow in instance.coflows:
            self.submit(coflow)
        return self.finish()

    # ---------------------------------------------------------------- metrics
    def streaming_metrics(self) -> Dict[str, float]:
        """Replans/sec, decision-latency percentiles and staleness so far.

        *Decision latency* is the wall-clock cost of one re-plan — building
        the sub-instance, invoking the replanner and validating/pinning the
        plan (kernel simulation time is excluded; it is the part PR 7 already
        made cheap).  *Replans/sec* is ``replans / total planning seconds``.
        *Epoch setup seconds* is the mean per-re-plan wall time spent
        outside both the event loop and the planner — kernel construction
        and state merging in rebuild mode, harvest/patch deltas in resident
        mode — the cost residency exists to erase.
        """
        walls = [entry["wall_seconds"] for entry in self.decision_log]
        total = float(sum(walls))
        report = self.staleness_report()
        return {
            "epoch_setup_seconds": (
                self._setup_seconds / len(walls) if walls else 0.0
            ),
            "replans": float(len(walls)),
            "arrivals": float(len(self._coflows)),
            "plan_seconds": total,
            "replans_per_sec": (len(walls) / total) if total > 0 else 0.0,
            "arrivals_per_plan_sec": (
                len(self._admitted) / total if total > 0 else 0.0
            ),
            "p50_decision_latency": float(np.percentile(walls, 50)) if walls else 0.0,
            "p99_decision_latency": float(np.percentile(walls, 99)) if walls else 0.0,
            "max_decision_latency": max(walls) if walls else 0.0,
            "max_staleness": report["max_staleness"],
            "staleness_bound": report["bound"],
            "events": float(self._events),
            "fid_map_reuses": float(self._fid_map_reuses),
        }

    def staleness_report(self) -> Dict[str, float]:
        """Observed admission staleness against the policy's declared bound.

        ``within_bound`` is 1.0 iff every admitted coflow waited at most
        ``policy.staleness_bound()`` between arrival and admission — the
        structural invariant the CI smoke asserts.
        """
        bound = self.policy.staleness_bound()
        observed = max(self._staleness) if self._staleness else 0.0
        return {
            "max_staleness": observed,
            "mean_staleness": (
                sum(self._staleness) / len(self._staleness)
                if self._staleness
                else 0.0
            ),
            "bound": bound,
            "within_bound": 1.0 if observed <= bound + 1e-9 else 0.0,
        }

    # ----------------------------------------------------------------- engine
    def _process_replan(self, now: float) -> None:
        """Run one re-plan at time ``now``: close the open epoch, admit every
        arrival ≤ ``now``, build the (memoized) sub-instance, plan, pin."""
        self._close_open_epoch(until=now)
        t0 = time.perf_counter()
        new_coflows: List[int] = []
        while self._pending and self._pending[0][0] <= now:
            release, index = self._pending.pop(0)
            self._admitted[index] = now
            bisect.insort(self._active_arrived, index)
            self._staleness.append(now - release)
            new_coflows.append(index)
        sub_instance, fid_map = self._build_sub_instance(
            self._active_arrived, now
        )
        context = ReplanContext(
            now=now,
            instance=sub_instance,
            network=self.network,
            fid_map=fid_map,
            pinned_paths=dict(self._pinned),
            previous=self._previous_plan,
        )
        sub_plan = self.replanner(context)
        sub_plan = self._finalize_plan(sub_plan, sub_instance, fid_map)
        orig_order = [fid_map[sub] for sub in sub_plan.order]
        self._previous_plan = SimulationPlan(
            paths={orig: sub_plan.paths[sub] for sub, orig in fid_map.items()},
            order=orig_order,
            name=sub_plan.name,
            allocator=sub_plan.allocator,
        )
        if self.resident:
            wall = time.perf_counter() - t0
            t1 = time.perf_counter()
            self._patch_resident(now, sub_plan, orig_order, new_coflows)
            self._setup_seconds += time.perf_counter() - t1
        else:
            # Canonical tuples via _finalize_plan mean current_path only
            # needs updating for flows that are new or actually re-routed.
            current_path = self._current_path
            validated = self._validated_paths
            for i in new_coflows:
                section = self._section_memo.get(i)
                if section is None:
                    continue
                for orig in section.members:
                    current_path[orig] = validated[orig]
            for orig, path in self._changed_paths:
                current_path[orig] = path
            wall = time.perf_counter() - t0
        self._open_epoch = (now, sub_instance, sub_plan, fid_map)
        self._last_replan = now
        self.decision_log.append(
            {
                "now": now,
                "wall_seconds": wall,
                "admitted": float(len(new_coflows)),
                "active_coflows": float(len(sub_instance.coflows)),
                "active_flows": float(len(fid_map)),
            }
        )

    def _finalize_plan(
        self,
        sub_plan: SimulationPlan,
        sub_instance: CoflowInstance,
        fid_map: Dict[FlowId, FlowId],
    ) -> SimulationPlan:
        """Normalise, pin and validate one re-plan's output, incrementally.

        Semantically ``sub_plan.normalized(sub_instance)`` + pinning moved
        flows + ``sub_plan.validate(sub_instance, network)``, but the
        network walk is cached per flow: a path is checked against the
        topology only the first time the session sees it for that flow
        (the network is fixed for the session), so a steady-state re-plan
        costs O(live) dict lookups instead of O(live × path length) graph
        queries.  Paths are canonicalised to one tuple object per flow,
        which is what lets the resident patch detect "unchanged" by
        identity.
        """
        src_paths = sub_plan.paths
        missing = [sub for sub in fid_map if sub not in src_paths]
        if missing:
            raise ValueError(
                f"plan {sub_plan.name!r} missing paths for {missing}"
            )
        spec_key = (sub_plan.allocator, sub_plan.backend)
        if spec_key not in self._validated_specs:
            resolve_allocator(sub_plan.allocator)  # raises on unknown names
            validate_backend(sub_plan.backend)
            self._validated_specs.add(spec_key)
        pinned = self._pinned
        validated = self._validated_paths
        network = self.network
        changed = self._changed_paths
        changed.clear()
        paths: Dict[FlowId, Tuple[Hashable, ...]] = {}
        for sub, orig in fid_map.items():
            pin = pinned.get(orig)
            if pin is not None:
                # Flows that moved volume keep their current (already
                # validated) path regardless of what the replanner said.
                paths[sub] = pin
                continue
            path = src_paths[sub]
            known = validated.get(orig)
            if path is not known:
                tpath = path if type(path) is tuple else tuple(path)
                if tpath != known:
                    flow = sub_instance.flow(sub)
                    if tpath[0] != flow.source or tpath[-1] != flow.destination:
                        raise ValueError(
                            f"plan {sub_plan.name!r}: path endpoints for "
                            f"{sub} do not match flow"
                        )
                    network.validate_path(tpath)
                    if known is not None:
                        # A live, unmoved flow was re-routed: remember it so
                        # the epoch patch can skip per-flow path compares.
                        changed.append((orig, tpath))
                else:
                    tpath = known
                validated[orig] = tpath
                path = tpath
            paths[sub] = path
        order = list(sub_plan.order)
        seen = set(order)
        order += [sub for sub in fid_map if sub not in seen]
        return SimulationPlan(
            paths=paths,
            order=order,
            name=sub_plan.name,
            allocator=sub_plan.allocator,
            spec=sub_plan.spec,
            backend=sub_plan.backend,
        )

    def _close_open_epoch(self, until: Optional[float]) -> None:
        """Simulate the epoch planned at the last re-plan up to ``until``."""
        if self._open_epoch is None:
            return
        now, sub_instance, sub_plan, fid_map = self._open_epoch
        self._open_epoch = None
        if self.resident:
            kernel = self._session_kernel
            kernel.run(until=until)
            t1 = time.perf_counter()
            self._events += kernel.events
            self._harvest_resident(kernel)
            self._setup_seconds += time.perf_counter() - t1
            return
        t1 = time.perf_counter()
        kernel = make_kernel(
            self.network,
            sub_instance,
            sub_plan,
            max_events=self.max_events,
            start_time=now,
            backend=self.backend,
        )
        setup = time.perf_counter() - t1
        kernel.run(until=until)
        t2 = time.perf_counter()
        self._events += kernel.events
        self._merge_epoch(kernel, fid_map)
        self._setup_seconds += setup + (time.perf_counter() - t2)

    # --------------------------------------------------------------- resident
    def _make_resident_kernel(
        self, now: float, allocator: str
    ) -> ResidentSimulationKernel:
        """One resident kernel per session, chosen once at the first re-plan.

        The compiled resident tier lowers only the greedy policy (like the
        per-run jit tier); other allocators — and machines without a C
        toolchain — use the array-resident kernel.  Both are bit-identical
        to the rebuild path, so the choice is invisible in results.
        """
        resolved = resolve_backend(self.backend)
        if resolved == "jit" and allocator == "greedy":
            from . import kernel_jit

            if kernel_jit.available():
                return kernel_jit.ResidentJitKernel(
                    self.network, allocator=allocator, start_time=now
                )
        return ResidentSimulationKernel(
            self.network, allocator=allocator, start_time=now
        )

    def _patch_resident(
        self,
        now: float,
        sub_plan: SimulationPlan,
        orig_order: List[FlowId],
        new_coflows: Sequence[int],
    ) -> None:
        """Apply one re-plan to the live kernel as an in-place delta.

        New flows are ingested once (at their original size and release —
        the kernel tracks remaining volume natively across epochs); flows
        whose plan path changed are re-routed (only ever flows that have
        not moved volume — moved flows arrive pre-pinned); everything else
        is merely re-ranked by :meth:`ResidentSimulationKernel.begin_epoch`,
        which also tombstones the slots of departed flows.

        The delta is O(new + changed): _finalize_plan canonicalises every
        path and records re-routes, and the admission loop records new
        coflows, so steady-state flows need no per-flow python at all —
        the order translation is a single C-level ``map`` over the
        original-fid order the re-plan already produced.
        """
        kernel = self._session_kernel
        if kernel is None:
            kernel = self._session_kernel = self._make_resident_kernel(
                now, sub_plan.allocator
            )
        slot_map = kernel._pos
        current_path = self._current_path
        remaining = self._remaining
        validated = self._validated_paths
        sid_to_fid = self._sid_to_fid
        for i in new_coflows:
            section = self._section_memo.get(i)
            if section is None:
                # Every member dwindled to completion at admission time.
                continue
            coflow = self._coflows[i]
            flows = coflow.flows
            members = section.members
            paths = [validated[orig] for orig in members]
            kernel.ingest_many(
                members,
                [remaining[orig] for orig in members],
                [flows[orig[1]].release_time for orig in members],
                paths,
                weight=coflow.weight,
            )
            for orig, path in zip(members, paths):
                sid_to_fid[kernel.sid_of(orig)] = orig
                current_path[orig] = path
        for orig, path in self._changed_paths:
            kernel.update_path(slot_map[orig], path)
            current_path[orig] = path
        order = np.fromiter(
            map(slot_map.__getitem__, orig_order),
            dtype=np.int64,
            count=len(orig_order),
        )
        kernel.begin_epoch(
            now, order, max_events=self.max_events, allocator=sub_plan.allocator
        )

    def _harvest_resident(self, kernel: ResidentSimulationKernel) -> None:
        """Fold the closing epoch's deltas into the global accumulators.

        The resident twin of :meth:`_merge_epoch`: instead of walking every
        sub-instance flow it applies only what actually changed —
        completions, epoch starts, touched volumes (which also dirty the
        owning coflow's memoized section) and first-ever segment recordings
        (which pin the flow's path, exactly like the rebuild merge).
        """
        completions, starts, touched, moved = kernel.harvest_epoch()
        fids = kernel.fids
        pinned = self._pinned
        current_path = self._current_path
        for k in moved:
            orig = fids[k]
            pinned[orig] = current_path[orig]
        completion = self._completion
        for k, t in completions:
            orig = fids[k]
            completion[orig] = t
            # A completed flow never re-enters a plan: drop its pin so the
            # per-re-plan pinned snapshot stays O(live), not O(history).
            pinned.pop(orig, None)
        start = self._start
        for k, t in starts:
            orig = fids[k]
            if orig not in start:
                start[orig] = t
        remaining = self._remaining
        dirty = self._dirty_coflows
        for k, volume in touched:
            orig = fids[k]
            remaining[orig] = volume
            dirty.add(orig[0])

    def _build_sub_instance(
        self, arrived: Sequence[int], now: float
    ) -> Tuple[CoflowInstance, Dict[FlowId, FlowId]]:
        """The unfinished volume of the arrived coflows, renumbered densely.

        Memoized at three levels: per-flow ``Flow`` objects are rebuilt only
        when the remaining volume changed, per-coflow sections only when
        their membership or sizes changed, and the ``fid_map`` dict is reused
        outright when the active membership matches the previous re-plan.
        Flows whose remaining volume has dwindled below the numerical guard
        are marked complete at ``now`` instead of entering the sub-instance.

        Coflows with no member change since the previous re-plan (not in
        ``_dirty_coflows``) reuse their section without touching per-flow
        state, and fully-departed coflows (``_done_coflows``) are skipped
        outright — so one re-plan costs O(changed), not O(arrived).
        """
        coflows: List[Coflow] = []
        signature: List[Tuple[int, Tuple[FlowId, ...]]] = []
        sections: List[Tuple[int, Tuple[FlowId, ...]]] = []
        dirty = self._dirty_coflows
        done = self._done_coflows
        departed: List[int] = []
        for i in arrived:
            if i in done:
                departed.append(i)
                continue
            section = self._section_memo.get(i)
            if section is not None and i not in dirty:
                # No member completed, dwindled or changed volume since the
                # previous re-plan: membership and sizes are unchanged, so
                # the memoized section is exact.
                coflows.append(section.coflow)
                signature.append((i, section.members))
                sections.append((len(coflows) - 1, section.members))
                continue
            coflow = self._coflows[i]
            members: List[FlowId] = []
            for j in range(len(coflow.flows)):
                fid = (i, j)
                if fid in self._completion:
                    continue
                if self._remaining[fid] <= _VOLUME_EPS:
                    self._completion[fid] = now
                    self._pinned.pop(fid, None)
                    continue
                members.append(fid)
            if not members:
                self._section_memo.pop(i, None)
                done.add(i)
                departed.append(i)
                continue
            member_key = tuple(members)
            sizes = tuple(self._remaining[fid] for fid in members)
            if section is None or section.members != member_key or section.sizes != sizes:
                flows = []
                for fid in members:
                    flow = coflow.flows[fid[1]]
                    memo = self._flow_memo.get(fid)
                    size = self._remaining[fid]
                    if memo is None or memo[0] != size:
                        sub_flow = Flow(
                            source=flow.source,
                            destination=flow.destination,
                            size=size,
                            release_time=flow.release_time,
                        )
                        self._flow_memo[fid] = (size, sub_flow)
                    else:
                        sub_flow = memo[1]
                    flows.append(sub_flow)
                section = _CoflowSection(
                    members=member_key,
                    sizes=sizes,
                    coflow=Coflow(
                        flows=tuple(flows), weight=coflow.weight, name=coflow.name
                    ),
                )
                self._section_memo[i] = section
            coflows.append(section.coflow)
            signature.append((i, member_key))
            sections.append((len(coflows) - 1, member_key))
        dirty.clear()
        if departed and arrived is self._active_arrived:
            # Departed coflows never rejoin a plan; drop them from the
            # active-arrived list so re-plans stay O(live), not O(arrived).
            for i in departed:
                self._active_arrived.remove(i)
        sig = tuple(signature)
        if sig == self._fid_map_signature:
            self._fid_map_reuses += 1
        else:
            fid_map: Dict[FlowId, FlowId] = {}
            for sub_i, member_key in sections:
                for sub_j, orig in enumerate(member_key):
                    fid_map[(sub_i, sub_j)] = orig
            self._fid_map = fid_map
            self._fid_map_signature = sig
        name = self._instance_name()
        return (
            CoflowInstance(coflows=coflows, name=f"{name}@{now:g}"),
            self._fid_map,
        )

    def _instance_name(self) -> str:
        source = self._source_instance
        if source is not None and source.name:
            return source.name
        return self.name or "instance"

    def _merge_epoch(
        self, kernel: SimulationKernel, fid_map: Dict[FlowId, FlowId]
    ) -> None:
        """Fold one epoch's kernel state back into the global accumulators."""
        remaining = self._remaining
        completion = self._completion
        start = self._start
        segments = self._segments
        epoch_completion = kernel.flow_completion_map()
        epoch_start = kernel.flow_start_map()
        dirty = self._dirty_coflows
        for sub_fid, volume in kernel.remaining_map().items():
            orig = fid_map[sub_fid]
            if remaining[orig] != volume:
                remaining[orig] = volume
                dirty.add(orig[0])
            if sub_fid in epoch_start and orig not in start:
                start[orig] = epoch_start[sub_fid]
        for sub_fid, new_segments in kernel.iter_raw_segments():
            if not new_segments:
                continue
            orig = fid_map[sub_fid]
            target = segments[orig]
            for seg in new_segments:
                if target and target[-1][1] == seg[0] and target[-1][2] == seg[2]:
                    target[-1][1] = seg[1]
                else:
                    target.append(list(seg))
            self._pinned[orig] = self._current_path[orig]
        pinned = self._pinned
        for sub_fid, finished_at in epoch_completion.items():
            orig = fid_map[sub_fid]
            completion[orig] = finished_at
            # Completed flows never re-enter a plan: drop their pins so the
            # per-re-plan pinned snapshot stays O(live), not O(history).
            pinned.pop(orig, None)

    # ------------------------------------------------------------------ final
    def _full_instance(self) -> CoflowInstance:
        source = self._source_instance
        if source is not None:
            return source
        return CoflowInstance(
            coflows=list(self._coflows), name=self.name or "stream"
        )

    def _build_final(self) -> SimulationResult:
        instance = self._full_instance()
        if self._session_kernel is not None:
            # Resident sessions accumulate segments inside the kernel
            # (attributed by ingest-unique slot ids so the free-list can
            # recycle slots); drain them into the per-flow map once.
            segments = self._segments
            sid_to_fid = self._sid_to_fid
            for sid, segs in self._session_kernel.drain_all_segments():
                segments[sid_to_fid[sid]] = segs
        schedule = CircuitSchedule()
        for fid in instance.flow_ids():
            path = self._current_path.get(fid)
            if path is None:
                # Never planned (zero-size flow in a coflow that produced no
                # sub-instance): fall back to a shortest path for bookkeeping.
                flow = instance.flow(fid)
                path = tuple(
                    self.network.shortest_path(flow.source, flow.destination)
                )
                self._current_path[fid] = path
            schedule.set_path(fid, path)
            if self._segments[fid]:
                schedule.extend_segments(
                    fid, [tuple(s) for s in self._segments[fid]]
                )
        previous_plan = self._previous_plan
        final_plan = SimulationPlan(
            paths=dict(self._current_path),
            order=list(previous_plan.order) if previous_plan else [],
            name=self.name
            or (previous_plan.name if previous_plan else "online"),
            allocator=previous_plan.allocator if previous_plan else "greedy",
        )
        return _build_result(
            instance,
            self.network,
            final_plan.normalized(instance),
            self._completion,
            self._start,
            schedule,
            self._events,
        )


class WarmLPReplanner:
    """LP-ordering replanner that warm-starts assembly across re-plans.

    At every re-plan: route each *new* flow on its shortest path (flows that
    already moved volume arrive pre-pinned via ``pinned_paths``), solve the
    Section-2.1 given-paths LP over the active sub-instance through a
    persistent :class:`repro.lp.incremental.IncrementalGivenPathsLP`, and
    order flows by LP completion time.

    The interval grid is **pinned** by ``horizon`` at construction (pass the
    value of ``GivenPathsLP``'s default horizon for the *full* instance), so
    every epoch's LP shares coefficients and the per-flow structure cache
    stays valid.  :class:`ColdLPReplanner` makes the same decisions by
    rebuilding from scratch over the same pinned grid — the equivalence
    harness holds the two bit-identical, and the streaming bench measures
    the wall-clock gap.
    """

    def __init__(
        self,
        network: Network,
        horizon: float,
        epsilon: Optional[float] = None,
        allocator: str = "greedy",
        use_basis: str = "never",
    ) -> None:
        from ..lp.incremental import IncrementalGivenPathsLP

        self.assembler = IncrementalGivenPathsLP(
            network, horizon=horizon, epsilon=epsilon, use_basis=use_basis
        )
        self.network = network
        self.allocator = allocator
        self.last_relaxation = None

    def _routed(self, context: ReplanContext) -> Dict[FlowId, Tuple]:
        paths: Dict[FlowId, Tuple] = {}
        for sub, orig in context.fid_map.items():
            pinned = context.pinned_paths.get(orig)
            if pinned is not None:
                paths[sub] = tuple(pinned)
            else:
                flow = context.instance.flow(sub)
                paths[sub] = tuple(
                    self.network.shortest_path(flow.source, flow.destination)
                )
        return paths

    def __call__(self, context: ReplanContext) -> SimulationPlan:
        paths = self._routed(context)
        routed = context.instance.with_paths(paths)
        self.assembler.sync(routed, stable_ids=context.fid_map)
        relaxation = self.assembler.relax()
        self.last_relaxation = relaxation
        return SimulationPlan(
            paths=paths,
            order=relaxation.flow_order(),
            name="warm-lp",
            allocator=self.allocator,
        )


class ColdLPReplanner:
    """The rebuild-from-scratch twin of :class:`WarmLPReplanner`.

    Identical routing and ordering decisions, but every re-plan constructs a
    fresh ``GivenPathsLP`` over the same pinned grid — the baseline the
    streaming bench's ≥3× gate compares against, and the reference the
    warm == cold exactness property is checked with.
    """

    def __init__(
        self,
        network: Network,
        horizon: float,
        epsilon: Optional[float] = None,
        allocator: str = "greedy",
    ) -> None:
        from ..circuit.given_paths import DEFAULT_EPSILON

        self.network = network
        self.horizon = float(horizon)
        self.epsilon = DEFAULT_EPSILON if epsilon is None else epsilon
        self.allocator = allocator
        self.last_relaxation = None

    def _routed(self, context: ReplanContext) -> Dict[FlowId, Tuple]:
        paths: Dict[FlowId, Tuple] = {}
        for sub, orig in context.fid_map.items():
            pinned = context.pinned_paths.get(orig)
            if pinned is not None:
                paths[sub] = tuple(pinned)
            else:
                flow = context.instance.flow(sub)
                paths[sub] = tuple(
                    self.network.shortest_path(flow.source, flow.destination)
                )
        return paths

    def __call__(self, context: ReplanContext) -> SimulationPlan:
        from ..circuit.given_paths import GivenPathsLP

        paths = self._routed(context)
        routed = context.instance.with_paths(paths)
        relaxation = GivenPathsLP(
            routed, self.network, epsilon=self.epsilon, horizon=self.horizon
        ).relax()
        self.last_relaxation = relaxation
        return SimulationPlan(
            paths=paths,
            order=relaxation.flow_order(),
            name="cold-lp",
            allocator=self.allocator,
        )
