"""Compiled kernel tier: the event loop lowered to a native code core.

The array kernel (:mod:`repro.sim.kernel`) removed the per-event
re-derivation of the reference loop but still dispatches every event —
active-set maintenance, the dirty-flag greedy allocation pass over the CSR
flow→edge incidence, the argmin next-event selection, segment coalescing —
through the Python interpreter.  That caps sweep instances around a few
thousand flows.  This module lowers exactly that loop into a small C core
operating on the same typed arrays, which is what 100k-flow instances need
(millions of events per second instead of tens of thousands).

Engine
------
The preferred lowering named by the roadmap is a Numba ``@njit`` of the
loop; this build targets environments where ``numba`` (and Cython) are not
installed, so the tier ships the equivalent *compiled C core*: ~300 lines
of dependency-free C99 (embedded in :data:`_C_SOURCE`), built once with the
system C toolchain (``cc -O2 -ffp-contract=off``), cached on disk keyed by
a source digest, and loaded through :mod:`ctypes`.  ``-ffp-contract=off``
matters: fused multiply-adds would change the rounding of
``remaining - rate * elapsed`` and break the bit-identity contract below.
When no C compiler is present, :func:`available` reports ``False`` and the
dispatch layer (:func:`repro.sim.simulator.make_kernel`) falls back to the
array kernel — selecting the ``jit`` backend is always safe.

Bit-identity contract
---------------------
:class:`JitSimulationKernel` performs the *same IEEE-754 double arithmetic
on the same values in the same order* as :class:`SimulationKernel` (which
is itself property-tested against ``run_reference()``), so all three event
loops produce identical completion/start times.  The C core only lowers the
default greedy-priority policy — the one the paper's methodology and every
pinned benchmark use; plans selecting ``max-min`` / ``weighted`` allocators
transparently run on the array kernel.  ``tests/sim/test_kernel_equivalence.py``
asserts the three-way equivalence across topology × workload × allocator
families, online splicing included.

State lives in the parent class's Python lists between calls: each
:meth:`JitSimulationKernel.run` call lowers the current state to typed
arrays, executes the compiled core (pausing at ``until`` exactly like the
array kernel), and writes the state back — so pause/resume splicing, the
online engine and every diagnostic (stuck reports, snapshots) behave
identically across backends.
"""

from __future__ import annotations

import ctypes
import gc
import hashlib
import math
import os
import subprocess
import tempfile
from pathlib import Path
from typing import List, Optional

import numpy as np

from ..faults import maybe_inject
from .kernel import SimulationKernel, _TIME_EPS, _VOLUME_EPS

__all__ = ["JitSimulationKernel", "available", "engine", "compiled_library_path"]

#: Exit statuses of the C core's event loop.
_FINISHED = 0
_PAUSED = 1
_STALLED = 2
_EVENT_CAP = 3
_NEED_SEGMENT_SPACE = 4

#: Slots of the int64 state vector shared with the C core.
_EVENTS, _PENDING_PTR, _ACT_LEN, _DIRTY_LEN, _G_LEN = 0, 1, 2, 3, 4
_FORCE_FULL, _COMPLETED, _SEG_LEN, _MAX_EVENTS = 5, 6, 7, 8
_ISTATE_SLOTS = 9

_C_SOURCE = r"""
/* The greedy-priority event loop of repro.sim.kernel, lowered to C99.
 *
 * Every float operation mirrors the Python kernel statement-for-statement
 * (compile with -ffp-contract=off; no reassociation) so completion times
 * are bit-identical.  All state lives in caller-owned arrays; the function
 * returns a status and can be re-entered to resume (pause at `until`,
 * segment-buffer drain).
 */
#include <math.h>
#include <string.h>

typedef long long i64;

/* istate slots (keep in sync with kernel_jit.py) */
#define ST_EVENTS 0
#define ST_PENDING_PTR 1
#define ST_ACT_LEN 2
#define ST_DIRTY_LEN 3
#define ST_G_LEN 4
#define ST_FORCE_FULL 5
#define ST_COMPLETED 6
#define ST_SEG_LEN 7
#define ST_MAX_EVENTS 8

typedef struct {
    i64 n, n_edges;
    const double *size;
    double *remaining;
    double *completion;
    double *start;
    unsigned char *started;
    const i64 *rank;
    const i64 *csr_ptr;
    const i64 *csr_idx;
    const double *caps;
    double *residual;
    const double *pend_release;
    const i64 *pend_rank;
    const i64 *pend_k;
    i64 n_pending;
    i64 *act;
    i64 *act_rank;
    const i64 *ea_off;
    i64 *ea_flow;
    i64 *ea_rank;
    i64 *ea_len;
    unsigned char *flow_dirty;
    i64 *dirty_stack;
    i64 *g_pos;
    double *g_rate;
    double *rate_prev;
    i64 *seg_flow;
    double *seg_start;
    double *seg_end;
    double *seg_rate;
    i64 seg_cap;
    i64 *last_seg;
    i64 *done_scratch;
    i64 *istate;
    double *dstate;
    double vol_eps, time_eps;
} ctx_t;

/* bisect.bisect_right over an i64 array. */
static i64 upper_bound(const i64 *arr, i64 len, i64 value) {
    i64 lo = 0, hi = len;
    while (lo < hi) {
        i64 mid = (lo + hi) / 2;
        if (value < arr[mid]) hi = mid; else lo = mid + 1;
    }
    return lo;
}

/* SimulationKernel._mark_dirty: the active lower-priority flows sharing an
 * edge with k (plus, on release, k itself). */
static void mark_dirty(ctx_t *c, i64 k, int include_self) {
    if (include_self && !c->flow_dirty[k]) {
        c->flow_dirty[k] = 1;
        c->dirty_stack[c->istate[ST_DIRTY_LEN]++] = k;
    }
    i64 own = c->rank[k];
    for (i64 p = c->csr_ptr[k]; p < c->csr_ptr[k + 1]; p++) {
        i64 e = c->csr_idx[p];
        i64 off = c->ea_off[e];
        i64 len = c->ea_len[e];
        for (i64 q = upper_bound(c->ea_rank + off, len, own); q < len; q++) {
            i64 f = c->ea_flow[off + q];
            if (!c->flow_dirty[f]) {
                c->flow_dirty[f] = 1;
                c->dirty_stack[c->istate[ST_DIRTY_LEN]++] = f;
            }
        }
    }
}

/* SimulationKernel._enter_active: sorted insert into the active list and
 * into each edge's active slab. */
static void enter_active(ctx_t *c, i64 k, i64 rk) {
    i64 len = c->istate[ST_ACT_LEN];
    i64 lo = upper_bound(c->act_rank, len, rk);
    memmove(c->act + lo + 1, c->act + lo, (size_t)(len - lo) * sizeof(i64));
    memmove(c->act_rank + lo + 1, c->act_rank + lo,
            (size_t)(len - lo) * sizeof(i64));
    c->act[lo] = k;
    c->act_rank[lo] = rk;
    c->istate[ST_ACT_LEN] = len + 1;
    for (i64 p = c->csr_ptr[k]; p < c->csr_ptr[k + 1]; p++) {
        i64 e = c->csr_idx[p];
        i64 off = c->ea_off[e];
        i64 elen = c->ea_len[e];
        i64 pos = upper_bound(c->ea_rank + off, elen, rk);
        memmove(c->ea_flow + off + pos + 1, c->ea_flow + off + pos,
                (size_t)(elen - pos) * sizeof(i64));
        memmove(c->ea_rank + off + pos + 1, c->ea_rank + off + pos,
                (size_t)(elen - pos) * sizeof(i64));
        c->ea_flow[off + pos] = k;
        c->ea_rank[off + pos] = rk;
        c->ea_len[e] = elen + 1;
    }
}

/* SimulationKernel._leave_active: delete-in-place from the active list and
 * each edge slab. */
static void leave_active(ctx_t *c, i64 k) {
    i64 len = c->istate[ST_ACT_LEN];
    i64 i = 0;
    while (c->act[i] != k) i++;
    memmove(c->act + i, c->act + i + 1, (size_t)(len - i - 1) * sizeof(i64));
    memmove(c->act_rank + i, c->act_rank + i + 1,
            (size_t)(len - i - 1) * sizeof(i64));
    c->istate[ST_ACT_LEN] = len - 1;
    for (i64 p = c->csr_ptr[k]; p < c->csr_ptr[k + 1]; p++) {
        i64 e = c->csr_idx[p];
        i64 off = c->ea_off[e];
        i64 elen = c->ea_len[e];
        i64 j = 0;
        while (c->ea_flow[off + j] != k) j++;
        memmove(c->ea_flow + off + j, c->ea_flow + off + j + 1,
                (size_t)(elen - j - 1) * sizeof(i64));
        memmove(c->ea_rank + off + j, c->ea_rank + off + j + 1,
                (size_t)(elen - j - 1) * sizeof(i64));
        c->ea_len[e] = elen - 1;
    }
}

/* SimulationKernel._allocate, greedy incremental path: re-derive only the
 * dirty flows; reuse the cached grants outright when nothing is dirty. */
static void allocate(ctx_t *c) {
    int force = (int)c->istate[ST_FORCE_FULL];
    if (!force && c->istate[ST_DIRTY_LEN] == 0) return;
    c->istate[ST_FORCE_FULL] = 0;
    memcpy(c->residual, c->caps, (size_t)c->n_edges * sizeof(double));
    i64 g = 0;
    i64 alen = c->istate[ST_ACT_LEN];
    for (i64 i = 0; i < alen; i++) {
        i64 k = c->act[i];
        double rate;
        if (force || c->flow_dirty[k]) {
            rate = INFINITY;
            for (i64 p = c->csr_ptr[k]; p < c->csr_ptr[k + 1]; p++) {
                double v = c->residual[c->csr_idx[p]];
                if (v < rate) rate = v;
            }
            if (rate <= c->vol_eps) rate = 0.0;
            if (rate != c->rate_prev[k]) {
                c->rate_prev[k] = rate;
                if (!force) mark_dirty(c, k, 0);
            }
        } else {
            rate = c->rate_prev[k];
        }
        if (rate > 0.0) {
            for (i64 p = c->csr_ptr[k]; p < c->csr_ptr[k + 1]; p++)
                c->residual[c->csr_idx[p]] -= rate;
            c->g_pos[g] = k;
            c->g_rate[g] = rate;
            g++;
        }
    }
    for (i64 i = 0; i < c->istate[ST_DIRTY_LEN]; i++)
        c->flow_dirty[c->dirty_stack[i]] = 0;
    c->istate[ST_DIRTY_LEN] = 0;
    c->istate[ST_G_LEN] = g;
}

/* SimulationKernel._record_segment: coalesce into the flow's last segment
 * of this call's buffer, else append. */
static void record_segment(ctx_t *c, i64 k, double s, double e, double r) {
    i64 last = c->last_seg[k];
    if (last >= 0 && c->seg_end[last] == s && c->seg_rate[last] == r) {
        c->seg_end[last] = e;
        return;
    }
    i64 len = c->istate[ST_SEG_LEN];
    c->seg_flow[len] = k;
    c->seg_start[len] = s;
    c->seg_end[len] = e;
    c->seg_rate[len] = r;
    c->last_seg[k] = len;
    c->istate[ST_SEG_LEN] = len + 1;
}

i64 repro_greedy_run(
    i64 n, i64 n_edges,
    const double *size, double *remaining,
    double *completion, double *start, unsigned char *started,
    const i64 *rank, const i64 *csr_ptr, const i64 *csr_idx,
    const double *caps, double *residual,
    const double *pend_release, const i64 *pend_rank, const i64 *pend_k,
    i64 n_pending,
    i64 *act, i64 *act_rank,
    const i64 *ea_off, i64 *ea_flow, i64 *ea_rank, i64 *ea_len,
    unsigned char *flow_dirty, i64 *dirty_stack,
    i64 *g_pos, double *g_rate, double *rate_prev,
    i64 *seg_flow, double *seg_start, double *seg_end, double *seg_rate,
    i64 seg_cap, i64 *last_seg, i64 *done_scratch,
    i64 *istate, double *dstate,
    double until, double vol_eps, double time_eps)
{
    ctx_t C = {
        n, n_edges, size, remaining, completion, start, started, rank,
        csr_ptr, csr_idx, caps, residual, pend_release, pend_rank, pend_k,
        n_pending, act, act_rank, ea_off, ea_flow, ea_rank, ea_len,
        flow_dirty, dirty_stack, g_pos, g_rate, rate_prev, seg_flow,
        seg_start, seg_end, seg_rate, seg_cap, last_seg, done_scratch,
        istate, dstate, vol_eps, time_eps,
    };
    ctx_t *c = &C;
    while (c->istate[ST_COMPLETED] < n) {
        double now = c->dstate[0];
        /* 0. Releases whose time has come join the active set. */
        double threshold = now + c->time_eps;
        while (c->istate[ST_PENDING_PTR] < c->n_pending &&
               c->pend_release[c->istate[ST_PENDING_PTR]] <= threshold) {
            i64 pp = c->istate[ST_PENDING_PTR]++;
            i64 k = c->pend_k[pp];
            enter_active(c, k, c->pend_rank[pp]);
            mark_dirty(c, k, 1);
        }
        /* 1. Allocate rates (incremental greedy pass). */
        allocate(c);
        i64 glen = c->istate[ST_G_LEN];
        /* Drain point: this event records at most glen segments; return to
         * Python for a bigger/empty buffer before mutating anything. */
        if (c->istate[ST_SEG_LEN] + glen > c->seg_cap) return 4;
        /* 2. Next event: earliest projected completion vs next release. */
        double next_completion = INFINITY;
        for (i64 i = 0; i < glen; i++) {
            double projected = now + c->remaining[c->g_pos[i]] / c->g_rate[i];
            if (projected < next_completion) next_completion = projected;
        }
        double next_release =
            (c->istate[ST_PENDING_PTR] < c->n_pending)
                ? c->pend_release[c->istate[ST_PENDING_PTR]]
                : INFINITY;
        double next_time =
            next_completion < next_release ? next_completion : next_release;
        if (!isfinite(next_time)) return 2;
        {
            double floor_time = now + c->time_eps;
            if (next_time < floor_time) next_time = floor_time;
        }
        /* 3. Pause at the splice deadline instead of crossing it. */
        if (next_time > until) {
            double elapsed = until - now;
            if (elapsed > 0.0) {
                for (i64 i = 0; i < glen; i++) {
                    i64 k = c->g_pos[i];
                    double rate = c->g_rate[i];
                    double transferred = rate * elapsed;
                    if (transferred > c->remaining[k])
                        transferred = c->remaining[k];
                    c->remaining[k] -= transferred;
                    record_segment(c, k, now, until, rate);
                    if (!c->started[k] &&
                        c->size[k] - c->remaining[k] > c->vol_eps) {
                        c->started[k] = 1;
                        c->start[k] = now;
                    }
                }
                c->dstate[0] = until;
            }
            return 1;
        }
        c->istate[ST_EVENTS] += 1;
        if (c->istate[ST_EVENTS] > c->istate[ST_MAX_EVENTS]) return 3;
        /* 4. Advance: move volume, record segments, retire completions. */
        {
            double elapsed = next_time - now;
            i64 ndone = 0;
            for (i64 i = 0; i < glen; i++) {
                i64 k = c->g_pos[i];
                double rate = c->g_rate[i];
                double volume = c->remaining[k];
                double transferred = rate * elapsed;
                if (transferred > volume) transferred = volume;
                double after = volume - transferred;
                if (after <= c->vol_eps) {
                    after = 0.0;
                    c->done_scratch[ndone++] = k;
                }
                c->remaining[k] = after;
                if (!c->started[k] && c->size[k] - after > c->vol_eps) {
                    c->started[k] = 1;
                    c->start[k] = now;
                }
                record_segment(c, k, now, next_time, rate);
            }
            for (i64 d = 0; d < ndone; d++) {
                i64 k = c->done_scratch[d];
                c->completion[k] = next_time;
                c->istate[ST_COMPLETED] += 1;
                leave_active(c, k);
                c->rate_prev[k] = 0.0;
                /* Keep the cached grant lists exact for the no-change fast
                 * path (a completed flow always held a positive grant). */
                i64 g2 = c->istate[ST_G_LEN];
                i64 gi = 0;
                while (c->g_pos[gi] != k) gi++;
                memmove(c->g_pos + gi, c->g_pos + gi + 1,
                        (size_t)(g2 - gi - 1) * sizeof(i64));
                memmove(c->g_rate + gi, c->g_rate + gi + 1,
                        (size_t)(g2 - gi - 1) * sizeof(double));
                c->istate[ST_G_LEN] = g2 - 1;
                mark_dirty(c, k, 0);
            }
            c->dstate[0] = next_time;
        }
    }
    return 0;
}
"""


# --------------------------------------------------------------- compilation

_lib: Optional[ctypes.CDLL] = None
_lib_error: Optional[str] = None
_lib_path: Optional[Path] = None


def _cache_dir() -> Path:
    """Where compiled cores are cached (override via ``REPRO_JIT_CACHE``)."""
    override = os.environ.get("REPRO_JIT_CACHE", "").strip()
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "jit"


def _compile(source: str, target: Path) -> None:
    """Build ``target`` (a shared library) from the embedded C source."""
    target.parent.mkdir(parents=True, exist_ok=True)
    compiler = os.environ.get("CC", "cc")
    with tempfile.TemporaryDirectory(dir=str(target.parent)) as tmp:
        c_file = Path(tmp) / "repro_kernel.c"
        c_file.write_text(source)
        out = Path(tmp) / target.name
        subprocess.run(
            [
                compiler,
                "-O2",
                "-fPIC",
                "-shared",
                # FMA contraction would change double rounding and break the
                # bit-identity contract with the Python kernels.
                "-ffp-contract=off",
                "-o",
                str(out),
                str(c_file),
                "-lm",
            ],
            check=True,
            capture_output=True,
            text=True,
        )
        os.replace(out, target)  # atomic against concurrent builders


def _load() -> Optional[ctypes.CDLL]:
    """Compile (once, disk-cached) and load the C core; ``None`` on failure."""
    global _lib, _lib_error, _lib_path
    if _lib is not None or _lib_error is not None:
        return _lib
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    target = _cache_dir() / f"repro_kernel_{digest}.so"
    try:
        if not target.exists():
            _compile(_C_SOURCE, target)
        lib = ctypes.CDLL(str(target))
        fn = lib.repro_greedy_run
        p = ctypes.c_void_p
        i = ctypes.c_longlong
        d = ctypes.c_double
        fn.restype = ctypes.c_longlong
        fn.argtypes = [
            i, i,                # n, n_edges
            p, p, p, p, p,       # size, remaining, completion, start, started
            p, p, p,             # rank, csr_ptr, csr_idx
            p, p,                # caps, residual
            p, p, p, i,          # pend_release, pend_rank, pend_k, n_pending
            p, p,                # act, act_rank
            p, p, p, p,          # ea_off, ea_flow, ea_rank, ea_len
            p, p,                # flow_dirty, dirty_stack
            p, p, p,             # g_pos, g_rate, rate_prev
            p, p, p, p, i, p, p,  # seg buffers, seg_cap, last_seg, done
            p, p,                # istate, dstate
            d, d, d,             # until, vol_eps, time_eps
        ]
        _lib = lib
        _lib_path = target
    except (OSError, subprocess.CalledProcessError) as error:
        detail = getattr(error, "stderr", "") or str(error)
        _lib_error = f"could not build the compiled kernel core: {detail}"
        _lib = None
    return _lib


def available() -> bool:
    """Whether the compiled (jit) backend can run on this machine."""
    return _load() is not None


def engine() -> Optional[str]:
    """Name of the compiled engine in use (``"cc"``), or ``None``."""
    return "cc" if _load() is not None else None


def unavailable_reason() -> Optional[str]:
    """Why the compiled backend cannot run (``None`` when it can)."""
    _load()
    return _lib_error


def compiled_library_path() -> Optional[Path]:
    """Path of the cached shared library (``None`` until built)."""
    _load()
    return _lib_path


def _ptr(array: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


# -------------------------------------------------------------------- kernel


class JitSimulationKernel(SimulationKernel):
    """:class:`SimulationKernel` whose event loop runs in the compiled core.

    Construction, snapshots, diagnostics, schedule building and the Python
    list state are all inherited; only :meth:`run` differs — it lowers the
    current state into typed arrays, executes the C event loop (with the
    exact pause-at-``until`` semantics of the parent), and writes the state
    back.  Non-greedy allocators and machines without a C toolchain
    transparently use the inherited (array-kernel) loop, so results never
    depend on the backend.
    """

    def run(self, until: Optional[float] = None) -> bool:
        if not self._greedy or not available():
            return super().run(until)
        maybe_inject("sim")
        # The write-back materialises O(events) Python objects that are all
        # retained; cyclic-GC passes over the (large) surrounding heap only
        # add cost during that storm, so pause collection for the call.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._run_compiled(until)
        finally:
            if gc_was_enabled:
                gc.enable()

    # ------------------------------------------------------------- lowering
    def _run_compiled(self, until: Optional[float]) -> bool:
        lib = _load()
        n = len(self.fids)
        n_edges = len(self._caps)

        size = np.asarray(self._size, dtype=np.float64)
        remaining = np.asarray(self._remaining, dtype=np.float64)
        completion = np.asarray(self._completion, dtype=np.float64)
        start = np.asarray(self._start, dtype=np.float64)
        started = np.asarray(self._started, dtype=np.uint8)
        rate_prev = np.asarray(self._rate_prev, dtype=np.float64)

        csr_ptr, csr_idx, rank, caps, pend = self._static_arrays()
        pend_release, pend_rank, pend_k = pend
        residual = np.empty(n_edges, dtype=np.float64)

        act = np.zeros(n, dtype=np.int64)
        act_rank = np.zeros(n, dtype=np.int64)
        act[: len(self._active)] = self._active
        act_rank[: len(self._active)] = self._active_ranks

        ea_off = self._edge_slab_offsets
        ea_flow = np.zeros(max(len(csr_idx), 1), dtype=np.int64)
        ea_rank = np.zeros(max(len(csr_idx), 1), dtype=np.int64)
        ea_len = np.zeros(max(n_edges, 1), dtype=np.int64)
        for e, members in enumerate(self._edge_active):
            if members:
                off = int(ea_off[e])
                ea_flow[off : off + len(members)] = members
                ea_rank[off : off + len(members)] = self._edge_active_ranks[e]
                ea_len[e] = len(members)

        flow_dirty = np.asarray(self._flow_dirty, dtype=np.uint8)
        dirty_stack = np.zeros(n, dtype=np.int64)
        dirty_stack[: len(self._dirty_flows)] = self._dirty_flows
        g_pos = np.zeros(n, dtype=np.int64)
        g_rate = np.zeros(n, dtype=np.float64)
        g_pos[: len(self._granted_pos)] = self._granted_pos
        g_rate[: len(self._granted_rate)] = self._granted_rate

        seg_cap = max(4 * n + 1024, 1 << 16)
        seg_flow = np.empty(seg_cap, dtype=np.int64)
        seg_start = np.empty(seg_cap, dtype=np.float64)
        seg_end = np.empty(seg_cap, dtype=np.float64)
        seg_rate = np.empty(seg_cap, dtype=np.float64)
        last_seg = np.full(n, -1, dtype=np.int64)
        done_scratch = np.empty(max(n, 1), dtype=np.int64)

        istate = np.zeros(_ISTATE_SLOTS, dtype=np.int64)
        istate[_EVENTS] = self.events
        istate[_PENDING_PTR] = self._pending_ptr
        istate[_ACT_LEN] = len(self._active)
        istate[_DIRTY_LEN] = len(self._dirty_flows)
        istate[_G_LEN] = len(self._granted_pos)
        istate[_FORCE_FULL] = int(self._force_full)
        istate[_COMPLETED] = self._completed
        istate[_MAX_EVENTS] = self.max_events
        dstate = np.array([self.now], dtype=np.float64)

        until_c = math.inf if until is None else float(until)
        while True:
            status = lib.repro_greedy_run(
                n, n_edges,
                _ptr(size), _ptr(remaining),
                _ptr(completion), _ptr(start), _ptr(started),
                _ptr(rank), _ptr(csr_ptr), _ptr(csr_idx),
                _ptr(caps), _ptr(residual),
                _ptr(pend_release), _ptr(pend_rank), _ptr(pend_k),
                len(pend_k),
                _ptr(act), _ptr(act_rank),
                _ptr(ea_off), _ptr(ea_flow), _ptr(ea_rank), _ptr(ea_len),
                _ptr(flow_dirty), _ptr(dirty_stack),
                _ptr(g_pos), _ptr(g_rate), _ptr(rate_prev),
                _ptr(seg_flow), _ptr(seg_start), _ptr(seg_end), _ptr(seg_rate),
                seg_cap, _ptr(last_seg), _ptr(done_scratch),
                _ptr(istate), _ptr(dstate),
                until_c, _VOLUME_EPS, _TIME_EPS,
            )
            self._merge_segment_buffer(seg_flow, seg_start, seg_end, seg_rate,
                                       int(istate[_SEG_LEN]))
            if status == _NEED_SEGMENT_SPACE:
                istate[_SEG_LEN] = 0
                last_seg.fill(-1)
                continue
            break

        self._write_back(remaining, completion, start, started, rate_prev,
                         act, act_rank, ea_off, ea_flow, ea_rank, ea_len,
                         flow_dirty, dirty_stack, g_pos, g_rate,
                         istate, dstate)
        if status == _STALLED:
            raise self._stuck_error(
                f"simulation stalled at t={self.now:g}: no runnable "
                "flow and no pending release"
            )
        if status == _EVENT_CAP:
            raise self._stuck_error(
                f"simulation exceeded the event cap ({self.max_events}) "
                f"at t={self.now:g}; this indicates an internal "
                "inconsistency"
            )
        return status == _FINISHED

    def _static_arrays(self):
        """Immutable per-run arrays (CSR, ranks, capacities, sorted
        pending releases), lowered once per kernel and cached."""
        cached = getattr(self, "_jit_static", None)
        if cached is None:
            csr_ptr = np.ascontiguousarray(self.flow_edge_ptr, dtype=np.int64)
            csr_idx = np.ascontiguousarray(self.flow_edge_idx, dtype=np.int64)
            rank = np.asarray(self._rank, dtype=np.int64)
            caps = np.asarray(self._caps, dtype=np.float64)
            pend_release = np.asarray(
                [p[0] for p in self._pending], dtype=np.float64
            )
            pend_rank = np.asarray([p[1] for p in self._pending], dtype=np.int64)
            pend_k = np.asarray([p[2] for p in self._pending], dtype=np.int64)
            counts = np.bincount(csr_idx, minlength=len(self._caps))
            self._edge_slab_offsets = np.concatenate(
                ([0], np.cumsum(counts))
            ).astype(np.int64)
            cached = (csr_ptr, csr_idx, rank, caps,
                      (pend_release, pend_rank, pend_k))
            self._jit_static = cached
        return cached

    # ------------------------------------------------------------ write-back
    def _merge_segment_buffer(self, seg_flow, seg_start, seg_end, seg_rate,
                              count: int) -> None:
        """Fold the C core's segment buffer into the per-flow lists,
        coalescing across the buffer boundary exactly like
        :meth:`SimulationKernel._record_segment`."""
        if count == 0:
            return
        flows = seg_flow[:count]
        order = np.argsort(flows, kind="stable")  # groups flows, keeps time order
        triples: List[List[float]] = np.column_stack(
            (seg_start[:count][order], seg_end[:count][order],
             seg_rate[:count][order])
        ).tolist()
        flows_sorted = flows[order]
        bounds = np.flatnonzero(flows_sorted[1:] != flows_sorted[:-1]) + 1
        chunk_starts = np.concatenate(([0], bounds))
        chunk_ends = np.concatenate((bounds, [count]))
        chunk_flows = flows_sorted[chunk_starts]
        for a, b, k in zip(chunk_starts.tolist(), chunk_ends.tolist(),
                           chunk_flows.tolist()):
            segments = self._segments[k]
            if segments:
                last = segments[-1]
                first = triples[a]
                if last[1] == first[0] and last[2] == first[2]:
                    last[1] = first[1]
                    a += 1
            segments.extend(triples[a:b])

    def _write_back(self, remaining, completion, start, started, rate_prev,
                    act, act_rank, ea_off, ea_flow, ea_rank, ea_len,
                    flow_dirty, dirty_stack, g_pos, g_rate,
                    istate, dstate) -> None:
        """Restore the parent class's Python-list state from the arrays so
        pause/resume, diagnostics and snapshots see the exact same state
        the array kernel would hold."""
        self._remaining = remaining.tolist()
        self._completion = completion.tolist()
        self._start = start.tolist()
        self._started = started.astype(bool).tolist()
        self._rate_prev = rate_prev.tolist()
        alen = int(istate[_ACT_LEN])
        self._active = act[:alen].tolist()
        self._active_ranks = act_rank[:alen].tolist()
        for e in range(len(self._edge_active)):
            off = int(ea_off[e])
            length = int(ea_len[e])
            self._edge_active[e] = ea_flow[off : off + length].tolist()
            self._edge_active_ranks[e] = ea_rank[off : off + length].tolist()
        self._flow_dirty = flow_dirty.astype(bool).tolist()
        self._dirty_flows = dirty_stack[: int(istate[_DIRTY_LEN])].tolist()
        glen = int(istate[_G_LEN])
        self._granted_pos = g_pos[:glen].tolist()
        self._granted_rate = g_rate[:glen].tolist()
        self._force_full = bool(istate[_FORCE_FULL])
        self._completed = int(istate[_COMPLETED])
        self._pending_ptr = int(istate[_PENDING_PTR])
        self.events = int(istate[_EVENTS])
        self.now = float(dstate[0])
