"""Compiled kernel tier: the event loop lowered to a native code core.

The array kernel (:mod:`repro.sim.kernel`) removed the per-event
re-derivation of the reference loop but still dispatches every event —
active-set maintenance, the dirty-flag greedy allocation pass over the CSR
flow→edge incidence, the argmin next-event selection, segment coalescing —
through the Python interpreter.  That caps sweep instances around a few
thousand flows.  This module lowers exactly that loop into a small C core
operating on the same typed arrays, which is what 100k-flow instances need
(millions of events per second instead of tens of thousands).

Engine
------
The preferred lowering named by the roadmap is a Numba ``@njit`` of the
loop; this build targets environments where ``numba`` (and Cython) are not
installed, so the tier ships the equivalent *compiled C core*: ~300 lines
of dependency-free C99 (embedded in :data:`_C_SOURCE`), built once with the
system C toolchain (``cc -O2 -ffp-contract=off``), cached on disk keyed by
a source digest, and loaded through :mod:`ctypes`.  ``-ffp-contract=off``
matters: fused multiply-adds would change the rounding of
``remaining - rate * elapsed`` and break the bit-identity contract below.
When no C compiler is present, :func:`available` reports ``False`` and the
dispatch layer (:func:`repro.sim.simulator.make_kernel`) falls back to the
array kernel — selecting the ``jit`` backend is always safe.

Bit-identity contract
---------------------
:class:`JitSimulationKernel` performs the *same IEEE-754 double arithmetic
on the same values in the same order* as :class:`SimulationKernel` (which
is itself property-tested against ``run_reference()``), so all three event
loops produce identical completion/start times.  The C core only lowers the
default greedy-priority policy — the one the paper's methodology and every
pinned benchmark use; plans selecting ``max-min`` / ``weighted`` allocators
transparently run on the array kernel.  ``tests/sim/test_kernel_equivalence.py``
asserts the three-way equivalence across topology × workload × allocator
families, online splicing included.

State lives in the parent class's Python lists between calls: each
:meth:`JitSimulationKernel.run` call lowers the current state to typed
arrays, executes the compiled core (pausing at ``until`` exactly like the
array kernel), and writes the state back — so pause/resume splicing, the
online engine and every diagnostic (stuck reports, snapshots) behave
identically across backends.
"""

from __future__ import annotations

import ctypes
import gc
import hashlib
import math
import os
import subprocess
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..faults import maybe_inject
from .kernel import (
    ResidentSimulationKernel,
    SimulationKernel,
    _TIME_EPS,
    _VOLUME_EPS,
)

__all__ = [
    "JitSimulationKernel",
    "ResidentJitKernel",
    "available",
    "engine",
    "compiled_library_path",
    "paused_gc",
]


@contextmanager
def paused_gc():
    """Pause cyclic garbage collection for the enclosed block.

    The compiled core's write-back materialises O(events) Python objects
    that are all retained, so cyclic-GC passes over the (large)
    surrounding heap only add cost during that storm.  The manager is
    reentrant-safe — nesting it inside an already-paused scope is a no-op
    — which lets a streaming session hold one session-scoped pause while
    per-epoch calls keep their own (now free) guard, and it restores the
    collector even when the block raises.
    """
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()

#: Exit statuses of the C core's event loop.
_FINISHED = 0
_PAUSED = 1
_STALLED = 2
_EVENT_CAP = 3
_NEED_SEGMENT_SPACE = 4

#: Slots of the int64 state vector shared with the C core.
_EVENTS, _PENDING_PTR, _ACT_LEN, _DIRTY_LEN, _G_LEN = 0, 1, 2, 3, 4
_FORCE_FULL, _COMPLETED, _SEG_LEN, _MAX_EVENTS = 5, 6, 7, 8
_ISTATE_SLOTS = 9

_C_SOURCE = r"""
/* The greedy-priority event loop of repro.sim.kernel, lowered to C99.
 *
 * Every float operation mirrors the Python kernel statement-for-statement
 * (compile with -ffp-contract=off; no reassociation) so completion times
 * are bit-identical.  All state lives in caller-owned arrays; the function
 * returns a status and can be re-entered to resume (pause at `until`,
 * segment-buffer drain).
 */
#include <math.h>
#include <string.h>

typedef long long i64;

/* istate slots (keep in sync with kernel_jit.py) */
#define ST_EVENTS 0
#define ST_PENDING_PTR 1
#define ST_ACT_LEN 2
#define ST_DIRTY_LEN 3
#define ST_G_LEN 4
#define ST_FORCE_FULL 5
#define ST_COMPLETED 6
#define ST_SEG_LEN 7
#define ST_MAX_EVENTS 8

typedef struct {
    i64 n, n_edges;
    const double *size;
    double *remaining;
    double *completion;
    double *start;
    unsigned char *started;
    const i64 *rank;
    const i64 *sid;
    const i64 *eoff;
    const i64 *eend;
    const i64 *csr_idx;
    const double *caps;
    double *residual;
    const double *pend_release;
    const i64 *pend_rank;
    const i64 *pend_k;
    i64 n_pending;
    i64 *act;
    i64 *act_rank;
    const i64 *ea_off;
    i64 *ea_flow;
    i64 *ea_rank;
    i64 *ea_len;
    unsigned char *flow_dirty;
    i64 *dirty_stack;
    i64 *g_pos;
    double *g_rate;
    double *rate_prev;
    i64 *seg_flow;
    double *seg_start;
    double *seg_end;
    double *seg_rate;
    i64 seg_cap;
    i64 *last_seg;
    i64 *done_scratch;
    i64 *istate;
    double *dstate;
    double vol_eps, time_eps;
} ctx_t;

/* bisect.bisect_right over an i64 array. */
static i64 upper_bound(const i64 *arr, i64 len, i64 value) {
    i64 lo = 0, hi = len;
    while (lo < hi) {
        i64 mid = (lo + hi) / 2;
        if (value < arr[mid]) hi = mid; else lo = mid + 1;
    }
    return lo;
}

/* SimulationKernel._mark_dirty: the active lower-priority flows sharing an
 * edge with k (plus, on release, k itself). */
static void mark_dirty(ctx_t *c, i64 k, int include_self) {
    if (include_self && !c->flow_dirty[k]) {
        c->flow_dirty[k] = 1;
        c->dirty_stack[c->istate[ST_DIRTY_LEN]++] = k;
    }
    i64 own = c->rank[k];
    for (i64 p = c->eoff[k]; p < c->eend[k]; p++) {
        i64 e = c->csr_idx[p];
        i64 off = c->ea_off[e];
        i64 len = c->ea_len[e];
        for (i64 q = upper_bound(c->ea_rank + off, len, own); q < len; q++) {
            i64 f = c->ea_flow[off + q];
            if (!c->flow_dirty[f]) {
                c->flow_dirty[f] = 1;
                c->dirty_stack[c->istate[ST_DIRTY_LEN]++] = f;
            }
        }
    }
}

/* SimulationKernel._enter_active: sorted insert into the active list and
 * into each edge's active slab. */
static void enter_active(ctx_t *c, i64 k, i64 rk) {
    i64 len = c->istate[ST_ACT_LEN];
    i64 lo = upper_bound(c->act_rank, len, rk);
    memmove(c->act + lo + 1, c->act + lo, (size_t)(len - lo) * sizeof(i64));
    memmove(c->act_rank + lo + 1, c->act_rank + lo,
            (size_t)(len - lo) * sizeof(i64));
    c->act[lo] = k;
    c->act_rank[lo] = rk;
    c->istate[ST_ACT_LEN] = len + 1;
    for (i64 p = c->eoff[k]; p < c->eend[k]; p++) {
        i64 e = c->csr_idx[p];
        i64 off = c->ea_off[e];
        i64 elen = c->ea_len[e];
        i64 pos = upper_bound(c->ea_rank + off, elen, rk);
        memmove(c->ea_flow + off + pos + 1, c->ea_flow + off + pos,
                (size_t)(elen - pos) * sizeof(i64));
        memmove(c->ea_rank + off + pos + 1, c->ea_rank + off + pos,
                (size_t)(elen - pos) * sizeof(i64));
        c->ea_flow[off + pos] = k;
        c->ea_rank[off + pos] = rk;
        c->ea_len[e] = elen + 1;
    }
}

/* SimulationKernel._leave_active: delete-in-place from the active list and
 * each edge slab. */
static void leave_active(ctx_t *c, i64 k) {
    i64 len = c->istate[ST_ACT_LEN];
    i64 i = 0;
    while (c->act[i] != k) i++;
    memmove(c->act + i, c->act + i + 1, (size_t)(len - i - 1) * sizeof(i64));
    memmove(c->act_rank + i, c->act_rank + i + 1,
            (size_t)(len - i - 1) * sizeof(i64));
    c->istate[ST_ACT_LEN] = len - 1;
    for (i64 p = c->eoff[k]; p < c->eend[k]; p++) {
        i64 e = c->csr_idx[p];
        i64 off = c->ea_off[e];
        i64 elen = c->ea_len[e];
        i64 j = 0;
        while (c->ea_flow[off + j] != k) j++;
        memmove(c->ea_flow + off + j, c->ea_flow + off + j + 1,
                (size_t)(elen - j - 1) * sizeof(i64));
        memmove(c->ea_rank + off + j, c->ea_rank + off + j + 1,
                (size_t)(elen - j - 1) * sizeof(i64));
        c->ea_len[e] = elen - 1;
    }
}

/* SimulationKernel._allocate, greedy incremental path: re-derive only the
 * dirty flows; reuse the cached grants outright when nothing is dirty. */
static void allocate(ctx_t *c) {
    int force = (int)c->istate[ST_FORCE_FULL];
    if (!force && c->istate[ST_DIRTY_LEN] == 0) return;
    c->istate[ST_FORCE_FULL] = 0;
    memcpy(c->residual, c->caps, (size_t)c->n_edges * sizeof(double));
    i64 g = 0;
    i64 alen = c->istate[ST_ACT_LEN];
    for (i64 i = 0; i < alen; i++) {
        i64 k = c->act[i];
        double rate;
        if (force || c->flow_dirty[k]) {
            rate = INFINITY;
            for (i64 p = c->eoff[k]; p < c->eend[k]; p++) {
                double v = c->residual[c->csr_idx[p]];
                if (v < rate) rate = v;
            }
            if (rate <= c->vol_eps) rate = 0.0;
            if (rate != c->rate_prev[k]) {
                c->rate_prev[k] = rate;
                if (!force) mark_dirty(c, k, 0);
            }
        } else {
            rate = c->rate_prev[k];
        }
        if (rate > 0.0) {
            for (i64 p = c->eoff[k]; p < c->eend[k]; p++)
                c->residual[c->csr_idx[p]] -= rate;
            c->g_pos[g] = k;
            c->g_rate[g] = rate;
            g++;
        }
    }
    for (i64 i = 0; i < c->istate[ST_DIRTY_LEN]; i++)
        c->flow_dirty[c->dirty_stack[i]] = 0;
    c->istate[ST_DIRTY_LEN] = 0;
    c->istate[ST_G_LEN] = g;
}

/* SimulationKernel._record_segment: coalesce into the flow's last segment
 * of this call's buffer, else append.  Segments are attributed to the
 * slot's stable id (sid) rather than the slot index so the resident tier
 * can recycle slots without mixing up flows; the per-run tier passes the
 * identity mapping. */
static void record_segment(ctx_t *c, i64 k, double s, double e, double r) {
    i64 last = c->last_seg[k];
    if (last >= 0 && c->seg_end[last] == s && c->seg_rate[last] == r) {
        c->seg_end[last] = e;
        return;
    }
    i64 len = c->istate[ST_SEG_LEN];
    c->seg_flow[len] = c->sid[k];
    c->seg_start[len] = s;
    c->seg_end[len] = e;
    c->seg_rate[len] = r;
    c->last_seg[k] = len;
    c->istate[ST_SEG_LEN] = len + 1;
}

i64 repro_greedy_run(
    i64 n, i64 n_edges,
    const double *size, double *remaining,
    double *completion, double *start, unsigned char *started,
    const i64 *rank, const i64 *sid,
    const i64 *eoff, const i64 *eend, const i64 *csr_idx,
    const double *caps, double *residual,
    const double *pend_release, const i64 *pend_rank, const i64 *pend_k,
    i64 n_pending,
    i64 *act, i64 *act_rank,
    const i64 *ea_off, i64 *ea_flow, i64 *ea_rank, i64 *ea_len,
    unsigned char *flow_dirty, i64 *dirty_stack,
    i64 *g_pos, double *g_rate, double *rate_prev,
    i64 *seg_flow, double *seg_start, double *seg_end, double *seg_rate,
    i64 seg_cap, i64 *last_seg, i64 *done_scratch,
    i64 *istate, double *dstate,
    double until, double vol_eps, double time_eps)
{
    ctx_t C = {
        n, n_edges, size, remaining, completion, start, started, rank,
        sid, eoff, eend, csr_idx, caps, residual, pend_release, pend_rank, pend_k,
        n_pending, act, act_rank, ea_off, ea_flow, ea_rank, ea_len,
        flow_dirty, dirty_stack, g_pos, g_rate, rate_prev, seg_flow,
        seg_start, seg_end, seg_rate, seg_cap, last_seg, done_scratch,
        istate, dstate, vol_eps, time_eps,
    };
    ctx_t *c = &C;
    while (c->istate[ST_COMPLETED] < n) {
        double now = c->dstate[0];
        /* 0. Releases whose time has come join the active set. */
        double threshold = now + c->time_eps;
        while (c->istate[ST_PENDING_PTR] < c->n_pending &&
               c->pend_release[c->istate[ST_PENDING_PTR]] <= threshold) {
            i64 pp = c->istate[ST_PENDING_PTR]++;
            i64 k = c->pend_k[pp];
            enter_active(c, k, c->pend_rank[pp]);
            mark_dirty(c, k, 1);
        }
        /* 1. Allocate rates (incremental greedy pass). */
        allocate(c);
        i64 glen = c->istate[ST_G_LEN];
        /* Drain point: this event records at most glen segments; return to
         * Python for a bigger/empty buffer before mutating anything. */
        if (c->istate[ST_SEG_LEN] + glen > c->seg_cap) return 4;
        /* 2. Next event: earliest projected completion vs next release. */
        double next_completion = INFINITY;
        for (i64 i = 0; i < glen; i++) {
            double projected = now + c->remaining[c->g_pos[i]] / c->g_rate[i];
            if (projected < next_completion) next_completion = projected;
        }
        double next_release =
            (c->istate[ST_PENDING_PTR] < c->n_pending)
                ? c->pend_release[c->istate[ST_PENDING_PTR]]
                : INFINITY;
        double next_time =
            next_completion < next_release ? next_completion : next_release;
        if (!isfinite(next_time)) return 2;
        {
            double floor_time = now + c->time_eps;
            if (next_time < floor_time) next_time = floor_time;
        }
        /* 3. Pause at the splice deadline instead of crossing it. */
        if (next_time > until) {
            double elapsed = until - now;
            if (elapsed > 0.0) {
                for (i64 i = 0; i < glen; i++) {
                    i64 k = c->g_pos[i];
                    double rate = c->g_rate[i];
                    double transferred = rate * elapsed;
                    if (transferred > c->remaining[k])
                        transferred = c->remaining[k];
                    c->remaining[k] -= transferred;
                    record_segment(c, k, now, until, rate);
                    if (!c->started[k] &&
                        c->size[k] - c->remaining[k] > c->vol_eps) {
                        c->started[k] = 1;
                        c->start[k] = now;
                    }
                }
                c->dstate[0] = until;
            }
            return 1;
        }
        c->istate[ST_EVENTS] += 1;
        if (c->istate[ST_EVENTS] > c->istate[ST_MAX_EVENTS]) return 3;
        /* 4. Advance: move volume, record segments, retire completions. */
        {
            double elapsed = next_time - now;
            i64 ndone = 0;
            for (i64 i = 0; i < glen; i++) {
                i64 k = c->g_pos[i];
                double rate = c->g_rate[i];
                double volume = c->remaining[k];
                double transferred = rate * elapsed;
                if (transferred > volume) transferred = volume;
                double after = volume - transferred;
                if (after <= c->vol_eps) {
                    after = 0.0;
                    c->done_scratch[ndone++] = k;
                }
                c->remaining[k] = after;
                if (!c->started[k] && c->size[k] - after > c->vol_eps) {
                    c->started[k] = 1;
                    c->start[k] = now;
                }
                record_segment(c, k, now, next_time, rate);
            }
            for (i64 d = 0; d < ndone; d++) {
                i64 k = c->done_scratch[d];
                c->completion[k] = next_time;
                c->istate[ST_COMPLETED] += 1;
                leave_active(c, k);
                c->rate_prev[k] = 0.0;
                /* Keep the cached grant lists exact for the no-change fast
                 * path (a completed flow always held a positive grant). */
                i64 g2 = c->istate[ST_G_LEN];
                i64 gi = 0;
                while (c->g_pos[gi] != k) gi++;
                memmove(c->g_pos + gi, c->g_pos + gi + 1,
                        (size_t)(g2 - gi - 1) * sizeof(i64));
                memmove(c->g_rate + gi, c->g_rate + gi + 1,
                        (size_t)(g2 - gi - 1) * sizeof(double));
                c->istate[ST_G_LEN] = g2 - 1;
                mark_dirty(c, k, 0);
            }
            c->dstate[0] = next_time;
        }
    }
    return 0;
}

/* ResidentJitKernel.begin_epoch, lowered: generation-tag tombstoning,
 * stale-dirty clearing, ranks, epoch-local baselines, the active/pending
 * split and the per-edge slabs in two passes over the live flows.  The
 * order is already rank-sorted, so appending actives as they are visited
 * is a counting sort — the slab layout is identical to the per-run
 * tier's (grouped by edge, ranks ascending).  Pending flows come out in
 * rank order; the caller stable-sorts them by release.  Departed slots
 * (previous live set plus fresh ingests, minus the new order) land in
 * `departed` for the caller to validate and free.  Returns 1 when the
 * slab buffers are too small for the live incidence (`out[2]` holds the
 * needed size; the call is idempotent, so the caller grows and retries),
 * else 0. */
i64 repro_begin_epoch(
    i64 nlive, i64 n_edges, double threshold,
    const i64 *order,
    const double *release, const double *remaining,
    double *size, unsigned char *started, double *start, i64 *rank,
    const i64 *eoff, const i64 *eend, const i64 *csr_idx,
    i64 *act, i64 *act_rank,
    i64 *pend_k, i64 *pend_rank, double *pend_release,
    i64 *ea_off, i64 *ea_len, i64 *ea_flow, i64 *ea_rank,
    i64 *tag, i64 epoch_no,
    const i64 *prev_live, i64 n_prev,
    const i64 *ingested, i64 n_ing,
    unsigned char *flow_dirty,
    i64 *departed, i64 ea_cap,
    i64 *out)
{
    for (i64 i = 0; i < nlive; i++) tag[order[i]] = epoch_no;
    i64 nd = 0;
    for (i64 i = 0; i < n_prev; i++) {
        i64 k = prev_live[i];
        /* Stale dirty flags can survive a finished epoch (the final
         * event's completions mark neighbours dirty after the last
         * allocation pass); they only ever sit on these rows. */
        flow_dirty[k] = 0;
        if (tag[k] != epoch_no) departed[nd++] = k;
    }
    for (i64 i = 0; i < n_ing; i++) {
        i64 k = ingested[i];
        if (tag[k] != epoch_no) departed[nd++] = k;
    }
    out[3] = nd;
    i64 total = 0;
    for (i64 e = 0; e < n_edges; e++) ea_len[e] = 0;
    for (i64 i = 0; i < nlive; i++) {
        i64 k = order[i];
        total += eend[k] - eoff[k];
        for (i64 p = eoff[k]; p < eend[k]; p++) ea_len[csr_idx[p]]++;
    }
    out[2] = total;
    if (total > ea_cap) return 1;
    i64 acc = 0;
    for (i64 e = 0; e < n_edges; e++) {
        i64 t = ea_len[e];
        ea_off[e] = acc;
        acc += t;
        ea_len[e] = 0;
    }
    i64 na = 0, npend = 0;
    for (i64 i = 0; i < nlive; i++) {
        i64 k = order[i];
        rank[k] = i;
        size[k] = remaining[k];
        started[k] = 0;
        start[k] = NAN;
        if (release[k] <= threshold) {
            act[na] = k;
            act_rank[na] = i;
            na++;
            for (i64 p = eoff[k]; p < eend[k]; p++) {
                i64 e = csr_idx[p];
                i64 q = ea_off[e] + ea_len[e]++;
                ea_flow[q] = k;
                ea_rank[q] = i;
            }
        } else {
            pend_k[npend] = k;
            pend_rank[npend] = i;
            pend_release[npend] = release[k];
            npend++;
        }
    }
    out[0] = na;
    out[1] = npend;
    return 0;
}

/* ResidentJitKernel.harvest_epoch, lowered: one pass over the live rows
 * collecting newly-completed, first-started, volume-touched and
 * first-moved slots into compact scratch arrays (completion values are
 * NaN or finite, so !isnan matches the python tier's isfinite).  A start
 * is emitted only the first epoch the flow moves — the global fold keeps
 * the earliest start anyway, and epochs close in time order. */
void repro_harvest_epoch(
    i64 nlive, const i64 *live,
    const double *completion, unsigned char *harvested,
    const unsigned char *started, unsigned char *start_harvested,
    const double *remaining, double *harvest_remaining,
    const i64 *last_seg, unsigned char *harvest_moved,
    i64 *done_k, i64 *start_k, i64 *touch_k, i64 *moved_k,
    i64 *out)
{
    i64 ndone = 0, nstart = 0, ntouch = 0, nmoved = 0;
    for (i64 i = 0; i < nlive; i++) {
        i64 k = live[i];
        if (!isnan(completion[k]) && !harvested[k]) {
            harvested[k] = 1;
            done_k[ndone++] = k;
        }
        if (started[k] == 1 && !start_harvested[k]) {
            start_harvested[k] = 1;
            start_k[nstart++] = k;
        }
        if (remaining[k] != harvest_remaining[k]) {
            harvest_remaining[k] = remaining[k];
            touch_k[ntouch++] = k;
        }
        if (last_seg[k] >= 0 && !harvest_moved[k]) {
            harvest_moved[k] = 1;
            moved_k[nmoved++] = k;
        }
    }
    out[0] = ndone;
    out[1] = nstart;
    out[2] = ntouch;
    out[3] = nmoved;
}
"""


# --------------------------------------------------------------- compilation

_lib: Optional[ctypes.CDLL] = None
_lib_error: Optional[str] = None
_lib_path: Optional[Path] = None


def _cache_dir() -> Path:
    """Where compiled cores are cached (override via ``REPRO_JIT_CACHE``)."""
    override = os.environ.get("REPRO_JIT_CACHE", "").strip()
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "jit"


def _compile(source: str, target: Path) -> None:
    """Build ``target`` (a shared library) from the embedded C source."""
    target.parent.mkdir(parents=True, exist_ok=True)
    compiler = os.environ.get("CC", "cc")
    with tempfile.TemporaryDirectory(dir=str(target.parent)) as tmp:
        c_file = Path(tmp) / "repro_kernel.c"
        c_file.write_text(source)
        out = Path(tmp) / target.name
        subprocess.run(
            [
                compiler,
                "-O2",
                "-fPIC",
                "-shared",
                # FMA contraction would change double rounding and break the
                # bit-identity contract with the Python kernels.
                "-ffp-contract=off",
                "-o",
                str(out),
                str(c_file),
                "-lm",
            ],
            check=True,
            capture_output=True,
            text=True,
        )
        os.replace(out, target)  # atomic against concurrent builders


def _load() -> Optional[ctypes.CDLL]:
    """Compile (once, disk-cached) and load the C core; ``None`` on failure."""
    global _lib, _lib_error, _lib_path
    if _lib is not None or _lib_error is not None:
        return _lib
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    target = _cache_dir() / f"repro_kernel_{digest}.so"
    try:
        if not target.exists():
            _compile(_C_SOURCE, target)
        lib = ctypes.CDLL(str(target))
        fn = lib.repro_greedy_run
        p = ctypes.c_void_p
        i = ctypes.c_longlong
        d = ctypes.c_double
        fn.restype = ctypes.c_longlong
        fn.argtypes = [
            i, i,                # n, n_edges
            p, p, p, p, p,       # size, remaining, completion, start, started
            p, p, p, p, p,       # rank, sid, eoff, eend, csr_idx
            p, p,                # caps, residual
            p, p, p, i,          # pend_release, pend_rank, pend_k, n_pending
            p, p,                # act, act_rank
            p, p, p, p,          # ea_off, ea_flow, ea_rank, ea_len
            p, p,                # flow_dirty, dirty_stack
            p, p, p,             # g_pos, g_rate, rate_prev
            p, p, p, p, i, p, p,  # seg buffers, seg_cap, last_seg, done
            p, p,                # istate, dstate
            d, d, d,             # until, vol_eps, time_eps
        ]
        fb = lib.repro_begin_epoch
        fb.restype = ctypes.c_longlong
        fb.argtypes = [
            i, i, d,             # nlive, n_edges, threshold
            p,                   # order
            p, p,                # release, remaining
            p, p, p, p,          # size, started, start, rank
            p, p, p,             # eoff, eend, csr_idx
            p, p,                # act, act_rank
            p, p, p,             # pend_k, pend_rank, pend_release
            p, p, p, p,          # ea_off, ea_len, ea_flow, ea_rank
            p, i,                # tag, epoch_no
            p, i,                # prev_live, n_prev
            p, i,                # ingested, n_ing
            p,                   # flow_dirty
            p, i,                # departed, ea_cap
            p,                   # out [n_active, n_pending, total, n_departed]
        ]
        fh = lib.repro_harvest_epoch
        fh.restype = None
        fh.argtypes = [
            i, p,                # nlive, live
            p, p,                # completion, harvested
            p, p,                # started, start_harvested
            p, p,                # remaining, harvest_remaining
            p, p,                # last_seg, harvest_moved
            p, p, p, p,          # done_k, start_k, touch_k, moved_k
            p,                   # out [n_done, n_start, n_touch, n_moved]
        ]
        _lib = lib
        _lib_path = target
    except (OSError, subprocess.CalledProcessError) as error:
        detail = getattr(error, "stderr", "") or str(error)
        _lib_error = f"could not build the compiled kernel core: {detail}"
        _lib = None
    return _lib


def available() -> bool:
    """Whether the compiled (jit) backend can run on this machine."""
    return _load() is not None


def engine() -> Optional[str]:
    """Name of the compiled engine in use (``"cc"``), or ``None``."""
    return "cc" if _load() is not None else None


def unavailable_reason() -> Optional[str]:
    """Why the compiled backend cannot run (``None`` when it can)."""
    _load()
    return _lib_error


def compiled_library_path() -> Optional[Path]:
    """Path of the cached shared library (``None`` until built)."""
    _load()
    return _lib_path


def _ptr(array: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


# -------------------------------------------------------------------- kernel


class JitSimulationKernel(SimulationKernel):
    """:class:`SimulationKernel` whose event loop runs in the compiled core.

    Construction, snapshots, diagnostics, schedule building and the Python
    list state are all inherited; only :meth:`run` differs — it lowers the
    current state into typed arrays, executes the C event loop (with the
    exact pause-at-``until`` semantics of the parent), and writes the state
    back.  Non-greedy allocators and machines without a C toolchain
    transparently use the inherited (array-kernel) loop, so results never
    depend on the backend.
    """

    def run(self, until: Optional[float] = None) -> bool:
        if not self._greedy or not available():
            return super().run(until)
        maybe_inject("sim")
        with paused_gc():
            return self._run_compiled(until)

    # ------------------------------------------------------------- lowering
    def _run_compiled(self, until: Optional[float]) -> bool:
        lib = _load()
        n = len(self.fids)
        n_edges = len(self._caps)

        size = np.asarray(self._size, dtype=np.float64)
        remaining = np.asarray(self._remaining, dtype=np.float64)
        completion = np.asarray(self._completion, dtype=np.float64)
        start = np.asarray(self._start, dtype=np.float64)
        started = np.asarray(self._started, dtype=np.uint8)
        rate_prev = np.asarray(self._rate_prev, dtype=np.float64)

        eoff, eend, csr_idx, rank, sid, caps, pend = self._static_arrays()
        pend_release, pend_rank, pend_k = pend
        residual = np.empty(n_edges, dtype=np.float64)

        act = np.zeros(n, dtype=np.int64)
        act_rank = np.zeros(n, dtype=np.int64)
        act[: len(self._active)] = self._active
        act_rank[: len(self._active)] = self._active_ranks

        ea_off = self._edge_slab_offsets
        ea_flow = np.zeros(max(len(csr_idx), 1), dtype=np.int64)
        ea_rank = np.zeros(max(len(csr_idx), 1), dtype=np.int64)
        ea_len = np.zeros(max(n_edges, 1), dtype=np.int64)
        for e, members in enumerate(self._edge_active):
            if members:
                off = int(ea_off[e])
                ea_flow[off : off + len(members)] = members
                ea_rank[off : off + len(members)] = self._edge_active_ranks[e]
                ea_len[e] = len(members)

        flow_dirty = np.asarray(self._flow_dirty, dtype=np.uint8)
        dirty_stack = np.zeros(n, dtype=np.int64)
        dirty_stack[: len(self._dirty_flows)] = self._dirty_flows
        g_pos = np.zeros(n, dtype=np.int64)
        g_rate = np.zeros(n, dtype=np.float64)
        g_pos[: len(self._granted_pos)] = self._granted_pos
        g_rate[: len(self._granted_rate)] = self._granted_rate

        seg_cap = max(4 * n + 1024, 1 << 16)
        seg_flow = np.empty(seg_cap, dtype=np.int64)
        seg_start = np.empty(seg_cap, dtype=np.float64)
        seg_end = np.empty(seg_cap, dtype=np.float64)
        seg_rate = np.empty(seg_cap, dtype=np.float64)
        last_seg = np.full(n, -1, dtype=np.int64)
        done_scratch = np.empty(max(n, 1), dtype=np.int64)

        istate = np.zeros(_ISTATE_SLOTS, dtype=np.int64)
        istate[_EVENTS] = self.events
        istate[_PENDING_PTR] = self._pending_ptr
        istate[_ACT_LEN] = len(self._active)
        istate[_DIRTY_LEN] = len(self._dirty_flows)
        istate[_G_LEN] = len(self._granted_pos)
        istate[_FORCE_FULL] = int(self._force_full)
        istate[_COMPLETED] = self._completed
        istate[_MAX_EVENTS] = self.max_events
        dstate = np.array([self.now], dtype=np.float64)

        until_c = math.inf if until is None else float(until)
        while True:
            status = lib.repro_greedy_run(
                n, n_edges,
                _ptr(size), _ptr(remaining),
                _ptr(completion), _ptr(start), _ptr(started),
                _ptr(rank), _ptr(sid),
                _ptr(eoff), _ptr(eend), _ptr(csr_idx),
                _ptr(caps), _ptr(residual),
                _ptr(pend_release), _ptr(pend_rank), _ptr(pend_k),
                len(pend_k),
                _ptr(act), _ptr(act_rank),
                _ptr(ea_off), _ptr(ea_flow), _ptr(ea_rank), _ptr(ea_len),
                _ptr(flow_dirty), _ptr(dirty_stack),
                _ptr(g_pos), _ptr(g_rate), _ptr(rate_prev),
                _ptr(seg_flow), _ptr(seg_start), _ptr(seg_end), _ptr(seg_rate),
                seg_cap, _ptr(last_seg), _ptr(done_scratch),
                _ptr(istate), _ptr(dstate),
                until_c, _VOLUME_EPS, _TIME_EPS,
            )
            self._merge_segment_buffer(seg_flow, seg_start, seg_end, seg_rate,
                                       int(istate[_SEG_LEN]))
            if status == _NEED_SEGMENT_SPACE:
                istate[_SEG_LEN] = 0
                last_seg.fill(-1)
                continue
            break

        self._write_back(remaining, completion, start, started, rate_prev,
                         act, act_rank, ea_off, ea_flow, ea_rank, ea_len,
                         flow_dirty, dirty_stack, g_pos, g_rate,
                         istate, dstate)
        if status == _STALLED:
            raise self._stuck_error(
                f"simulation stalled at t={self.now:g}: no runnable "
                "flow and no pending release"
            )
        if status == _EVENT_CAP:
            raise self._stuck_error(
                f"simulation exceeded the event cap ({self.max_events}) "
                f"at t={self.now:g}; this indicates an internal "
                "inconsistency"
            )
        return status == _FINISHED

    def _static_arrays(self):
        """Immutable per-run arrays (CSR, ranks, capacities, sorted
        pending releases), lowered once per kernel and cached."""
        cached = getattr(self, "_jit_static", None)
        if cached is None:
            csr_ptr = np.ascontiguousarray(self.flow_edge_ptr, dtype=np.int64)
            csr_idx = np.ascontiguousarray(self.flow_edge_idx, dtype=np.int64)
            # The C core takes per-flow (offset, end) bounds so the resident
            # tier can grow incidence rows in place; the per-run tier's rows
            # are the adjacent CSR windows (zero-copy views).
            eoff = csr_ptr[:-1]
            eend = csr_ptr[1:]
            rank = np.asarray(self._rank, dtype=np.int64)
            sid = np.arange(len(self.fids), dtype=np.int64)
            caps = np.asarray(self._caps, dtype=np.float64)
            pend_release = np.asarray(
                [p[0] for p in self._pending], dtype=np.float64
            )
            pend_rank = np.asarray([p[1] for p in self._pending], dtype=np.int64)
            pend_k = np.asarray([p[2] for p in self._pending], dtype=np.int64)
            counts = np.bincount(csr_idx, minlength=len(self._caps))
            self._edge_slab_offsets = np.concatenate(
                ([0], np.cumsum(counts))
            ).astype(np.int64)
            cached = (eoff, eend, csr_idx, rank, sid, caps,
                      (pend_release, pend_rank, pend_k))
            self._jit_static = cached
        return cached

    # ------------------------------------------------------------ write-back
    def _merge_segment_buffer(self, seg_flow, seg_start, seg_end, seg_rate,
                              count: int) -> None:
        """Fold the C core's segment buffer into the per-flow lists,
        coalescing across the buffer boundary exactly like
        :meth:`SimulationKernel._record_segment`."""
        if count == 0:
            return
        flows = seg_flow[:count]
        order = np.argsort(flows, kind="stable")  # groups flows, keeps time order
        triples: List[List[float]] = np.column_stack(
            (seg_start[:count][order], seg_end[:count][order],
             seg_rate[:count][order])
        ).tolist()
        flows_sorted = flows[order]
        bounds = np.flatnonzero(flows_sorted[1:] != flows_sorted[:-1]) + 1
        chunk_starts = np.concatenate(([0], bounds))
        chunk_ends = np.concatenate((bounds, [count]))
        chunk_flows = flows_sorted[chunk_starts]
        for a, b, k in zip(chunk_starts.tolist(), chunk_ends.tolist(),
                           chunk_flows.tolist()):
            segments = self._segments[k]
            if segments:
                last = segments[-1]
                first = triples[a]
                if last[1] == first[0] and last[2] == first[2]:
                    last[1] = first[1]
                    a += 1
            segments.extend(triples[a:b])

    def _write_back(self, remaining, completion, start, started, rate_prev,
                    act, act_rank, ea_off, ea_flow, ea_rank, ea_len,
                    flow_dirty, dirty_stack, g_pos, g_rate,
                    istate, dstate) -> None:
        """Restore the parent class's Python-list state from the arrays so
        pause/resume, diagnostics and snapshots see the exact same state
        the array kernel would hold."""
        self._remaining = remaining.tolist()
        self._completion = completion.tolist()
        self._start = start.tolist()
        self._started = started.astype(bool).tolist()
        self._rate_prev = rate_prev.tolist()
        alen = int(istate[_ACT_LEN])
        self._active = act[:alen].tolist()
        self._active_ranks = act_rank[:alen].tolist()
        for e in range(len(self._edge_active)):
            off = int(ea_off[e])
            length = int(ea_len[e])
            self._edge_active[e] = ea_flow[off : off + length].tolist()
            self._edge_active_ranks[e] = ea_rank[off : off + length].tolist()
        self._flow_dirty = flow_dirty.astype(bool).tolist()
        self._dirty_flows = dirty_stack[: int(istate[_DIRTY_LEN])].tolist()
        glen = int(istate[_G_LEN])
        self._granted_pos = g_pos[:glen].tolist()
        self._granted_rate = g_rate[:glen].tolist()
        self._force_full = bool(istate[_FORCE_FULL])
        self._completed = int(istate[_COMPLETED])
        self._pending_ptr = int(istate[_PENDING_PTR])
        self.events = int(istate[_EVENTS])
        self.now = float(dstate[0])


# ---------------------------------------------------------- resident session


class ResidentJitKernel(ResidentSimulationKernel):
    """:class:`ResidentSimulationKernel` whose state lives in the compiled
    core's ctypes-owned arrays across epochs.

    The per-run :class:`JitSimulationKernel` lowers Python lists to typed
    arrays at every ``run()`` call and writes them back afterwards — an
    O(n) list⇄array⇄list round-trip per epoch that dominates streaming
    re-planning at 100k flows.  This tier keeps the arrays *resident*:

    * per-slot state (sizes, volumes, clocks, ranks, incidence bounds) is
      preallocated with capacity doubling and a LIFO free-list;
    * flow→edge incidence lives in an append-only pool addressed by
      per-slot ``(offset, end)`` bounds (re-routing a flow appends a new
      row; freed rows are leaked, bounded by total ingested incidence);
    * the segment log is one growable buffer shared by all epochs,
      attributed by ingest-unique slot ids, so pause/resume splices
      coalesce in C exactly like the rebuild path's merge and nothing is
      re-ingested or copied between epochs;
    * ``run()`` re-enters the C core directly on the persistent arrays —
      no ``.tolist()`` round-trips; the Python-side state of the parent
      class is used only for error diagnostics.

    Only the greedy-priority policy is lowered (as with the per-run jit
    tier); sessions with other allocators use the array-resident parent.
    """

    def __init__(
        self,
        network,
        allocator: str = "greedy",
        start_time: float = 0.0,
        initial_capacity: int = 1024,
        initial_segment_capacity: int = 1 << 16,
    ) -> None:
        if allocator != "greedy":
            raise ValueError(
                f"the compiled resident tier only lowers the greedy "
                f"allocator, not {allocator!r}; use the array-resident "
                "kernel for other policies"
            )
        if not available():
            raise RuntimeError(
                unavailable_reason() or "compiled kernel core unavailable"
            )
        super().__init__(network, allocator=allocator, start_time=start_time)
        n_edges = len(self._caps)
        cap = max(int(initial_capacity), 1)
        self._cap = cap
        self._nrows = 0
        self.a_size = np.zeros(cap, dtype=np.float64)
        self.a_remaining = np.zeros(cap, dtype=np.float64)
        self.a_completion = np.full(cap, np.nan, dtype=np.float64)
        self.a_start = np.full(cap, np.nan, dtype=np.float64)
        self.a_started = np.zeros(cap, dtype=np.uint8)
        self.a_release = np.zeros(cap, dtype=np.float64)
        self.a_rate_prev = np.zeros(cap, dtype=np.float64)
        self.a_rank = np.zeros(cap, dtype=np.int64)
        self.a_sid = np.zeros(cap, dtype=np.int64)
        self.a_eoff = np.zeros(cap, dtype=np.int64)
        self.a_eend = np.zeros(cap, dtype=np.int64)
        self.a_last_seg = np.full(cap, -1, dtype=np.int64)
        self.a_live = np.zeros(cap, dtype=bool)
        self.a_harvested = np.zeros(cap, dtype=np.uint8)
        self.a_harvest_remaining = np.zeros(cap, dtype=np.float64)
        self.a_harvest_moved = np.zeros(cap, dtype=np.uint8)
        self.a_start_harvested = np.zeros(cap, dtype=np.uint8)
        self._flow_dirty_arr = np.zeros(cap, dtype=np.uint8)
        # Generation tags: begin_epoch stamps the epoch number on every
        # slot in the order, so departures fall out of an O(live) compare
        # instead of an O(capacity) membership scan.
        self._epoch_tag = np.zeros(cap, dtype=np.int64)
        self._epoch_no = 0
        self._ingested_since: List[int] = []

        self._pool = np.zeros(max(4 * cap, 16), dtype=np.int64)
        self._pool_len = 0

        self._caps_arr = np.asarray(self._caps, dtype=np.float64)
        self._residual = np.empty(max(n_edges, 1), dtype=np.float64)

        self._seg_cap = max(int(initial_segment_capacity), 16)
        self._seg_flow = np.empty(self._seg_cap, dtype=np.int64)
        self._seg_start = np.empty(self._seg_cap, dtype=np.float64)
        self._seg_end = np.empty(self._seg_cap, dtype=np.float64)
        self._seg_rate = np.empty(self._seg_cap, dtype=np.float64)

        self._istate = np.zeros(_ISTATE_SLOTS, dtype=np.int64)
        self._dstate = np.array([float(start_time)], dtype=np.float64)
        self._n_target = 0
        self._live_rows = np.zeros(0, dtype=np.int64)
        self._n_pend = 0
        self._pend_release = np.empty(1, dtype=np.float64)
        self._pend_rank = np.empty(1, dtype=np.int64)
        self._pend_k = np.empty(1, dtype=np.int64)
        #: Cached c_void_p groups for the run() and begin_epoch() calls;
        #: every buffer reallocation resets both to None.
        self._run_ptrs = self._be_ptrs = None
        # Persistent per-epoch scratch (grown geometrically by begin_epoch;
        # the C core never reads beyond the live lengths it is handed).
        self._scratch_cap = 1
        self._act = np.empty(1, dtype=np.int64)
        self._act_rank = np.empty(1, dtype=np.int64)
        self._dirty_stack = np.empty(1, dtype=np.int64)
        self._g_pos = np.empty(1, dtype=np.int64)
        self._g_rate = np.empty(1, dtype=np.float64)
        self._done_scratch = np.empty(1, dtype=np.int64)
        self._ps_k = np.empty(1, dtype=np.int64)
        self._ps_rank = np.empty(1, dtype=np.int64)
        self._ps_rel = np.empty(1, dtype=np.float64)
        self._dep_scratch = np.empty(1, dtype=np.int64)
        self._be_out = np.zeros(4, dtype=np.int64)
        self._hv_done = np.empty(1, dtype=np.int64)
        self._hv_start = np.empty(1, dtype=np.int64)
        self._hv_touch = np.empty(1, dtype=np.int64)
        self._hv_moved = np.empty(1, dtype=np.int64)
        self._hv_out = np.zeros(4, dtype=np.int64)
        self._ea_off = np.zeros(max(n_edges, 1), dtype=np.int64)
        self._ea_flow = np.empty(1, dtype=np.int64)
        self._ea_rank = np.empty(1, dtype=np.int64)
        self._ea_len = np.zeros(max(n_edges, 1), dtype=np.int64)

    # ---------------------------------------------------------------- growth
    def _grow_rows(self) -> None:
        new_cap = self._cap * 2
        grow_specs = [
            ("a_size", 0.0), ("a_remaining", 0.0), ("a_completion", np.nan),
            ("a_start", np.nan), ("a_started", 0), ("a_release", 0.0),
            ("a_rate_prev", 0.0), ("a_rank", 0), ("a_sid", 0),
            ("a_eoff", 0), ("a_eend", 0), ("a_last_seg", -1),
            ("a_live", False), ("a_harvested", 0),
            ("a_harvest_remaining", 0.0), ("a_harvest_moved", 0),
            ("a_start_harvested", 0),
            ("_flow_dirty_arr", 0), ("_epoch_tag", 0),
        ]
        for name, fill in grow_specs:
            old = getattr(self, name)
            new = np.full(new_cap, fill, dtype=old.dtype)
            new[: self._cap] = old
            setattr(self, name, new)
        self._cap = new_cap
        self._run_ptrs = self._be_ptrs = None

    def _grow_segments(self) -> None:
        # The C core returns before recording anything once the buffer is
        # full, so growing in place (keeping SEG_LEN and last_seg) and
        # re-entering resumes exactly where it left off.
        seg_len = int(self._istate[_SEG_LEN])
        new_cap = self._seg_cap * 2
        for name in ("_seg_flow", "_seg_start", "_seg_end", "_seg_rate"):
            old = getattr(self, name)
            new = np.empty(new_cap, dtype=old.dtype)
            new[:seg_len] = old[:seg_len]
            setattr(self, name, new)
        self._seg_cap = new_cap
        self._run_ptrs = self._be_ptrs = None

    def _set_edges(self, k: int, edges: List[int]) -> None:
        m = len(edges)
        while self._pool_len + m > len(self._pool):
            new = np.zeros(len(self._pool) * 2, dtype=np.int64)
            new[: self._pool_len] = self._pool[: self._pool_len]
            self._pool = new
            self._run_ptrs = self._be_ptrs = None
        self._pool[self._pool_len : self._pool_len + m] = edges
        self.a_eoff[k] = self._pool_len
        self.a_eend[k] = self._pool_len + m
        self._pool_len += m

    # ------------------------------------------------------------ slot deltas
    def ingest(self, fid, size, release, path, weight: float = 1.0) -> int:
        if fid in self._pos:
            raise ValueError(f"flow {fid!r} is already resident")
        size = float(size)
        if size <= _VOLUME_EPS:
            raise ValueError(
                f"flow {fid!r} has no volume ({size:g}); zero-size flows "
                "complete at submit time and are never ingested"
            )
        edges = self._path_edge_ids(path)
        sid = self._next_sid
        self._next_sid += 1
        if self._free:
            k = self._free.pop()
            self.slots_reused += 1
            self.fids[k] = fid
        else:
            if self._nrows >= self._cap:
                self._grow_rows()
            k = self._nrows
            self._nrows += 1
            self.fids.append(fid)
        self._pos[fid] = k
        self.a_sid[k] = sid
        self.a_live[k] = True
        self.a_size[k] = size
        self.a_remaining[k] = size
        self.a_release[k] = float(release)
        self.a_completion[k] = np.nan
        self.a_start[k] = np.nan
        self.a_started[k] = 0
        self.a_rate_prev[k] = 0.0
        self.a_rank[k] = 0
        self.a_last_seg[k] = -1
        self.a_harvested[k] = 0
        self.a_harvest_remaining[k] = size
        self.a_harvest_moved[k] = 0
        self.a_start_harvested[k] = 0
        self._set_edges(k, edges)
        self._ingested_since.append(k)
        return k

    def ingest_many(self, fids, sizes, releases, paths, weight: float = 1.0):
        """Ingest a batch of flows; equivalent to sequential :meth:`ingest`.

        Slot allocation, sid assignment and edge-pool layout match the
        one-at-a-time path exactly (same free-list pops, same sid order),
        but the per-slot column writes are vectorised, which is what makes
        admitting a whole coflow cheap inside a re-plan patch.
        """
        n = len(fids)
        if n == 0:
            return []
        sizes = [float(s) for s in sizes]
        seen = set()
        for fid, size in zip(fids, sizes):
            if fid in self._pos or fid in seen:
                raise ValueError(f"flow {fid!r} is already resident")
            seen.add(fid)
            if size <= _VOLUME_EPS:
                raise ValueError(
                    f"flow {fid!r} has no volume ({size:g}); zero-size "
                    "flows complete at submit time and are never ingested"
                )
        edge_lists = [self._path_edge_ids(path) for path in paths]
        ks = []
        free = self._free
        for fid in fids:
            if free:
                k = free.pop()
                self.slots_reused += 1
                self.fids[k] = fid
            else:
                if self._nrows >= self._cap:
                    self._grow_rows()
                k = self._nrows
                self._nrows += 1
                self.fids.append(fid)
            self._pos[fid] = k
            ks.append(k)
        k_arr = np.asarray(ks, dtype=np.int64)
        sid0 = self._next_sid
        self._next_sid += n
        self.a_sid[k_arr] = np.arange(sid0, sid0 + n, dtype=np.int64)
        size_arr = np.asarray(sizes, dtype=np.float64)
        self.a_live[k_arr] = True
        self.a_size[k_arr] = size_arr
        self.a_remaining[k_arr] = size_arr
        self.a_release[k_arr] = np.asarray(
            [float(r) for r in releases], dtype=np.float64
        )
        self.a_completion[k_arr] = np.nan
        self.a_start[k_arr] = np.nan
        self.a_started[k_arr] = 0
        self.a_rate_prev[k_arr] = 0.0
        self.a_rank[k_arr] = 0
        self.a_last_seg[k_arr] = -1
        self.a_harvested[k_arr] = 0
        self.a_harvest_remaining[k_arr] = size_arr
        self.a_harvest_moved[k_arr] = 0
        self.a_start_harvested[k_arr] = 0
        total = sum(len(edges) for edges in edge_lists)
        while self._pool_len + total > len(self._pool):
            new = np.zeros(len(self._pool) * 2, dtype=np.int64)
            new[: self._pool_len] = self._pool[: self._pool_len]
            self._pool = new
            self._run_ptrs = self._be_ptrs = None
        pool = self._pool
        off = self._pool_len
        for k, edges in zip(ks, edge_lists):
            m = len(edges)
            pool[off : off + m] = edges
            self.a_eoff[k] = off
            self.a_eend[k] = off + m
            off += m
        self._pool_len = off
        self._ingested_since.extend(ks)
        return ks

    def sid_of(self, fid) -> int:
        return int(self.a_sid[self._pos[fid]])

    def update_path(self, k: int, path) -> None:
        self._set_edges(k, self._path_edge_ids(path))

    # ------------------------------------------------------------- epoch turn
    def begin_epoch(self, now, order, max_events=None, allocator=None):
        if allocator is not None and allocator != "greedy":
            raise ValueError(
                f"the compiled resident tier only lowers the greedy "
                f"allocator; the plan switched to {allocator!r} mid-session"
            )
        if now + _TIME_EPS < self.now:
            raise ValueError(
                f"epoch start t={now:g} precedes the kernel clock "
                f"t={self.now:g}"
            )
        n_edges = len(self._caps)
        order_arr = np.ascontiguousarray(order, dtype=np.int64)
        nlive = len(order_arr)
        self._epoch_no += 1

        # Per-epoch work arrays (indices are slot ids, lengths are bounded
        # by the live-flow count).  The scratch is persistent and grown
        # geometrically; stale contents beyond the handed-in lengths are
        # never read by the C core.
        if nlive > self._scratch_cap:
            new_cap = max(self._scratch_cap * 2, nlive)
            self._scratch_cap = new_cap
            self._act = np.empty(new_cap, dtype=np.int64)
            self._act_rank = np.empty(new_cap, dtype=np.int64)
            self._dirty_stack = np.empty(new_cap, dtype=np.int64)
            self._g_pos = np.empty(new_cap, dtype=np.int64)
            self._g_rate = np.empty(new_cap, dtype=np.float64)
            self._done_scratch = np.empty(new_cap, dtype=np.int64)
            self._ps_k = np.empty(new_cap, dtype=np.int64)
            self._ps_rank = np.empty(new_cap, dtype=np.int64)
            self._ps_rel = np.empty(new_cap, dtype=np.float64)
            self._pend_release = np.empty(new_cap, dtype=np.float64)
            self._pend_rank = np.empty(new_cap, dtype=np.int64)
            self._pend_k = np.empty(new_cap, dtype=np.int64)
            self._hv_done = np.empty(new_cap, dtype=np.int64)
            self._hv_start = np.empty(new_cap, dtype=np.int64)
            self._hv_touch = np.empty(new_cap, dtype=np.int64)
            self._hv_moved = np.empty(new_cap, dtype=np.int64)
            self._run_ptrs = self._be_ptrs = None
        prev = self._live_rows
        if self._ingested_since:
            ing = np.asarray(self._ingested_since, dtype=np.int64)
        else:
            ing = prev[:0]
        dep_need = len(prev) + len(ing)
        if dep_need > len(self._dep_scratch):
            self._dep_scratch = np.empty(
                max(dep_need, 2 * len(self._dep_scratch)), dtype=np.int64
            )
            self._be_ptrs = None

        # One compiled pass splices the epoch: generation-tag tombstoning
        # and stale-dirty clearing over the previous live set, then ranks,
        # epoch-local baselines, the active/pending split and the per-edge
        # rank-sorted slabs (the order is already rank-sorted, so the slab
        # fill is a counting sort with the same layout the per-run tier
        # builds).  The call is idempotent; a too-small slab buffer grows
        # geometrically and retries.
        threshold = float(now) + _TIME_EPS
        lib = _load()
        while True:
            ptrs = self._be_ptrs
            if ptrs is None:
                ptrs = self._be_ptrs = (
                    (
                        _ptr(self.a_release), _ptr(self.a_remaining),
                        _ptr(self.a_size), _ptr(self.a_started),
                        _ptr(self.a_start), _ptr(self.a_rank),
                        _ptr(self.a_eoff), _ptr(self.a_eend),
                        _ptr(self._pool),
                        _ptr(self._act), _ptr(self._act_rank),
                        _ptr(self._ps_k), _ptr(self._ps_rank),
                        _ptr(self._ps_rel),
                        _ptr(self._ea_off), _ptr(self._ea_len),
                        _ptr(self._ea_flow), _ptr(self._ea_rank),
                    ),
                    _ptr(self._epoch_tag),
                    _ptr(self._flow_dirty_arr),
                    _ptr(self._dep_scratch),
                    _ptr(self._be_out),
                )
            cols, p_tag, p_dirty, p_dep, p_out = ptrs
            need_space = lib.repro_begin_epoch(
                nlive, n_edges, threshold,
                _ptr(order_arr),
                *cols,
                p_tag, self._epoch_no,
                _ptr(prev), len(prev),
                _ptr(ing), len(ing),
                p_dirty,
                p_dep, len(self._ea_flow),
                p_out,
            )
            if need_space:
                slab_cap = max(int(self._be_out[2]), 2 * len(self._ea_flow))
                self._ea_flow = np.empty(slab_cap, dtype=np.int64)
                self._ea_rank = np.empty(slab_cap, dtype=np.int64)
                self._run_ptrs = self._be_ptrs = None
                continue
            break
        self._ingested_since.clear()

        # Tombstoned slots: completed during the closing epoch, or paused
        # below the volume epsilon (those complete at the re-plan time).
        n_departed = int(self._be_out[3])
        if n_departed:
            departed = self._dep_scratch[:n_departed]
            unfinished = np.isnan(self.a_completion[departed])
            bad = unfinished & (self.a_remaining[departed] > _VOLUME_EPS)
            if bad.any():
                k = int(departed[np.flatnonzero(bad)[0]])
                raise ValueError(
                    f"slot {k} ({self.fids[k]!r}) still holds "
                    f"{float(self.a_remaining[k]):g} volume but is absent "
                    "from the epoch order"
                )
            self.a_completion[departed[unfinished]] = now
            self.a_live[departed] = False
            fids = self.fids
            pos = self._pos
            free = self._free
            for k in departed.tolist():
                del pos[fids[k]]
                fids[k] = None
                free.append(k)
        self._live_rows = order_arr
        n_active = int(self._be_out[0])
        npend = int(self._be_out[1])
        self._n_pend = npend
        if npend:
            # (release, rank, slot) order: the core emits pending flows in
            # rank order, so a stable sort on release alone reproduces the
            # tuple sort (the slot tiebreaker is unreachable — ranks are
            # unique).  Sorted into persistent buffers so the run() call's
            # cached pointers stay valid.
            srt = np.argsort(self._ps_rel[:npend], kind="stable")
            np.take(self._ps_rel[:npend], srt, out=self._pend_release[:npend])
            np.take(self._ps_rank[:npend], srt, out=self._pend_rank[:npend])
            np.take(self._ps_k[:npend], srt, out=self._pend_k[:npend])

        ist = self._istate
        seg_len = int(ist[_SEG_LEN])  # the segment log spans epochs
        ist[:] = 0
        ist[_SEG_LEN] = seg_len
        ist[_ACT_LEN] = n_active
        ist[_FORCE_FULL] = 1
        cap_events = (
            int(max_events) if max_events is not None else 4 * nlive + 16
        )
        ist[_MAX_EVENTS] = cap_events
        self._dstate[0] = float(now)
        self._n_target = nlive
        self.now = float(now)
        self.events = 0
        self.max_events = cap_events

    # ------------------------------------------------------------- event loop
    def run(self, until=None) -> bool:
        maybe_inject("sim")
        lib = _load()
        n_edges = len(self._caps)
        until_c = math.inf if until is None else float(until)
        with paused_gc():
            while True:
                # Pointer groups are cached across epochs (the arrays are
                # persistent); any buffer reallocation resets the cache.
                ptrs = self._run_ptrs
                if ptrs is None:
                    ptrs = self._run_ptrs = (
                        (
                            _ptr(self.a_size), _ptr(self.a_remaining),
                            _ptr(self.a_completion), _ptr(self.a_start),
                            _ptr(self.a_started),
                            _ptr(self.a_rank), _ptr(self.a_sid),
                            _ptr(self.a_eoff), _ptr(self.a_eend),
                            _ptr(self._pool),
                            _ptr(self._caps_arr), _ptr(self._residual),
                            _ptr(self._pend_release), _ptr(self._pend_rank),
                            _ptr(self._pend_k),
                        ),
                        (
                            _ptr(self._act), _ptr(self._act_rank),
                            _ptr(self._ea_off), _ptr(self._ea_flow),
                            _ptr(self._ea_rank), _ptr(self._ea_len),
                            _ptr(self._flow_dirty_arr),
                            _ptr(self._dirty_stack),
                            _ptr(self._g_pos), _ptr(self._g_rate),
                            _ptr(self.a_rate_prev),
                            _ptr(self._seg_flow), _ptr(self._seg_start),
                            _ptr(self._seg_end), _ptr(self._seg_rate),
                        ),
                        (
                            _ptr(self.a_last_seg), _ptr(self._done_scratch),
                            _ptr(self._istate), _ptr(self._dstate),
                        ),
                    )
                before, middle, after = ptrs
                status = lib.repro_greedy_run(
                    self._n_target, n_edges,
                    *before, self._n_pend,
                    *middle, self._seg_cap, *after,
                    until_c, _VOLUME_EPS, _TIME_EPS,
                )
                if status == _NEED_SEGMENT_SPACE:
                    self._grow_segments()
                    continue
                break
        self.events = int(self._istate[_EVENTS])
        self.now = float(self._dstate[0])
        if status == _STALLED:
            raise self._stuck_error(
                f"simulation stalled at t={self.now:g}: no runnable "
                "flow and no pending release"
            )
        if status == _EVENT_CAP:
            raise self._stuck_error(
                f"simulation exceeded the event cap ({self.max_events}) "
                f"at t={self.now:g}; this indicates an internal "
                "inconsistency"
            )
        return status == _FINISHED

    # ---------------------------------------------------------------- harvest
    def harvest_epoch(self):
        live = self._live_rows
        lib = _load()
        lib.repro_harvest_epoch(
            len(live), _ptr(live),
            _ptr(self.a_completion), _ptr(self.a_harvested),
            _ptr(self.a_started), _ptr(self.a_start_harvested),
            _ptr(self.a_remaining), _ptr(self.a_harvest_remaining),
            _ptr(self.a_last_seg), _ptr(self.a_harvest_moved),
            _ptr(self._hv_done), _ptr(self._hv_start),
            _ptr(self._hv_touch), _ptr(self._hv_moved),
            _ptr(self._hv_out),
        )
        n_done, n_start, n_touch, n_moved = self._hv_out.tolist()
        done_rows = self._hv_done[:n_done]
        completions = list(
            zip(done_rows.tolist(), self.a_completion[done_rows].tolist())
        )
        start_rows = self._hv_start[:n_start]
        starts = list(
            zip(start_rows.tolist(), self.a_start[start_rows].tolist())
        )
        touch_rows = self._hv_touch[:n_touch]
        touched = list(
            zip(touch_rows.tolist(), self.a_remaining[touch_rows].tolist())
        )
        return completions, starts, touched, self._hv_moved[:n_moved].tolist()

    def drain_all_segments(self) -> Iterator[Tuple[int, List[List[float]]]]:
        count = int(self._istate[_SEG_LEN])
        if count == 0:
            return
        sids = self._seg_flow[:count]
        order = np.argsort(sids, kind="stable")  # per-sid, in time order
        triples = np.column_stack(
            (self._seg_start[:count][order], self._seg_end[:count][order],
             self._seg_rate[:count][order])
        ).tolist()
        sids_sorted = sids[order]
        bounds = np.flatnonzero(sids_sorted[1:] != sids_sorted[:-1]) + 1
        chunk_starts = np.concatenate(([0], bounds))
        chunk_ends = np.concatenate((bounds, [count]))
        for a, b, sid in zip(chunk_starts.tolist(), chunk_ends.tolist(),
                             sids_sorted[chunk_starts].tolist()):
            yield sid, triples[a:b]

    # ------------------------------------------------------------ diagnostics
    @property
    def finished(self) -> bool:
        return int(self._istate[_COMPLETED]) == self._n_target

    @property
    def remaining(self) -> np.ndarray:
        return self.a_remaining[: self._nrows].copy()

    @property
    def completion(self) -> np.ndarray:
        return self.a_completion[: self._nrows].copy()

    def _edge_ids_of(self, k: int) -> List[int]:
        return self._pool[int(self.a_eoff[k]) : int(self.a_eend[k])].tolist()

    def _unfinished_report(self):
        rows = self._live_rows[np.isnan(self.a_completion[self._live_rows])]
        return [
            (self.fids[k], float(self.a_release[k]),
             float(self.a_remaining[k]))
            for k in rows.tolist()
        ]

    def _current_residual(self):
        residual = list(self._caps)
        glen = int(self._istate[_G_LEN])
        for k, rate in zip(self._g_pos[:glen].tolist(),
                           self._g_rate[:glen].tolist()):
            for e in self._edge_ids_of(k):
                residual[e] -= rate
        return residual

    def _saturated_edges(self, residual):
        saturated: List[int] = []
        seen = set()
        rows = self._live_rows[np.isnan(self.a_completion[self._live_rows])]
        for k in rows.tolist():
            for e in self._edge_ids_of(k):
                if e not in seen and residual[e] <= _VOLUME_EPS:
                    seen.add(e)
                    saturated.append(e)
        return [self.edge_list[e] for e in sorted(saturated)]
