"""Flow-level event-driven simulator (the paper's Section-4.1 methodology).

The paper argues packet-level simulation is too heavy for this setting and,
like Varys and Rapier, evaluates with a *flow-level* simulator: an event queue
where events are flow releases and flow completions, and bandwidth reserved by
a flow is released when it completes.

This implementation reproduces that behaviour with one refinement that the
paper's "minor tweaks" (Section 4.2) also apply: rates are re-computed at
every event (greedily in priority order under the default allocator), so a
flow whose bottleneck frees up speeds up immediately and no capacity is left
idle while a runnable flow exists (work conservation).  Concretely, at every
event time:

1. the released, unfinished flows are handed to the plan's rate allocator
   (:mod:`repro.sim.allocators`; the default ``"greedy"`` policy considers
   flows in plan priority order and grants each the minimum residual
   capacity along its path, possibly zero if a higher-priority flow
   saturated an edge);
2. the next event is the earliest of (a) the next flow release and (b) the
   earliest projected completion under the granted rates.

The simulator is deterministic given the plan and produces exact completion
times (no time discretisation).  :meth:`FlowLevelSimulator.run` executes on
the array-based :class:`~repro.sim.kernel.SimulationKernel`;
:meth:`FlowLevelSimulator.run_reference` preserves the original dict-based
event loop, kept as the executable specification the kernel is equivalence-
tested against (``tests/sim/test_kernel_equivalence.py``).
"""

from __future__ import annotations

import math
import os
import warnings
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..core.flows import CoflowInstance, FlowId
from ..core.network import Network, path_edges
from ..core.objective import ObjectiveBreakdown, objective_breakdown
from ..core.schedule import CircuitSchedule
from .allocators import RateAllocator, resolve_allocator
from .kernel import SimulationKernel, format_stuck_report
from .plan import SimulationPlan

__all__ = [
    "BACKENDS",
    "FlowLevelSimulator",
    "SimulationResult",
    "make_kernel",
    "resolve_backend",
    "resolve_resident",
    "validate_backend",
]

Edge = Tuple[Hashable, Hashable]

#: Volumes below this are considered fully transferred (numerical guard).
_VOLUME_EPS = 1e-9
#: Minimum simulated time step (guards against event-time rounding stalls).
_TIME_EPS = 1e-12

#: Kernel backends a plan / CLI flag / environment variable may name.
#: ``"array"`` is the Python array kernel, ``"jit"`` the compiled tier
#: (:mod:`repro.sim.kernel_jit`), ``"auto"`` picks ``jit`` when it can run
#: here and ``array`` otherwise.  Backends are bit-identical by contract —
#: a speed knob only — so the choice never enters scheme signatures or
#: run-store keys.
BACKENDS: Tuple[str, ...] = ("array", "jit", "auto")

#: Environment variable consulted when neither the caller nor the plan
#: pins a backend (``repro run --backend`` sets it for scheme pipelines).
_BACKEND_ENV = "REPRO_SIM_BACKEND"

#: Environment variable consulted when a streaming session is not told
#: explicitly whether to keep its kernel state resident across re-plans.
#: Residency is orthogonal to the ``array|jit`` backend choice and — like
#: the backend — bit-identical by contract, so it never enters scheme
#: signatures or run-store keys.
_RESIDENT_ENV = "REPRO_SIM_RESIDENT"

_fallback_warned = False


def validate_backend(backend: Optional[str]) -> None:
    """Raise ``ValueError`` unless ``backend`` names a known kernel backend.

    ``None`` (defer to the environment, then to ``"array"``) is valid.
    Cheap by design — plan validation calls this on every run, and it must
    not probe compiler availability.
    """
    if backend is not None and backend not in BACKENDS:
        raise ValueError(
            f"unknown simulator backend {backend!r}; expected one of "
            f"{', '.join(BACKENDS)} (or None)"
        )


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a backend request to a concrete kernel tier.

    Precedence: explicit argument > ``REPRO_SIM_BACKEND`` environment
    variable > ``"array"``.  ``"auto"`` (from either source) resolves to
    ``"jit"`` when the compiled tier can run on this machine and
    ``"array"`` otherwise; an explicit ``"jit"`` is kept as-is and falls
    back (with a warning) at kernel-construction time so the caller can
    tell the difference between *requested* and *running*.
    """
    if backend is None:
        backend = os.environ.get(_BACKEND_ENV, "").strip() or None
    validate_backend(backend)
    if backend is None:
        return "array"
    if backend == "auto":
        from . import kernel_jit

        return "jit" if kernel_jit.available() else "array"
    return backend


def resolve_resident(resident: Optional[bool] = None) -> bool:
    """Resolve the residency request of a streaming session.

    Precedence: explicit argument > ``REPRO_SIM_RESIDENT`` environment
    variable > ``False`` (rebuild a kernel per epoch).  Residency is a
    speed knob with the same contract as the backend choice: resident
    sessions are bit-identical to the rebuild reference, so the choice
    never enters scheme signatures or run-store keys.
    """
    if resident is not None:
        return bool(resident)
    raw = os.environ.get(_RESIDENT_ENV, "").strip().lower()
    if not raw:
        return False
    if raw in ("1", "true", "yes", "on"):
        return True
    if raw in ("0", "false", "no", "off"):
        return False
    raise ValueError(
        f"unrecognised {_RESIDENT_ENV} value {raw!r}; expected a boolean "
        "(1/0, true/false, yes/no, on/off)"
    )


def make_kernel(
    network: Network,
    instance: CoflowInstance,
    plan: SimulationPlan,
    allocator: Optional[RateAllocator] = None,
    max_events: Optional[int] = None,
    start_time: float = 0.0,
    backend: Optional[str] = None,
) -> SimulationKernel:
    """Build the simulation kernel for the selected backend.

    ``backend`` overrides ``plan.backend``; with neither set the
    ``REPRO_SIM_BACKEND`` environment variable and finally ``"array"``
    apply (see :func:`resolve_backend`).  Requesting ``"jit"`` on a
    machine without a C toolchain degrades to the array kernel with a
    one-time ``RuntimeWarning`` — never an error, since backends are
    bit-identical and availability is a property of the machine, not of
    the experiment.
    """
    resolved = resolve_backend(backend if backend is not None else plan.backend)
    if resolved == "jit":
        from . import kernel_jit

        if kernel_jit.available():
            return kernel_jit.JitSimulationKernel(
                network,
                instance,
                plan,
                allocator=allocator,
                max_events=max_events,
                start_time=start_time,
            )
        global _fallback_warned
        if not _fallback_warned:
            _fallback_warned = True
            warnings.warn(
                "the 'jit' simulator backend is unavailable "
                f"({kernel_jit.unavailable_reason()}); "
                "falling back to the 'array' kernel (results are identical)",
                RuntimeWarning,
                stacklevel=2,
            )
    return SimulationKernel(
        network,
        instance,
        plan,
        allocator=allocator,
        max_events=max_events,
        start_time=start_time,
    )


@dataclass
class SimulationResult:
    """Completion times and derived metrics of one simulation run."""

    plan_name: str
    flow_completion: Dict[FlowId, float]
    flow_start: Dict[FlowId, float]
    breakdown: ObjectiveBreakdown
    schedule: CircuitSchedule
    events: int
    #: Per-coflow slowdown: realised coflow duration over its isolation time
    #: (see :func:`repro.sim.metrics.coflow_slowdowns`).
    coflow_slowdowns: Dict[int, float] = field(default_factory=dict)

    @property
    def weighted_completion_time(self) -> float:
        """Objective (1): the weighted sum of coflow completion times."""
        return self.breakdown.weighted_completion_time

    @property
    def total_completion_time(self) -> float:
        """Unweighted sum of coflow completion times."""
        return self.breakdown.total_completion_time

    @property
    def average_completion_time(self) -> float:
        """Mean coflow completion time."""
        return self.breakdown.average_completion_time

    @property
    def makespan(self) -> float:
        """Completion time of the last coflow."""
        return self.breakdown.makespan

    @property
    def mean_slowdown(self) -> float:
        """Mean per-coflow slowdown (1.0 when no slowdowns were computed)."""
        if not self.coflow_slowdowns:
            return 1.0
        values = list(self.coflow_slowdowns.values())
        return float(sum(values) / len(values))

    @property
    def max_slowdown(self) -> float:
        """Worst per-coflow slowdown (1.0 when no slowdowns were computed)."""
        if not self.coflow_slowdowns:
            return 1.0
        return float(max(self.coflow_slowdowns.values()))

    def metrics(self) -> Dict[str, float]:
        """The scalar metrics of this run as a plain (JSON-safe) dict.

        This is the payload the experiment engine persists in its run store;
        keys match the metric names accepted by sweeps and comparisons.
        """
        return {
            "weighted_completion_time": float(self.weighted_completion_time),
            "total_completion_time": float(self.total_completion_time),
            "average_completion_time": float(self.average_completion_time),
            "makespan": float(self.makespan),
            "mean_slowdown": float(self.mean_slowdown),
            "max_slowdown": float(self.max_slowdown),
        }


def _build_result(
    instance: CoflowInstance,
    network: Network,
    plan: SimulationPlan,
    completion: Dict[FlowId, float],
    start: Dict[FlowId, float],
    schedule: CircuitSchedule,
    events: int,
) -> SimulationResult:
    """Assemble a :class:`SimulationResult` (shared by both event loops)."""
    from .metrics import coflow_slowdowns

    breakdown = objective_breakdown(instance, completion)
    return SimulationResult(
        plan_name=plan.name,
        flow_completion=completion,
        flow_start=start,
        breakdown=breakdown,
        schedule=schedule,
        events=events,
        coflow_slowdowns=coflow_slowdowns(instance, network, plan.paths, completion),
    )


class FlowLevelSimulator:
    """Simulate a :class:`SimulationPlan` on a network.

    Parameters
    ----------
    network:
        The capacitated topology.
    backend:
        Default kernel backend for :meth:`run` (``"array"``, ``"jit"`` or
        ``"auto"``); ``None`` defers to the plan, then the
        ``REPRO_SIM_BACKEND`` environment variable, then ``"array"``.
    """

    def __init__(self, network: Network, backend: Optional[str] = None) -> None:
        validate_backend(backend)
        self.network = network
        self.backend = backend

    # ------------------------------------------------------------------- run
    def run(
        self,
        instance: CoflowInstance,
        plan: SimulationPlan,
        max_events: Optional[int] = None,
        allocator: Optional[RateAllocator] = None,
        backend: Optional[str] = None,
    ) -> SimulationResult:
        """Simulate the plan on the selected kernel; return the result.

        ``allocator`` overrides the rate policy named by the plan (mainly
        for tests; schemes select allocators through their plans).
        ``backend`` overrides the simulator's and the plan's kernel tier
        for this one run; backends are bit-identical, so the result does
        not depend on the choice.
        """
        plan = plan.normalized(instance)
        plan.validate(instance, self.network)
        kernel = make_kernel(
            self.network,
            instance,
            plan,
            allocator=allocator,
            max_events=max_events,
            backend=backend if backend is not None else self.backend,
        )
        kernel.run()
        return _build_result(
            instance,
            self.network,
            plan,
            kernel.flow_completion_map(),
            kernel.flow_start_map(),
            kernel.build_schedule(),
            kernel.events,
        )

    # -------------------------------------------------------------- reference
    def run_reference(
        self,
        instance: CoflowInstance,
        plan: SimulationPlan,
        max_events: Optional[int] = None,
        allocator: Optional[RateAllocator] = None,
    ) -> SimulationResult:
        """The original dict-based event loop, kept as the executable spec.

        Slow but transparent: every event rebuilds the residual-capacity
        dict and re-derives every flow's rate from scratch.  The array
        kernel behind :meth:`run` is property-tested to produce numerically
        identical completion times and schedule volumes; use this path when
        debugging the kernel or validating a new allocator.
        """
        plan = plan.normalized(instance)
        plan.validate(instance, self.network)
        policy = allocator or resolve_allocator(plan.allocator)

        flows = {fid: instance.flow(fid) for fid in instance.flow_ids()}
        remaining: Dict[FlowId, float] = {
            fid: flow.size for fid, flow in flows.items()
        }
        release: Dict[FlowId, float] = {
            fid: flow.release_time for fid, flow in flows.items()
        }
        rank = plan.priority_rank()
        priority_order = sorted(flows.keys(), key=lambda fid: (rank[fid], fid))
        capacities = self.network.capacities()
        edges_of: Dict[FlowId, List[Edge]] = {
            fid: path_edges(list(plan.paths[fid])) for fid in flows
        }
        weight_of = {
            fid: instance[fid[0]].weight for fid in flows
        }
        entry_of = {
            fid: (fid, edges_of[fid], weight_of[fid]) for fid in flows
        }

        completion: Dict[FlowId, float] = {}
        start: Dict[FlowId, float] = {}
        schedule = CircuitSchedule()
        for fid in flows:
            schedule.set_path(fid, plan.paths[fid])
            if flows[fid].size <= _VOLUME_EPS:
                completion[fid] = release[fid]

        # Event cap: every event completes at least one flow or passes one
        # release time, so 2 * |flows| + 2 is a safe bound; the configurable
        # cap exists purely as a defensive guard for pathological inputs.
        cap = max_events if max_events is not None else 4 * len(flows) + 16

        def stuck_details(residual: Mapping[Edge, float]):
            unfinished = [
                (fid, release[fid], remaining[fid])
                for fid in priority_order
                if fid not in completion
            ]
            saturated = sorted(
                {
                    e
                    for fid, _r, _v in unfinished
                    for e in edges_of[fid]
                    if residual[e] <= _VOLUME_EPS
                },
                key=repr,
            )
            return unfinished, saturated

        now = 0.0
        events = 0
        residual: Dict[Edge, float] = dict(capacities)
        while len(completion) < len(flows):
            events += 1
            if events > cap:
                unfinished, saturated = stuck_details(residual)
                raise RuntimeError(
                    format_stuck_report(
                        f"simulation exceeded the event cap ({cap}) at "
                        f"t={now:g}; this indicates an internal inconsistency",
                        unfinished,
                        saturated,
                    )
                )
            # 1. Allocate rates among the released, unfinished flows.
            residual = dict(capacities)
            eligible = [
                entry_of[fid]
                for fid in priority_order
                if fid not in completion and release[fid] <= now + _TIME_EPS
            ]
            rates = policy.allocate(residual, eligible)

            # 2. Find the next event time.
            next_completion = math.inf
            for fid, rate in rates.items():
                if rate > 0.0:
                    next_completion = min(next_completion, now + remaining[fid] / rate)
            next_release = min(
                (release[fid] for fid in flows if fid not in completion and release[fid] > now + _TIME_EPS),
                default=math.inf,
            )
            next_time = min(next_completion, next_release)
            if not math.isfinite(next_time):
                unfinished, saturated = stuck_details(residual)
                raise RuntimeError(
                    format_stuck_report(
                        f"simulation stalled at t={now:g}: no runnable flow "
                        "and no pending release",
                        unfinished,
                        saturated,
                    )
                )
            next_time = max(next_time, now + _TIME_EPS)

            # 3. Advance: record segments, decrement volumes, mark completions.
            elapsed = next_time - now
            for fid, rate in rates.items():
                if rate <= 0.0:
                    continue
                transferred = min(rate * elapsed, remaining[fid])
                schedule.add_segment(fid, now, next_time, rate)
                remaining[fid] -= transferred
                if remaining[fid] <= _VOLUME_EPS:
                    remaining[fid] = 0.0
                    completion[fid] = next_time
                # A flow *starts* once real volume has moved — a vanishing
                # transfer inside a forced epsilon step does not count.
                if fid not in start and flows[fid].size - remaining[fid] > _VOLUME_EPS:
                    start[fid] = now
            now = next_time

        return _build_result(
            instance, self.network, plan, completion, start, schedule, events
        )
