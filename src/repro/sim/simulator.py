"""Flow-level event-driven simulator (the paper's Section-4.1 methodology).

The paper argues packet-level simulation is too heavy for this setting and,
like Varys and Rapier, evaluates with a *flow-level* simulator: an event queue
where events are flow releases and flow completions, and bandwidth reserved by
a flow is released when it completes.

This implementation reproduces that behaviour with one refinement that the
paper's "minor tweaks" (Section 4.2) also apply: rates are re-computed greedily
in priority order at every event, so a flow whose bottleneck frees up speeds
up immediately and no capacity is left idle while a runnable flow exists
(work conservation).  Concretely, at every event time:

1. flows are considered in plan priority order (released, unfinished ones);
2. each flow is granted the minimum residual capacity along its path
   (possibly zero if a higher-priority flow saturated an edge);
3. the next event is the earliest of (a) the next flow release and (b) the
   earliest projected completion under the granted rates.

The simulator is deterministic given the plan and produces exact completion
times (no time discretisation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..core.flows import CoflowInstance, FlowId
from ..core.network import Network, path_edges
from ..core.objective import ObjectiveBreakdown, objective_breakdown
from ..core.schedule import CircuitSchedule
from .plan import SimulationPlan

__all__ = ["FlowLevelSimulator", "SimulationResult"]

Edge = Tuple[Hashable, Hashable]

#: Volumes below this are considered fully transferred (numerical guard).
_VOLUME_EPS = 1e-9
#: Minimum simulated time step (guards against event-time rounding stalls).
_TIME_EPS = 1e-12


@dataclass
class SimulationResult:
    """Completion times and derived metrics of one simulation run."""

    plan_name: str
    flow_completion: Dict[FlowId, float]
    flow_start: Dict[FlowId, float]
    breakdown: ObjectiveBreakdown
    schedule: CircuitSchedule
    events: int

    @property
    def weighted_completion_time(self) -> float:
        return self.breakdown.weighted_completion_time

    @property
    def total_completion_time(self) -> float:
        return self.breakdown.total_completion_time

    @property
    def average_completion_time(self) -> float:
        return self.breakdown.average_completion_time

    @property
    def makespan(self) -> float:
        return self.breakdown.makespan

    def metrics(self) -> Dict[str, float]:
        """The scalar metrics of this run as a plain (JSON-safe) dict.

        This is the payload the experiment engine persists in its run store;
        keys match the metric names accepted by sweeps and comparisons.
        """
        return {
            "weighted_completion_time": float(self.weighted_completion_time),
            "total_completion_time": float(self.total_completion_time),
            "average_completion_time": float(self.average_completion_time),
            "makespan": float(self.makespan),
        }


class FlowLevelSimulator:
    """Simulate a :class:`SimulationPlan` on a network.

    Parameters
    ----------
    network:
        The capacitated topology.
    rate_granularity:
        Optional cap on how many distinct priority levels share an edge
        simultaneously; ``None`` (default) means pure priority order, which is
        what the paper's ordering-based schemes assume.
    """

    def __init__(self, network: Network) -> None:
        self.network = network

    # ------------------------------------------------------------------- run
    def run(
        self,
        instance: CoflowInstance,
        plan: SimulationPlan,
        max_events: Optional[int] = None,
    ) -> SimulationResult:
        """Simulate the plan and return completion times and the realised schedule."""
        plan = plan.normalized(instance)
        plan.validate(instance, self.network)

        flows = {fid: instance.flow(fid) for fid in instance.flow_ids()}
        remaining: Dict[FlowId, float] = {
            fid: flow.size for fid, flow in flows.items()
        }
        release: Dict[FlowId, float] = {
            fid: flow.release_time for fid, flow in flows.items()
        }
        rank = plan.priority_rank()
        priority_order = sorted(flows.keys(), key=lambda fid: (rank[fid], fid))
        capacities = self.network.capacities()
        edges_of: Dict[FlowId, List[Edge]] = {
            fid: path_edges(list(plan.paths[fid])) for fid in flows
        }

        completion: Dict[FlowId, float] = {}
        start: Dict[FlowId, float] = {}
        schedule = CircuitSchedule()
        for fid in flows:
            schedule.set_path(fid, plan.paths[fid])
            if flows[fid].size <= _VOLUME_EPS:
                completion[fid] = release[fid]

        # Event cap: every event completes at least one flow or passes one
        # release time, so 2 * |flows| + 2 is a safe bound; the configurable
        # cap exists purely as a defensive guard for pathological inputs.
        cap = max_events if max_events is not None else 4 * len(flows) + 16

        now = 0.0
        events = 0
        while len(completion) < len(flows):
            events += 1
            if events > cap:
                raise RuntimeError(
                    f"simulation exceeded the event cap ({cap}); "
                    "this indicates an internal inconsistency"
                )
            # 1. Allocate rates greedily in priority order.
            residual = dict(capacities)
            rates: Dict[FlowId, float] = {}
            for fid in priority_order:
                if fid in completion or release[fid] > now + _TIME_EPS:
                    continue
                rate = min(residual[e] for e in edges_of[fid])
                if rate <= _VOLUME_EPS:
                    rate = 0.0
                rates[fid] = rate
                if rate > 0.0:
                    for e in edges_of[fid]:
                        residual[e] -= rate
                    start.setdefault(fid, now)

            # 2. Find the next event time.
            next_completion = math.inf
            for fid, rate in rates.items():
                if rate > 0.0:
                    next_completion = min(next_completion, now + remaining[fid] / rate)
            next_release = min(
                (release[fid] for fid in flows if fid not in completion and release[fid] > now + _TIME_EPS),
                default=math.inf,
            )
            next_time = min(next_completion, next_release)
            if not math.isfinite(next_time):
                raise RuntimeError(
                    "simulation stalled: no runnable flow and no pending release; "
                    "check that every flow's path has positive capacity"
                )
            next_time = max(next_time, now + _TIME_EPS)

            # 3. Advance: record segments, decrement volumes, mark completions.
            elapsed = next_time - now
            for fid, rate in rates.items():
                if rate <= 0.0:
                    continue
                transferred = min(rate * elapsed, remaining[fid])
                schedule.add_segment(fid, now, next_time, rate)
                remaining[fid] -= transferred
                if remaining[fid] <= _VOLUME_EPS:
                    remaining[fid] = 0.0
                    completion[fid] = next_time
            now = next_time

        breakdown = objective_breakdown(instance, completion)
        return SimulationResult(
            plan_name=plan.name,
            flow_completion=completion,
            flow_start=start,
            breakdown=breakdown,
            schedule=schedule,
            events=events,
        )
