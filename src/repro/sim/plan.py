"""Simulation plans: the interface between schedulers and the simulator.

The paper's evaluation (Section 4) drives a flow-level simulator with two
pieces of information per scheme: how each flow is *routed* and in which
*order* flows are served.  A :class:`SimulationPlan` bundles exactly that —
a path per flow plus a priority list — and every scheme (the LP-based
algorithm of Section 2.2 and the three competing heuristics of Section 4.3)
reduces to producing one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..core.flows import CoflowInstance, FlowId
from ..core.network import Network

__all__ = ["SimulationPlan"]


@dataclass
class SimulationPlan:
    """Routing and service order for one scheme on one instance.

    Attributes
    ----------
    paths:
        Chosen path per flow.
    order:
        Flow ids in decreasing priority (earlier = served first).  Flows
        missing from the list are appended in deterministic id order.
    name:
        Scheme name used in benchmark tables ("LP-Based", "Baseline", ...).
    allocator:
        Name of the per-event rate allocation policy the simulator applies
        (see :data:`repro.sim.allocators.ALLOCATORS`).  ``"greedy"`` is the
        paper's strict priority-order policy; ``"max-min"`` and
        ``"weighted"`` select the fair-sharing variants.
    spec:
        Optional canonical scheme-spec string of the pipeline that produced
        this plan (``pipeline(router=..., order=..., ...)``) — provenance
        for artifacts and debugging; ``None`` for hand-built plans.
    backend:
        Kernel backend this plan requests: ``"array"`` (the Python array
        kernel), ``"jit"`` (the compiled kernel tier,
        :mod:`repro.sim.kernel_jit`) or ``None`` (default — defer to the
        ``REPRO_SIM_BACKEND`` environment variable, then to ``"array"``).
        Backends are bit-identical by contract, so this is a *speed* knob:
        it deliberately does not enter scheme signatures or run-store keys.
    """

    paths: Dict[FlowId, Tuple[Hashable, ...]]
    order: List[FlowId]
    name: str = "unnamed"
    allocator: str = "greedy"
    spec: Optional[str] = None
    backend: Optional[str] = None

    def priority_rank(self) -> Dict[FlowId, int]:
        """Map each flow id to its priority rank (0 = highest)."""
        return {fid: rank for rank, fid in enumerate(self.order)}

    def normalized(self, instance: CoflowInstance) -> "SimulationPlan":
        """Return a plan covering every flow of ``instance``.

        Flows missing a path raise; flows missing from the order are appended
        in id order so the simulator always has a total priority order.
        """
        missing_paths = [fid for fid in instance.flow_ids() if fid not in self.paths]
        if missing_paths:
            raise ValueError(f"plan {self.name!r} missing paths for {missing_paths}")
        seen = set(self.order)
        order = list(self.order) + [
            fid for fid in instance.flow_ids() if fid not in seen
        ]
        return SimulationPlan(
            paths=dict(self.paths),
            order=order,
            name=self.name,
            allocator=self.allocator,
            spec=self.spec,
            backend=self.backend,
        )

    def validate(self, instance: CoflowInstance, network: Network) -> None:
        """Check paths exist in the network, match flow endpoints, and that
        the plan names a known rate allocator and kernel backend."""
        from .allocators import resolve_allocator
        from .simulator import validate_backend

        resolve_allocator(self.allocator)  # raises on unknown names
        validate_backend(self.backend)  # raises on unknown backend names
        for i, j, flow in instance.iter_flows():
            fid = (i, j)
            if fid not in self.paths:
                raise ValueError(f"plan {self.name!r} has no path for flow {fid}")
            path = self.paths[fid]
            if path[0] != flow.source or path[-1] != flow.destination:
                raise ValueError(
                    f"plan {self.name!r}: path endpoints for {fid} do not match flow"
                )
            network.validate_path(path)
