"""Online coflow simulation: arrival-driven re-planning over the kernel.

The paper evaluates *clairvoyant offline* schedules: every scheme sees the
whole instance up front and produces one static plan.  The systems it
compares against (Varys-style schedulers) operate differently: coflows
*arrive over time* and the scheduler *re-plans on every arrival*, reordering
and re-routing the unfinished volume.

Since PR 8 the engine itself lives in :mod:`repro.sim.streaming`:
:class:`StreamingScheduler` generalises arrival-driven re-planning to
*batched* re-planning with a staleness bound, and
:class:`OnlineFlowSimulator` is its batch-size-1 special case — each ``run``
opens a fresh streaming session under ``BatchPolicy(max_batch=1)``, whose
re-plan times are exactly the distinct coflow release times.  The
equivalence is bit-exact and property-tested
(``tests/sim/test_streaming_equivalence.py``); this module keeps the
original public names (:class:`ReplanContext`, :data:`Replanner`,
:class:`StaticPlanReplanner`, :class:`OnlineFlowSimulator`) as the stable
import surface for sweeps and pipeline schemes.

* the stream of **arrival events** is derived from the instance itself —
  one event per distinct coflow release time (a coflow arrives when its
  first flow is released);
* at every arrival the engine pauses the kernel, snapshots the unfinished
  volume, and invokes a **replanner callback** with a
  :class:`ReplanContext`: a sub-instance holding the arrived coflows'
  unfinished flows (sizes replaced by their remaining volumes), the
  network, and the mapping back to original flow ids;
* the returned plan is spliced into one continuous simulation: a fresh
  kernel epoch starts at the arrival time and runs until the next arrival.
  Flows that already moved volume keep their path (re-routing mid-transfer
  would corrupt the realised schedule); their priorities may change freely.

The result is a single :class:`~repro.sim.simulator.SimulationResult` whose
completion times, realised schedule and per-coflow slowdowns span the whole
horizon, directly comparable with a static run of the same scheme — which is
exactly what ``online=true`` pipeline schemes (the registry's ``Online-*``
names, :mod:`repro.baselines.pipeline`) expose to sweeps.  With a replanner
that always returns the restriction of one fixed plan
(:class:`StaticPlanReplanner`), online simulation reproduces the static
simulation of that plan (property-tested up to splice-point rounding).
"""

from __future__ import annotations

from typing import Optional

from ..core.flows import CoflowInstance
from ..core.network import Network
from .simulator import SimulationResult, validate_backend
from .streaming import (
    BatchPolicy,
    ReplanContext,
    Replanner,
    StaticPlanReplanner,
    StreamingScheduler,
)

__all__ = ["ReplanContext", "Replanner", "OnlineFlowSimulator", "StaticPlanReplanner"]


class OnlineFlowSimulator:
    """Simulate with re-planning at every coflow arrival (see module doc).

    Parameters
    ----------
    network:
        The capacitated topology.
    replanner:
        Callback invoked at every coflow arrival (see :data:`Replanner`).
    max_events:
        Optional per-epoch event cap forwarded to each kernel epoch.
    backend:
        Kernel backend for every epoch (``"array"``, ``"jit"``, ``"auto"``
        or ``None`` — defer to the per-epoch plan / environment).  Epoch
        splicing is backend-agnostic: the compiled tier pauses at arrival
        deadlines with exactly the array kernel's semantics.
    resident:
        Keep kernel state resident across re-plans instead of rebuilding a
        kernel per arrival (``None`` defers to ``REPRO_SIM_RESIDENT``, then
        ``False``).  Bit-identical to the rebuild path by contract.
    """

    def __init__(
        self,
        network: Network,
        replanner: Replanner,
        max_events: Optional[int] = None,
        backend: Optional[str] = None,
        resident: Optional[bool] = None,
    ) -> None:
        validate_backend(backend)
        self.network = network
        self.replanner = replanner
        self.max_events = max_events
        self.backend = backend
        self.resident = resident
        #: The streaming session behind the most recent :meth:`run` (exposes
        #: ``decision_log`` / ``streaming_metrics()`` for diagnostics).
        self.last_session: Optional[StreamingScheduler] = None

    # ------------------------------------------------------------------- run
    def run(
        self, instance: CoflowInstance, plan_name: Optional[str] = None
    ) -> SimulationResult:
        """Simulate the instance end-to-end; returns the spliced result.

        Each call opens a fresh batch-size-1 :class:`StreamingScheduler`
        session, so repeated runs stay independent and deterministic.
        """
        session = StreamingScheduler(
            self.network,
            self.replanner,
            policy=BatchPolicy(max_batch=1),
            max_events=self.max_events,
            backend=self.backend,
            resident=self.resident,
        )
        self.last_session = session
        return session.run(instance, plan_name=plan_name)
