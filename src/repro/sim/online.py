"""Online coflow simulation: arrival-driven re-planning over the kernel.

The paper evaluates *clairvoyant offline* schedules: every scheme sees the
whole instance up front and produces one static plan.  The systems it
compares against (Varys-style schedulers) operate differently: coflows
*arrive over time* and the scheduler *re-plans on every arrival*, reordering
and re-routing the unfinished volume.  This module adds that operating mode
on top of the array kernel:

* the stream of **arrival events** is derived from the instance itself —
  one event per distinct coflow release time (a coflow arrives when its
  first flow is released);
* at every arrival the engine pauses the kernel, snapshots the unfinished
  volume, and invokes a **replanner callback** with a
  :class:`ReplanContext`: a sub-instance holding the arrived coflows'
  unfinished flows (sizes replaced by their remaining volumes), the
  network, and the mapping back to original flow ids;
* the returned plan is spliced into one continuous simulation: a fresh
  kernel epoch starts at the arrival time and runs until the next arrival.
  Flows that already moved volume keep their path (re-routing mid-transfer
  would corrupt the realised schedule); their priorities may change freely.

The result is a single :class:`~repro.sim.simulator.SimulationResult` whose
completion times, realised schedule and per-coflow slowdowns span the whole
horizon, directly comparable with a static run of the same scheme — which is
exactly what ``online=true`` pipeline schemes (the registry's ``Online-*``
names, :mod:`repro.baselines.pipeline`) expose to sweeps.  With a replanner
that
always returns the restriction of one fixed plan
(:class:`StaticPlanReplanner`), online simulation reproduces the static
simulation of that plan (property-tested up to splice-point rounding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.flows import Coflow, CoflowInstance, Flow, FlowId
from ..core.network import Network
from ..core.schedule import CircuitSchedule
from .kernel import SimulationKernel
from .plan import SimulationPlan
from .simulator import SimulationResult, _build_result, make_kernel, validate_backend

__all__ = ["ReplanContext", "Replanner", "OnlineFlowSimulator", "StaticPlanReplanner"]

#: Volumes below this are considered fully transferred (numerical guard).
_VOLUME_EPS = 1e-9


@dataclass
class ReplanContext:
    """What a replanner sees at one arrival event.

    Attributes
    ----------
    now:
        The arrival time triggering this re-plan.
    instance:
        Sub-instance of all *arrived* coflows restricted to their unfinished
        flows, with each flow's size replaced by its remaining volume.
        Coflow positions and weights are preserved for arrived coflows;
        flow ids are renumbered — use :attr:`fid_map` to translate.
    network:
        The capacitated topology.
    fid_map:
        Sub-instance flow id -> original instance flow id.
    pinned_paths:
        Original flow id -> path, for flows that already moved volume.  The
        engine forces these paths onto the returned plan; replanners may
        consult them (e.g. for congestion-aware routing of new flows).
    previous:
        The previous epoch's plan in *original* flow ids (``None`` at the
        first arrival).
    """

    now: float
    instance: CoflowInstance
    network: Network
    fid_map: Dict[FlowId, FlowId]
    pinned_paths: Dict[FlowId, Tuple[Hashable, ...]]
    previous: Optional[SimulationPlan] = None


#: A replanner maps an arrival-time context to a plan over the context's
#: sub-instance (plan paths/order are keyed by *sub-instance* flow ids).
Replanner = Callable[[ReplanContext], SimulationPlan]


class StaticPlanReplanner:
    """Replanner that always answers with one fixed plan's restriction.

    The degenerate online scheduler: at every arrival it returns the
    original static plan, restricted to the unfinished flows of the arrived
    coflows.  Online simulation under this replanner reproduces the static
    simulation of the same plan — the anchor property of the online engine's
    test suite.
    """

    def __init__(self, plan: SimulationPlan) -> None:
        self.plan = plan

    def __call__(self, context: ReplanContext) -> SimulationPlan:
        """Restrict the fixed plan to the context's sub-instance."""
        inverse = {orig: sub for sub, orig in context.fid_map.items()}
        paths = {
            sub: self.plan.paths[orig] for sub, orig in context.fid_map.items()
        }
        order = [inverse[fid] for fid in self.plan.order if fid in inverse]
        return SimulationPlan(
            paths=paths,
            order=order,
            name=self.plan.name,
            allocator=self.plan.allocator,
        )


class OnlineFlowSimulator:
    """Simulate with re-planning at every coflow arrival (see module doc).

    Parameters
    ----------
    network:
        The capacitated topology.
    replanner:
        Callback invoked at every coflow arrival (see :data:`Replanner`).
    max_events:
        Optional per-epoch event cap forwarded to each kernel epoch.
    backend:
        Kernel backend for every epoch (``"array"``, ``"jit"``, ``"auto"``
        or ``None`` — defer to the per-epoch plan / environment).  Epoch
        splicing is backend-agnostic: the compiled tier pauses at arrival
        deadlines with exactly the array kernel's semantics.
    """

    def __init__(
        self,
        network: Network,
        replanner: Replanner,
        max_events: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        validate_backend(backend)
        self.network = network
        self.replanner = replanner
        self.max_events = max_events
        self.backend = backend

    # ------------------------------------------------------------------- run
    def run(
        self, instance: CoflowInstance, plan_name: Optional[str] = None
    ) -> SimulationResult:
        """Simulate the instance end-to-end; returns the spliced result."""
        arrivals = sorted({c.release_time for c in instance.coflows})
        remaining: Dict[FlowId, float] = {}
        completion: Dict[FlowId, float] = {}
        start: Dict[FlowId, float] = {}
        segments: Dict[FlowId, List[List[float]]] = {}
        current_path: Dict[FlowId, Tuple[Hashable, ...]] = {}
        pinned: Dict[FlowId, Tuple[Hashable, ...]] = {}
        for i, j, flow in instance.iter_flows():
            fid = (i, j)
            remaining[fid] = flow.size
            segments[fid] = []
            if flow.size <= _VOLUME_EPS:
                # Zero-size flows complete at release, as in the static loop.
                completion[fid] = flow.release_time
        events = 0
        previous_plan: Optional[SimulationPlan] = None

        for epoch, now in enumerate(arrivals):
            arrived = [
                i for i, c in enumerate(instance.coflows) if c.release_time <= now
            ]
            sub_instance, fid_map = self._sub_instance(
                instance, arrived, remaining, completion, now
            )
            context = ReplanContext(
                now=now,
                instance=sub_instance,
                network=self.network,
                fid_map=fid_map,
                pinned_paths=dict(pinned),
                previous=previous_plan,
            )
            sub_plan = self.replanner(context)
            sub_plan = sub_plan.normalized(sub_instance)
            # Pin flows that already moved volume to their current path.
            for sub, orig in fid_map.items():
                if orig in pinned:
                    sub_plan.paths[sub] = pinned[orig]
            sub_plan.validate(sub_instance, self.network)
            previous_plan = SimulationPlan(
                paths={orig: sub_plan.paths[sub] for sub, orig in fid_map.items()},
                order=[fid_map[sub] for sub in sub_plan.order],
                name=sub_plan.name,
                allocator=sub_plan.allocator,
            )
            for sub, orig in fid_map.items():
                current_path[orig] = tuple(sub_plan.paths[sub])

            kernel = make_kernel(
                self.network,
                sub_instance,
                sub_plan,
                max_events=self.max_events,
                start_time=now,
                backend=self.backend,
            )
            until = arrivals[epoch + 1] if epoch + 1 < len(arrivals) else None
            kernel.run(until=until)
            events += kernel.events
            self._merge_epoch(kernel, fid_map, remaining, completion, start, segments, pinned, current_path)

        schedule = CircuitSchedule()
        for fid in instance.flow_ids():
            path = current_path.get(fid)
            if path is None:
                # Never planned (zero-size flow in a coflow that produced no
                # sub-instance): fall back to a shortest path for bookkeeping.
                flow = instance.flow(fid)
                path = tuple(self.network.shortest_path(flow.source, flow.destination))
                current_path[fid] = path
            schedule.set_path(fid, path)
            if segments[fid]:
                schedule.extend_segments(fid, [tuple(s) for s in segments[fid]])

        final_plan = SimulationPlan(
            paths=dict(current_path),
            order=list(previous_plan.order) if previous_plan else [],
            name=plan_name or (previous_plan.name if previous_plan else "online"),
            allocator=previous_plan.allocator if previous_plan else "greedy",
        )
        return _build_result(
            instance,
            self.network,
            final_plan.normalized(instance),
            completion,
            start,
            schedule,
            events,
        )

    # ---------------------------------------------------------------- pieces
    @staticmethod
    def _sub_instance(
        instance: CoflowInstance,
        arrived: Sequence[int],
        remaining: Dict[FlowId, float],
        completion: Dict[FlowId, float],
        now: float,
    ) -> Tuple[CoflowInstance, Dict[FlowId, FlowId]]:
        """The unfinished volume of the arrived coflows, renumbered densely.

        Flows whose remaining volume has dwindled below the numerical guard
        are marked complete at ``now`` instead of entering the sub-instance.
        """
        coflows: List[Coflow] = []
        fid_map: Dict[FlowId, FlowId] = {}
        for i in arrived:
            coflow = instance.coflows[i]
            flows: List[Flow] = []
            for j, flow in enumerate(coflow.flows):
                fid = (i, j)
                if fid in completion:
                    continue
                if remaining[fid] <= _VOLUME_EPS:
                    completion[fid] = now
                    continue
                fid_map[(len(coflows), len(flows))] = fid
                flows.append(
                    Flow(
                        source=flow.source,
                        destination=flow.destination,
                        size=remaining[fid],
                        release_time=flow.release_time,
                    )
                )
            if flows:
                coflows.append(
                    Coflow(flows=tuple(flows), weight=coflow.weight, name=coflow.name)
                )
        name = instance.name or "instance"
        return CoflowInstance(coflows=coflows, name=f"{name}@{now:g}"), fid_map

    @staticmethod
    def _merge_epoch(
        kernel: SimulationKernel,
        fid_map: Dict[FlowId, FlowId],
        remaining: Dict[FlowId, float],
        completion: Dict[FlowId, float],
        start: Dict[FlowId, float],
        segments: Dict[FlowId, List[List[float]]],
        pinned: Dict[FlowId, Tuple[Hashable, ...]],
        current_path: Dict[FlowId, Tuple[Hashable, ...]],
    ) -> None:
        """Fold one epoch's kernel state back into the global accumulators."""
        epoch_completion = kernel.flow_completion_map()
        epoch_start = kernel.flow_start_map()
        for sub_fid, volume in kernel.remaining_map().items():
            orig = fid_map[sub_fid]
            remaining[orig] = volume
            if sub_fid in epoch_completion:
                completion[orig] = epoch_completion[sub_fid]
            if sub_fid in epoch_start and orig not in start:
                start[orig] = epoch_start[sub_fid]
        for sub_fid, new_segments in kernel.iter_raw_segments():
            if not new_segments:
                continue
            orig = fid_map[sub_fid]
            target = segments[orig]
            for seg in new_segments:
                if target and target[-1][1] == seg[0] and target[-1][2] == seg[2]:
                    target[-1][1] = seg[1]
                else:
                    target.append(list(seg))
            pinned[orig] = current_path[orig]
