"""Pluggable per-event rate allocation policies.

At every event the flow-level simulator divides edge capacity among the
released, unfinished flows.  The paper's ordering-based schemes assume the
*greedy priority* policy (Section 4.2: flows are served strictly in plan
order, each taking the bottleneck residual along its path), but other
systems the paper compares against divide capacity differently — Varys-style
fair sharing, weight-proportional sharing — so the policy is factored out
behind :class:`RateAllocator` and selected per plan via
:attr:`repro.sim.plan.SimulationPlan.allocator`.

Every allocator computes rates from the same inputs: a *residual* capacity
table (mapping edge -> remaining capacity; any mutable ``__getitem__`` /
``__setitem__`` container works, so the reference simulator passes a dict
keyed by edge tuples and the array kernel passes a list indexed by edge
ids), and the *active flows* as ``(key, edges, weight)`` triples in plan
priority order.  Sharing one implementation across both callers is what
makes the kernel/reference equivalence exact: identical arithmetic, in
identical order, on identical values.

Allocators must be *work conserving*: whenever a released, unfinished flow
receives no bandwidth, at least one edge on its path is saturated.  The
simulator's progress argument (every event completes a flow or passes a
release time) relies on this.
"""

from __future__ import annotations

import abc
from typing import Dict, Hashable, List, Sequence, Tuple

__all__ = [
    "RateAllocator",
    "GreedyPriorityAllocator",
    "MaxMinFairAllocator",
    "WeightedFairAllocator",
    "ALLOCATORS",
    "resolve_allocator",
]

#: Volumes/rates below this are treated as zero (matches the simulator).
_VOLUME_EPS = 1e-9

#: One active flow as seen by an allocator: an opaque key (flow id in the
#: reference simulator, array position in the kernel), the edge keys of its
#: path, and its coflow weight.
FlowEntry = Tuple[Hashable, Sequence[Hashable], float]


class RateAllocator(abc.ABC):
    """Strategy dividing residual edge capacity among the active flows."""

    #: Registry/config name of the policy.
    name: str = "abstract"

    @abc.abstractmethod
    def allocate(self, residual, flows: Sequence[FlowEntry]) -> Dict[Hashable, float]:
        """Return ``{flow key: rate}`` for every entry of ``flows``.

        ``residual`` maps edge keys to remaining capacity and is consumed
        in place (on return it holds the capacity left over after the
        allocation).  ``flows`` lists the released, unfinished flows in plan
        priority order; rates of value zero mean the flow is blocked this
        event.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class GreedyPriorityAllocator(RateAllocator):
    """Strict priority order: each flow takes its whole bottleneck residual.

    This is the policy of the paper's Section-4.2 simulation methodology
    (and of the original simulator implementation): flows are visited in
    plan order and granted the minimum residual capacity along their path,
    possibly zero when a higher-priority flow saturated an edge.
    """

    name = "greedy"

    def allocate(self, residual, flows: Sequence[FlowEntry]) -> Dict[Hashable, float]:
        """Serve flows in priority order, each taking its bottleneck residual."""
        rates: Dict[Hashable, float] = {}
        for key, edges, _weight in flows:
            rate = min(residual[e] for e in edges)
            if rate <= _VOLUME_EPS:
                rate = 0.0
            rates[key] = rate
            if rate > 0.0:
                for e in edges:
                    residual[e] -= rate
        return rates


class MaxMinFairAllocator(RateAllocator):
    """Max-min fair (progressive filling) sharing, ignoring plan priorities.

    The classic water-filling allocation of fair-sharing transports and of
    Varys' per-flow fallback: all active flows increase their rate at the
    same speed; when an edge saturates, the flows crossing it freeze and the
    rest keep growing.  Each round saturates at least one edge, so the loop
    runs at most ``|E|`` rounds.
    """

    name = "max-min"

    #: Whether shares grow proportionally to coflow weight (see subclass).
    weighted = False

    def allocate(self, residual, flows: Sequence[FlowEntry]) -> Dict[Hashable, float]:
        """Progressively fill all active flows until every one is frozen."""
        rates: Dict[Hashable, float] = {key: 0.0 for key, _e, _w in flows}
        unfrozen: List[FlowEntry] = list(flows)
        while unfrozen:
            # Total unfrozen demand weight per edge.
            demand: Dict[Hashable, float] = {}
            for _key, edges, weight in unfrozen:
                share = weight if self.weighted else 1.0
                for e in edges:
                    demand[e] = demand.get(e, 0.0) + share
            # The uniform growth step: smallest time-to-saturation over edges.
            step = min(residual[e] / demand[e] for e in demand)
            if step > 0.0:
                for key, edges, weight in unfrozen:
                    rates[key] += (weight if self.weighted else 1.0) * step
                for e, share in demand.items():
                    residual[e] -= share * step
            # Freeze flows that now cross a saturated edge.
            still = [
                entry
                for entry in unfrozen
                if all(residual[e] > _VOLUME_EPS for e in entry[1])
            ]
            if len(still) == len(unfrozen):  # pragma: no cover - numerical guard
                break
            unfrozen = still
        # Clamp dust rates so blocked flows are reported as exactly zero.
        for key, value in rates.items():
            if value <= _VOLUME_EPS:
                rates[key] = 0.0
        return rates


class WeightedFairAllocator(MaxMinFairAllocator):
    """Weighted max-min fairness: shares grow proportionally to coflow weight.

    A flow inherits its coflow's weight, so a weight-2 coflow's flows grow
    twice as fast as a weight-1 coflow's until an edge saturates.  With all
    weights equal this reduces exactly to :class:`MaxMinFairAllocator`.
    """

    name = "weighted"
    weighted = True


#: Allocator registry: config name -> factory (used by plans and schemes).
ALLOCATORS = {
    GreedyPriorityAllocator.name: GreedyPriorityAllocator,
    MaxMinFairAllocator.name: MaxMinFairAllocator,
    WeightedFairAllocator.name: WeightedFairAllocator,
}


def resolve_allocator(name: str) -> RateAllocator:
    """Instantiate an allocator by its registry name.

    Raises ``ValueError`` for unknown names, listing the known ones.
    """
    try:
        factory = ALLOCATORS[name]
    except KeyError:
        known = ", ".join(sorted(ALLOCATORS))
        raise ValueError(f"unknown rate allocator {name!r} (known: {known})") from None
    return factory()
