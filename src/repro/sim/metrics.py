"""Cross-scheme comparison metrics.

The paper's figures report, for each workload point, the average completion
time of every scheme and the same values normalised by the Baseline scheme
(the two panels of Figures 3 and 4).  :class:`SchemeComparison` collects
:class:`~repro.sim.simulator.SimulationResult` objects for one instance and
computes those quantities plus the paper's headline metric: the percentage
improvement of a scheme over another (e.g. LP-Based over Route-only, reported
as "at least 22% on average").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Sequence

from ..core.flows import CoflowInstance, FlowId
from ..core.network import Network
from .simulator import SimulationResult

__all__ = ["SchemeComparison", "improvement_percent", "coflow_slowdowns"]

#: Isolation times below this are treated as zero (degenerate coflows).
_ISO_EPS = 1e-12


def coflow_slowdowns(
    instance: CoflowInstance,
    network: Network,
    paths: Mapping[FlowId, Sequence[Hashable]],
    flow_completions: Mapping[FlowId, float],
) -> Dict[int, float]:
    """Per-coflow slowdown: realised duration over the isolation time.

    The *isolation time* of a coflow is the time it would need with the
    whole network to itself under its realised routing: the maximum, over
    its flows, of ``size / bottleneck capacity of the flow's path``.  The
    slowdown divides the realised duration (coflow completion minus coflow
    release) by that lower bound, the normalisation used throughout the
    coflow literature (Varys' "effective bottleneck" is the same quantity).

    Coflows with a vanishing isolation time (all-zero sizes) report a
    slowdown of exactly 1.0.  Values below 1.0 are possible when a coflow's
    flows are released long after the coflow's first release time — the
    denominator charges the whole volume from the first release.
    """
    from ..core.network import path_edges

    capacities = network.capacities()
    slowdowns: Dict[int, float] = {}
    for i, coflow in enumerate(instance.coflows):
        isolation = 0.0
        completed = 0.0
        for j, flow in enumerate(coflow.flows):
            fid = (i, j)
            completed = max(completed, float(flow_completions[fid]))
            if flow.size > 0:
                bottleneck = min(
                    capacities[e] for e in path_edges(list(paths[fid]))
                )
                isolation = max(isolation, flow.size / bottleneck)
        duration = completed - coflow.release_time
        if isolation <= _ISO_EPS:
            slowdowns[i] = 1.0
        else:
            slowdowns[i] = duration / isolation
    return slowdowns


def improvement_percent(reference: float, value: float) -> float:
    """Percentage by which ``value`` improves on ``reference``.

    The paper reports improvements the way Varys/Rapier do: a scheme finishing
    in time ``T`` improves on a scheme finishing in ``T_ref`` by
    ``(T_ref / T - 1) * 100`` percent (so "126%" means the reference takes
    2.26x as long).
    """
    if value <= 0:
        raise ValueError("completion time must be positive")
    return (reference / value - 1.0) * 100.0


@dataclass
class SchemeComparison:
    """Results of several schemes on the same instance."""

    results: Dict[str, SimulationResult] = field(default_factory=dict)
    metric: str = "weighted_completion_time"

    def add(self, result: SimulationResult) -> None:
        """Record one scheme's simulation result (keyed by its plan name)."""
        self.results[result.plan_name] = result

    def value(self, scheme: str) -> float:
        """The comparison metric of ``scheme`` (KeyError when unrecorded)."""
        if scheme not in self.results:
            raise KeyError(f"no result recorded for scheme {scheme!r}")
        return float(getattr(self.results[scheme], self.metric))

    def schemes(self) -> List[str]:
        """Recorded scheme names, sorted."""
        return sorted(self.results.keys())

    def ratios_to(self, reference: str) -> Dict[str, float]:
        """Each scheme's value divided by the reference scheme's value.

        This is the paper's "ratio with respect to baseline" panel.  A
        non-positive reference value yields NaN ratios (mirroring the guard
        in :meth:`repro.analysis.sweep.SweepPoint.ratio_to`) instead of
        raising ``ZeroDivisionError``.
        """
        ref = self.value(reference)
        if ref <= 0:
            return {name: float("nan") for name in self.results}
        return {name: self.value(name) / ref for name in self.results}

    def improvement_over(self, scheme: str, reference: str) -> float:
        """Percentage improvement of ``scheme`` over ``reference``."""
        return improvement_percent(self.value(reference), self.value(scheme))
