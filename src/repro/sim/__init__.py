"""Flow-level datacenter simulator (Section 4 methodology).

Three layers (see ``docs/simulator.md``):

* :mod:`repro.sim.kernel` — the array-based event core;
* :mod:`repro.sim.kernel_jit` — the compiled kernel tier (bit-identical,
  selected via ``backend="jit"`` / ``REPRO_SIM_BACKEND``);
* :mod:`repro.sim.allocators` — pluggable per-event rate policies;
* :mod:`repro.sim.streaming` — the long-running scheduler service:
  batched re-planning with a staleness bound, warm-startable LP
  replanners, replans/sec + decision-latency metrics;
* :mod:`repro.sim.online` — arrival-driven online re-planning, now the
  batch-size-1 special case of the streaming service.

:class:`FlowLevelSimulator` is the orchestrating entry point and keeps the
original dict-based event loop available as ``run_reference``.
"""

from .allocators import (
    ALLOCATORS,
    GreedyPriorityAllocator,
    MaxMinFairAllocator,
    RateAllocator,
    WeightedFairAllocator,
    resolve_allocator,
)
from .kernel import ResidentSimulationKernel, SimulationKernel
from .kernel_jit import JitSimulationKernel, ResidentJitKernel, paused_gc
from .metrics import SchemeComparison, coflow_slowdowns, improvement_percent
from .online import OnlineFlowSimulator, ReplanContext, StaticPlanReplanner
from .plan import SimulationPlan
from .streaming import (
    BatchPolicy,
    ColdLPReplanner,
    StreamingError,
    StreamingScheduler,
    WarmLPReplanner,
)
from .simulator import (
    BACKENDS,
    FlowLevelSimulator,
    SimulationResult,
    make_kernel,
    resolve_backend,
    resolve_resident,
    validate_backend,
)

__all__ = [
    "SimulationPlan",
    "FlowLevelSimulator",
    "SimulationResult",
    "SimulationKernel",
    "ResidentSimulationKernel",
    "JitSimulationKernel",
    "ResidentJitKernel",
    "paused_gc",
    "BACKENDS",
    "make_kernel",
    "resolve_backend",
    "resolve_resident",
    "validate_backend",
    "SchemeComparison",
    "improvement_percent",
    "coflow_slowdowns",
    "RateAllocator",
    "GreedyPriorityAllocator",
    "MaxMinFairAllocator",
    "WeightedFairAllocator",
    "ALLOCATORS",
    "resolve_allocator",
    "OnlineFlowSimulator",
    "ReplanContext",
    "StaticPlanReplanner",
    "BatchPolicy",
    "StreamingScheduler",
    "StreamingError",
    "WarmLPReplanner",
    "ColdLPReplanner",
]
