"""Flow-level datacenter simulator (Section 4 methodology)."""

from .metrics import SchemeComparison, improvement_percent
from .plan import SimulationPlan
from .simulator import FlowLevelSimulator, SimulationResult

__all__ = [
    "SimulationPlan",
    "FlowLevelSimulator",
    "SimulationResult",
    "SchemeComparison",
    "improvement_percent",
]
