"""Sparse LP modelling layer and HiGHS solve driver (CPLEX substitute)."""

from .model import Constraint, LinearProgram, LPError
from .solver import LPInfeasibleError, LPSolution, solve

__all__ = [
    "LinearProgram",
    "Constraint",
    "LPError",
    "LPSolution",
    "LPInfeasibleError",
    "solve",
]
