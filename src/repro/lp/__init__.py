"""Sparse LP modelling layer and HiGHS solve driver (CPLEX substitute)."""

from .model import (
    Constraint,
    ConstraintBlock,
    LinearProgram,
    LPError,
    stacked_aranges,
)
from .solver import LPInfeasibleError, LPSolution, solve

__all__ = [
    "LinearProgram",
    "Constraint",
    "ConstraintBlock",
    "LPError",
    "LPSolution",
    "LPInfeasibleError",
    "solve",
    "stacked_aranges",
]
