"""LP solution objects and the HiGHS solve driver.

This is the CPLEX substitution layer described in DESIGN.md: every LP built by
the algorithm modules is handed to :func:`solve`, which calls
:func:`scipy.optimize.linprog` with the HiGHS dual-simplex/IPM hybrid and wraps
the result in :class:`LPSolution` (values addressable by the variable keys the
modelling layer uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Mapping, Optional

import numpy as np
from scipy.optimize import linprog

from .model import LinearProgram, LPError

__all__ = ["LPSolution", "LPInfeasibleError", "solve"]


class LPInfeasibleError(RuntimeError):
    """Raised when the LP is infeasible, unbounded or the solver fails."""


@dataclass
class LPSolution:
    """An optimal solution of a :class:`LinearProgram`."""

    objective: float
    values: Dict[Hashable, float]
    status: int
    message: str
    iterations: int = 0

    def value(self, key: Hashable, default: Optional[float] = None) -> float:
        """Value of a variable by key (``default`` if the key is unknown)."""
        if key in self.values:
            return self.values[key]
        if default is not None:
            return default
        raise KeyError(f"variable {key!r} not in LP solution")

    def nonzero(self, tolerance: float = 1e-9) -> Dict[Hashable, float]:
        """All variables whose value exceeds ``tolerance``."""
        return {k: v for k, v in self.values.items() if v > tolerance}

    def group(self, prefix: Hashable, position: int = 0) -> Dict[Hashable, float]:
        """Values of all tuple-keyed variables whose ``position`` entry equals
        ``prefix`` (e.g. every ``("x", i, j, ell)`` variable with ``x``)."""
        out: Dict[Hashable, float] = {}
        for key, val in self.values.items():
            if isinstance(key, tuple) and len(key) > position and key[position] == prefix:
                out[key] = val
        return out


def solve(
    lp: LinearProgram,
    method: str = "highs",
    presolve: bool = True,
    clip_negative: bool = True,
) -> LPSolution:
    """Solve ``lp`` to optimality and return an :class:`LPSolution`.

    Parameters
    ----------
    lp:
        The assembled linear program (minimization).
    method:
        ``scipy.optimize.linprog`` method; HiGHS is both the default and the
        only one exercised by the test-suite.
    presolve:
        Passed through to the solver options.
    clip_negative:
        Clamp tiny negative values (solver noise on >=0 variables) to zero so
        downstream rounding code can treat values as exact fractions.

    Raises
    ------
    LPInfeasibleError
        If the solver reports anything other than an optimal solution.
    """
    if lp.num_variables == 0:
        return LPSolution(objective=0.0, values={}, status=0, message="empty LP")

    a_ub, b_ub, a_eq, b_eq = lp.matrices()
    result = linprog(
        c=lp.objective_vector(),
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=lp.bounds(),
        method=method,
        options={"presolve": presolve},
    )
    if not result.success:
        raise LPInfeasibleError(
            f"LP {lp.name!r} could not be solved to optimality: "
            f"status={result.status}, message={result.message!r}"
        )
    x = np.asarray(result.x, dtype=float)
    if clip_negative:
        x = np.where(x < 0.0, 0.0, x)
    values = {key: float(x[idx]) for idx, key in enumerate(lp.variable_keys)}
    iterations = int(getattr(result, "nit", 0) or 0)
    return LPSolution(
        objective=float(result.fun),
        values=values,
        status=int(result.status),
        message=str(result.message),
        iterations=iterations,
    )
