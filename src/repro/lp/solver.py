"""LP solution objects and the HiGHS solve driver.

This is the CPLEX substitution layer described in DESIGN.md: every LP built by
the algorithm modules is handed to :func:`solve`, which calls
:func:`scipy.optimize.linprog` with the HiGHS dual-simplex/IPM hybrid and wraps
the result in :class:`LPSolution`.

:class:`LPSolution` holds the raw solution vector plus the model's key→index
map; values stay addressable by the variable keys the modelling layer uses,
but bulk consumers (the interval LP builders' extraction loops) read whole
index ranges at once via :meth:`LPSolution.take` / :meth:`LPSolution.as_array`
instead of hashing one tuple key per variable.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np
from scipy.optimize import linprog

from ..faults import maybe_inject
from .model import LinearProgram, LPError

__all__ = ["LPSolution", "LPInfeasibleError", "solve", "DEFAULT_TIME_LIMIT"]

#: Process-wide default wall-clock budget (seconds) handed to HiGHS when
#: :func:`solve` is called without an explicit ``time_limit``.  ``None``
#: means unlimited.  The experiment engine sets this in worker processes
#: (``--lp-time-limit``) so every LP a scheme solves inherits the budget
#: without threading a parameter through every scheme constructor.
DEFAULT_TIME_LIMIT: Optional[float] = None


class LPInfeasibleError(RuntimeError):
    """Raised when the LP is infeasible, unbounded or the solver fails.

    Beyond the message, the error carries the solver's diagnosis so a
    failure record written by the experiment engine is diagnosable from the
    report alone: ``status`` (HiGHS status code, ``-1`` for injected
    faults), ``solver_message`` (the solver's own words), and the LP
    dimensions ``rows`` x ``cols`` with ``nnz`` constraint nonzeros.
    Every field defaults to ``None`` so ``LPInfeasibleError("msg")`` keeps
    working for callers that have no solver context.
    """

    def __init__(
        self,
        message: str,
        *,
        status: Optional[int] = None,
        solver_message: Optional[str] = None,
        rows: Optional[int] = None,
        cols: Optional[int] = None,
        nnz: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.solver_message = solver_message
        self.rows = rows
        self.cols = cols
        self.nnz = nnz

    def detail(self) -> Dict[str, Any]:
        """The non-``None`` diagnostic fields as a JSON-safe dict."""
        fields = {
            "status": self.status,
            "solver_message": self.solver_message,
            "rows": self.rows,
            "cols": self.cols,
            "nnz": self.nnz,
        }
        return {key: value for key, value in fields.items() if value is not None}


class LPSolution:
    """An optimal solution of a :class:`LinearProgram`.

    Parameters
    ----------
    objective, status, message, iterations:
        Solver metadata.
    x, keys, index:
        The raw solution vector, the variable keys in column order, and the
        key→column map.  ``keys``/``index`` may alias the model's internal
        structures (zero-copy); the solution snapshots the variable *count*
        at construction, so variables added to the model afterwards are
        simply unknown to the solution rather than corrupting lookups.
    values:
        Legacy construction path: a key→value mapping, from which ``x`` and
        ``keys`` are derived.  Mutually exclusive with ``x``/``keys``.
    """

    def __init__(
        self,
        objective: float,
        status: int,
        message: str,
        iterations: int = 0,
        *,
        x: Optional[np.ndarray] = None,
        keys: Optional[Sequence[Hashable]] = None,
        index: Optional[Mapping[Hashable, int]] = None,
        values: Optional[Mapping[Hashable, float]] = None,
    ) -> None:
        self.objective = float(objective)
        self.status = int(status)
        self.message = str(message)
        self.iterations = int(iterations)
        if values is not None:
            if x is not None or keys is not None:
                raise ValueError("pass either values= or x=/keys=, not both")
            keys = list(values.keys())
            x = np.asarray([values[k] for k in keys], dtype=float)
        self._x = np.zeros(0, dtype=float) if x is None else np.asarray(x, dtype=float)
        if keys is None:
            self._keys: List[Hashable] = []
        elif isinstance(keys, list):
            self._keys = keys
        else:
            self._keys = list(keys)
        if len(self._keys) != self._x.shape[0]:
            raise ValueError(
                f"keys (length {len(self._keys)}) and x (length {self._x.shape[0]}) disagree"
            )
        self._index: Mapping[Hashable, int] = (
            index if index is not None else {k: i for i, k in enumerate(self._keys)}
        )
        #: number of variables at solve time; aliased keys/index may grow
        #: later, and anything beyond this count is not part of the solution
        self._n = self._x.shape[0]
        self._values_cache: Optional[Dict[Hashable, float]] = None
        #: prefix → sorted column-index array, built lazily per tuple position
        self._prefix_index: Dict[int, Dict[Hashable, np.ndarray]] = {}

    # ------------------------------------------------------------- raw access
    @property
    def x(self) -> np.ndarray:
        """The raw solution vector in variable-column order."""
        return self._x

    @property
    def keys(self) -> List[Hashable]:
        """Variable keys in column order."""
        return self._keys

    @property
    def values(self) -> Dict[Hashable, float]:
        """Key → value dict (materialised lazily; prefer :meth:`take` /
        :meth:`as_array` in hot paths)."""
        if self._values_cache is None:
            self._values_cache = {
                key: float(v) for key, v in zip(self._keys, self._x)
            }
        return self._values_cache

    # ----------------------------------------------------------- point access
    def value(self, key: Hashable, default: Optional[float] = None) -> float:
        """Value of a variable by key (``default`` if the key is unknown)."""
        idx = self._index.get(key)
        if idx is not None and idx < self._n:
            return float(self._x[idx])
        if default is not None:
            return default
        raise KeyError(f"variable {key!r} not in LP solution")

    # ------------------------------------------------------------ bulk access
    def take(self, indices) -> np.ndarray:
        """Solution values at the given column indices (range/array/slice).

        The natural companion of :meth:`LinearProgram.add_variables`: pass the
        index range it returned and get the block's values as one array with
        no key hashing at all.
        """
        if isinstance(indices, range):
            # A negative stop in a descending range means "before index 0",
            # not the slice wrap-around meaning — map it to None.
            stop = indices.stop if indices.stop >= 0 else None
            return self._x[indices.start : stop : indices.step]
        if isinstance(indices, slice):
            return self._x[indices]
        return self._x[np.asarray(indices, dtype=np.int64)]

    def as_array(
        self, keys: Iterable[Hashable], default: Optional[float] = None
    ) -> np.ndarray:
        """Values for a sequence of keys as one array.

        Unknown keys raise :class:`KeyError` unless ``default`` is given.
        """
        index = self._index
        keys = list(keys)
        if default is None:
            try:
                idx = np.fromiter(
                    (index[k] for k in keys), dtype=np.int64, count=len(keys)
                )
            except KeyError as exc:
                raise KeyError(f"variable {exc.args[0]!r} not in LP solution") from None
            if idx.size and idx.max() >= self._n:
                bad = keys[int(np.argmax(idx >= self._n))]
                raise KeyError(f"variable {bad!r} not in LP solution")
            return self._x[idx]
        idx = np.fromiter(
            (index.get(k, -1) for k in keys), dtype=np.int64, count=len(keys)
        )
        if self._x.size == 0:
            return np.full(len(keys), float(default))
        known = (idx >= 0) & (idx < self._n)
        out = np.where(known, self._x[np.clip(idx, 0, self._n - 1)], float(default))
        return out

    # -------------------------------------------------------------- filtering
    def nonzero(self, tolerance: float = 1e-9) -> Dict[Hashable, float]:
        """All variables whose magnitude exceeds ``tolerance``.

        Uses ``abs(value)`` so free (unclipped) variables with negative
        optimal values are reported too.
        """
        hits = np.nonzero(np.abs(self._x) > tolerance)[0]
        keys = self._keys
        return {keys[i]: float(self._x[i]) for i in hits}

    def group(self, prefix: Hashable, position: int = 0) -> Dict[Hashable, float]:
        """Values of all tuple-keyed variables whose ``position`` entry equals
        ``prefix`` (e.g. every ``("x", i, j, ell)`` variable with ``"x"``).

        The first call for a given ``position`` builds a prefix→columns index
        in one scan; every subsequent lookup is O(matching variables) rather
        than O(num_variables).
        """
        table = self._prefix_index.get(position)
        if table is None:
            buckets: Dict[Hashable, List[int]] = {}
            for i in range(self._n):
                key = self._keys[i]
                if isinstance(key, tuple) and len(key) > position:
                    try:
                        buckets.setdefault(key[position], []).append(i)
                    except TypeError:  # unhashable component
                        continue
            table = {
                p: np.asarray(ix, dtype=np.int64) for p, ix in buckets.items()
            }
            self._prefix_index[position] = table
        cols = table.get(prefix)
        if cols is None:
            return {}
        keys = self._keys
        return {keys[i]: float(self._x[i]) for i in cols}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LPSolution(objective={self.objective!r}, status={self.status}, "
            f"variables={len(self._keys)})"
        )


def solve(
    lp: LinearProgram,
    method: str = "highs",
    presolve: bool = True,
    clip_negative: bool = True,
    time_limit: Optional[float] = None,
) -> LPSolution:
    """Solve ``lp`` to optimality and return an :class:`LPSolution`.

    Parameters
    ----------
    lp:
        The assembled linear program (minimization).
    method:
        ``scipy.optimize.linprog`` method; HiGHS is both the default and the
        only one exercised by the test-suite.
    presolve:
        Passed through to the solver options.
    clip_negative:
        Clamp tiny negative values (solver noise on >=0 variables) to zero so
        downstream rounding code can treat values as exact fractions.
    time_limit:
        Wall-clock budget in seconds handed to HiGHS; exceeding it raises
        :class:`LPInfeasibleError` with the solver's time-limit status.
        ``None`` falls back to the process default
        :data:`DEFAULT_TIME_LIMIT` (unlimited out of the box).

    Raises
    ------
    LPInfeasibleError
        If the solver reports anything other than an optimal solution —
        including running out of its time budget.  The error carries the
        status code, the solver message and the LP dimensions.
    """
    maybe_inject("lp")
    if lp.num_variables == 0:
        return LPSolution(objective=0.0, status=0, message="empty LP")

    a_ub, b_ub, a_eq, b_eq = lp.matrices()
    lower, upper = lp.bounds_arrays()
    options: Dict[str, Any] = {"presolve": presolve}
    if time_limit is None:
        time_limit = DEFAULT_TIME_LIMIT
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    result = linprog(
        c=lp.objective_vector(),
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=np.column_stack((lower, upper)),
        method=method,
        options=options,
    )
    if not result.success:
        rows = sum(m.shape[0] for m in (a_ub, a_eq) if m is not None)
        nnz = sum(int(m.nnz) for m in (a_ub, a_eq) if m is not None)
        raise LPInfeasibleError(
            f"LP {lp.name!r} could not be solved to optimality: "
            f"status={result.status}, message={result.message!r}, "
            f"shape={rows}x{lp.num_variables}, nnz={nnz}",
            status=int(result.status),
            solver_message=str(result.message),
            rows=rows,
            cols=int(lp.num_variables),
            nnz=nnz,
        )
    x = np.asarray(result.x, dtype=float)
    if clip_negative:
        x = np.where(x < 0.0, 0.0, x)
    iterations = int(getattr(result, "nit", 0) or 0)
    keys, index = lp.solution_keys()
    return LPSolution(
        objective=float(result.fun),
        status=int(result.status),
        message=str(result.message),
        iterations=iterations,
        x=x,
        keys=keys,
        index=index,
    )
