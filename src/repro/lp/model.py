"""Sparse linear-program modelling layer.

The paper builds several large interval-indexed linear programs (Sections 2.1,
2.2 and 3.2) and solves them with IBM CPLEX.  This repository substitutes the
open-source HiGHS solver that ships inside :mod:`scipy.optimize`; this module
provides the thin modelling layer that lets algorithm code state LPs in terms
of named variables and constraints while the matrices are assembled sparsely
(COO → CSR) so instances with hundreds of thousands of variables stay
tractable.

Only what the paper's LPs need is implemented: continuous variables with
bounds, linear ``<=`` / ``>=`` / ``==`` constraints, and a minimization
objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

__all__ = ["LinearProgram", "Constraint", "LPError"]

VarKey = Hashable


class LPError(RuntimeError):
    """Raised for modelling mistakes (duplicate variables, unknown names...)."""


@dataclass
class Constraint:
    """One linear constraint ``sum coef * var  (sense)  rhs``."""

    indices: List[int]
    coefficients: List[float]
    sense: str
    rhs: float
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise LPError(f"unknown constraint sense {self.sense!r}")
        if len(self.indices) != len(self.coefficients):
            raise LPError("indices and coefficients must have equal length")


class LinearProgram:
    """A minimization LP assembled incrementally.

    Variables are identified by arbitrary hashable keys (tuples like
    ``("x", i, j, ell)`` are typical).  Keys must be unique.
    """

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._keys: List[VarKey] = []
        self._index: Dict[VarKey, int] = {}
        self._lower: List[float] = []
        self._upper: List[float] = []
        self._objective: List[float] = []
        self._constraints: List[Constraint] = []

    # -------------------------------------------------------------- variables
    def add_variable(
        self,
        key: VarKey,
        lower: float = 0.0,
        upper: float = np.inf,
        objective: float = 0.0,
    ) -> int:
        """Register a variable and return its column index."""
        if key in self._index:
            raise LPError(f"variable {key!r} already defined")
        if upper < lower:
            raise LPError(f"variable {key!r} has upper bound < lower bound")
        idx = len(self._keys)
        self._keys.append(key)
        self._index[key] = idx
        self._lower.append(float(lower))
        self._upper.append(float(upper))
        self._objective.append(float(objective))
        return idx

    def has_variable(self, key: VarKey) -> bool:
        return key in self._index

    def variable_index(self, key: VarKey) -> int:
        try:
            return self._index[key]
        except KeyError as exc:
            raise LPError(f"unknown variable {key!r}") from exc

    def set_objective_coefficient(self, key: VarKey, coefficient: float) -> None:
        """Overwrite the objective coefficient of an existing variable."""
        self._objective[self.variable_index(key)] = float(coefficient)

    @property
    def num_variables(self) -> int:
        return len(self._keys)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    @property
    def variable_keys(self) -> List[VarKey]:
        return list(self._keys)

    # ------------------------------------------------------------ constraints
    def add_constraint(
        self,
        terms: Mapping[VarKey, float] | Iterable[Tuple[VarKey, float]],
        sense: str,
        rhs: float,
        name: Optional[str] = None,
    ) -> None:
        """Add the constraint ``sum_k terms[k] * var_k  (sense)  rhs``.

        Terms with zero coefficient are dropped; terms referencing the same
        variable twice are summed.
        """
        if isinstance(terms, Mapping):
            items = terms.items()
        else:
            items = terms
        accum: Dict[int, float] = {}
        for key, coef in items:
            if coef == 0.0:
                continue
            idx = self.variable_index(key)
            accum[idx] = accum.get(idx, 0.0) + float(coef)
        self._constraints.append(
            Constraint(
                indices=list(accum.keys()),
                coefficients=list(accum.values()),
                sense=sense,
                rhs=float(rhs),
                name=name,
            )
        )

    # ---------------------------------------------------------------- exports
    def bounds(self) -> List[Tuple[float, float]]:
        return list(zip(self._lower, self._upper))

    def objective_vector(self) -> np.ndarray:
        return np.asarray(self._objective, dtype=float)

    def matrices(
        self,
    ) -> Tuple[
        Optional[sparse.csr_matrix],
        Optional[np.ndarray],
        Optional[sparse.csr_matrix],
        Optional[np.ndarray],
    ]:
        """Assemble ``(A_ub, b_ub, A_eq, b_eq)`` sparse matrices.

        ``>=`` constraints are negated into ``<=`` form.  Empty groups are
        returned as ``None`` (the convention :func:`scipy.optimize.linprog`
        expects).
        """
        ub_rows: List[int] = []
        ub_cols: List[int] = []
        ub_vals: List[float] = []
        ub_rhs: List[float] = []
        eq_rows: List[int] = []
        eq_cols: List[int] = []
        eq_vals: List[float] = []
        eq_rhs: List[float] = []

        for con in self._constraints:
            if con.sense == "==":
                row = len(eq_rhs)
                eq_rhs.append(con.rhs)
                eq_rows.extend([row] * len(con.indices))
                eq_cols.extend(con.indices)
                eq_vals.extend(con.coefficients)
            else:
                sign = 1.0 if con.sense == "<=" else -1.0
                row = len(ub_rhs)
                ub_rhs.append(sign * con.rhs)
                ub_rows.extend([row] * len(con.indices))
                ub_cols.extend(con.indices)
                ub_vals.extend([sign * c for c in con.coefficients])

        n = self.num_variables
        a_ub = (
            sparse.coo_matrix(
                (ub_vals, (ub_rows, ub_cols)), shape=(len(ub_rhs), n)
            ).tocsr()
            if ub_rhs
            else None
        )
        a_eq = (
            sparse.coo_matrix(
                (eq_vals, (eq_rows, eq_cols)), shape=(len(eq_rhs), n)
            ).tocsr()
            if eq_rhs
            else None
        )
        b_ub = np.asarray(ub_rhs, dtype=float) if ub_rhs else None
        b_eq = np.asarray(eq_rhs, dtype=float) if eq_rhs else None
        return a_ub, b_ub, a_eq, b_eq

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LinearProgram(name={self.name!r}, variables={self.num_variables}, "
            f"constraints={self.num_constraints})"
        )
