"""Sparse linear-program modelling layer.

The paper builds several large interval-indexed linear programs (Sections 2.1,
2.2 and 3.2) and solves them with IBM CPLEX.  This repository substitutes the
open-source HiGHS solver that ships inside :mod:`scipy.optimize`; this module
provides the modelling layer that lets algorithm code state LPs in terms of
named variables and constraints while the matrices are assembled sparsely
(COO → CSR) so instances with hundreds of thousands of variables stay
tractable.

The layer has two tiers (see DESIGN.md Section 2):

* a **scalar API** — :meth:`LinearProgram.add_variable` /
  :meth:`LinearProgram.add_constraint` — convenient for small models and for
  stating one-off rows, and
* a **bulk API** — :meth:`LinearProgram.add_variables` /
  :meth:`LinearProgram.add_constraints_coo` / :class:`ConstraintBlock` — which
  registers whole blocks of variables (returning a contiguous index range) and
  whole blocks of constraint rows as flat COO triplet arrays.  The interval
  LP builders emit their variables and constraints through this path, which is
  what keeps model *assembly* (not just the solve) off the critical path for
  large instances.

Internally both tiers append into the same growable NumPy buffers; the scalar
API is a thin wrapper over the bulk one.  :meth:`LinearProgram.matrices` is a
cached single pass over those buffers, invalidated whenever the model mutates.

On top of the append-only buffers the model supports **delta edits** for the
streaming scheduler (`sim/streaming.py`): rows and columns can be *dropped*
(tombstoned) and later *restored* without rewriting the COO buffers —
:meth:`LinearProgram.drop_constraints` / :meth:`LinearProgram.drop_columns`
mark identities inactive, and :meth:`LinearProgram.matrices` compacts the
active rows/columns into dense positions on assembly.  Dropping a column
removes its coefficient entries from *every* row it appears in (this is what
lets a departed coflow vanish from shared capacity rows), and the compacted
matrices are byte-identical to a from-scratch build over the surviving
structure.  Row ids returned by :meth:`LinearProgram.add_constraints_coo` /
:meth:`ConstraintBlock.flush` and column ids returned by
:meth:`LinearProgram.add_variables` are stable *identities* — they never shift
when other rows/columns are dropped, so delta-append and drop compose freely.

Only what the paper's LPs need is implemented: continuous variables with
bounds, linear ``<=`` / ``>=`` / ``==`` constraints, and a minimization
objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np
from scipy import sparse

__all__ = [
    "LinearProgram",
    "Constraint",
    "ConstraintBlock",
    "LPError",
    "stacked_aranges",
]


def stacked_aranges(counts) -> np.ndarray:
    """Concatenate ``[arange(c) for c in counts]`` without a Python loop.

    The standard trick for emitting variable-length COO blocks: e.g. with
    ``counts = [2, 0, 3]`` the result is ``[0, 1, 0, 1, 2]``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)

VarKey = Hashable

#: Integer sense codes used in the row-sense buffer.
_SENSE_LE = 0
_SENSE_GE = 1
_SENSE_EQ = 2
_SENSE_CODE = {"<=": _SENSE_LE, ">=": _SENSE_GE, "==": _SENSE_EQ}
_SENSE_STR = {_SENSE_LE: "<=", _SENSE_GE: ">=", _SENSE_EQ: "=="}


class LPError(RuntimeError):
    """Raised for modelling mistakes (duplicate variables, unknown names...)."""


@dataclass
class Constraint:
    """One linear constraint ``sum coef * var  (sense)  rhs``.

    Kept as the row *view* type: the model stores rows in flat COO buffers,
    and :meth:`LinearProgram.iter_constraints` materialises these on demand
    for inspection and debugging.
    """

    indices: List[int]
    coefficients: List[float]
    sense: str
    rhs: float
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise LPError(f"unknown constraint sense {self.sense!r}")
        if len(self.indices) != len(self.coefficients):
            raise LPError("indices and coefficients must have equal length")


class _GrowableArray:
    """An append-only NumPy buffer with amortized-O(1) growth."""

    __slots__ = ("_data", "_size")

    def __init__(self, dtype, capacity: int = 64) -> None:
        self._data = np.empty(capacity, dtype=dtype)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _reserve(self, extra: int) -> None:
        need = self._size + extra
        if need > self._data.shape[0]:
            capacity = max(need, 2 * self._data.shape[0])
            grown = np.empty(capacity, dtype=self._data.dtype)
            grown[: self._size] = self._data[: self._size]
            self._data = grown

    def append(self, value) -> None:
        self._reserve(1)
        self._data[self._size] = value
        self._size += 1

    def extend(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=self._data.dtype)
        self._reserve(values.shape[0])
        self._data[self._size : self._size + values.shape[0]] = values
        self._size += values.shape[0]

    def view(self) -> np.ndarray:
        """A read-only view of the filled prefix (no copy)."""
        out = self._data[: self._size]
        out.flags.writeable = False
        return out

    def __getitem__(self, item):
        return self._data[: self._size][item]

    def __setitem__(self, item, value) -> None:
        self._data[: self._size][item] = value


def _broadcast(value, n: int, what: str) -> np.ndarray:
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        return np.full(n, float(arr))
    if arr.shape != (n,):
        raise LPError(f"{what} must be a scalar or a length-{n} array, got shape {arr.shape}")
    return arr


class LinearProgram:
    """A minimization LP assembled incrementally.

    Variables are identified by arbitrary hashable keys (tuples like
    ``("x", i, j, ell)`` are typical).  Keys must be unique.
    """

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._keys: List[VarKey] = []
        self._index: Dict[VarKey, int] = {}
        self._lower = _GrowableArray(np.float64)
        self._upper = _GrowableArray(np.float64)
        self._objective = _GrowableArray(np.float64)
        # Flat COO entry buffers (parallel arrays).
        self._entry_rows = _GrowableArray(np.int64)
        self._entry_cols = _GrowableArray(np.int64)
        self._entry_vals = _GrowableArray(np.float64)
        # Per-row buffers.
        self._row_sense = _GrowableArray(np.int8)
        self._row_rhs = _GrowableArray(np.float64)
        self._row_names: List[Optional[str]] = []
        # Tombstoned identities (empty on the append-only fast path).
        self._dropped_rows: set = set()
        self._dropped_cols: set = set()
        self._matrices_cache = None

    # -------------------------------------------------------------- variables
    def add_variable(
        self,
        key: VarKey,
        lower: float = 0.0,
        upper: float = np.inf,
        objective: float = 0.0,
    ) -> int:
        """Register a single variable and return its column index."""
        if key in self._index:
            raise LPError(f"variable {key!r} already defined")
        if upper < lower:
            raise LPError(f"variable {key!r} has upper bound < lower bound")
        idx = len(self._keys)
        self._keys.append(key)
        self._index[key] = idx
        self._lower.append(float(lower))
        self._upper.append(float(upper))
        self._objective.append(float(objective))
        self._matrices_cache = None
        return idx

    def add_variables(
        self,
        keys: Sequence[VarKey],
        lower=0.0,
        upper=np.inf,
        objective=0.0,
    ) -> range:
        """Register a block of variables, returning their contiguous index range.

        ``lower`` / ``upper`` / ``objective`` may each be a scalar (applied to
        every variable) or an array of the same length as ``keys``.  This is
        the bulk counterpart of :meth:`add_variable`: one call allocates the
        whole block, and the returned :class:`range` lets callers recover
        column indices (and later solution values) without any key hashing.
        """
        keys = list(keys)
        n = len(keys)
        start = len(self._keys)
        if n == 0:
            return range(start, start)
        lo = _broadcast(lower, n, "lower")
        up = _broadcast(upper, n, "upper")
        obj = _broadcast(objective, n, "objective")
        if np.any(up < lo):
            bad = int(np.argmax(up < lo))
            raise LPError(f"variable {keys[bad]!r} has upper bound < lower bound")
        index = self._index
        for offset, key in enumerate(keys):
            if key in index:
                # Roll back the partially-inserted block before failing.
                for k in keys[:offset]:
                    del index[k]
                raise LPError(f"variable {key!r} already defined")
            index[key] = start + offset
        self._keys.extend(keys)
        self._lower.extend(lo)
        self._upper.extend(up)
        self._objective.extend(obj)
        self._matrices_cache = None
        return range(start, start + n)

    def has_variable(self, key: VarKey) -> bool:
        return key in self._index

    def variable_index(self, key: VarKey) -> int:
        try:
            return self._index[key]
        except KeyError as exc:
            raise LPError(f"unknown variable {key!r}") from exc

    def set_objective_coefficient(self, key: VarKey, coefficient: float) -> None:
        """Overwrite the objective coefficient of an existing variable."""
        self._objective[self.variable_index(key)] = float(coefficient)

    @property
    def num_variables(self) -> int:
        """Number of *active* (non-dropped) variables."""
        return len(self._keys) - len(self._dropped_cols)

    @property
    def num_constraints(self) -> int:
        """Number of *active* (non-dropped) constraint rows."""
        return len(self._row_rhs) - len(self._dropped_rows)

    @property
    def num_raw_variables(self) -> int:
        """Number of variable identities ever registered (dropped included)."""
        return len(self._keys)

    @property
    def num_raw_constraints(self) -> int:
        """Number of row identities ever appended (dropped included)."""
        return len(self._row_rhs)

    @property
    def num_entries(self) -> int:
        """Number of stored (row, col, value) coefficient entries."""
        return len(self._entry_vals)

    @property
    def variable_keys(self) -> List[VarKey]:
        """Keys of the active variables, in column order."""
        if not self._dropped_cols:
            return list(self._keys)
        dropped = self._dropped_cols
        return [k for i, k in enumerate(self._keys) if i not in dropped]

    # ------------------------------------------------------------ delta edits
    def drop_constraints(self, rows: Iterable[int]) -> None:
        """Tombstone constraint rows by identity (row ids as returned by
        :meth:`add_constraints_coo` / :meth:`ConstraintBlock.flush`).

        Dropped rows (and their coefficient entries) are excluded from
        :meth:`matrices`; surviving rows compact into dense positions while
        keeping their relative order.  Dropping an already-dropped or unknown
        row id raises :class:`LPError`.
        """
        limit = len(self._row_rhs)
        for row in rows:
            r = int(row)
            if r < 0 or r >= limit:
                raise LPError(f"unknown constraint row {r} (have {limit})")
            if r in self._dropped_rows:
                raise LPError(f"constraint row {r} is already dropped")
            self._dropped_rows.add(r)
        self._matrices_cache = None

    def restore_constraints(self, rows: Iterable[int]) -> None:
        """Undo :meth:`drop_constraints` for the given row identities."""
        for row in rows:
            r = int(row)
            if r not in self._dropped_rows:
                raise LPError(f"constraint row {r} is not dropped")
            self._dropped_rows.remove(r)
        self._matrices_cache = None

    def drop_columns(self, indices: Iterable[int]) -> None:
        """Tombstone variables by column identity (indices as returned by
        :meth:`add_variables`).

        A dropped column disappears from the bounds/objective vectors and its
        coefficient entries vanish from *every* constraint row — including
        shared rows that also reference surviving columns.  Surviving columns
        compact into dense positions, keeping their relative order.
        """
        limit = len(self._keys)
        for index in indices:
            c = int(index)
            if c < 0 or c >= limit:
                raise LPError(f"unknown variable column {c} (have {limit})")
            if c in self._dropped_cols:
                raise LPError(f"variable column {c} is already dropped")
            self._dropped_cols.add(c)
        self._matrices_cache = None

    def restore_columns(self, indices: Iterable[int]) -> None:
        """Undo :meth:`drop_columns` for the given column identities."""
        for index in indices:
            c = int(index)
            if c not in self._dropped_cols:
                raise LPError(f"variable column {c} is not dropped")
            self._dropped_cols.remove(c)
        self._matrices_cache = None

    def drop_variables(self, keys: Iterable[VarKey]) -> None:
        """Key-addressed convenience wrapper over :meth:`drop_columns`."""
        self.drop_columns(self.variable_index(k) for k in keys)

    def restore_variables(self, keys: Iterable[VarKey]) -> None:
        """Key-addressed convenience wrapper over :meth:`restore_columns`."""
        self.restore_columns(self.variable_index(k) for k in keys)

    def active_row_mask(self) -> np.ndarray:
        """Boolean mask over row identities (True = active)."""
        mask = np.ones(len(self._row_rhs), dtype=bool)
        if self._dropped_rows:
            mask[np.fromiter(self._dropped_rows, dtype=np.int64)] = False
        return mask

    def active_column_mask(self) -> np.ndarray:
        """Boolean mask over column identities (True = active)."""
        mask = np.ones(len(self._keys), dtype=bool)
        if self._dropped_cols:
            mask[np.fromiter(self._dropped_cols, dtype=np.int64)] = False
        return mask

    def solution_keys(self) -> Tuple[List[VarKey], Dict[VarKey, int]]:
        """``(keys, index)`` describing the *solved* column space.

        Without drops these are zero-copy aliases of the internal registries;
        with dropped columns they are compacted copies whose positions match
        the columns of :meth:`matrices`.
        """
        if not self._dropped_cols:
            return self._keys, self._index
        keys = self.variable_keys
        return keys, {k: i for i, k in enumerate(keys)}

    # ------------------------------------------------------------ constraints
    def add_constraint(
        self,
        terms: Union[Mapping[VarKey, float], Iterable[Tuple[VarKey, float]]],
        sense: str,
        rhs: float,
        name: Optional[str] = None,
    ) -> None:
        """Add the constraint ``sum_k terms[k] * var_k  (sense)  rhs``.

        Terms with zero coefficient are dropped; terms referencing the same
        variable twice are summed.  This is the scalar convenience wrapper
        over the COO buffers the bulk API fills directly.
        """
        code = _SENSE_CODE.get(sense)
        if code is None:
            raise LPError(f"unknown constraint sense {sense!r}")
        if isinstance(terms, Mapping):
            items = terms.items()
        else:
            items = terms
        accum: Dict[int, float] = {}
        for key, coef in items:
            if coef == 0.0:
                continue
            idx = self.variable_index(key)
            accum[idx] = accum.get(idx, 0.0) + float(coef)
        row = len(self._row_rhs)
        if accum:
            cols = np.fromiter(accum.keys(), dtype=np.int64, count=len(accum))
            vals = np.fromiter(accum.values(), dtype=np.float64, count=len(accum))
            self._entry_rows.extend(np.full(len(accum), row, dtype=np.int64))
            self._entry_cols.extend(cols)
            self._entry_vals.extend(vals)
        self._row_sense.append(code)
        self._row_rhs.append(float(rhs))
        self._row_names.append(name)
        self._matrices_cache = None

    def add_constraints_coo(
        self,
        rows,
        cols,
        vals,
        senses,
        rhs,
        names: Optional[Sequence[Optional[str]]] = None,
    ) -> range:
        """Append a block of constraint rows given as flat COO triplets.

        Parameters
        ----------
        rows, cols, vals:
            Parallel arrays of coefficient entries.  ``rows`` holds row ids
            *local to this block* (``0 .. m-1``); ``cols`` holds global
            variable column indices (as returned by :meth:`add_variables`).
            Duplicate ``(row, col)`` entries are summed when the matrices are
            assembled (CSR conversion semantics).
        senses:
            One sense string (``"<="``, ``">="``, ``"=="``) applied to every
            row, or a length-``m`` sequence of sense strings.
        rhs:
            Length-``m`` array of right-hand sides (a scalar is broadcast
            only when the block size is unambiguous, i.e. ``senses`` is a
            sequence); rows with no coefficient entries are allowed.
        names:
            Optional per-row names for debugging.

        Returns the global row-index range of the appended block.
        """
        rhs_arr = np.atleast_1d(np.asarray(rhs, dtype=np.float64))
        if isinstance(senses, str):
            codes = np.full(rhs_arr.shape[0], _sense_code(senses), dtype=np.int8)
        else:
            codes = np.fromiter(
                (_sense_code(s) for s in senses), dtype=np.int8
            )
            if rhs_arr.shape[0] == 1 and codes.shape[0] > 1:
                rhs_arr = np.full(codes.shape[0], rhs_arr[0])
        m = rhs_arr.shape[0]
        if codes.shape[0] != m:
            raise LPError(
                f"senses (length {codes.shape[0]}) and rhs (length {m}) disagree"
            )
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not (rows.shape == cols.shape == vals.shape):
            raise LPError("rows, cols and vals must have identical shapes")
        if rows.size:
            if rows.min() < 0 or rows.max() >= m:
                raise LPError(f"row ids must lie in [0, {m}); got [{rows.min()}, {rows.max()}]")
            if cols.min() < 0 or cols.max() >= len(self._keys):
                raise LPError(
                    f"column ids must lie in [0, {len(self._keys)}); "
                    f"got [{cols.min()}, {cols.max()}]"
                )
        if names is not None and len(names) != m:
            raise LPError(f"names (length {len(names)}) and rhs (length {m}) disagree")
        start = len(self._row_rhs)
        self._entry_rows.extend(rows + start)
        self._entry_cols.extend(cols)
        self._entry_vals.extend(vals)
        self._row_sense.extend(codes)
        self._row_rhs.extend(rhs_arr)
        self._row_names.extend(names if names is not None else [None] * m)
        self._matrices_cache = None
        return range(start, start + m)

    def block(self) -> "ConstraintBlock":
        """A fresh :class:`ConstraintBlock` accumulator bound to this LP."""
        return ConstraintBlock(self)

    def iter_constraints(self) -> Iterator[Constraint]:
        """Materialise the stored rows as :class:`Constraint` views (slow path,
        intended for tests and debugging only).  Only active rows are yielded,
        with column indices in the compacted (solved) column space so they
        match :meth:`matrices`."""
        rows = self._entry_rows.view()
        cols = self._entry_cols.view()
        vals = self._entry_vals.view()
        col_keep = self.active_column_mask()
        col_newid = np.cumsum(col_keep) - 1
        order = np.argsort(rows, kind="stable")
        raw = len(self._row_rhs)
        boundaries = np.searchsorted(rows[order], np.arange(raw + 1))
        for r in range(raw):
            if r in self._dropped_rows:
                continue
            sel = order[boundaries[r] : boundaries[r + 1]]
            if self._dropped_cols:
                sel = sel[col_keep[cols[sel]]]
            yield Constraint(
                indices=[int(col_newid[c]) for c in cols[sel]],
                coefficients=[float(v) for v in vals[sel]],
                sense=_SENSE_STR[int(self._row_sense[r])],
                rhs=float(self._row_rhs[r]),
                name=self._row_names[r],
            )

    # ---------------------------------------------------------------- exports
    def bounds(self) -> List[Tuple[float, float]]:
        lower, upper = self.bounds_arrays()
        return list(zip(lower.tolist(), upper.tolist()))

    def bounds_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(lower, upper)`` bound vectors as arrays (no per-variable tuples).

        Dropped columns are compacted away so positions match
        :meth:`matrices`.
        """
        if not self._dropped_cols:
            return self._lower.view(), self._upper.view()
        keep = self.active_column_mask()
        return self._lower.view()[keep], self._upper.view()[keep]

    def objective_vector(self) -> np.ndarray:
        if not self._dropped_cols:
            return np.array(self._objective.view(), dtype=float)
        return np.array(self._objective.view()[self.active_column_mask()], dtype=float)

    def matrices(
        self,
    ) -> Tuple[
        Optional[sparse.csr_matrix],
        Optional[np.ndarray],
        Optional[sparse.csr_matrix],
        Optional[np.ndarray],
    ]:
        """Assemble ``(A_ub, b_ub, A_eq, b_eq)`` sparse matrices.

        ``>=`` constraints are negated into ``<=`` form.  Empty groups are
        returned as ``None`` (the convention :func:`scipy.optimize.linprog`
        expects).  The result is cached and the cache is invalidated whenever
        a variable or constraint is added, dropped or restored, so repeated
        calls (solve + diagnostics) assemble only once.

        With dropped rows/columns present, the surviving structure is
        compacted: active rows and columns take dense positions in their
        original relative order, and entries touching a dropped row *or*
        column are excluded.  The result is byte-identical to assembling only
        the surviving structure from scratch.
        """
        if self._matrices_cache is not None:
            return self._matrices_cache

        senses = self._row_sense.view()
        rhs = self._row_rhs.view()
        rows = self._entry_rows.view()
        cols = self._entry_cols.view()
        vals = self._entry_vals.view()
        n = self.num_variables

        if self._dropped_rows or self._dropped_cols:
            row_keep = self.active_row_mask()
            col_keep = self.active_column_mask()
            row_newid = np.cumsum(row_keep) - 1
            col_newid = np.cumsum(col_keep) - 1
            if rows.size:
                entry_keep = row_keep[rows] & col_keep[cols]
                rows = row_newid[rows[entry_keep]]
                cols = col_newid[cols[entry_keep]]
                vals = vals[entry_keep]
            senses = senses[row_keep]
            rhs = rhs[row_keep]

        is_eq_row = senses == _SENSE_EQ
        num_eq = int(is_eq_row.sum())
        num_ub = senses.shape[0] - num_eq

        # Map each global row id onto its position within its sense group.
        group_rowid = np.empty(senses.shape[0], dtype=np.int64)
        group_rowid[is_eq_row] = np.arange(num_eq)
        group_rowid[~is_eq_row] = np.arange(num_ub)
        # ">=" rows are negated into "<=" form.
        row_sign = np.where(senses == _SENSE_GE, -1.0, 1.0)

        entry_is_eq = is_eq_row[rows] if rows.size else np.zeros(0, dtype=bool)

        a_ub = b_ub = a_eq = b_eq = None
        if num_ub:
            sel = ~entry_is_eq
            a_ub = sparse.coo_matrix(
                (
                    vals[sel] * row_sign[rows[sel]],
                    (group_rowid[rows[sel]], cols[sel]),
                ),
                shape=(num_ub, n),
            ).tocsr()
            b_ub = (rhs * row_sign)[~is_eq_row]
        if num_eq:
            sel = entry_is_eq
            a_eq = sparse.coo_matrix(
                (vals[sel], (group_rowid[rows[sel]], cols[sel])),
                shape=(num_eq, n),
            ).tocsr()
            b_eq = rhs[is_eq_row]
        self._matrices_cache = (a_ub, b_ub, a_eq, b_eq)
        return self._matrices_cache

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LinearProgram(name={self.name!r}, variables={self.num_variables}, "
            f"constraints={self.num_constraints})"
        )


def _sense_code(sense: str) -> int:
    code = _SENSE_CODE.get(sense)
    if code is None:
        raise LPError(f"unknown constraint sense {sense!r}")
    return code


class ConstraintBlock:
    """Accumulator for a block of constraint rows, flushed in one bulk call.

    The LP builders use this where row contents are discovered incrementally
    (e.g. the time-expanded packet LP, whose per-row variable sets depend on
    reachability): rows are appended as ``(cols, vals, sense, rhs)`` without
    building a dict or a :class:`Constraint` object per row, and
    :meth:`flush` hands the whole block to
    :meth:`LinearProgram.add_constraints_coo` at once.

    Unlike the scalar :meth:`LinearProgram.add_constraint`, no zero-dropping
    or duplicate-summing happens at append time; duplicates are summed by the
    CSR conversion inside :meth:`LinearProgram.matrices`.
    """

    def __init__(self, lp: LinearProgram) -> None:
        self._lp = lp
        self._chunks_rows: List[np.ndarray] = []
        self._chunks_cols: List[np.ndarray] = []
        self._chunks_vals: List[np.ndarray] = []
        self._senses: List[str] = []
        self._rhs: List[float] = []
        self._names: List[Optional[str]] = []

    @property
    def num_rows(self) -> int:
        return len(self._rhs)

    def add_row(
        self,
        cols,
        vals,
        sense: str,
        rhs: float,
        name: Optional[str] = None,
    ) -> int:
        """Append one row; ``cols`` are global column indices.  Returns the
        row id local to the block."""
        row = len(self._rhs)
        cols = np.asarray(cols, dtype=np.int64)
        if cols.size:
            vals_arr = np.asarray(vals, dtype=np.float64)
            if vals_arr.ndim == 0:
                vals_arr = np.full(cols.shape[0], float(vals_arr))
            self._chunks_rows.append(np.full(cols.shape[0], row, dtype=np.int64))
            self._chunks_cols.append(cols)
            self._chunks_vals.append(vals_arr)
        self._senses.append(sense)
        self._rhs.append(float(rhs))
        self._names.append(name)
        return row

    def flush(self) -> range:
        """Commit the accumulated rows to the LP; the block is then reset."""
        if not self._rhs:
            return range(self._lp.num_constraints, self._lp.num_constraints)
        rows = (
            np.concatenate(self._chunks_rows)
            if self._chunks_rows
            else np.zeros(0, dtype=np.int64)
        )
        cols = (
            np.concatenate(self._chunks_cols)
            if self._chunks_cols
            else np.zeros(0, dtype=np.int64)
        )
        vals = (
            np.concatenate(self._chunks_vals)
            if self._chunks_vals
            else np.zeros(0, dtype=np.float64)
        )
        out = self._lp.add_constraints_coo(
            rows, cols, vals, self._senses, np.asarray(self._rhs), names=self._names
        )
        self._chunks_rows.clear()
        self._chunks_cols.clear()
        self._chunks_vals.clear()
        self._senses.clear()
        self._rhs.clear()
        self._names.clear()
        return out
