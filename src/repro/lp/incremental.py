"""Incremental (warm-started) assembly of the given-paths interval LP.

The streaming scheduler (:mod:`repro.sim.streaming`) re-solves the
Section-2.1 LP at every re-planning epoch over a slowly-changing coflow set:
arrivals append coflows, departures drop them, and the surviving flows shrink
as volume drains.  Rebuilding the LP from the instance every epoch repeats
per-flow work that never changes — path validation, bottleneck capacities,
deduplicated edge sequences, release-interval searches.  This module keeps
that derived structure in a per-flow cache keyed by *stable* flow identities
(original flow ids, which survive the sub-instance renumbering of
:class:`repro.sim.online.OnlineFlowSimulator`) and re-emits the LP each epoch
through :func:`repro.circuit.given_paths.emit_given_paths_lp` — the *same*
emission code the cold builder uses, which is what makes the warm-started
matrices **byte-identical** to a cold rebuild over the same instance and
grid.  Identical matrices into the deterministic HiGHS solve give identical
solutions (same objective, same extracted rates, ``==`` with no tolerance) —
the warm-start contract the property harness in
``tests/sim/test_streaming_equivalence.py`` enforces.

Why re-emit instead of patching the previous epoch's buffers in place?  The
completion block orders columns ``[x, c]`` per flow followed by one trailing
``C`` block — an arriving coflow's columns belong *before* the ``C`` block,
so any append-only delta would permute columns relative to a cold build and
break exact equality.  The generic delta layer this PR adds to
:class:`repro.lp.LinearProgram` (:meth:`drop_constraints` /
:meth:`drop_columns` with compaction in :meth:`matrices`) handles the
departure-only direction exactly and is property-tested against from-scratch
assembly for all five LP builders in ``tests/lp/test_incremental_assembly.py``;
this module layers the arrival direction on top via cached-input re-emission.

The grid is **pinned** at construction: :class:`GivenPathsLP`'s default
horizon depends on the instance's total volume, which shrinks as flows drain,
so successive epochs would otherwise disagree on interval boundaries and no
two epochs' LPs would be comparable.  Pick the horizon once (e.g. from the
full instance) and every epoch shares coefficients.

Basis reuse: when the ``highspy`` bindings are installed,
:func:`solve_warm` re-seeds each solve with the previous epoch's HiGHS basis
(:class:`WarmStartState`); without them (this repository's pinned
environment ships scipy's bundled HiGHS only) it falls back to the
deterministic :func:`repro.lp.solve` path, which is also what keeps the
exactness contract bit-for-bit.  :func:`basis_reuse_available` reports which
tier is active.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from ..core.flows import CoflowInstance, FlowId
from ..core.intervals import IntervalGrid
from ..core.network import Network, path_edges
from .model import LinearProgram
from .solver import LPSolution, solve

__all__ = [
    "FlowStructure",
    "IncrementalGivenPathsLP",
    "WarmStartState",
    "basis_reuse_available",
    "solve_warm",
]


def basis_reuse_available() -> bool:
    """True when the optional ``highspy`` bindings are importable.

    scipy's bundled HiGHS exposes no basis I/O, so cross-solve basis reuse
    needs the standalone bindings; environments without them (including this
    repository's pinned image) use the deterministic fallback path.
    """
    try:
        import highspy  # noqa: F401
    except ImportError:
        return False
    return True


@dataclass
class WarmStartState:
    """Carries solver state (the HiGHS basis) across successive solves.

    On the fallback path the state only counts solves; with ``highspy``
    installed it holds the basis object re-seeded into the next solve.
    """

    basis: Any = None
    solves: int = 0
    basis_reuses: int = 0


def solve_warm(
    lp: LinearProgram,
    state: Optional[WarmStartState] = None,
    use_basis: str = "auto",
) -> LPSolution:
    """Solve ``lp``, reusing the previous basis from ``state`` when possible.

    ``use_basis``:

    * ``"auto"`` (default) — reuse the basis iff ``highspy`` is installed;
      otherwise solve through the deterministic scipy path.  This is the mode
      the streaming scheduler uses.
    * ``"never"`` — always the deterministic path (what the exactness
      property tests pin, so they hold regardless of installed extras).
    """
    if use_basis not in ("auto", "never"):
        raise ValueError(f"use_basis must be 'auto' or 'never', got {use_basis!r}")
    if state is not None:
        state.solves += 1
    if use_basis == "auto" and state is not None and basis_reuse_available():
        return _solve_highspy(lp, state)  # pragma: no cover - needs highspy
    return solve(lp)


def _solve_highspy(lp: LinearProgram, state: WarmStartState) -> LPSolution:
    """Solve through standalone HiGHS, seeding and recapturing the basis.

    Only reachable when ``highspy`` is installed (never in the pinned test
    environment) — the streaming scheduler treats its answer as a drop-in for
    the scipy path and the equivalence tests always pin ``use_basis="never"``.
    """  # pragma: no cover - needs highspy
    import highspy  # pragma: no cover

    a_ub, b_ub, a_eq, b_eq = lp.matrices()  # pragma: no cover
    lower, upper = lp.bounds_arrays()  # pragma: no cover
    h = highspy.Highs()  # pragma: no cover
    h.silent()  # pragma: no cover
    num_rows = 0  # pragma: no cover
    blocks = []  # pragma: no cover
    row_lower: List[np.ndarray] = []  # pragma: no cover
    row_upper: List[np.ndarray] = []  # pragma: no cover
    if a_ub is not None:  # pragma: no cover
        blocks.append(a_ub)  # pragma: no cover
        row_lower.append(np.full(a_ub.shape[0], -np.inf))  # pragma: no cover
        row_upper.append(np.asarray(b_ub, dtype=float))  # pragma: no cover
        num_rows += a_ub.shape[0]  # pragma: no cover
    if a_eq is not None:  # pragma: no cover
        blocks.append(a_eq)  # pragma: no cover
        row_lower.append(np.asarray(b_eq, dtype=float))  # pragma: no cover
        row_upper.append(np.asarray(b_eq, dtype=float))  # pragma: no cover
        num_rows += a_eq.shape[0]  # pragma: no cover
    from scipy import sparse  # pragma: no cover

    matrix = (
        sparse.vstack(blocks).tocsc()
        if blocks
        else sparse.csc_matrix((0, lp.num_variables))
    )  # pragma: no cover
    model = highspy.HighsLp()  # pragma: no cover
    model.num_col_ = lp.num_variables  # pragma: no cover
    model.num_row_ = num_rows  # pragma: no cover
    model.col_cost_ = lp.objective_vector()  # pragma: no cover
    model.col_lower_ = np.asarray(lower, dtype=float)  # pragma: no cover
    model.col_upper_ = np.asarray(upper, dtype=float)  # pragma: no cover
    model.row_lower_ = (
        np.concatenate(row_lower) if row_lower else np.zeros(0)
    )  # pragma: no cover
    model.row_upper_ = (
        np.concatenate(row_upper) if row_upper else np.zeros(0)
    )  # pragma: no cover
    model.a_matrix_.start_ = matrix.indptr  # pragma: no cover
    model.a_matrix_.index_ = matrix.indices  # pragma: no cover
    model.a_matrix_.value_ = matrix.data  # pragma: no cover
    h.passModel(model)  # pragma: no cover
    if state.basis is not None:  # pragma: no cover
        try:  # pragma: no cover
            h.setBasis(state.basis)  # pragma: no cover
            state.basis_reuses += 1  # pragma: no cover
        except Exception:  # pragma: no cover
            state.basis = None  # pragma: no cover
    h.run()  # pragma: no cover
    state.basis = h.getBasis()  # pragma: no cover
    solution = h.getSolution()  # pragma: no cover
    x = np.asarray(solution.col_value, dtype=float)  # pragma: no cover
    x = np.where(x < 0.0, 0.0, x)  # pragma: no cover
    keys, index = lp.solution_keys()  # pragma: no cover
    return LPSolution(
        objective=float(h.getObjectiveValue()),
        status=0,
        message="highspy warm solve",
        iterations=int(h.getInfo().simplex_iteration_count),
        x=x,
        keys=keys,
        index=index,
    )  # pragma: no cover


@dataclass(frozen=True)
class FlowStructure:
    """Cached per-flow structure that survives across epochs.

    Everything here is a pure function of the flow's path, release time, the
    network and the pinned grid — none of it changes as the flow's remaining
    volume drains, so it is computed once per flow lifetime.
    """

    path: Tuple[Any, ...]
    release_time: float
    bottleneck: float
    edge_seq: Tuple[Tuple[Any, Any], ...]
    release_interval: int


class IncrementalGivenPathsLP:
    """Warm-start assembler for the given-paths LP over a pinned grid.

    Usage per epoch::

        inc = IncrementalGivenPathsLP(network, horizon=H)
        inc.sync(sub_instance, stable_ids=fid_map)   # delta-update the cache
        relaxation = inc.relax()                     # build + solve + extract

    ``sync`` replaces the tracked instance, reusing cached
    :class:`FlowStructure` for every flow whose stable identity, path and
    release time are unchanged (cache statistics land in
    :attr:`last_sync_stats`).  ``build``/``relax`` then re-emit the LP through
    the cold builder's own emission function, so the produced matrices are
    byte-identical to ``GivenPathsLP(sub_instance, network, epsilon,
    horizon).build()`` — identical input to a deterministic solver means the
    solutions match exactly, which is the warm-start contract.
    """

    def __init__(
        self,
        network: Network,
        horizon: float,
        epsilon: Optional[float] = None,
        use_basis: str = "auto",
    ) -> None:
        from ..circuit.given_paths import DEFAULT_EPSILON

        self.network = network
        self.grid = IntervalGrid(
            epsilon=DEFAULT_EPSILON if epsilon is None else epsilon,
            horizon=float(horizon),
        )
        self.use_basis = use_basis
        self.warm_state = WarmStartState()
        self._cache: Dict[Hashable, FlowStructure] = {}
        self._instance: Optional[CoflowInstance] = None
        self._structures: List[FlowStructure] = []
        self._sizes = np.zeros(0)
        self._releases = np.zeros(0)
        self._layout = None
        self.last_sync_stats: Dict[str, int] = {}

    # ------------------------------------------------------------------- sync
    def sync(
        self,
        instance: CoflowInstance,
        stable_ids: Optional[Mapping[FlowId, Hashable]] = None,
    ) -> Dict[str, int]:
        """Point the assembler at this epoch's (sub-)instance.

        ``stable_ids`` maps each flow id of ``instance`` to an identity that
        survives renumbering across epochs (the online engine's ``fid_map``);
        when omitted the flow ids themselves are assumed stable.  Returns the
        cache statistics, also kept in :attr:`last_sync_stats`.
        """
        if not instance.all_paths_given:
            raise ValueError(
                "IncrementalGivenPathsLP requires every flow to carry a path"
            )
        flows = list(instance.iter_flows())
        fresh: Dict[Hashable, FlowStructure] = {}
        structures: List[FlowStructure] = []
        hits = misses = 0
        for i, j, flow in flows:
            key = stable_ids[(i, j)] if stable_ids is not None else (i, j)
            if key in fresh:
                raise ValueError(f"stable id {key!r} maps to two flows")
            record = self._cache.get(key)
            path = tuple(flow.path)
            if (
                record is None
                or record.path != path
                or record.release_time != flow.release_time
            ):
                self.network.validate_path(flow.path)
                record = FlowStructure(
                    path=path,
                    release_time=flow.release_time,
                    bottleneck=self.network.bottleneck_capacity(flow.path),
                    edge_seq=tuple(dict.fromkeys(path_edges(flow.path))),
                    release_interval=self.grid.release_interval(flow.release_time),
                )
                misses += 1
            else:
                hits += 1
            fresh[key] = record
            structures.append(record)
        evicted = len(self._cache) - hits
        self._cache = fresh
        self._instance = instance
        self._structures = structures
        self._sizes = np.asarray([f.size for _i, _j, f in flows], dtype=float)
        self._releases = np.asarray(
            [f.release_time for _i, _j, f in flows], dtype=float
        )
        self.last_sync_stats = {
            "flows": len(flows),
            "cache_hits": hits,
            "cache_misses": misses,
            "evicted": evicted,
        }
        return self.last_sync_stats

    # ------------------------------------------------------------------ build
    def _transfer_rhs(self) -> np.ndarray:
        bottlenecks = np.asarray(
            [s.bottleneck for s in self._structures], dtype=float
        )
        if bottlenecks.size == 0:
            return np.zeros(0)
        # For zero-size flows size/bottleneck is exactly 0.0, matching the
        # cold builder's release-only branch bit-for-bit.
        return self._releases + self._sizes / bottlenecks

    def _edge_users(self) -> Dict[Tuple[Any, Any], List[Tuple[int, float]]]:
        edge_users: Dict[Tuple[Any, Any], List[Tuple[int, float]]] = {}
        for pos, structure in enumerate(self._structures):
            size = self._sizes[pos]
            for edge in structure.edge_seq:
                edge_users.setdefault(edge, []).append((pos, size))
        return edge_users

    def build(self) -> LinearProgram:
        """Assemble this epoch's LP from the cached structure.

        Byte-identical to a cold ``GivenPathsLP(...).build()`` over the same
        instance, network and grid.
        """
        if self._instance is None:
            raise RuntimeError("call sync() before build()")
        from ..circuit.given_paths import emit_given_paths_lp

        lp, layout = emit_given_paths_lp(
            self._instance,
            self.network,
            self.grid,
            self._transfer_rhs(),
            self._edge_users(),
            release_intervals=np.asarray(
                [s.release_interval for s in self._structures], dtype=np.int64
            ),
        )
        self._layout = layout
        return lp

    def relax(self):
        """Build and solve, returning a ``GivenPathsRelaxation``.

        The solve goes through :func:`solve_warm` with this assembler's
        :attr:`warm_state`, so the HiGHS basis carries across epochs when the
        bindings are present and the call degrades to the deterministic
        :func:`repro.lp.solve` otherwise.
        """
        from ..circuit._assembly import extract_completion
        from ..circuit.given_paths import GivenPathsRelaxation

        lp = self.build()
        solution = solve_warm(lp, state=self.warm_state, use_basis=self.use_basis)
        fractions, flow_completion, coflow_completion = extract_completion(
            solution, self._layout
        )
        return GivenPathsRelaxation(
            instance=self._instance,
            network=self.network,
            grid=self.grid,
            solution=solution,
            fractions=fractions,
            flow_completion=flow_completion,
            coflow_completion=coflow_completion,
        )
