"""On-disk run store for the experiment engine.

Every simulated (topology, workload config, seed, scheme) combination is one
*run*; the store maps a stable digest of that key to the run's scalar
metrics.  Records are appended to a JSONL file as results arrive, so an
interrupted sweep loses at most the in-flight tasks and a re-invocation
resumes from what is already on disk; repeated benchmark invocations hit the
cache instead of re-solving LPs and re-simulating.

Layout: one JSON object per line, ``{"key": <digest>, "record": {...}}``.
The record carries the full key fields (topology fingerprint, config dict,
scheme signature) alongside the metrics, so a store file is self-describing
and can be post-processed without the engine.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .. import __version__
from ..workloads.generator import WorkloadConfig
from ..workloads.serialization import config_to_dict

__all__ = ["RunStore", "run_key"]


def run_key(topology_fingerprint: str, config: WorkloadConfig, scheme_signature: str) -> str:
    """Digest identifying one run: (topology, config incl. seed, scheme).

    The config dict includes the instance seed, so every random try of a
    sweep point gets its own key.  The package version is mixed in so stores
    invalidate across releases; *within* a development version the store
    cannot see code changes — delete the store file after editing scheme or
    simulator logic (benchmark stores live under
    ``benchmarks/results/runstore/``).
    """
    payload = json.dumps(
        {
            "version": __version__,
            "topology": topology_fingerprint,
            "config": config_to_dict(config),
            "scheme": scheme_signature,
        },
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


class RunStore:
    """A dict of run records, optionally mirrored to an append-only JSONL file.

    Parameters
    ----------
    path:
        JSONL file backing the store.  ``None`` keeps the store in memory
        only (still useful for intra-process caching).  Existing files are
        loaded eagerly; later records for the same key win, so appending is
        always safe.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: Dict[str, Dict[str, Any]] = {}
        #: cache accounting for the current process (resume/determinism tests
        #: and benchmark reports read these).
        self.hits = 0
        self.misses = 0
        if self.path is not None and self.path.exists():
            with self.path.open() as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    entry = json.loads(line)
                    self._records[entry["key"]] = entry["record"]

    # ------------------------------------------------------------------ query
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Look up a record, counting the hit or miss."""
        record = self._records.get(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def peek(self, key: str) -> Optional[Dict[str, Any]]:
        """Look up a record without touching the hit/miss counters."""
        return self._records.get(key)

    # ----------------------------------------------------------------- update
    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Insert a record and (when file-backed) append it to disk."""
        self._records[key] = record
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as handle:
                handle.write(json.dumps({"key": key, "record": record}, default=repr))
                handle.write("\n")

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (between engine passes in tests)."""
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = str(self.path) if self.path else "memory"
        return f"RunStore({where}, records={len(self)})"
