"""On-disk run store for the experiment engine.

Every simulated (topology, workload config, seed, scheme) combination is one
*run*; the store maps a stable digest of that key to the run's scalar
metrics.  Records are appended to a JSONL file as results arrive, so an
interrupted sweep loses at most the in-flight tasks and a re-invocation
resumes from what is already on disk; repeated benchmark invocations hit the
cache instead of re-solving LPs and re-simulating.

Layout: one JSON object per line, ``{"key": <digest>, "record": {...}}``.
The record carries the full key fields (topology fingerprint, config dict,
scheme signature) alongside the metrics, so a store file is self-describing
and can be post-processed without the engine.

Crash tolerance: a process killed mid-append (``kill -9``, OOM) leaves a
truncated trailing line.  Loading such a file skips the torn tail with a
warning on stderr instead of crashing, and remembers the byte offset of the
last intact record so the *next* append first truncates the file back to
that offset — the torn bytes can never corrupt a later record.  ``put``
writes the record and its newline in one flushed ``write`` call, so a crash
can only ever tear the final line, never interleave two records.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .. import __version__
from ..faults import maybe_inject
from ..workloads.generator import WorkloadConfig
from ..workloads.serialization import config_to_dict

__all__ = ["RunStore", "run_key"]


def run_key(topology_fingerprint: str, config: WorkloadConfig, scheme_signature: str) -> str:
    """Digest identifying one run: (topology, config incl. seed, scheme).

    The config dict includes the instance seed, so every random try of a
    sweep point gets its own key.  The package version is mixed in so stores
    invalidate across releases; *within* a development version the store
    cannot see code changes — delete the store file after editing scheme or
    simulator logic (benchmark stores live under
    ``benchmarks/results/runstore/``).
    """
    payload = json.dumps(
        {
            "version": __version__,
            "topology": topology_fingerprint,
            "config": config_to_dict(config),
            "scheme": scheme_signature,
        },
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


class RunStore:
    """A dict of run records, optionally mirrored to an append-only JSONL file.

    Parameters
    ----------
    path:
        JSONL file backing the store.  ``None`` keeps the store in memory
        only (still useful for intra-process caching).  Existing files are
        loaded eagerly; later records for the same key win, so appending is
        always safe.  A truncated or corrupt trailing line (a crashed
        writer) is skipped with a warning, and the next append truncates
        the file back to the last intact record before writing.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: Dict[str, Dict[str, Any]] = {}
        #: cache accounting for the current process (resume/determinism tests
        #: and benchmark reports read these).
        self.hits = 0
        self.misses = 0
        #: byte offset the next append must truncate the file to, set when
        #: loading found torn/corrupt bytes after the last intact record.
        self._resync_offset: Optional[int] = None
        #: corrupt lines skipped while loading (diagnostic for tests/tools).
        self.skipped_lines = 0
        if self.path is not None and self.path.exists():
            self._load(self.path)

    def _load(self, path: Path) -> None:
        """Parse the JSONL file, tolerating a torn tail and corrupt lines."""
        data = path.read_bytes()
        clean_end = 0  # byte offset after the last intact, parseable line
        offset = 0
        for raw in data.splitlines(keepends=True):
            line_end = offset + len(raw)
            terminated = raw.endswith(b"\n")
            stripped = raw.strip()
            if not stripped:
                if terminated:
                    clean_end = line_end
                offset = line_end
                continue
            entry: Optional[Dict[str, Any]] = None
            try:
                parsed = json.loads(stripped)
                if isinstance(parsed, dict) and "key" in parsed and "record" in parsed:
                    entry = parsed
            except json.JSONDecodeError:
                entry = None
            if entry is not None and terminated:
                self._records[entry["key"]] = entry["record"]
                clean_end = line_end
            else:
                # Torn tail (unterminated) or corrupt bytes: skip, and leave
                # clean_end pointing at the last record worth keeping.
                self.skipped_lines += 1
            offset = line_end
        if clean_end < len(data):
            # Torn/corrupt bytes at the very end: arm the truncate-on-append
            # resync so they can never prefix-corrupt a later record.
            self._resync_offset = clean_end
            print(
                f"run store {path}: skipped {self.skipped_lines} "
                f"corrupt/truncated line(s) ({len(data) - clean_end} trailing "
                "bytes); the next append truncates back to the last intact "
                "record",
                file=sys.stderr,
            )
        elif self.skipped_lines:
            # Corrupt lines in the middle of the file (each newline-terminated,
            # so later appends are safe): warn, keep the intact records.
            print(
                f"run store {path}: skipped {self.skipped_lines} "
                "corrupt line(s); intact records were kept",
                file=sys.stderr,
            )

    # ------------------------------------------------------------------ query
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Look up a record, counting the hit or miss."""
        record = self._records.get(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def peek(self, key: str) -> Optional[Dict[str, Any]]:
        """Look up a record without touching the hit/miss counters."""
        return self._records.get(key)

    # ----------------------------------------------------------------- update
    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Insert a record and (when file-backed) append it to disk.

        The line (record + newline) goes out in a single flushed ``write``,
        so a crash mid-``put`` can only tear the final line — which the
        next load skips and the next append truncates away.
        """
        maybe_inject("store")
        self._records[key] = record
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            line = json.dumps({"key": key, "record": record}, default=repr) + "\n"
            if self._resync_offset is not None:
                with self.path.open("r+") as handle:
                    handle.truncate(self._resync_offset)
                self._resync_offset = None
            with self.path.open("a") as handle:
                handle.write(line)
                handle.flush()

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (between engine passes in tests)."""
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = str(self.path) if self.path else "memory"
        return f"RunStore({where}, records={len(self)})"
