"""The shard worker: claim tasks from the shared grid, execute, repeat.

A :class:`Worker` is one member of a sweep fleet.  Every worker derives the
identical (point x try x scheme) task list from the sweep spec — the grid
*is* the queue — and drains it cooperatively through its
:class:`~repro.analysis.fabric.store.ShardedRunStore`:

1. tasks already recorded are cache hits (the resume guarantee, proven by
   the store's hit counters exactly like the single-store engine);
2. tasks claimed by a live peer are left alone and *ceded* once the peer's
   record shows up in a refresh;
3. everything else is claimed in small chunks and executed through
   :meth:`~repro.analysis.engine.ExperimentEngine.execute_pending` — the
   hardened per-task path, so retries, deadlines, failure records and
   fault injection compose unchanged;
4. when only foreign claims remain, the worker polls for the claimants'
   records and, after ``steal_after`` seconds without progress, *steals*
   the claimed tasks (the claimant is presumed dead).  Stealing is safe by
   construction: results under the same key are bit-identical, so the
   worst outcome of racing a live-but-slow peer is one duplicate record
   that merges away.

Workers start their claim scan at a shard-dependent rotation of the task
list, so a fleet spreads over the grid instead of colliding on task 0.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ...core.topologies import from_spec
from ...faults import FaultConfig
from ..artifacts import SweepSpec, _topology_groups, build_schemes
from ..engine import ExperimentEngine, ExperimentTask
from .store import ShardedRunStore

__all__ = ["Worker", "WorkerStats"]


@dataclass
class WorkerStats:
    """Accounting for one shard worker's :meth:`Worker.run`.

    ``cached + ceded + executed == total_tasks`` when the worker drains to
    completion; ``stolen`` counts the subset of ``executed`` that was
    claimed by another shard first (presumed-dead claimant).
    """

    shard_id: int = 0
    shards: int = 1
    #: grid size — every worker sees the same full task list.
    total_tasks: int = 0
    #: tasks already recorded when this worker looked (resume hits).
    cached: int = 0
    #: tasks another live shard claimed and completed first.
    ceded: int = 0
    #: tasks this worker simulated (its actual share of the sweep).
    executed: int = 0
    #: executed tasks that were stolen from a stale foreign claim.
    stolen: int = 0
    #: executed tasks whose final record is a failure record.
    failed: int = 0
    #: transient-failure retries performed by this worker's engines.
    retried: int = 0
    #: worker pools respawned after a ``BrokenProcessPool``.
    pool_restarts: int = 0
    #: torn/corrupt store lines skipped across all shard files read.
    skipped_records: int = 0
    seconds: float = 0.0

    def summary(self) -> str:
        """One status line, e.g. ``shard 1/3: 54 tasks, 54 cached, ...``."""
        line = (
            f"shard {self.shard_id}/{self.shards}: {self.total_tasks} tasks, "
            f"{self.cached} cached, {self.executed} executed, "
            f"{self.ceded} ceded, {self.stolen} stolen, "
            f"{self.failed} failed, {self.seconds:.2f}s"
        )
        trouble = []
        if self.retried:
            trouble.append(f"{self.retried} retried")
        if self.pool_restarts:
            trouble.append(f"{self.pool_restarts} pool restart(s)")
        if self.skipped_records:
            trouble.append(f"{self.skipped_records} skipped record(s)")
        if trouble:
            line += " [" + ", ".join(trouble) + "]"
        return line

    def stats_path(self, root: Union[str, Path]) -> Path:
        """Where this shard's stats sidecar lives inside the store dir."""
        return Path(root) / f"shard-{self.shard_id:04d}.stats.json"

    def write(self, root: Union[str, Path]) -> Path:
        """Persist the stats sidecar (atomic rename) and return its path.

        The sweep coordinator folds these into the merged run's
        :class:`~repro.analysis.engine.EngineRunStats`; a shard with no
        sidecar after the fleet drains is reported as lost.
        """
        path = self.stats_path(root)
        tmp = path.with_suffix(f".tmp-{self.shard_id}")
        tmp.write_text(json.dumps(asdict(self), indent=2, sort_keys=True) + "\n")
        tmp.replace(path)
        return path


class Worker:
    """One shard's claim/execute/steal loop over a sweep spec.

    Parameters
    ----------
    spec:
        The sweep to execute — the full grid; this worker's share is
        whatever it manages to claim.
    store:
        A writable :class:`ShardedRunStore` (``shard_id`` set); supplies
        this worker's identity and fleet size.
    workers:
        Process-pool width *inside* this shard worker (the engine's
        ``workers``); sharding and pooling compose.
    steal_after:
        Seconds without fleet progress before foreign claims are presumed
        dead and stolen (liveness after a shard crash).
    poll_interval:
        Sleep between store refreshes while waiting on foreign claims.
    claim_chunk:
        Tasks claimed per execution batch (default: the pool width, so a
        pool is kept busy without hoarding unstarted claims).
    faults, max_retries, task_timeout, retry_failed, lp_time_limit:
        Passed straight to each per-topology
        :class:`~repro.analysis.engine.ExperimentEngine` — the PR 6
        fault-tolerance surface, unchanged.  ``faults=None`` falls back to
        the spec's own ``faults`` entry.
    """

    def __init__(
        self,
        spec: SweepSpec,
        store: ShardedRunStore,
        workers: Optional[int] = None,
        steal_after: float = 3.0,
        poll_interval: float = 0.05,
        claim_chunk: Optional[int] = None,
        faults: Union[FaultConfig, str, None] = None,
        max_retries: int = 2,
        task_timeout: Optional[float] = None,
        retry_failed: bool = False,
        lp_time_limit: Optional[float] = None,
    ) -> None:
        if store.shard_id is None:
            raise ValueError("worker needs a writable shard store (shard_id set)")
        if steal_after < 0:
            raise ValueError("steal_after must be non-negative")
        self.spec = spec
        self.store = store
        self.workers = workers
        self.steal_after = steal_after
        self.poll_interval = max(poll_interval, 1e-4)
        self.claim_chunk = claim_chunk or max(1, workers or 1)
        if faults is None and spec.faults is not None:
            faults = spec.faults
        if isinstance(faults, str):
            faults = FaultConfig.from_spec(faults)
        self.faults = faults
        self.max_retries = max_retries
        self.task_timeout = task_timeout
        self.retry_failed = retry_failed
        self.lp_time_limit = lp_time_limit
        self.last_stats = WorkerStats()

    # ------------------------------------------------------------------ run
    def run(self) -> WorkerStats:
        """Drain the sweep grid; return (and keep) this worker's stats."""
        started = time.perf_counter()
        shards = self.store.expected_shards or 1
        stats = WorkerStats(shard_id=self.store.shard_id or 0, shards=shards)
        self.last_stats = stats
        point_specs = self.spec.point_specs()
        for topology, indices in _topology_groups(self.spec):
            engine = ExperimentEngine(
                from_spec(topology),
                build_schemes(self.spec.schemes),
                tries=self.spec.tries,
                metric=self.spec.metric,
                workers=self.workers,
                store=self.store,
                faults=self.faults,
                max_retries=self.max_retries,
                task_timeout=self.task_timeout,
                retry_failed=self.retry_failed,
                lp_time_limit=self.lp_time_limit,
            )
            tasks = engine.tasks_for([point_specs[i] for i in indices])
            stats.total_tasks += len(tasks)
            self._drain(engine, self._rotated(tasks), stats)
            stats.retried += engine.last_run_stats.retried
            stats.pool_restarts += engine.last_run_stats.pool_restarts
        stats.skipped_records = self.store.skipped_lines
        stats.seconds = time.perf_counter() - started
        return stats

    def _rotated(self, tasks: List[ExperimentTask]) -> List[ExperimentTask]:
        """Rotate the task list by this shard's slot to de-collide claims."""
        shards = self.store.expected_shards or 1
        if not tasks or shards <= 1:
            return tasks
        offset = ((self.store.shard_id or 0) * len(tasks)) // shards
        return tasks[offset:] + tasks[:offset]

    def _drain(
        self,
        engine: ExperimentEngine,
        tasks: List[ExperimentTask],
        stats: WorkerStats,
    ) -> None:
        """The claim loop for one topology group's task list."""
        remaining: Dict[str, ExperimentTask] = {}
        for task in tasks:
            record = self.store.get(task.key)  # counts the resume hit
            if record is None or (self.retry_failed and record.get("failed")):
                remaining[task.key] = task
            else:
                stats.cached += 1
        waited = 0.0
        while remaining:
            self.store.refresh()
            progressed = self._cede_completed(remaining, stats)
            open_tasks = [
                task
                for task in remaining.values()
                if not self.store.claimed_by_other(task.key)
            ]
            stealing = False
            if not open_tasks:
                if waited < self.steal_after:
                    time.sleep(self.poll_interval)
                    if not progressed:
                        waited += self.poll_interval
                    else:
                        waited = 0.0
                    continue
                # No unclaimed work and no fleet progress for steal_after
                # seconds: the claimants are presumed dead.  Take over.
                open_tasks = list(remaining.values())
                stealing = True
            waited = 0.0
            chunk = open_tasks[: self.claim_chunk]
            for task in chunk:
                self.store.claim(task.key)
            if stealing:
                stats.stolen += len(chunk)
            engine.execute_pending(chunk)
            for task in chunk:
                remaining.pop(task.key, None)
                record = self.store.peek(task.key)
                if record is not None and record.get("failed"):
                    stats.failed += 1
            stats.executed += len(chunk)

    def _cede_completed(
        self, remaining: Dict[str, ExperimentTask], stats: WorkerStats
    ) -> bool:
        """Drop tasks whose record a peer delivered; True when any did."""
        ceded = [
            key
            for key, task in remaining.items()
            if (record := self.store.peek(key)) is not None
            and not (self.retry_failed and record.get("failed"))
        ]
        for key in ceded:
            del remaining[key]
        stats.ceded += len(ceded)
        return bool(ceded)
