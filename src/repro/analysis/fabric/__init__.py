"""Distributed sweep fabric: sharded stores, claimable tasks, shard merge.

The fabric turns one sweep spec into work that N independent workers —
processes today, hosts on a shared filesystem tomorrow — execute
cooperatively, with the same resume, determinism and fault-tolerance
guarantees as a single-process run:

* :class:`~repro.analysis.fabric.store.ShardedRunStore` — per-shard JSONL
  files under one directory, content-addressed by the engine's run keys,
  with an advisory lock-free claim protocol;
* :class:`~repro.analysis.fabric.worker.Worker` — the claim/execute/steal
  loop, driving claimed chunks through the engine's hardened per-task
  path;
* :func:`~repro.analysis.fabric.merge.merge_stores` /
  :func:`~repro.analysis.fabric.merge.write_merged` — streaming fold of
  any subset of shard stores into report rows or a plain run-store file,
  without re-simulation.

CLI surface: ``repro sweep --shards N [--shard-id K]`` and
``repro merge <store>...``.  See ``docs/fabric.md`` for the protocol.
"""

from .merge import MergeStats, expand_sources, merge_stores, write_merged
from .store import ShardedRunStore
from .worker import Worker, WorkerStats

__all__ = [
    "ShardedRunStore",
    "Worker",
    "WorkerStats",
    "MergeStats",
    "expand_sources",
    "merge_stores",
    "write_merged",
]
