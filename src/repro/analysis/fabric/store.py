"""Sharded, content-addressed run store with a lock-free claim protocol.

One sweep, N independent writers.  A :class:`ShardedRunStore` is a directory
of per-shard JSONL files (``shard-0000.jsonl``, ``shard-0001.jsonl``, ...):
every worker appends *only* to its own shard file and reads all the others,
so no byte is ever written by two processes and no file lock is needed.
Records keep the exact :func:`~repro.analysis.runstore.run_key` content
addressing of the single-file :class:`~repro.analysis.runstore.RunStore` —
``(topology fingerprint, config incl. seed, scheme signature)`` — which is
what makes the whole design safe:

* **claims are advisory, not locks.**  Before executing a task a worker
  appends an idempotent *claim marker* (``{"key": ..., "claim": <shard>}``)
  to its own shard file.  Other workers that see the claim prefer untaken
  work, but a claim never *forbids* execution: results under the same key
  are bit-identical (every task derives all randomness from its config
  seed), so the worst race outcome is one redundant simulation whose record
  merges away;
* **the task queue is the grid itself.**  Every worker derives the same
  (point x try x scheme) task list from the spec and pulls whatever is
  neither recorded nor claimed — workers join, die and resume freely, with
  no partitioning step and no coordinator state;
* **merging is a fold.**  Any subset of shard files merges into one record
  map without re-simulation; conflicting records cannot exist, only
  duplicates (dropped) and failure records (superseded by a success for
  the same key, which is how ``--retry-failed`` heals across shards).

Crash tolerance matches the single-file store per shard: a worker killed
mid-append leaves a torn tail in *its* file only.  On resume the owning
shard truncates back to its last intact line before appending (claims are
intact lines too); readers simply never consume an unterminated tail — a
live writer may still be completing it — and a *final* (merge-time) refresh
skips it with a warning instead of aborting the merge, counting it in
``skipped_lines`` so reports can surface the loss.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from ...faults import maybe_inject
from ..runstore import RunStore

__all__ = [
    "ShardedRunStore",
    "SHARD_GLOB",
    "MANIFEST_NAME",
    "shard_filename",
    "parse_shard_entry",
]

#: Glob matching the per-shard record files inside a store directory.
SHARD_GLOB = "shard-*.jsonl"

#: Fleet manifest file inside the store directory: ``{"shards": N}``,
#: written once so later readers know how many shards were *expected* and
#: can name the missing ones instead of rendering a silently partial report.
MANIFEST_NAME = "fleet.json"


def shard_filename(shard_id: int) -> str:
    """The record file name owned by shard ``shard_id`` (zero-padded)."""
    return f"shard-{shard_id:04d}.jsonl"


def parse_shard_entry(stripped: bytes) -> Optional[Dict[str, Any]]:
    """Parse one shard line into an entry dict, ``None`` when corrupt.

    Valid entries carry a ``key`` plus either a ``record`` (a run result or
    failure record, exactly as the single-file store writes them) or a
    ``claim`` (the claiming shard id).
    """
    try:
        parsed = json.loads(stripped)
    except json.JSONDecodeError:
        return None
    if not isinstance(parsed, dict) or "key" not in parsed:
        return None
    if "record" in parsed or "claim" in parsed:
        return parsed
    return None


class ShardedRunStore(RunStore):
    """A run store sharded across per-worker JSONL files in one directory.

    Drop-in for :class:`~repro.analysis.runstore.RunStore` everywhere the
    engine and artifact layers accept one (``get``/``peek``/``put`` plus
    the hit/miss counters), with the sharding surface on top:
    :meth:`refresh` folds the other shards' new records in, :meth:`claim`
    appends an advisory claim marker, and :meth:`claimed_by_other` is what
    the worker loop consults before picking a task.

    Parameters
    ----------
    root:
        The store directory.  Created (with a fleet manifest) when opened
        for writing; merely read when opened as a merge view.
    shard_id:
        This process's shard number — the one file this instance may append
        to.  ``None`` opens a read-only *merge view* over every shard file
        present (used by ``repro report`` and ``repro merge``), performing
        a final refresh that warns about torn shard tails instead of
        aborting.
    shards:
        Expected fleet size, recorded in the manifest so partial fleets are
        detectable later.  Optional for merge views (the manifest, when
        present, supplies it).
    """

    def __init__(
        self,
        root: Union[str, Path],
        shard_id: Optional[int] = None,
        shards: Optional[int] = None,
    ) -> None:
        if shard_id is not None and shard_id < 0:
            raise ValueError("shard_id must be non-negative")
        if shards is not None and shards < 1:
            raise ValueError("need at least one shard")
        if shard_id is not None and shards is not None and shard_id >= shards:
            raise ValueError(
                f"shard_id {shard_id} out of range for {shards} shard(s)"
            )
        super().__init__(None)  # in-memory base: records + hit/miss counters
        self.root = Path(root)
        #: exposed as the store's location for provenance (run.json).
        self.path = self.root
        self.shard_id = shard_id
        self.declared_shards = shards
        #: key -> shard ids that claimed it (advisory markers seen so far).
        self._claims: Dict[str, Set[int]] = {}
        #: key -> shard file that supplied the current record (merge rule:
        #: later wins within a file, success beats failure across files).
        self._record_source: Dict[str, str] = {}
        #: shard file name -> byte offset consumed so far (terminated lines).
        self._cursors: Dict[str, int] = {}
        #: duplicate result records observed across shards (safe: identical).
        self.duplicate_records = 0
        #: claim markers observed (own and foreign).
        self.claim_markers = 0
        self._own_resync: Optional[int] = None
        if self.shard_id is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._ensure_manifest()
            self._load_own_shard()
            # An idle shard (everything cached or ceded) still leaves its
            # file behind, so missing_shards() means "never started", not
            # "had nothing to write".
            own = self.own_path
            assert own is not None
            own.touch(exist_ok=True)
        self.refresh(final=self.shard_id is None)

    # -------------------------------------------------------------- identity
    @property
    def own_path(self) -> Optional[Path]:
        """The one shard file this instance appends to (``None`` read-only)."""
        if self.shard_id is None:
            return None
        return self.root / shard_filename(self.shard_id)

    @property
    def expected_shards(self) -> Optional[int]:
        """Fleet size: the constructor's ``shards`` or the manifest's."""
        if self.declared_shards is not None:
            return self.declared_shards
        manifest = self.root / MANIFEST_NAME
        if manifest.exists():
            try:
                declared = json.loads(manifest.read_text()).get("shards")
                if isinstance(declared, int) and declared >= 1:
                    return declared
            except (OSError, json.JSONDecodeError):
                return None
        return None

    def shard_paths(self) -> List[Path]:
        """Every shard record file currently present, sorted by shard id."""
        return sorted(self.root.glob(SHARD_GLOB)) if self.root.exists() else []

    def missing_shards(self) -> List[int]:
        """Expected shard ids with no record file on disk (lost shards)."""
        expected = self.expected_shards
        if expected is None:
            return []
        return [
            k
            for k in range(expected)
            if not (self.root / shard_filename(k)).exists()
        ]

    def _ensure_manifest(self) -> None:
        """Write the fleet manifest once (idempotent, atomic rename)."""
        if self.declared_shards is None:
            return
        manifest = self.root / MANIFEST_NAME
        if manifest.exists():
            return
        tmp = manifest.with_suffix(f".tmp-{self.shard_id}")
        tmp.write_text(json.dumps({"shards": self.declared_shards}) + "\n")
        tmp.replace(manifest)

    # --------------------------------------------------------------- loading
    def _apply(self, entry: Dict[str, Any], source: str) -> None:
        """Fold one parsed shard entry into the merged in-memory view."""
        key = entry["key"]
        if "claim" in entry:
            self.claim_markers += 1
            claimant = entry["claim"]
            if isinstance(claimant, int):
                self._claims.setdefault(key, set()).add(claimant)
            return
        record = entry["record"]
        existing = self._records.get(key)
        if existing is None:
            self._records[key] = record
            self._record_source[key] = source
            return
        self.duplicate_records += 1
        if self._record_source.get(key) == source:
            # Later wins within one shard file — exactly the single-file
            # store's semantics (how --retry-failed heals a failure).
            self._records[key] = record
        elif existing.get("failed") and not record.get("failed"):
            # Across shards the only meaningful conflict is failure vs
            # success (a peer re-ran a failed task): the success wins.
            self._records[key] = record
            self._record_source[key] = source

    def _load_own_shard(self) -> None:
        """Load this shard's own file, arming truncate-on-append resync.

        Identical contract to the single-file store's loader, with claim
        markers counting as intact lines: a torn or corrupt tail is skipped
        with a warning and the next append truncates back to the last
        intact line, so this shard's crashes can never corrupt its file.
        """
        path = self.own_path
        assert path is not None
        if not path.exists():
            self._cursors[path.name] = 0
            return
        data = path.read_bytes()
        clean_end = 0
        offset = 0
        for raw in data.splitlines(keepends=True):
            line_end = offset + len(raw)
            terminated = raw.endswith(b"\n")
            stripped = raw.strip()
            if not stripped:
                if terminated:
                    clean_end = line_end
                offset = line_end
                continue
            entry = parse_shard_entry(stripped)
            if entry is not None and terminated:
                self._apply(entry, source=path.name)
                clean_end = line_end
            else:
                self.skipped_lines += 1
            offset = line_end
        self._cursors[path.name] = clean_end
        if clean_end < len(data):
            self._own_resync = clean_end
            print(
                f"sharded run store {path}: skipped "
                f"{len(data) - clean_end} torn/corrupt trailing byte(s); "
                "the next append truncates back to the last intact line",
                file=sys.stderr,
            )

    def refresh(self, final: bool = False) -> int:
        """Fold other shards' newly appended lines into the merged view.

        Incremental and cheap: each shard file is read only past the byte
        offset already consumed.  An *unterminated* trailing line is left
        for the next refresh — a live writer may still be completing it —
        unless ``final`` is true (a merge, not a poll), in which case the
        torn tail is skipped with a warning naming the shard file and
        counted in ``skipped_lines`` instead of aborting the merge.
        Returns the number of new result records folded in.
        """
        own = self.own_path
        folded = 0
        for path in self.shard_paths():
            if own is not None and path.name == own.name:
                continue  # in-memory state is authoritative for own shard
            try:
                size = path.stat().st_size
            except OSError:
                continue
            offset = self._cursors.get(path.name, 0)
            if size <= offset:
                continue
            with path.open("rb") as handle:
                handle.seek(offset)
                data = handle.read()
            consumed = 0
            for raw in data.splitlines(keepends=True):
                if not raw.endswith(b"\n"):
                    break  # torn or in-flight tail: do not consume
                stripped = raw.strip()
                if stripped:
                    entry = parse_shard_entry(stripped)
                    if entry is None:
                        self.skipped_lines += 1
                    else:
                        if "record" in entry and entry["key"] not in self._records:
                            folded += 1
                        self._apply(entry, source=path.name)
                consumed += len(raw)
            self._cursors[path.name] = offset + consumed
            if final and offset + consumed < size:
                self.skipped_lines += 1
                print(
                    f"sharded run store {path}: skipped torn tail "
                    f"({size - offset - consumed} byte(s)) — shard writer "
                    "crashed mid-append; merge continues without it",
                    file=sys.stderr,
                )
                self._cursors[path.name] = size
        return folded

    # ------------------------------------------------------------ the queue
    def claimants(self, key: str) -> Set[int]:
        """Shard ids that have appended a claim marker for ``key``."""
        return set(self._claims.get(key, ()))

    def claimed_by_other(self, key: str) -> bool:
        """True when only *other* shards have claimed ``key``.

        A key this shard has claimed itself is never "other": resume must
        treat our own stale claims as ours to finish.
        """
        claimants = self._claims.get(key)
        if not claimants:
            return False
        return self.shard_id not in claimants

    def claim(self, key: str) -> None:
        """Append an advisory claim marker for ``key`` to our shard file.

        Idempotent: re-claiming a key this shard already claimed appends
        nothing.  Claims are hints for load balancing, not locks — see the
        module docstring for why double execution is safe.
        """
        if self.shard_id is None:
            raise RuntimeError("merge views are read-only; open with shard_id")
        if self.shard_id in self._claims.get(key, ()):
            return
        self._claims.setdefault(key, set()).add(self.shard_id)
        self._append({"key": key, "claim": self.shard_id})

    # ----------------------------------------------------------------- write
    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Insert a record and append it to this worker's own shard file.

        Single flushed write of record + newline, same crash contract as
        the single-file store; the fault-injection ``store`` site fires
        here too, so chaos sweeps exercise the sharded path unchanged.
        """
        maybe_inject("store")
        if self.shard_id is None:
            raise RuntimeError("merge views are read-only; open with shard_id")
        self._records[key] = record
        self._record_source[key] = shard_filename(self.shard_id)
        self._append({"key": key, "record": record})

    def _append(self, entry: Dict[str, Any]) -> None:
        """Append one JSONL entry to our shard file (resync-then-append)."""
        path = self.own_path
        assert path is not None
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry, default=repr) + "\n"
        if self._own_resync is not None:
            with path.open("r+") as handle:
                handle.truncate(self._own_resync)
            self._cursors[path.name] = self._own_resync
            self._own_resync = None
        with path.open("a") as handle:
            handle.write(line)
            handle.flush()
        self._cursors[path.name] = self._cursors.get(path.name, 0) + len(
            line.encode()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        who = "merge-view" if self.shard_id is None else f"shard {self.shard_id}"
        return (
            f"ShardedRunStore({self.root}, {who}, records={len(self)}, "
            f"claims={len(self._claims)})"
        )
