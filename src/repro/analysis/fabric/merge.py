"""Streaming merge of shard stores into one record map / plain store file.

``repro merge`` (and the coordinator half of ``repro sweep --shards N``)
fold any subset of shard stores — whole store directories or individual
``shard-*.jsonl`` files, sharded and single-file stores alike — into one
record mapping without re-simulating anything.  The fold is the sharded
store's own conflict logic:

* duplicate result records for one key collapse (they are bit-identical by
  construction — same key means same topology fingerprint, config incl.
  seed, and scheme signature);
* a success record supersedes a failure record for the same key (how
  ``--retry-failed`` heals across shards);
* claim markers are counted and dropped — they are queue state, not data;
* torn shard tails and corrupt lines are skipped with a stderr warning
  naming the file, never aborting the merge, and surface in
  :class:`MergeStats` (and from there in ``EngineRunStats``).

:func:`write_merged` emits the merged map as a plain single-file
:class:`~repro.analysis.runstore.RunStore` JSONL, so every existing
consumer (``repro report``, the bench wrappers, post-processing scripts)
reads fleet output with zero changes.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Tuple, Union

from .store import SHARD_GLOB, parse_shard_entry

__all__ = ["MergeStats", "expand_sources", "merge_stores", "write_merged"]


@dataclass
class MergeStats:
    """Accounting for one :func:`merge_stores` fold."""

    #: shard files actually read, in fold order.
    sources: List[str] = field(default_factory=list)
    #: distinct keys with a record in the merged view.
    records: int = 0
    #: result records dropped as duplicates (bit-identical re-executions).
    duplicates: int = 0
    #: claim markers dropped (queue state, not data).
    claim_markers: int = 0
    #: torn/corrupt lines skipped across all sources.
    skipped: int = 0

    def summary(self) -> str:
        """One status line for the CLI, e.g. ``merged 3 store(s): ...``."""
        line = (
            f"merged {len(self.sources)} store(s): {self.records} record(s), "
            f"{self.duplicates} duplicate(s), {self.claim_markers} claim "
            f"marker(s)"
        )
        if self.skipped:
            line += f", {self.skipped} skipped line(s)"
        return line


def expand_sources(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Resolve merge inputs to concrete JSONL files.

    A directory expands to its sorted ``shard-*.jsonl`` members (an empty
    or missing shard directory is an error — a lost fleet should fail
    loudly, not merge to nothing); a file path is taken as-is, so plain
    single-file stores merge right next to shard files.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            members = sorted(path.glob(SHARD_GLOB))
            if not members:
                raise FileNotFoundError(
                    f"store directory {path} contains no {SHARD_GLOB} files"
                )
            files.extend(members)
        elif path.exists():
            files.append(path)
        else:
            raise FileNotFoundError(f"no store at {path}")
    return files


def merge_stores(
    paths: Iterable[Union[str, Path]], warn: bool = True
) -> Tuple[Dict[str, Dict[str, Any]], MergeStats]:
    """Fold shard stores into ``(records, stats)`` without re-simulation.

    Sources are folded in :func:`expand_sources` order; within one file
    later records win (the single-file store's append semantics), across
    files a success supersedes a failure and identical successes collapse.
    Torn tails and corrupt lines are skipped — with a stderr warning naming
    the file when ``warn`` — and counted in ``stats.skipped``.
    """
    records: Dict[str, Dict[str, Any]] = {}
    source_of: Dict[str, str] = {}
    stats = MergeStats()
    for path in expand_sources(paths):
        stats.sources.append(str(path))
        data = path.read_bytes()
        file_skipped = 0
        for raw in data.splitlines(keepends=True):
            stripped = raw.strip()
            if not stripped:
                continue
            entry = parse_shard_entry(stripped)
            if entry is None or not raw.endswith(b"\n"):
                file_skipped += 1
                continue
            if "claim" in entry:
                stats.claim_markers += 1
                continue
            key, record = entry["key"], entry["record"]
            existing = records.get(key)
            if existing is None:
                records[key] = record
                source_of[key] = str(path)
                continue
            stats.duplicates += 1
            if source_of[key] == str(path):
                records[key] = record  # later wins within one file
            elif existing.get("failed") and not record.get("failed"):
                records[key] = record  # success heals a foreign failure
                source_of[key] = str(path)
        if file_skipped:
            stats.skipped += file_skipped
            if warn:
                print(
                    f"merge: skipped {file_skipped} torn/corrupt line(s) in "
                    f"{path}; remaining records were merged",
                    file=sys.stderr,
                )
    stats.records = len(records)
    return records, stats


def write_merged(
    records: Dict[str, Dict[str, Any]], out: Union[str, Path]
) -> Path:
    """Write a merged record map as a plain single-file run store.

    Keys are emitted in sorted order (the map is content-addressed, so any
    order is valid — sorting makes equal fleets produce byte-identical
    files).  Written to a temp sibling and atomically renamed, so a merge
    can never leave a half-written store behind.
    """
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    tmp = out.with_name(out.name + ".tmp")
    with tmp.open("w") as handle:
        for key in sorted(records):
            handle.write(
                json.dumps({"key": key, "record": records[key]}, default=repr)
                + "\n"
            )
    tmp.replace(out)
    return out
