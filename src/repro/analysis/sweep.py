"""Experiment sweeps: the machinery behind Figures 3 and 4.

The paper's evaluation varies one workload parameter at a time (coflow width
in Figure 3, number of coflows in Figure 4), generates 10 random instances
per point, runs every scheme on every instance through the flow-level
simulator, and reports per-point averages plus ratios to the Baseline scheme.
:class:`ExperimentSweep` implements exactly that loop; the benchmark modules
only declare the parameter grid and print the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..baselines.base import Scheme
from ..core.flows import CoflowInstance
from ..core.network import Network
from ..sim import FlowLevelSimulator, SchemeComparison, SimulationResult
from ..workloads.generator import CoflowGenerator, WorkloadConfig

__all__ = ["SweepPoint", "SweepResult", "ExperimentSweep"]


@dataclass
class SweepPoint:
    """Aggregated results of all schemes at one parameter value."""

    label: str
    #: scheme name -> list of objective values (one per random try)
    values: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, scheme: str, value: float) -> None:
        self.values.setdefault(scheme, []).append(value)

    def mean(self, scheme: str) -> float:
        return float(np.mean(self.values[scheme]))

    def std(self, scheme: str) -> float:
        return float(np.std(self.values[scheme]))

    def ratio_to(self, scheme: str, reference: str) -> float:
        """Mean of per-try ratios (scheme / reference), the paper's lower panel."""
        ratios = [
            v / r for v, r in zip(self.values[scheme], self.values[reference]) if r > 0
        ]
        return float(np.mean(ratios)) if ratios else float("nan")

    def improvement_percent(self, scheme: str, reference: str) -> float:
        """Mean percentage improvement of ``scheme`` over ``reference``."""
        gains = [
            (r / v - 1.0) * 100.0
            for v, r in zip(self.values[scheme], self.values[reference])
            if v > 0
        ]
        return float(np.mean(gains)) if gains else float("nan")


@dataclass
class SweepResult:
    """All points of one sweep (one figure)."""

    metric: str
    points: List[SweepPoint] = field(default_factory=list)

    def schemes(self) -> List[str]:
        names: List[str] = []
        for point in self.points:
            for name in point.values:
                if name not in names:
                    names.append(name)
        return names

    def series(self, scheme: str) -> List[float]:
        """Mean metric per sweep point for one scheme (a figure line)."""
        return [point.mean(scheme) for point in self.points]

    def ratio_series(self, scheme: str, reference: str) -> List[float]:
        return [point.ratio_to(scheme, reference) for point in self.points]

    def average_improvement(self, scheme: str, reference: str) -> float:
        """Improvement of ``scheme`` over ``reference`` averaged over all points."""
        values = [point.improvement_percent(scheme, reference) for point in self.points]
        return float(np.mean(values)) if values else float("nan")


class ExperimentSweep:
    """Run a set of schemes over a one-dimensional workload sweep."""

    def __init__(
        self,
        network: Network,
        schemes: Sequence[Scheme],
        tries: int = 10,
        metric: str = "weighted_completion_time",
    ) -> None:
        if not schemes:
            raise ValueError("need at least one scheme")
        if tries < 1:
            raise ValueError("need at least one try per point")
        self.network = network
        self.schemes = list(schemes)
        self.tries = tries
        self.metric = metric
        self.simulator = FlowLevelSimulator(network)

    # ----------------------------------------------------------------- pieces
    def run_instance(self, instance: CoflowInstance) -> SchemeComparison:
        """Run every scheme on one instance."""
        comparison = SchemeComparison(metric=self.metric)
        for scheme in self.schemes:
            plan = scheme.plan(instance, self.network)
            comparison.add(self.simulator.run(instance, plan))
        return comparison

    def run_point(
        self, label: str, configs: Iterable[WorkloadConfig]
    ) -> SweepPoint:
        """Run every scheme on every instance generated from ``configs``."""
        point = SweepPoint(label=label)
        for config in configs:
            instance = CoflowGenerator(self.network, config).instance()
            comparison = self.run_instance(instance)
            for name in comparison.schemes():
                point.add(name, comparison.value(name))
        return point

    # ------------------------------------------------------------------- runs
    def run(
        self,
        base_config: WorkloadConfig,
        parameter: str,
        values: Sequence[int],
        label_format: str = "{value}",
    ) -> SweepResult:
        """Sweep ``parameter`` of the workload config over ``values``.

        ``parameter`` is either ``"coflow_width"`` (Figure 3) or
        ``"num_coflows"`` (Figure 4); each point is averaged over
        ``self.tries`` random instances with distinct seeds.
        """
        if parameter not in ("coflow_width", "num_coflows"):
            raise ValueError(f"unknown sweep parameter {parameter!r}")
        result = SweepResult(metric=self.metric)
        for value in values:
            if parameter == "coflow_width":
                config = base_config.with_width(int(value))
            else:
                config = base_config.with_num_coflows(int(value))
            configs = [config.with_seed(config.seed + k) for k in range(self.tries)]
            result.points.append(
                self.run_point(label_format.format(value=value), configs)
            )
        return result
