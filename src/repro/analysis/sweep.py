"""Sweep result containers: the data behind Figures 3 and 4.

The paper's evaluation varies one workload parameter at a time (coflow width
in Figure 3, number of coflows in Figure 4), generates 10 random instances
per point, runs every scheme on every instance through the flow-level
simulator, and reports per-point averages plus ratios to the Baseline scheme.
:class:`SweepPoint` and :class:`SweepResult` hold those aggregates; the loop
that fills them lives in :class:`repro.analysis.engine.ExperimentEngine`
(serial or multi-process, backed by a resumable run store), and the benchmark
modules only declare the parameter grid and print the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["SweepPoint", "SweepResult"]


@dataclass
class SweepPoint:
    """Aggregated results of all schemes at one parameter value."""

    label: str
    #: scheme name -> list of objective values (one per random try)
    values: Dict[str, List[float]] = field(default_factory=dict)
    #: scheme name -> list of error type names, one per *failed* try.  A
    #: failed try contributes no value (means are over the successful tries;
    #: a scheme whose tries all failed renders as NaN).
    failures: Dict[str, List[str]] = field(default_factory=dict)

    def add(self, scheme: str, value: float) -> None:
        """Record one random try's objective value for ``scheme``."""
        self.values.setdefault(scheme, []).append(value)

    def add_failure(self, scheme: str, error: str) -> None:
        """Record one failed try for ``scheme`` (``error`` = exception type)."""
        self.failures.setdefault(scheme, []).append(error)

    def failure_count(self, scheme: str) -> int:
        """Number of failed tries recorded for ``scheme`` at this point."""
        return len(self.failures.get(scheme, []))

    def mean(self, scheme: str) -> float:
        """Mean objective of ``scheme`` over the point's random tries."""
        return float(np.mean(self.values[scheme]))

    def std(self, scheme: str) -> float:
        """Standard deviation of ``scheme``'s objective over the tries."""
        return float(np.std(self.values[scheme]))

    def ratio_to(self, scheme: str, reference: str) -> float:
        """Mean of per-try ratios (scheme / reference), the paper's lower panel."""
        ratios = [
            v / r for v, r in zip(self.values[scheme], self.values[reference]) if r > 0
        ]
        return float(np.mean(ratios)) if ratios else float("nan")

    def improvement_percent(self, scheme: str, reference: str) -> float:
        """Mean percentage improvement of ``scheme`` over ``reference``."""
        gains = [
            (r / v - 1.0) * 100.0
            for v, r in zip(self.values[scheme], self.values[reference])
            if v > 0
        ]
        return float(np.mean(gains)) if gains else float("nan")


@dataclass
class SweepResult:
    """All points of one sweep (one figure)."""

    metric: str
    points: List[SweepPoint] = field(default_factory=list)

    def schemes(self) -> List[str]:
        """All scheme names appearing in the sweep, first-seen order."""
        names: List[str] = []
        for point in self.points:
            for name in point.values:
                if name not in names:
                    names.append(name)
        return names

    def series(self, scheme: str) -> List[float]:
        """Mean metric per sweep point for one scheme (a figure line)."""
        return [point.mean(scheme) for point in self.points]

    def ratio_series(self, scheme: str, reference: str) -> List[float]:
        """Per-point ratio of ``scheme`` to ``reference`` (a lower-panel line)."""
        return [point.ratio_to(scheme, reference) for point in self.points]

    def average_improvement(self, scheme: str, reference: str) -> float:
        """Improvement of ``scheme`` over ``reference`` averaged over all points."""
        values = [point.improvement_percent(scheme, reference) for point in self.points]
        return float(np.mean(values)) if values else float("nan")

    # --------------------------------------------------------------- failures
    def has_failures(self) -> bool:
        """Whether any (point, scheme) cell recorded a failed try."""
        return any(point.failures for point in self.points)

    def total_failures(self) -> int:
        """Total failed tries across every point and scheme."""
        return sum(
            len(errors)
            for point in self.points
            for errors in point.failures.values()
        )
