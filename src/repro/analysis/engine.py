"""Parallel, resumable, fault-tolerant experiment engine.

The paper's evaluation (Section 4, Figures 3-4) is a sweep: several random
instances per parameter value, every scheme on every instance through the
flow-level simulator.  The engine decomposes such a sweep into independent
*(sweep point x random try x scheme)* tasks and executes them either serially
in-process or fanned out over a :class:`concurrent.futures.ProcessPoolExecutor`
(one task = generate the instance from its seed, compute the scheme's plan —
LP solve included — and simulate it).

Results stream into a :class:`~repro.analysis.runstore.RunStore` keyed by
``(topology fingerprint, workload config incl. seed, scheme signature)``,
where the scheme signature is the canonical stage-spec serialization of
:meth:`~repro.baselines.pipeline.PipelineScheme.signature` — stable across
processes and shared by every spelling of the same composition:

* an interrupted sweep resumes — already-persisted tasks are never re-run;
* repeated benchmark invocations with a warm store skip all LP/simulation
  work and only re-aggregate;
* parallel and serial execution produce bit-identical results, because every
  task derives its randomness from the config seed alone (covered by
  ``tests/analysis/test_engine.py``).

Per-task failure is data, not a process-fatal event:

* **transient** failures (timeouts — real wall-clock overruns via
  :func:`repro.faults.deadline` or injected — and anything flagged
  ``transient``) are retried up to ``max_retries`` times with capped
  exponential backoff and deterministic per-task jitter;
* a dead worker (``BrokenProcessPool``) respawns the pool — or degrades to
  serial execution after ``max_pool_restarts`` — and resubmits only the
  unfinished tasks;
* **permanent** failures (infeasible LPs, contract violations, exhausted
  retries) are persisted as structured *failure records* under the task's
  store key (``{"failed": true, "error", "message", "attempts",
  "elapsed", ...}``), so resume skips known failures and ``retry_failed``
  re-runs them;
* failed cells aggregate as failures on the :class:`SweepResult` (NaN in
  the tables) instead of aborting the sweep.

Chaos testing threads through the same machinery: pass a
:class:`~repro.faults.FaultConfig` (CLI: ``--inject-faults``) and the
seeded injector fires deterministic faults inside the LP solve, the
simulator kernel and the store appends.

:class:`ExperimentSweep` remains as the serial-default alias so existing
callers keep working.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .. import faults
from .. import faults as _faults_module  # the engine's ``faults=`` parameter
                                         # shadows the module name in __init__
from ..baselines.base import Scheme
from ..core.flows import CoflowInstance
from ..core.network import Network
from ..lp import solver as lp_solver
from ..sim import FlowLevelSimulator, SchemeComparison
from ..workloads.generator import CoflowGenerator, WorkloadConfig
from ..workloads.serialization import config_to_dict
from .runstore import RunStore, run_key
from .sweep import SweepPoint, SweepResult

__all__ = ["ExperimentEngine", "ExperimentSweep", "ExperimentTask", "EngineRunStats"]

#: One sweep point: display label plus the workload configs (one per random
#: try, each carrying its own seed) evaluated at that point.
PointSpec = Tuple[str, Sequence[WorkloadConfig]]


@dataclass(frozen=True)
class ExperimentTask:
    """One unit of work: run one scheme on one generated instance."""

    point_index: int
    label: str
    trial: int
    scheme_index: int
    scheme_name: str
    config: WorkloadConfig
    key: str


@dataclass
class EngineRunStats:
    """Accounting for the most recent :meth:`ExperimentEngine.run_points`."""

    total_tasks: int = 0
    cached: int = 0
    executed: int = 0
    workers: int = 1
    seconds: float = 0.0
    #: tasks whose *final* stored record is a failure record (counted over
    #: the whole grid at aggregation, cached failures included).
    failed: int = 0
    #: transient-failure retries performed during this run.
    retried: int = 0
    #: worker pools respawned after a ``BrokenProcessPool``.
    pool_restarts: int = 0
    #: corrupt or torn store lines skipped while loading/merging the run
    #: store(s) backing this run (sharded merges count every shard's tail).
    skipped_records: int = 0

    @property
    def all_cached(self) -> bool:
        """True when a warm run store satisfied every task (no simulation)."""
        return self.total_tasks > 0 and self.executed == 0

    @property
    def coverage(self) -> float:
        """Fraction of grid tasks with a successful record (1.0 when empty)."""
        if self.total_tasks <= 0:
            return 1.0
        return (self.total_tasks - self.failed) / self.total_tasks


# ----------------------------------------------------------------- task body

def _execute_task(
    network: Network,
    simulator: FlowLevelSimulator,
    scheme: Scheme,
    task: ExperimentTask,
    topology_fingerprint: str,
) -> Dict[str, Any]:
    """Generate the instance, plan, simulate; return the run-store record.

    Dispatches through :meth:`~repro.baselines.base.Scheme.simulate`, so
    online schemes run their arrival-driven re-planning loop while static
    schemes plan once and execute on the array kernel.
    """
    instance = CoflowGenerator(network, task.config).instance()
    result = scheme.simulate(instance, network, simulator)
    return {
        "scheme": scheme.name,
        "signature": scheme.signature(),
        "topology": topology_fingerprint,
        "config": config_to_dict(task.config),
        "metrics": result.metrics(),
        "events": result.events,
        "instance": instance.name,
    }


def _failure_record(
    task: ExperimentTask,
    error: BaseException,
    attempts: int,
    elapsed: float,
    topology_fingerprint: str,
    signature: str,
) -> Dict[str, Any]:
    """The structured record persisted for a permanently failed task.

    Stored under the same key as a success record would be, carrying the
    full task identity so the failure is diagnosable from the store alone
    and resume can skip it (or ``retry_failed`` can re-run it).
    """
    record: Dict[str, Any] = {
        "failed": True,
        "error": type(error).__name__,
        "message": str(error),
        "attempts": attempts,
        "elapsed": round(elapsed, 6),
        "scheme": task.scheme_name,
        "signature": signature,
        "topology": topology_fingerprint,
        "config": config_to_dict(task.config),
        "label": task.label,
        "trial": task.trial,
    }
    detail = getattr(error, "detail", None)
    if callable(detail):
        solver_detail = detail()
        if solver_detail:
            record["detail"] = solver_detail
    return record


#: Per-worker state installed by the pool initializer (network and schemes
#: are pickled once per worker instead of once per task).
_WORKER_STATE: Dict[str, Any] = {}


def _worker_init(
    network: Network,
    schemes: Sequence[Scheme],
    fingerprint: str,
    fault_config: Optional[faults.FaultConfig] = None,
    task_timeout: Optional[float] = None,
    retry_backoff: float = 0.0,
    lp_time_limit: Optional[float] = None,
) -> None:
    _WORKER_STATE["network"] = network
    _WORKER_STATE["schemes"] = list(schemes)
    _WORKER_STATE["simulator"] = FlowLevelSimulator(network)
    _WORKER_STATE["fingerprint"] = fingerprint
    _WORKER_STATE["task_timeout"] = task_timeout
    _WORKER_STATE["retry_backoff"] = retry_backoff
    faults.mark_worker_process()
    faults.install(
        faults.FaultInjector(fault_config) if fault_config is not None else None
    )
    lp_solver.DEFAULT_TIME_LIMIT = lp_time_limit


def _worker_run(task: ExperimentTask, attempt: int = 0) -> Tuple[str, Dict[str, Any]]:
    delay = faults.backoff_delay(task.key, attempt, _WORKER_STATE["retry_backoff"])
    if delay:
        time.sleep(delay)
    with faults.task_scope(task.key, attempt):
        with faults.deadline(_WORKER_STATE["task_timeout"]):
            record = _execute_task(
                _WORKER_STATE["network"],
                _WORKER_STATE["simulator"],
                _WORKER_STATE["schemes"][task.scheme_index],
                task,
                _WORKER_STATE["fingerprint"],
            )
    return task.key, record


# -------------------------------------------------------------------- engine

class ExperimentEngine:
    """Run schemes over workload sweeps, in parallel, resumably and
    fault-tolerantly.

    Parameters
    ----------
    network:
        The evaluation topology.  ``None`` requires ``base_config.topology``
        to carry a spec string (see :meth:`for_config`).
    schemes:
        The schemes to compare (each task pickles only its index, so schemes
        must be picklable for parallel runs — all built-in schemes are).
    tries:
        Random instances averaged per sweep point (the paper uses 10).
    metric:
        Attribute of :class:`~repro.sim.simulator.SimulationResult` reported
        by the resulting :class:`~repro.analysis.sweep.SweepResult`.
    workers:
        ``None``, 0 or 1 run serially in-process; ``>= 2`` fans tasks out
        over that many worker processes.
    store:
        A :class:`~repro.analysis.runstore.RunStore`, a path to a JSONL store
        file, or ``None`` for a process-local in-memory store.
    max_retries:
        Transient failures are retried up to this many times per task
        before a failure record is written (default 2).
    task_timeout:
        Per-task wall-clock budget in seconds (``None`` = unlimited);
        overruns raise :class:`~repro.faults.TaskTimeoutError` and count as
        transient failures.
    retry_backoff:
        Base of the capped exponential backoff slept before each retry
        (deterministic per-task jitter; 0 disables sleeping).
    faults:
        A :class:`~repro.faults.FaultConfig` (or spec string, e.g.
        ``"rate=0.1,seed=7"``) enabling deterministic fault injection in
        this engine's tasks; ``None`` (default) injects nothing.
    retry_failed:
        Re-execute tasks whose stored record is a failure record instead of
        skipping them on resume.
    max_pool_restarts:
        Worker-pool respawns tolerated after ``BrokenProcessPool`` before
        degrading to serial execution for the remaining tasks.
    lp_time_limit:
        Optional wall-clock budget (seconds) handed to HiGHS for every LP
        solved by this engine's tasks (serial and worker processes alike).
    """

    def __init__(
        self,
        network: Network,
        schemes: Sequence[Scheme],
        tries: int = 10,
        metric: str = "weighted_completion_time",
        workers: Optional[int] = None,
        store: Union[RunStore, str, None] = None,
        max_retries: int = 2,
        task_timeout: Optional[float] = None,
        retry_backoff: float = 0.05,
        faults: "Union[faults.FaultConfig, str, None]" = None,
        retry_failed: bool = False,
        max_pool_restarts: int = 3,
        lp_time_limit: Optional[float] = None,
    ) -> None:
        if not schemes:
            raise ValueError("need at least one scheme")
        if tries < 1:
            raise ValueError("need at least one try per point")
        if workers is not None and workers < 0:
            raise ValueError("workers must be non-negative")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.network = network
        self.schemes = list(schemes)
        self.tries = tries
        self.metric = metric
        self.workers = workers
        self.simulator = FlowLevelSimulator(network)
        self.store = store if isinstance(store, RunStore) else RunStore(store)
        self.topology_fingerprint = network.fingerprint()
        self.max_retries = max_retries
        self.task_timeout = task_timeout
        self.retry_backoff = retry_backoff
        self.retry_failed = retry_failed
        self.max_pool_restarts = max_pool_restarts
        self.lp_time_limit = lp_time_limit
        if isinstance(faults, str):
            faults = _faults_module.FaultConfig.from_spec(faults)
        self.fault_config: Optional[_faults_module.FaultConfig] = faults
        self.last_run_stats = EngineRunStats()

    @classmethod
    def for_config(
        cls, config: WorkloadConfig, schemes: Sequence[Scheme], **kwargs: Any
    ) -> "ExperimentEngine":
        """Build an engine on the topology named by ``config.topology``."""
        return cls(config.build_network(), schemes, **kwargs)

    # ----------------------------------------------------------------- pieces
    def run_instance(self, instance: CoflowInstance) -> SchemeComparison:
        """Run every scheme on one concrete instance (serial, uncached)."""
        comparison = SchemeComparison(metric=self.metric)
        for scheme in self.schemes:
            comparison.add(scheme.simulate(instance, self.network, self.simulator))
        return comparison

    def tasks_for(self, points: Sequence[PointSpec]) -> List[ExperimentTask]:
        """Expand point specs into the flat (point x try x scheme) task list."""
        tasks: List[ExperimentTask] = []
        for point_index, (label, configs) in enumerate(points):
            for trial, config in enumerate(configs):
                for scheme_index, scheme in enumerate(self.schemes):
                    tasks.append(
                        ExperimentTask(
                            point_index=point_index,
                            label=label,
                            trial=trial,
                            scheme_index=scheme_index,
                            scheme_name=scheme.name,
                            config=config,
                            key=run_key(
                                self.topology_fingerprint, config, scheme.signature()
                            ),
                        )
                    )
        return tasks

    # ------------------------------------------------------------------- runs
    def run_points(self, points: Sequence[PointSpec]) -> SweepResult:
        """Execute all tasks for ``points`` and aggregate a sweep result.

        Tasks whose key is already in the run store are served from it
        (failure records included, unless ``retry_failed``); the rest run
        serially or in the worker pool and stream into the store as they
        complete (so interruption loses at most the in-flight tasks).
        Failures never abort the sweep: transient ones are retried,
        permanent ones become failure records and NaN cells.
        """
        started = time.perf_counter()
        tasks = self.tasks_for(points)
        pending: List[ExperimentTask] = []
        for task in tasks:
            record = self.store.get(task.key)
            if record is None or (self.retry_failed and record.get("failed")):
                pending.append(task)
        cached = len(tasks) - len(pending)

        self.last_run_stats = EngineRunStats(
            total_tasks=len(tasks),
            cached=cached,
            executed=len(pending),
            workers=self.workers or 1,
        )
        if pending:
            self.execute_pending(pending)

        result = SweepResult(metric=self.metric)
        result.points = [SweepPoint(label=label) for label, _ in points]
        for task in tasks:
            record = self.store.peek(task.key)
            if record is None:
                raise RuntimeError(
                    f"run store lost task: point {task.label!r}, trial "
                    f"{task.trial}, scheme {task.scheme_name!r} (key {task.key})"
                )
            if record.get("failed"):
                self.last_run_stats.failed += 1
                result.points[task.point_index].add_failure(
                    task.scheme_name, str(record.get("error", "unknown"))
                )
            else:
                result.points[task.point_index].add(
                    task.scheme_name, float(record["metrics"][self.metric])
                )

        self.last_run_stats.seconds = time.perf_counter() - started
        return result

    # ----------------------------------------------------------- execution
    def execute_pending(self, pending: Sequence[ExperimentTask]) -> None:
        """Execute ``pending`` tasks through the hardened per-task path.

        This is the execution half of :meth:`run_points` — fault injector
        installed, LP time limit applied, serial-or-pool dispatch with
        retries, deadlines and failure records — without the cache lookup
        or aggregation around it.  The sweep fabric's shard workers call it
        directly on the chunks they claim, so distributed execution
        composes with every robustness guarantee of PR 6 unchanged.
        Results stream into ``self.store`` as they complete.
        """
        if not pending:
            return
        injector = (
            _faults_module.FaultInjector(self.fault_config)
            if self.fault_config is not None
            else None
        )
        previous_injector = _faults_module.active_injector()
        _faults_module.install(injector)
        previous_limit = lp_solver.DEFAULT_TIME_LIMIT
        if self.lp_time_limit is not None:
            lp_solver.DEFAULT_TIME_LIMIT = self.lp_time_limit
        try:
            if (self.workers or 1) >= 2:
                self._run_pool(pending, self.workers)
            else:
                self._run_serial(pending)
        finally:
            _faults_module.install(previous_injector)
            lp_solver.DEFAULT_TIME_LIMIT = previous_limit

    def _store_put(self, task: ExperimentTask, record: Dict[str, Any]) -> None:
        """Persist a record, retrying transient (injected) append failures."""
        for attempt in range(self.max_retries + 1):
            try:
                with _faults_module.task_scope(task.key, attempt):
                    self.store.put(task.key, record)
                return
            except Exception as error:
                if _faults_module.is_transient(error) and attempt < self.max_retries:
                    self.last_run_stats.retried += 1
                    continue
                raise

    def _attempt_serial(self, task: ExperimentTask, attempt: int) -> Dict[str, Any]:
        delay = _faults_module.backoff_delay(task.key, attempt, self.retry_backoff)
        if delay:
            time.sleep(delay)
        with _faults_module.task_scope(task.key, attempt):
            with _faults_module.deadline(self.task_timeout):
                return _execute_task(
                    self.network,
                    self.simulator,
                    self.schemes[task.scheme_index],
                    task,
                    self.topology_fingerprint,
                )

    def _run_serial(
        self,
        pending: Sequence[ExperimentTask],
        attempts: Optional[Dict[str, int]] = None,
    ) -> None:
        """In-process execution with per-task retry (also the degraded path
        the pool falls back to, inheriting the tasks' attempt counters)."""
        attempts = attempts if attempts is not None else {}
        for task in pending:
            attempt = attempts.get(task.key, 0)
            task_started = time.perf_counter()
            while True:
                try:
                    record = self._attempt_serial(task, attempt)
                    break
                except Exception as error:
                    if (
                        _faults_module.is_transient(error)
                        and attempt < self.max_retries
                    ):
                        attempt += 1
                        self.last_run_stats.retried += 1
                        continue
                    record = _failure_record(
                        task,
                        error,
                        attempt + 1,
                        time.perf_counter() - task_started,
                        self.topology_fingerprint,
                        self.schemes[task.scheme_index].signature(),
                    )
                    break
            self._store_put(task, record)

    def _run_pool(self, pending: Sequence[ExperimentTask], workers: int) -> None:
        """Pool execution with retry-by-resubmission and broken-pool recovery.

        A dead worker breaks the whole :class:`ProcessPoolExecutor`; the
        engine respawns it (``max_pool_restarts`` times) and resubmits only
        the tasks without a stored record, bumping their attempt counters so
        first-attempt-only injected faults cannot wedge the sweep.  Past the
        restart budget it degrades to serial execution for the remainder.
        """
        attempts: Dict[str, int] = {task.key: 0 for task in pending}
        first_submit: Dict[str, float] = {}
        unfinished: Dict[str, ExperimentTask] = {task.key: task for task in pending}
        restarts = 0
        while unfinished:
            try:
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_worker_init,
                    initargs=(
                        self.network,
                        self.schemes,
                        self.topology_fingerprint,
                        self.fault_config,
                        self.task_timeout,
                        self.retry_backoff,
                        self.lp_time_limit,
                    ),
                ) as pool:
                    futures = {}
                    for task in list(unfinished.values()):
                        first_submit.setdefault(task.key, time.perf_counter())
                        futures[pool.submit(_worker_run, task, attempts[task.key])] = task
                    while futures:
                        done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                        for future in done:
                            task = futures.pop(future)
                            try:
                                _, record = future.result()
                            except BrokenProcessPool:
                                raise
                            except Exception as error:
                                if (
                                    _faults_module.is_transient(error)
                                    and attempts[task.key] < self.max_retries
                                ):
                                    attempts[task.key] += 1
                                    self.last_run_stats.retried += 1
                                    futures[
                                        pool.submit(
                                            _worker_run, task, attempts[task.key]
                                        )
                                    ] = task
                                    continue
                                record = _failure_record(
                                    task,
                                    error,
                                    attempts[task.key] + 1,
                                    time.perf_counter() - first_submit[task.key],
                                    self.topology_fingerprint,
                                    self.schemes[task.scheme_index].signature(),
                                )
                            self._store_put(task, record)
                            del unfinished[task.key]
                return
            except BrokenProcessPool:
                restarts += 1
                self.last_run_stats.pool_restarts += 1
                # In-flight tasks died with the pool: that was an attempt.
                # Bumping every unfinished task keeps attempt-0-only faults
                # (injected kills) from breaking the next pool identically.
                for key in unfinished:
                    attempts[key] += 1
                if restarts > self.max_pool_restarts:
                    self._run_serial(list(unfinished.values()), attempts)
                    return

    def run(
        self,
        base_config: WorkloadConfig,
        parameter: str,
        values: Sequence[Any],
        label_format: str = "{value}",
    ) -> SweepResult:
        """Sweep one :class:`WorkloadConfig` field over ``values``.

        ``parameter`` may be any config field (``"coflow_width"`` is
        Figure 3, ``"num_coflows"`` Figure 4; ``"mean_flow_size"``,
        ``"pareto_shape"`` etc. open the scenario families); each point is
        averaged over ``self.tries`` random instances with distinct seeds.
        """
        points: List[PointSpec] = []
        for value in values:
            config = self._with_parameter(base_config, parameter, value)
            configs = [config.with_seed(config.seed + k) for k in range(self.tries)]
            points.append((label_format.format(value=value), configs))
        return self.run_points(points)

    @staticmethod
    def _with_parameter(
        config: WorkloadConfig, parameter: str, value: Any
    ) -> WorkloadConfig:
        known = {f.name for f in fields(WorkloadConfig)}
        if parameter not in known:
            raise ValueError(
                f"unknown sweep parameter {parameter!r} "
                f"(workload config fields: {', '.join(sorted(known))})"
            )
        current = getattr(config, parameter)
        if isinstance(current, bool):
            value = bool(value)
        elif isinstance(current, int):
            value = int(value)
        return replace(config, **{parameter: value})


#: Backwards-compatible name: the engine with its serial defaults is a
#: drop-in replacement for the original single-process sweep runner.
ExperimentSweep = ExperimentEngine
